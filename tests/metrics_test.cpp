// Tests for the run-health metrics plane: histogram boundary semantics,
// snapshot wire format, the cross-rank reduction (including its determinism
// in the rank partitioning), the disabled-plane guarantee, and the
// bench-report regression gate.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "instrument/bench_compare.hpp"
#include "instrument/metrics.hpp"
#include "mpimini/metrics_reduce.hpp"
#include "mpimini/runtime.hpp"

namespace {

std::string TempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// -------------------------------------------------------------- histograms

TEST(HistogramTest, BucketBoundarySemantics) {
  // edges e0..e2 = {1, 2, 4}: bucket 0 = (-inf, 1), bucket 1 = [1, 2),
  // bucket 2 = [2, 4), bucket 3 = [4, +inf).
  instrument::HistogramData h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.buckets.size(), 4u);

  EXPECT_EQ(h.BucketIndex(0.0), 0u);   // underflow
  EXPECT_EQ(h.BucketIndex(0.999), 0u);
  // A value exactly on a boundary belongs to the bucket it opens.
  EXPECT_EQ(h.BucketIndex(1.0), 1u);
  EXPECT_EQ(h.BucketIndex(1.999), 1u);
  EXPECT_EQ(h.BucketIndex(2.0), 2u);
  EXPECT_EQ(h.BucketIndex(4.0), 3u);   // top edge opens the overflow bucket
  EXPECT_EQ(h.BucketIndex(100.0), 3u);

  for (double v : {0.5, 1.0, 2.0, 3.0, 4.0, 8.0}) h.Observe(v);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 18.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 8.0);
  EXPECT_EQ(h.buckets[0], 1u);  // 0.5
  EXPECT_EQ(h.buckets[1], 1u);  // 1.0
  EXPECT_EQ(h.buckets[2], 2u);  // 2.0, 3.0
  EXPECT_EQ(h.buckets[3], 2u);  // 4.0, 8.0
  EXPECT_DOUBLE_EQ(h.Mean(), 18.5 / 6.0);
}

TEST(HistogramTest, MergeAddsBucketsAndRejectsMismatchedEdges) {
  instrument::HistogramData a({1.0, 2.0});
  instrument::HistogramData b({1.0, 2.0});
  a.Observe(0.5);
  a.Observe(1.5);
  b.Observe(1.5);
  b.Observe(3.0);

  a.Merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_DOUBLE_EQ(a.sum, 6.5);
  EXPECT_DOUBLE_EQ(a.min, 0.5);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[1], 2u);
  EXPECT_EQ(a.buckets[2], 1u);

  instrument::HistogramData incompatible({1.0, 8.0});
  incompatible.Observe(2.0);
  EXPECT_THROW(a.Merge(incompatible), std::runtime_error);
}

TEST(HistogramTest, MergeIntoEmptyKeepsOtherExtremes) {
  instrument::HistogramData empty({1.0, 2.0});
  instrument::HistogramData full({1.0, 2.0});
  full.Observe(5.0);
  full.Observe(0.25);
  empty.Merge(full);
  EXPECT_EQ(empty.count, 2u);
  EXPECT_DOUBLE_EQ(empty.min, 0.25);
  EXPECT_DOUBLE_EQ(empty.max, 5.0);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersGaugesAndTotals) {
  instrument::MetricsRegistry reg;
  reg.Add("work.items", 2.0);
  reg.Add("work.items", 3.0);
  EXPECT_DOUBLE_EQ(reg.Counter("work.items"), 5.0);
  EXPECT_DOUBLE_EQ(reg.Counter("never.fed"), 0.0);

  // SetTotal is fed from cumulative stats at step boundaries: repeated and
  // stale samples must be idempotent (max-keeping).
  reg.SetTotal("bytes.total", 100.0);
  reg.SetTotal("bytes.total", 250.0);
  reg.SetTotal("bytes.total", 250.0);
  reg.SetTotal("bytes.total", 90.0);
  EXPECT_DOUBLE_EQ(reg.Counter("bytes.total"), 250.0);

  reg.Set("queue.depth", 2.0);
  reg.Set("queue.depth", 7.0);
  reg.Set("queue.depth", 1.0);
  const instrument::GaugeData* g = reg.Gauge("queue.depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->last, 1.0);
  EXPECT_DOUBLE_EQ(g->low, 1.0);
  EXPECT_DOUBLE_EQ(g->high, 7.0);
  EXPECT_DOUBLE_EQ(g->sum, 10.0);
  EXPECT_EQ(g->samples, 3u);
  EXPECT_EQ(reg.Gauge("never.set"), nullptr);
}

TEST(MetricsRegistryTest, ObserveAutoRegistersDefaultLatencyEdges) {
  instrument::MetricsRegistry reg;
  reg.Observe("span.seconds", 1e-3);
  const auto& h = reg.Histograms().at("span.seconds");
  EXPECT_EQ(h.edges, instrument::MetricsRegistry::DefaultLatencyEdges());
  EXPECT_EQ(h.count, 1u);
}

TEST(MetricsRegistryTest, DefineHistogramRejectsUnsortedEdges) {
  instrument::MetricsRegistry reg;
  EXPECT_THROW(reg.DefineHistogram("bad", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.DefineHistogram("dup", {1.0, 1.0}),
               std::invalid_argument);
  reg.DefineHistogram("good", {1.0, 2.0});
  reg.Observe("good", 1.5);
  EXPECT_EQ(reg.Histograms().at("good").buckets[1], 1u);
}

// ---------------------------------------------------------------- snapshots

TEST(MetricsSnapshotTest, SerializeRoundTrip) {
  instrument::MetricsRegistry reg;
  reg.Add("steps", 12.0);
  reg.Set("mem.bytes", 4096.0);
  reg.Set("mem.bytes", 1024.0);
  reg.DefineHistogram("step.seconds", {0.001, 0.01, 0.1});
  reg.Observe("step.seconds", 0.005);
  reg.Observe("step.seconds", 0.5);

  const instrument::MetricsSnapshot snap = reg.Snapshot();
  const auto bytes = snap.Serialize();
  const auto back = instrument::MetricsSnapshot::Deserialize(bytes);

  EXPECT_EQ(back.counters, snap.counters);
  ASSERT_EQ(back.gauges.size(), 1u);
  const auto& g = back.gauges.at("mem.bytes");
  EXPECT_DOUBLE_EQ(g.last, 1024.0);
  EXPECT_DOUBLE_EQ(g.high, 4096.0);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& h = back.histograms.at("step.seconds");
  EXPECT_EQ(h.edges, snap.histograms.at("step.seconds").edges);
  EXPECT_EQ(h.buckets, snap.histograms.at("step.seconds").buckets);
  EXPECT_DOUBLE_EQ(h.sum, 0.505);

  EXPECT_THROW(instrument::MetricsSnapshot::Deserialize(
                   std::span<const std::byte>(bytes.data(), 3)),
               std::runtime_error);
}

// ---------------------------------------------------------------- reduction

TEST(ReduceSnapshotsTest, StatsAcrossRanks) {
  std::vector<instrument::MetricsSnapshot> per_rank(4);
  for (int r = 0; r < 4; ++r) {
    instrument::MetricsRegistry reg;
    reg.Add("solver.step_seconds", 1.0 + r);  // 1, 2, 3, 4
    reg.Set("sst.queue_depth", static_cast<double>(r));
    reg.DefineHistogram("lat", {1.0});
    reg.Observe("lat", r < 2 ? 0.5 : 2.0);
    per_rank[r] = reg.Snapshot();
  }

  const instrument::MetricsReport report =
      instrument::ReduceSnapshots(per_rank);
  EXPECT_EQ(report.ranks, 4);

  const instrument::MetricStat& c = report.counters.at("solver.step_seconds");
  EXPECT_EQ(c.ranks, 4);
  EXPECT_DOUBLE_EQ(c.min, 1.0);
  EXPECT_DOUBLE_EQ(c.max, 4.0);
  EXPECT_DOUBLE_EQ(c.mean, 2.5);
  EXPECT_DOUBLE_EQ(c.sum, 10.0);
  EXPECT_DOUBLE_EQ(c.p95, 4.0);  // nearest-rank over {1,2,3,4}
  EXPECT_DOUBLE_EQ(c.imbalance, 4.0 / 2.5);

  const instrument::MetricStat* gauge = report.Gauge("sst.queue_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->low_watermark, 0.0);
  EXPECT_DOUBLE_EQ(gauge->high_watermark, 3.0);

  const auto& merged = report.histograms.at("lat");
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.buckets[0], 2u);
  EXPECT_EQ(merged.buckets[1], 2u);
}

TEST(ReduceSnapshotsTest, RanksCountOnlyFeedersPerMetric) {
  std::vector<instrument::MetricsSnapshot> per_rank(3);
  instrument::MetricsRegistry reg;
  reg.Add("only.rank0", 7.0);
  per_rank[0] = reg.Snapshot();  // ranks 1, 2 stay empty

  const auto report = instrument::ReduceSnapshots(per_rank);
  EXPECT_EQ(report.ranks, 3);
  EXPECT_EQ(report.counters.at("only.rank0").ranks, 1);
  EXPECT_DOUBLE_EQ(report.CounterSum("only.rank0"), 7.0);
}

// Splitting the same per-item work across 4 or 8 ranks must reduce to
// identical global totals and histogram contents: the aggregation is
// deterministic in the partitioning.
TEST(ReduceSnapshotsTest, DeterministicAcrossRankPartitionings) {
  constexpr int kItems = 24;
  auto run = [&](int nranks) {
    instrument::MetricsReport report;
    mpimini::RunSettings settings;
    settings.metrics = true;
    mpimini::Runtime::Run(nranks, settings, [&](mpimini::Comm& comm) {
      instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
      ASSERT_NE(metrics, nullptr);
      metrics->DefineHistogram("item.cost", {0.01, 0.1, 1.0});
      for (int i = comm.Rank(); i < kItems; i += comm.Size()) {
        metrics->Add("items.done", 1.0);
        metrics->Add("items.cost_seconds", 0.005 * (i + 1));
        metrics->Observe("item.cost", 0.005 * (i + 1));
        metrics->Set("item.last", static_cast<double>(i));
      }
      const instrument::MetricsReport reduced =
          mpimini::ReduceMetrics(comm, metrics->Snapshot());
      if (comm.Rank() == 0) report = reduced;
    });
    return report;
  };

  const instrument::MetricsReport r4 = run(4);
  const instrument::MetricsReport r8 = run(8);

  EXPECT_EQ(r4.ranks, 4);
  EXPECT_EQ(r8.ranks, 8);
  EXPECT_DOUBLE_EQ(r4.CounterSum("items.done"), kItems);
  EXPECT_DOUBLE_EQ(r8.CounterSum("items.done"), kItems);
  EXPECT_DOUBLE_EQ(r4.CounterSum("items.cost_seconds"),
                   r8.CounterSum("items.cost_seconds"));
  const auto& h4 = r4.histograms.at("item.cost");
  const auto& h8 = r8.histograms.at("item.cost");
  EXPECT_EQ(h4.buckets, h8.buckets);
  EXPECT_EQ(h4.count, h8.count);
  EXPECT_DOUBLE_EQ(h4.sum, h8.sum);
  // The global gauge high watermark is partitioning-independent too.
  EXPECT_DOUBLE_EQ(r4.Gauge("item.last")->high_watermark,
                   r8.Gauge("item.last")->high_watermark);
}

// The disabled plane is the default: no registry is allocated and rank
// threads see a null CurrentMetrics(), so every feed site (solver, SST,
// Catalyst) degenerates to one thread-local read and records nothing.
TEST(MetricsPlaneTest, DisabledPlaneInstallsNothingOnRankThreads) {
  const mpimini::RunResult result =
      mpimini::Runtime::Run(4, [&](mpimini::Comm&) {
        EXPECT_EQ(instrument::CurrentMetrics(), nullptr);
        EXPECT_EQ(mpimini::CurrentEnv()->metrics, nullptr);
      });
  EXPECT_TRUE(result.metrics.empty());
}

TEST(MetricsPlaneTest, EnabledPlaneInstallsPerRankRegistries) {
  mpimini::RunSettings settings;
  settings.metrics = true;
  const mpimini::RunResult result =
      mpimini::Runtime::Run(3, settings, [&](mpimini::Comm& comm) {
        ASSERT_NE(instrument::CurrentMetrics(), nullptr);
        instrument::CurrentMetrics()->Add("rank.marker",
                                          comm.Rank() + 1.0);
      });
  ASSERT_EQ(result.metrics.size(), 3u);
  double total = 0.0;
  for (const auto& reg : result.metrics) total += reg->Counter("rank.marker");
  EXPECT_DOUBLE_EQ(total, 6.0);
}

// ------------------------------------------------------------ JSON writers

TEST(MetricsJsonTest, WriteIsAtomicAndContainsStats) {
  const std::string dir = TempDir("nsm_metrics_json_test");
  const std::string path = dir + "/metrics.json";

  std::vector<instrument::MetricsSnapshot> per_rank(2);
  for (int r = 0; r < 2; ++r) {
    instrument::MetricsRegistry reg;
    reg.Add("solver.step_seconds", 0.5 * (r + 1));
    reg.Set("memory.host_hwm_bytes", 1000.0 * (r + 1));
    reg.Observe("solver.step_seconds", 0.5 * (r + 1));
    per_rank[r] = reg.Snapshot();
  }
  ASSERT_TRUE(instrument::WriteMetricsJson(
      path, instrument::ReduceSnapshots(per_rank)));

  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // temp renamed away

  const std::string json = Slurp(path);
  EXPECT_NE(json.find("\"ranks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"solver.step_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"high_watermark\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------- regression gate

instrument::BenchReport GateBaseline() {
  instrument::BenchReport report;
  report.bench = "fig5";
  report.config = "smoke";
  report.metrics = {{"fig5.catalyst.r4.per_step_seconds", 0.010},
                    {"fig5.catalyst.r4.stream_bytes", 4096.0},
                    {"fig5.catalyst.r4.images", 2.0}};
  return report;
}

TEST(BenchCompareTest, IdenticalReportsPass) {
  const auto baseline = GateBaseline();
  const auto result = instrument::CompareBenchReports(
      baseline, baseline, instrument::CompareOptions{});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.Regressions(), 0);
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST(BenchCompareTest, TwentyPercentTimeRegressionFails) {
  const auto baseline = GateBaseline();
  auto current = baseline;
  current.metrics["fig5.catalyst.r4.per_step_seconds"] *= 1.20;
  const auto result = instrument::CompareBenchReports(
      current, baseline, instrument::CompareOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.Regressions(), 1);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.regressed,
              row.name == "fig5.catalyst.r4.per_step_seconds");
  }
}

TEST(BenchCompareTest, SmallTimeJitterWithinThresholdPasses) {
  const auto baseline = GateBaseline();
  auto current = baseline;
  current.metrics["fig5.catalyst.r4.per_step_seconds"] *= 1.05;
  EXPECT_TRUE(instrument::CompareBenchReports(current, baseline,
                                              instrument::CompareOptions{})
                  .ok);
}

TEST(BenchCompareTest, CounterIncreaseFailsAtZeroThreshold) {
  const auto baseline = GateBaseline();
  auto current = baseline;
  current.metrics["fig5.catalyst.r4.stream_bytes"] += 1.0;
  const auto result = instrument::CompareBenchReports(
      current, baseline, instrument::CompareOptions{});
  EXPECT_FALSE(result.ok);
  // ...but an explicit counter threshold grants headroom.
  instrument::CompareOptions loose;
  loose.counter_threshold = 0.01;
  EXPECT_TRUE(
      instrument::CompareBenchReports(current, baseline, loose).ok);
}

TEST(BenchCompareTest, MissingMetricAndConfigMismatchFail) {
  const auto baseline = GateBaseline();
  auto current = baseline;
  current.metrics.erase("fig5.catalyst.r4.images");
  auto result = instrument::CompareBenchReports(current, baseline,
                                                instrument::CompareOptions{});
  EXPECT_FALSE(result.ok);
  bool saw_missing = false;
  for (const auto& row : result.rows) {
    if (row.name == "fig5.catalyst.r4.images") saw_missing = row.missing;
  }
  EXPECT_TRUE(saw_missing);

  auto full = baseline;
  full.config = "full";
  result = instrument::CompareBenchReports(full, baseline,
                                           instrument::CompareOptions{});
  EXPECT_TRUE(result.config_mismatch);
  EXPECT_FALSE(result.ok);
}

TEST(BenchCompareTest, CompressSuffixMustMatchBaseline) {
  // A "--compress" run stamps a "-compress" config suffix (mirroring the
  // "-async" rule): comparing it against an uncompressed baseline must be
  // rejected as a config mismatch rather than silently passing the byte
  // counters against the wrong reference.
  const auto baseline = GateBaseline();
  auto compressed = baseline;
  compressed.config = baseline.config + "-compress";
  const auto result = instrument::CompareBenchReports(
      compressed, baseline, instrument::CompareOptions{});
  EXPECT_TRUE(result.config_mismatch);
  EXPECT_FALSE(result.ok);

  // Against a matching "-compress" baseline it compares normally.
  auto compress_baseline = baseline;
  compress_baseline.config = baseline.config + "-compress";
  EXPECT_TRUE(instrument::CompareBenchReports(compressed, compress_baseline,
                                              instrument::CompareOptions{})
                  .ok);
}

TEST(BenchCompareTest, NewMetricsAreNotedNotFailed) {
  const auto baseline = GateBaseline();
  auto current = baseline;
  current.metrics["fig5.catalyst.r8.per_step_seconds"] = 0.02;
  const auto result = instrument::CompareBenchReports(
      current, baseline, instrument::CompareOptions{});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "fig5.catalyst.r8.per_step_seconds");
}

TEST(BenchCompareTest, IsTimeMetricClassification) {
  EXPECT_TRUE(instrument::IsTimeMetric("fig2.catalyst.r4.per_step_seconds"));
  EXPECT_TRUE(instrument::IsTimeMetric("render.latency_ms"));
  EXPECT_FALSE(instrument::IsTimeMetric("fig2.catalyst.r4.bytes_written"));
  EXPECT_FALSE(instrument::IsTimeMetric("fig2.catalyst.r4.images"));
}

TEST(BenchCompareTest, BenchJsonRoundTripIsAtomic) {
  const std::string dir = TempDir("nsm_bench_json_test");
  const std::string path = dir + "/BENCH_fig5.json";
  const auto report = GateBaseline();
  ASSERT_TRUE(instrument::WriteBenchJson(path, report));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const auto back = instrument::ReadBenchJson(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bench, report.bench);
  EXPECT_EQ(back->config, report.config);
  EXPECT_EQ(back->metrics, report.metrics);

  EXPECT_FALSE(instrument::ReadBenchJson(dir + "/absent.json").has_value());
  std::ofstream(dir + "/garbage.json") << "not json at all";
  EXPECT_FALSE(instrument::ReadBenchJson(dir + "/garbage.json").has_value());
  std::filesystem::remove_all(dir);
}

// A missing baseline (new bench, nothing committed yet) and a corrupt one
// (truncated write) are different failures; the CI gate (compare_runs)
// exits 2 vs 3 on them, driven by this status.
TEST(BenchCompareTest, ReadStatusDistinguishesMissingFromUnparseable) {
  const std::string dir = TempDir("nsm_bench_status_test");
  instrument::BenchReadStatus status = instrument::BenchReadStatus::kOk;

  EXPECT_FALSE(
      instrument::ReadBenchJson(dir + "/absent.json", status).has_value());
  EXPECT_EQ(status, instrument::BenchReadStatus::kMissingFile);

  std::ofstream(dir + "/garbage.json") << "{ truncated";
  EXPECT_FALSE(
      instrument::ReadBenchJson(dir + "/garbage.json", status).has_value());
  EXPECT_EQ(status, instrument::BenchReadStatus::kUnparseable);

  const std::string good = dir + "/BENCH_fig5.json";
  ASSERT_TRUE(instrument::WriteBenchJson(good, GateBaseline()));
  EXPECT_TRUE(instrument::ReadBenchJson(good, status).has_value());
  EXPECT_EQ(status, instrument::BenchReadStatus::kOk);
  std::filesystem::remove_all(dir);
}

}  // namespace
