#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "mpimini/runtime.hpp"
#include "adios/bp_file.hpp"
#include "sensei/adios_adaptor.hpp"
#include "sensei/autocorrelation_adaptor.hpp"
#include "sensei/bpfile_adaptor.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/checkpoint_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"
#include "sensei/histogram_adaptor.hpp"
#include "sensei/intransit_data_adaptor.hpp"
#include "sensei/stats_adaptor.hpp"
#include "sensei/transport_stage.hpp"
#include "svtk/serialize.hpp"
#include "svtk/vtu_writer.hpp"

namespace {

using mpimini::Comm;
using mpimini::Runtime;

// A minimal simulation-side DataAdaptor over a synthetic per-rank grid:
// one unit cube per rank, shifted along x by the rank index.
class TestDataAdaptor final : public sensei::DataAdaptor {
 public:
  explicit TestDataAdaptor(Comm comm) { SetCommunicator(comm); }

  int GetNumberOfMeshes() override { return 1; }

  sensei::MeshMetadata GetMeshMetadata(int) override {
    sensei::MeshMetadata md;
    md.num_blocks = GetCommunicator().Size();
    md.global_bounds = {0.0, static_cast<double>(GetCommunicator().Size()),
                        0.0, 1.0, 0.0, 1.0};
    md.arrays.push_back({"scalar", svtk::Centering::kPoint, 1});
    md.arrays.push_back({"vec", svtk::Centering::kPoint, 3});
    return md;
  }

  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int) override {
    if (mesh_) return mesh_;
    mesh_ = std::make_shared<svtk::UnstructuredGrid>(8, 1);
    const double x0 = GetCommunicator().Rank();
    int p = 0;
    for (int k = 0; k < 2; ++k) {
      for (int j = 0; j < 2; ++j) {
        for (int i = 0; i < 2; ++i) {
          mesh_->SetPoint(static_cast<std::size_t>(p++), x0 + i, j, k);
        }
      }
    }
    mesh_->SetCell(0, {0, 1, 3, 2, 4, 5, 7, 6});
    return mesh_;
  }

  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override {
    if (centering != svtk::Centering::kPoint) return false;
    if (name == "scalar") {
      svtk::DataArray& a = mesh.AddPointArray("scalar", 1);
      for (std::size_t t = 0; t < 8; ++t) {
        a.At(t) = GetCommunicator().Rank() + 0.125 * static_cast<double>(t);
      }
      ++arrays_added;
      return true;
    }
    if (name == "vec") {
      svtk::DataArray& a = mesh.AddPointArray("vec", 3);
      for (std::size_t t = 0; t < 8; ++t) {
        a.At(t, 0) = 3.0;
        a.At(t, 1) = 4.0;
        a.At(t, 2) = 0.0;
      }
      return true;
    }
    return false;
  }

  void ReleaseData() override {
    mesh_.reset();
    ++releases;
  }

  int arrays_added = 0;
  int releases = 0;

 private:
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;
};

std::string TempSubdir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/sensei_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CheckpointAdaptorTest, WritesOneVtuPerRank) {
  const std::string dir = TempSubdir("chk");
  Runtime::Run(3, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    data.SetPipelineTime(200, 2.0);
    sensei::CheckpointOptions options;
    options.output_dir = dir;
    sensei::CheckpointAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    EXPECT_GT(adaptor.BytesWritten(), 0u);
    EXPECT_EQ(adaptor.FilesWritten(), 1u);
    const std::string path = adaptor.FilePath(200, comm.Rank());
    EXPECT_TRUE(std::filesystem::exists(path));
    // The file is a valid VTU with the advertised arrays attached.
    svtk::UnstructuredGrid grid = svtk::ReadVtu(path);
    EXPECT_EQ(grid.NumPoints(), 8u);
    EXPECT_NE(grid.PointArray("scalar"), nullptr);
    EXPECT_NE(grid.PointArray("vec"), nullptr);
  });
}

TEST(CheckpointAdaptorTest, ArraySubsetRespected) {
  const std::string dir = TempSubdir("chk_subset");
  Runtime::Run(1, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::CheckpointOptions options;
    options.output_dir = dir;
    options.arrays = {"scalar"};
    sensei::CheckpointAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    svtk::UnstructuredGrid grid = svtk::ReadVtu(adaptor.FilePath(0, 0));
    EXPECT_NE(grid.PointArray("scalar"), nullptr);
    EXPECT_EQ(grid.PointArray("vec"), nullptr);
  });
}

TEST(CatalystAdaptorTest, RendersCompositedImageOnRoot) {
  const std::string dir = TempSubdir("cat");
  Runtime::Run(2, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    data.SetPipelineTime(7, 0.07);
    sensei::CatalystOptions options;
    options.width = 64;
    options.height = 48;
    options.output_dir = dir;
    sensei::CatalystView view;
    view.array = "scalar";
    view.name = "main";
    options.views.push_back(view);
    sensei::CatalystAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    if (comm.Rank() == 0) {
      EXPECT_EQ(adaptor.ImagesWritten(), 1u);
      EXPECT_TRUE(std::filesystem::exists(dir + "/render_main_000007.png"));
      EXPECT_GT(adaptor.BytesWritten(), 0u);
    } else {
      EXPECT_EQ(adaptor.ImagesWritten(), 0u);
    }
  });
}

TEST(CatalystAdaptorTest, TwoViewsRenderTwoImages) {
  // The in transit case renders two images per trigger (§4.2).
  const std::string dir = TempSubdir("cat2");
  Runtime::Run(1, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::CatalystOptions options;
    options.width = 32;
    options.height = 32;
    options.output_dir = dir;
    sensei::CatalystView a;
    a.array = "scalar";
    a.name = "front";
    sensei::CatalystView b;
    b.array = "vec";
    b.color_by_magnitude = true;
    b.name = "side";
    b.azimuth = 90.0;
    options.views = {a, b};
    sensei::CatalystAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    EXPECT_EQ(adaptor.ImagesWritten(), 2u);
  });
}

TEST(StatsAdaptorTest, GlobalReductionAcrossRanks) {
  Runtime::Run(4, [](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::StatsAnalysisAdaptor adaptor({{"scalar"}, ""});
    ASSERT_TRUE(adaptor.Execute(data));
    const auto& stats = adaptor.Last().at("scalar");
    EXPECT_DOUBLE_EQ(stats.min, 0.0);
    // Max over ranks: rank 3 + 0.875.
    EXPECT_DOUBLE_EQ(stats.max, 3.875);
    // Mean: mean over ranks of (rank + mean(0..0.875)) = 1.5 + 0.4375.
    EXPECT_NEAR(stats.mean, 1.9375, 1e-12);
  });
}

TEST(StatsAdaptorTest, AppendsLogOnRoot) {
  const std::string dir = TempSubdir("stats");
  const std::string log = dir + "/stats.log";
  Runtime::Run(2, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::StatsAnalysisAdaptor adaptor({{"scalar"}, log});
    data.SetPipelineTime(1, 0.1);
    ASSERT_TRUE(adaptor.Execute(data));
    data.SetPipelineTime(2, 0.2);
    ASSERT_TRUE(adaptor.Execute(data));
  });
  std::ifstream in(log);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);
}

TEST(HistogramAdaptorTest, CountsSumToGlobalTuples) {
  Runtime::Run(3, [](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::HistogramOptions options;
    options.array = "scalar";
    options.bins = 8;
    sensei::HistogramAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    long total = 0;
    for (long c : adaptor.Counts()) total += c;
    EXPECT_EQ(total, 3 * 8);
    EXPECT_DOUBLE_EQ(adaptor.RangeMin(), 0.0);
    EXPECT_DOUBLE_EQ(adaptor.RangeMax(), 2.875);
  });
}

TEST(HistogramAdaptorTest, MagnitudeOfVector) {
  Runtime::Run(1, [](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::HistogramOptions options;
    options.array = "vec";
    options.by_magnitude = true;
    options.bins = 4;
    sensei::HistogramAnalysisAdaptor adaptor(options);
    ASSERT_TRUE(adaptor.Execute(data));
    // |(3,4,0)| = 5 for every tuple: degenerate range.
    EXPECT_DOUBLE_EQ(adaptor.RangeMin(), 5.0);
    EXPECT_DOUBLE_EQ(adaptor.RangeMax(), 5.0);
    long total = 0;
    for (long c : adaptor.Counts()) total += c;
    EXPECT_EQ(total, 8);
  });
}

// ---- ConfigurableAnalysis ---------------------------------------------------

TEST(ConfigurableAnalysisTest, InstantiatesFromListing1StyleXml) {
  const std::string dir = TempSubdir("cfg");
  Runtime::Run(1, [&](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei>"
                      "  <analysis type=\"catalyst\" frequency=\"100\" "
                      "output=\"" + dir + "\" array=\"scalar\" width=\"32\" "
                      "height=\"32\"/>"
                      "  <analysis type=\"checkpoint\" frequency=\"50\" "
                      "output=\"" + dir + "\"/>"
                      "  <analysis type=\"stats\" frequency=\"10\" "
                      "arrays=\"scalar\"/>"
                      "</sensei>")
            .root);
    ASSERT_EQ(analysis.Analyses().size(), 3u);
    EXPECT_EQ(analysis.Analyses()[0].frequency, 100);
    EXPECT_NE(analysis.Find("catalyst"), nullptr);
    EXPECT_NE(analysis.Find("checkpoint"), nullptr);
    EXPECT_EQ(analysis.Find("adios"), nullptr);
  });
}

TEST(ConfigurableAnalysisTest, FrequencyGatesExecution) {
  const std::string dir = TempSubdir("freq");
  Runtime::Run(1, [&](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"checkpoint\" "
                      "frequency=\"10\" output=\"" + dir + "\"/></sensei>")
            .root);
    TestDataAdaptor data(comm);
    for (int step = 1; step <= 30; ++step) {
      data.SetPipelineTime(step, 0.01 * step);
      analysis.Execute(data);
    }
    auto checkpoint =
        std::dynamic_pointer_cast<sensei::CheckpointAnalysisAdaptor>(
            analysis.Find("checkpoint"));
    ASSERT_NE(checkpoint, nullptr);
    EXPECT_EQ(checkpoint->FilesWritten(), 3u);  // steps 10, 20, 30
    // ReleaseData ran once per triggered step only.
    EXPECT_EQ(data.releases, 3);
  });
}

TEST(ConfigurableAnalysisTest, DisabledAnalysesSkipped) {
  Runtime::Run(1, [](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"stats\" enabled=\"0\"/>"
                      "</sensei>")
            .root);
    EXPECT_TRUE(analysis.Analyses().empty());
  });
}

TEST(ConfigurableAnalysisTest, UnknownTypeThrows) {
  Runtime::Run(1, [](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    EXPECT_THROW(
        analysis.Initialize(
            xmlcfg::Parse("<sensei><analysis type=\"libsim\"/></sensei>")
                .root),
        std::invalid_argument);
  });
}

TEST(ConfigurableAnalysisTest, CustomFactoryAndBytesTotal) {
  const std::string dir = TempSubdir("custom");
  Runtime::Run(1, [&](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.RegisterFactory(
        "stats",  // override the builtin
        [&](const xmlcfg::Element&, mpimini::Comm&) {
          return std::make_shared<sensei::StatsAnalysisAdaptor>(
              sensei::StatsOptions{{"scalar"}, dir + "/s.log"});
        });
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"stats\"/></sensei>").root);
    TestDataAdaptor data(comm);
    data.SetPipelineTime(1, 0.0);
    analysis.Execute(data);
    EXPECT_GT(analysis.TotalBytesWritten(), 0u);
  });
}

TEST(ConfigurableAnalysisTest, EmptyConfigIsNoTransportMode) {
  Runtime::Run(1, [](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(xmlcfg::Parse("<sensei/>").root);
    TestDataAdaptor data(comm);
    EXPECT_TRUE(analysis.Execute(data));
    EXPECT_EQ(data.releases, 0);  // nothing ran, nothing released
    EXPECT_EQ(analysis.TotalBytesWritten(), 0u);
  });
}

// ---- Pipeline configuration -------------------------------------------------

TEST(PipelineConfigTest, DefaultsToSync) {
  unsetenv("NEK_SENSEI_ASYNC");
  const auto config =
      sensei::ParsePipelineConfig(xmlcfg::Parse("<sensei/>").root);
  EXPECT_FALSE(config.async);
  EXPECT_EQ(config.depth, 2);
}

TEST(PipelineConfigTest, ParsesAsyncModeAndDepth) {
  const auto config = sensei::ParsePipelineConfig(
      xmlcfg::Parse("<sensei><pipeline mode=\"async\" depth=\"3\"/></sensei>")
          .root);
  EXPECT_TRUE(config.async);
  EXPECT_EQ(config.depth, 3);
}

TEST(PipelineConfigTest, RejectsUnknownModeAndBadDepth) {
  auto parse = [](const std::string& xml) {
    return sensei::ParsePipelineConfig(xmlcfg::Parse(xml).root).async;
  };
  EXPECT_THROW(parse("<sensei><pipeline mode=\"turbo\"/></sensei>"),
               std::invalid_argument);
  EXPECT_THROW(parse("<sensei><pipeline mode=\"async\" depth=\"0\"/></sensei>"),
               std::invalid_argument);
  EXPECT_THROW(parse("<other/>"), std::invalid_argument);
}

TEST(PipelineConfigTest, EnvironmentSelectsAsyncWhenElementAbsent) {
  // The CI async-default lane: NEK_SENSEI_ASYNC flips configurations that
  // do not pin a <pipeline> element.
  setenv("NEK_SENSEI_ASYNC", "1", 1);
  const auto flipped =
      sensei::ParsePipelineConfig(xmlcfg::Parse("<sensei/>").root);
  EXPECT_TRUE(flipped.async);
  EXPECT_EQ(flipped.depth, 2);

  // An explicit mode always wins over the environment.
  const auto pinned = sensei::ParsePipelineConfig(
      xmlcfg::Parse("<sensei><pipeline mode=\"sync\"/></sensei>").root);
  EXPECT_FALSE(pinned.async);

  setenv("NEK_SENSEI_ASYNC", "off", 1);
  EXPECT_FALSE(
      sensei::ParsePipelineConfig(xmlcfg::Parse("<sensei/>").root).async);
  unsetenv("NEK_SENSEI_ASYNC");
}

// ---- Transport codec selection + split grid staging -------------------------

svtk::UnstructuredGrid MakeStagedCube() {
  svtk::UnstructuredGrid grid(8, 1);
  int p = 0;
  for (int k = 0; k < 2; ++k) {
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 2; ++i) {
        grid.SetPoint(static_cast<std::size_t>(p++), 1.5 * i, 2.5 * j,
                      3.5 * k);
      }
    }
  }
  grid.SetCell(0, {0, 1, 3, 2, 4, 5, 7, 6});
  svtk::DataArray& scalar = grid.AddPointArray("scalar", 1);
  for (std::size_t t = 0; t < 8; ++t) {
    scalar.At(t) = 0.125 * static_cast<double>(t) - 0.5;
  }
  svtk::DataArray& vol = grid.AddCellArray("vol", 1);
  vol.At(0) = 42.0;
  return grid;
}

adios::StepPayload StageAndShip(const svtk::UnstructuredGrid& grid,
                                const sensei::TransportCodecs& codecs) {
  adios::StepChain staged;
  staged.step = 0;
  staged.writer_rank = 0;
  sensei::StageGridTo(
      [&staged](const std::string& name, core::BufferChain chain,
                const codec::Spec& spec) {
        staged.variables[name] = std::move(chain);
        if (!spec.Identity()) staged.codecs[name] = spec;
      },
      grid, codecs);
  core::Buffer packed = adios::MarshalChain(staged).Pack("test");
  return adios::UnmarshalStep(packed.bytes());
}

void ExpectGridsMatch(const svtk::UnstructuredGrid& a,
                      const svtk::UnstructuredGrid& b, double tol) {
  ASSERT_EQ(a.NumPoints(), b.NumPoints());
  ASSERT_EQ(a.Connectivity().size(), b.Connectivity().size());
  for (std::size_t i = 0; i < a.Points().size(); ++i) {
    EXPECT_NEAR(a.Points()[i], b.Points()[i], tol) << "point " << i;
  }
  for (std::size_t i = 0; i < a.Connectivity().size(); ++i) {
    EXPECT_EQ(a.Connectivity()[i], b.Connectivity()[i]) << "conn " << i;
  }
  ASSERT_EQ(a.PointArrayNames(), b.PointArrayNames());
  ASSERT_EQ(a.CellArrayNames(), b.CellArrayNames());
}

TEST(TransportCodecsTest, ParsesCodecSpecVariants) {
  const codec::Spec none =
      sensei::ParseCodecSpec(xmlcfg::Parse("<points/>").root);
  EXPECT_TRUE(none.Identity());

  const codec::Spec bf = sensei::ParseCodecSpec(
      xmlcfg::Parse("<points><codec type=\"blockfloat\" rate=\"12\"/>"
                    "</points>")
          .root);
  EXPECT_EQ(bf.kind, codec::Kind::kBlockFloat);
  EXPECT_EQ(bf.rate, 12);

  const codec::Spec rle = sensei::ParseCodecSpec(
      xmlcfg::Parse("<connectivity><codec type=\"shuffle_rle\" delta=\"1\"/>"
                    "</connectivity>")
          .root);
  EXPECT_EQ(rle.kind, codec::Kind::kShuffleRle);
  EXPECT_TRUE(rle.delta);
}

TEST(TransportCodecsTest, RejectsUnknownTypeAndBadRate) {
  EXPECT_THROW(
      (void)sensei::ParseCodecSpec(
          xmlcfg::Parse("<p><codec type=\"zstd\"/></p>").root),
      std::invalid_argument);
  EXPECT_THROW(
      (void)sensei::ParseCodecSpec(
          xmlcfg::Parse("<p><codec type=\"blockfloat\" rate=\"1\"/></p>")
              .root),
      std::invalid_argument);
  EXPECT_THROW(
      (void)sensei::ParseCodecSpec(
          xmlcfg::Parse("<p><codec type=\"blockfloat\" rate=\"33\"/></p>")
              .root),
      std::invalid_argument);
}

TEST(TransportCodecsTest, ParsesPerPlaneSelectionWithWildcard) {
  const auto root = xmlcfg::Parse(
      "<analysis type=\"adios\">"
      "  <points><codec type=\"blockfloat\" rate=\"8\"/></points>"
      "  <connectivity><codec type=\"shuffle_rle\" delta=\"1\"/>"
      "</connectivity>"
      "  <array name=\"pressure\"><codec type=\"blockfloat\" rate=\"16\"/>"
      "</array>"
      "  <array name=\"*\"><codec type=\"blockfloat\" rate=\"8\"/></array>"
      "</analysis>");
  const sensei::TransportCodecs codecs =
      sensei::ParseTransportCodecs(root.root);
  EXPECT_TRUE(codecs.Any());
  EXPECT_EQ(codecs.points.kind, codec::Kind::kBlockFloat);
  EXPECT_EQ(codecs.connectivity.kind, codec::Kind::kShuffleRle);
  EXPECT_EQ(codecs.ForArray("pressure").rate, 16);
  EXPECT_EQ(codecs.ForArray("temperature").rate, 8);  // wildcard
  EXPECT_EQ(codecs.ForArray("temperature").kind, codec::Kind::kBlockFloat);

  const sensei::TransportCodecs empty = sensei::ParseTransportCodecs(
      xmlcfg::Parse("<analysis type=\"adios\"/>").root);
  EXPECT_FALSE(empty.Any());
  EXPECT_TRUE(empty.ForArray("anything").Identity());
}

TEST(TransportCodecsTest, RejectsBlockfloatConnectivityAtParseTime) {
  EXPECT_THROW(
      (void)sensei::ParseTransportCodecs(
          xmlcfg::Parse("<analysis type=\"adios\"><connectivity>"
                        "<codec type=\"blockfloat\" rate=\"8\"/>"
                        "</connectivity></analysis>")
              .root),
      std::invalid_argument);
}

TEST(TransportCodecsTest, RequiresArrayName) {
  EXPECT_THROW(
      (void)sensei::ParseTransportCodecs(
          xmlcfg::Parse("<analysis type=\"adios\"><array>"
                        "<codec type=\"blockfloat\" rate=\"8\"/>"
                        "</array></analysis>")
              .root),
      std::invalid_argument);
}

TEST(TransportStageTest, IdentityRoundTripIsExact) {
  const svtk::UnstructuredGrid grid = MakeStagedCube();
  const adios::StepPayload payload = StageAndShip(grid, {});
  // Identity staging ships raw == wire.
  EXPECT_EQ(payload.raw_bytes, payload.wire_bytes);
  const svtk::UnstructuredGrid back = sensei::ReassembleGrid(payload);
  ExpectGridsMatch(grid, back, 0.0);
  EXPECT_EQ(back.PointArray("scalar")->At(3), grid.PointArray("scalar")->At(3));
  EXPECT_EQ(back.CellArray("vol")->At(0), 42.0);
}

TEST(TransportStageTest, CodecRoundTripHonoursBounds) {
  const svtk::UnstructuredGrid grid = MakeStagedCube();
  sensei::TransportCodecs codecs;
  codecs.points.kind = codec::Kind::kBlockFloat;
  codecs.points.rate = 16;
  codecs.connectivity.kind = codec::Kind::kShuffleRle;
  codecs.connectivity.delta = true;
  codec::Spec array_spec;
  array_spec.kind = codec::Kind::kBlockFloat;
  array_spec.rate = 16;
  codecs.arrays["*"] = array_spec;

  const adios::StepPayload payload = StageAndShip(grid, codecs);
  const svtk::UnstructuredGrid back = sensei::ReassembleGrid(payload);
  const double bound =
      codec::BlockFloatErrorBound(grid.Points(), 16);
  ExpectGridsMatch(grid, back, bound);
  const double scalar_bound = codec::BlockFloatErrorBound(
      grid.PointArray("scalar")->Data(), 16);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_NEAR(back.PointArray("scalar")->At(t),
                grid.PointArray("scalar")->At(t), scalar_bound);
  }
}

TEST(TransportStageTest, BlockfloatOnConnectivityThrowsAtStageTime) {
  const svtk::UnstructuredGrid grid = MakeStagedCube();
  sensei::TransportCodecs codecs;
  codecs.connectivity.kind = codec::Kind::kBlockFloat;
  EXPECT_THROW(
      sensei::StageGridTo(
          [](const std::string&, core::BufferChain, const codec::Spec&) {},
          grid, codecs),
      std::invalid_argument);
}

TEST(TransportStageTest, LegacySingleBlobPayloadStillReassembles) {
  // Old writers (and restart files) ship the whole grid as one "mesh" blob;
  // ReassembleGrid must keep reading them, keyed on the svtk magic.
  const svtk::UnstructuredGrid grid = MakeStagedCube();
  adios::StepChain staged;
  staged.step = 0;
  staged.writer_rank = 0;
  staged.variables["mesh"] = svtk::SerializeChain(grid);
  core::Buffer packed = adios::MarshalChain(staged).Pack("test");
  const adios::StepPayload payload = adios::UnmarshalStep(packed.bytes());
  const svtk::UnstructuredGrid back = sensei::ReassembleGrid(payload);
  ExpectGridsMatch(grid, back, 0.0);
}

TEST(TransportStageTest, MissingPlaneThrowsDescriptively) {
  const svtk::UnstructuredGrid grid = MakeStagedCube();
  adios::StepChain staged;
  sensei::StageGridTo(
      [&staged](const std::string& name, core::BufferChain chain,
                const codec::Spec&) {
        staged.variables[name] = std::move(chain);
      },
      grid, {});
  staged.variables.erase("mesh.points");
  core::Buffer packed = adios::MarshalChain(staged).Pack("test");
  const adios::StepPayload payload = adios::UnmarshalStep(packed.bytes());
  try {
    (void)sensei::ReassembleGrid(payload);
    FAIL() << "reassembled a payload with no points plane";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mesh.points"), std::string::npos)
        << e.what();
  }
}

// ---- In transit: adios sender + endpoint consumer ---------------------------

TEST(InTransitTest, StreamedBlocksMergeOnEndpoint) {
  Runtime::Run(3, [](Comm& world) {
    // ranks 0,1 = writers; rank 2 = endpoint.
    if (world.Rank() < 2) {
      Comm sim = world.Split(0, world.Rank());
      TestDataAdaptor data(sim);
      data.SetPipelineTime(5, 0.5);
      sensei::AdiosAnalysisAdaptor sender(world, 2, {});
      ASSERT_TRUE(sender.Execute(data));
      sender.Finalize();
      EXPECT_EQ(sender.TransportStats().steps, 1u);
    } else {
      Comm ep = world.Split(1, world.Rank());
      adios::SstReader reader(world, {0, 1});
      sensei::InTransitDataAdaptor data(ep);
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      data.SetStep(step->step, 0.0, step->payloads);
      EXPECT_EQ(data.GetDataTimeStep(), 5);
      EXPECT_DOUBLE_EQ(data.GetDataTime(), 0.5);

      auto mesh = data.GetMesh(0);
      EXPECT_EQ(mesh->NumPoints(), 16u);  // two 8-point blocks merged
      EXPECT_EQ(mesh->NumCells(), 2u);
      EXPECT_NE(mesh->PointArray("scalar"), nullptr);
      // Connectivity renumbered: second cell references points >= 8.
      auto cell1 = mesh->GetCell(1);
      for (auto n : cell1) EXPECT_GE(n, 8);
      // Arrays preserved blockwise: block 1's scalar starts at rank 1 value.
      EXPECT_DOUBLE_EQ(mesh->PointArray("scalar")->At(8), 1.0);

      sensei::MeshMetadata md = data.GetMeshMetadata(0);
      EXPECT_DOUBLE_EQ(md.global_bounds[1], 2.0);  // spans both blocks

      EXPECT_FALSE(reader.NextStep().has_value());
    }
  });
}

TEST(InTransitTest, EndpointRunsCheckpointAnalysis) {
  const std::string dir = TempSubdir("ep_chk");
  Runtime::Run(3, [&](Comm& world) {
    if (world.Rank() < 2) {
      Comm sim = world.Split(0, world.Rank());
      TestDataAdaptor data(sim);
      sensei::AdiosAnalysisAdaptor sender(world, 2, {});
      for (int step = 0; step < 3; ++step) {
        data.SetPipelineTime(step, 0.1 * step);
        ASSERT_TRUE(sender.Execute(data));
      }
      sender.Finalize();
    } else {
      Comm ep = world.Split(1, world.Rank());
      adios::SstReader reader(world, {0, 1});
      sensei::InTransitDataAdaptor data(ep);
      sensei::ConfigurableAnalysis analysis(ep);
      analysis.Initialize(
          xmlcfg::Parse("<sensei><analysis type=\"checkpoint\" output=\"" +
                        dir + "\"/></sensei>")
              .root);
      while (auto step = reader.NextStep()) {
        data.SetStep(step->step, 0.0, step->payloads);
        ASSERT_TRUE(analysis.Execute(data));
      }
      analysis.Finalize();
      auto checkpoint =
          std::dynamic_pointer_cast<sensei::CheckpointAnalysisAdaptor>(
              analysis.Find("checkpoint"));
      EXPECT_EQ(checkpoint->FilesWritten(), 3u);
    }
  });
}


// ---- BP-file (post hoc) adaptor ---------------------------------------------

TEST(BpFileAdaptorTest, WritesReplayableStream) {
  const std::string dir = TempSubdir("bp");
  Runtime::Run(2, [&](Comm& comm) {
    TestDataAdaptor data(comm);
    sensei::BpFileOptions options;
    options.output_dir = dir;
    sensei::BpFileAnalysisAdaptor adaptor(options);
    for (int step = 0; step < 3; ++step) {
      data.SetPipelineTime(step * 10, step * 0.1);
      ASSERT_TRUE(adaptor.Execute(data));
      data.ReleaseData();
    }
    adaptor.Finalize();
    EXPECT_GT(adaptor.BytesWritten(), 0u);

    // Replay this rank's stream: steps in order, mesh deserializable.
    adios::BpFileReader reader(adaptor.FilePath(comm.Rank()));
    int expected = 0;
    while (auto step = reader.NextStep()) {
      EXPECT_EQ(step->step, expected * 10);
      auto grid = sensei::ReassembleGrid(*step);
      EXPECT_EQ(grid.NumPoints(), 8u);
      EXPECT_NE(grid.PointArray("scalar"), nullptr);
      double time = -1.0;
      std::memcpy(&time, step->variables.at("time").data(), sizeof(double));
      EXPECT_DOUBLE_EQ(time, expected * 0.1);
      ++expected;
    }
    EXPECT_EQ(expected, 3);
  });
}

TEST(BpFileAdaptorTest, ConfigurableViaXml) {
  const std::string dir = TempSubdir("bp_xml");
  Runtime::Run(1, [&](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"bpfile\" frequency=\"2\" "
                      "output=\"" + dir + "\" arrays=\"scalar\"/></sensei>")
            .root);
    TestDataAdaptor data(comm);
    for (int step = 1; step <= 4; ++step) {
      data.SetPipelineTime(step, 0.0);
      analysis.Execute(data);
    }
    analysis.Finalize();
    adios::BpFileReader reader(dir + "/stream_rank0000.bp");
    int steps = 0;
    while (auto step = reader.NextStep()) {
      auto grid = sensei::ReassembleGrid(*step);
      EXPECT_NE(grid.PointArray("scalar"), nullptr);
      EXPECT_EQ(grid.PointArray("vec"), nullptr);  // subset respected
      ++steps;
    }
    EXPECT_EQ(steps, 2);  // steps 2 and 4
  });
}


// ---- Failure propagation ----------------------------------------------------

namespace {
class FailingAdaptor final : public sensei::AnalysisAdaptor {
 public:
  bool Execute(sensei::DataAdaptor&) override { return false; }
  std::string Kind() const override { return "failing"; }
};
}  // namespace

TEST(FailureTest, AnalysisFailureIsReportedNotSwallowed) {
  Runtime::Run(1, [](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.RegisterFactory(
        "failing", [](const xmlcfg::Element&, mpimini::Comm&) {
          return std::make_shared<FailingAdaptor>();
        });
    analysis.Initialize(
        xmlcfg::Parse("<sensei>"
                      "<analysis type=\"failing\"/>"
                      "<analysis type=\"stats\" arrays=\"scalar\"/>"
                      "</sensei>")
            .root);
    TestDataAdaptor data(comm);
    data.SetPipelineTime(1, 0.0);
    // The failure is reported, and the healthy analysis still ran.
    EXPECT_FALSE(analysis.Execute(data));
    auto stats = std::dynamic_pointer_cast<sensei::StatsAnalysisAdaptor>(
        analysis.Find("stats"));
    EXPECT_EQ(stats->Last().count("scalar"), 1u);
  });
}


// ---- Autocorrelation --------------------------------------------------------

namespace {
// DataAdaptor whose scalar oscillates in time with a controllable signal.
class SignalDataAdaptor final : public sensei::DataAdaptor {
 public:
  explicit SignalDataAdaptor(Comm comm) { SetCommunicator(comm); }

  int GetNumberOfMeshes() override { return 1; }
  sensei::MeshMetadata GetMeshMetadata(int) override {
    sensei::MeshMetadata md;
    md.arrays.push_back({"signal", svtk::Centering::kPoint, 1});
    return md;
  }
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int) override {
    if (!mesh_) {
      mesh_ = std::make_shared<svtk::UnstructuredGrid>(8, 1);
      for (int p = 0; p < 8; ++p) {
        mesh_->SetPoint(static_cast<std::size_t>(p), p, 0, 0);
      }
      mesh_->SetCell(0, {0, 1, 2, 3, 4, 5, 6, 7});
    }
    return mesh_;
  }
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering) override {
    if (name != "signal") return false;
    svtk::DataArray& a = mesh.AddPointArray("signal", 1);
    for (std::size_t t = 0; t < 8; ++t) a.At(t) = value;
    return true;
  }
  void ReleaseData() override { mesh_.reset(); }

  double value = 0.0;

 private:
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;
};
}  // namespace

TEST(AutocorrelationTest, AlternatingSignalHasNegativeLagOne) {
  // A field flipping sign every trigger is perfectly anti-correlated at
  // lag 1 and perfectly correlated at lag 2.
  Runtime::Run(2, [](Comm& comm) {
    SignalDataAdaptor data(comm);
    sensei::AutocorrelationOptions options;
    options.array = "signal";
    options.by_magnitude = false;
    options.window = 6;
    options.max_lag = 2;
    sensei::AutocorrelationAnalysisAdaptor adaptor(options);
    for (int step = 0; step < 8; ++step) {
      data.value = (step % 2 == 0) ? 1.0 : -1.0;
      data.SetPipelineTime(step, 0.1 * step);
      ASSERT_TRUE(adaptor.Execute(data));
      data.ReleaseData();
    }
    ASSERT_EQ(adaptor.Correlations().size(), 3u);
    EXPECT_NEAR(adaptor.Correlations()[0], 1.0, 1e-12);
    EXPECT_NEAR(adaptor.Correlations()[1], -1.0, 0.05);
    EXPECT_NEAR(adaptor.Correlations()[2], 1.0, 0.05);
  });
}

TEST(AutocorrelationTest, WindowFillsBeforeReporting) {
  Runtime::Run(1, [](Comm& comm) {
    SignalDataAdaptor data(comm);
    sensei::AutocorrelationOptions options;
    options.array = "signal";
    options.by_magnitude = false;
    options.window = 4;
    options.max_lag = 2;
    sensei::AutocorrelationAnalysisAdaptor adaptor(options);
    for (int step = 0; step < 3; ++step) {
      data.value = step;
      ASSERT_TRUE(adaptor.Execute(data));
      data.ReleaseData();
    }
    EXPECT_TRUE(adaptor.Correlations().empty());
    EXPECT_EQ(adaptor.SnapshotsHeld(), 3);
    data.value = 3;
    ASSERT_TRUE(adaptor.Execute(data));
    EXPECT_FALSE(adaptor.Correlations().empty());
    EXPECT_EQ(adaptor.SnapshotsHeld(), 4);
  });
}

TEST(AutocorrelationTest, StatefulWindowMemoryIsTracked) {
  Runtime::Run(1, [](Comm& comm) {
    mpimini::RankEnv* env = mpimini::CurrentEnv();
    SignalDataAdaptor data(comm);
    sensei::AutocorrelationOptions options;
    options.array = "signal";
    options.window = 5;
    options.max_lag = 2;
    sensei::AutocorrelationAnalysisAdaptor adaptor(options);
    for (int step = 0; step < 10; ++step) {
      data.value = step;
      adaptor.Execute(data);
      data.ReleaseData();
    }
    // Exactly `window` snapshots of 8 doubles stay resident.
    EXPECT_EQ(env->memory.CurrentBytes("autocorrelation"),
              5u * 8u * sizeof(double));
  });
}

TEST(AutocorrelationTest, ConfigurableViaXmlAndValidates) {
  Runtime::Run(1, [](Comm& comm) {
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"autocorrelation\" "
                      "array=\"signal\" window=\"4\" max_lag=\"2\"/>"
                      "</sensei>")
            .root);
    EXPECT_NE(analysis.Find("autocorrelation"), nullptr);
    EXPECT_THROW(sensei::AutocorrelationAnalysisAdaptor(
                     {"x", svtk::Centering::kPoint, false, 1, 1, ""}),
                 std::invalid_argument);
    EXPECT_THROW(sensei::AutocorrelationAnalysisAdaptor(
                     {"x", svtk::Centering::kPoint, false, 4, 7, ""}),
                 std::invalid_argument);
  });
}

}  // namespace
