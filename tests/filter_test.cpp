#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sem/filter.hpp"
#include "sem/gll.hpp"

namespace {

using sem::GllRule;
using sem::InvertDense;
using sem::LegendreVandermonde;
using sem::MakeGllRule;
using sem::ModalFilter;

TEST(LinearAlgebraTest, InvertDenseRoundTrip) {
  // Invert a well-conditioned 4x4 and check A * A^{-1} = I.
  const int n = 4;
  std::vector<double> a{4, 1, 0, 2,  1, 5, 1, 0,  0, 1, 6, 1,  2, 0, 1, 7};
  std::vector<double> inv = InvertDense(a, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) {
        sum += a[static_cast<std::size_t>(i * n + k)] *
               inv[static_cast<std::size_t>(k * n + j)];
      }
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(LinearAlgebraTest, InvertDenseRejectsSingular) {
  std::vector<double> a{1, 2, 2, 4};  // rank 1
  EXPECT_THROW(InvertDense(a, 2), std::runtime_error);
}

TEST(VandermondeTest, FirstColumnIsOnes) {
  const GllRule rule = MakeGllRule(5);
  auto v = LegendreVandermonde(rule);
  const int np = rule.NumPoints();
  for (int i = 0; i < np; ++i) {
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i * np)], 1.0);  // P_0 = 1
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i * np + 1)],
                     rule.nodes[static_cast<std::size_t>(i)]);  // P_1 = x
  }
}

class FilterOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterOrderTest, PreservesLowModesExactly) {
  // The filter must leave polynomials below the attenuated band untouched.
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  ModalFilter filter(rule, 0.3, 2);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np) * np * np;
  std::vector<double> u(n);
  // Tri-linear (degree 1 in each direction) data: far below the top modes.
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        u[static_cast<std::size_t>(i + np * (j + np * k))] =
            1.0 + 2.0 * rule.nodes[static_cast<std::size_t>(i)] -
            rule.nodes[static_cast<std::size_t>(j)] +
            0.5 * rule.nodes[static_cast<std::size_t>(k)];
      }
    }
  }
  std::vector<double> original = u;
  filter.Apply(u);
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(u[q], original[q], 1e-11);
  }
}

TEST_P(FilterOrderTest, AttenuatesTopMode) {
  // Data equal to the highest 1-D Legendre mode must be scaled by
  // 1 - alpha.
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  const double alpha = 0.25;
  ModalFilter filter(rule, alpha, 1);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np) * np * np;
  std::vector<double> u(n);
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        u[static_cast<std::size_t>(i + np * (j + np * k))] =
            sem::EvalLegendre(order, rule.nodes[static_cast<std::size_t>(i)])
                .p;
      }
    }
  }
  std::vector<double> original = u;
  filter.Apply(u);
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(u[q], (1.0 - alpha) * original[q], 1e-10);
  }
}

TEST_P(FilterOrderTest, IsContractive) {
  // Discrete L2 norm must not grow (all sigma <= 1).
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  ModalFilter filter(rule, 0.5, 2);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np) * np * np;
  std::vector<double> u(n);
  for (std::size_t q = 0; q < n; ++q) {
    u[q] = std::sin(0.37 * static_cast<double>(q) + 0.1);
  }
  // Use the quadrature-weighted norm (the filter is an orthogonal-basis
  // attenuation under the Legendre inner product).
  auto weighted_norm = [&](const std::vector<double>& v) {
    double s = 0.0;
    for (int k = 0; k < np; ++k) {
      for (int j = 0; j < np; ++j) {
        for (int i = 0; i < np; ++i) {
          const double w = rule.weights[static_cast<std::size_t>(i)] *
                           rule.weights[static_cast<std::size_t>(j)] *
                           rule.weights[static_cast<std::size_t>(k)];
          const double x = v[static_cast<std::size_t>(i + np * (j + np * k))];
          s += w * x * x;
        }
      }
    }
    return s;
  };
  const double before = weighted_norm(u);
  filter.Apply(u);
  EXPECT_LE(weighted_norm(u), before * (1.0 + 1e-12));
}

TEST_P(FilterOrderTest, IdempotentOnFilteredData) {
  // sigma values < 1 shrink repeatedly, but modes with sigma == 1 must stay
  // fixed: applying twice equals applying the squared attenuation.
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  const double alpha = 0.4;
  ModalFilter filter(rule, alpha, 1);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np) * np * np;
  std::vector<double> u(n), twice(n);
  for (std::size_t q = 0; q < n; ++q) {
    u[q] = std::cos(0.21 * static_cast<double>(q));
  }
  twice = u;
  filter.Apply(twice);
  filter.Apply(twice);
  // Compare against a single application with (1 - (1-(1-a))^...) — easier:
  // verify via modal identity F(F(u)) = F2(u) where F2 uses sigma^2, i.e.
  // alpha2 = 1 - (1-alpha)^2.
  ModalFilter filter2(rule, 1.0 - (1.0 - alpha) * (1.0 - alpha), 1);
  std::vector<double> squared = u;
  filter2.Apply(squared);
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(twice[q], squared[q], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, FilterOrderTest, ::testing::Values(3, 4, 6));

TEST(FilterTest, MultiElementLayout) {
  // Apply over 3 elements at once; each element filtered independently.
  const GllRule rule = MakeGllRule(3);
  ModalFilter filter(rule, 0.2, 1);
  const int np = rule.NumPoints();
  const std::size_t per_el = static_cast<std::size_t>(np) * np * np;
  std::vector<double> u(3 * per_el, 1.0);  // constants pass through
  filter.Apply(u);
  for (double v : u) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(FilterTest, InvalidParametersThrow) {
  const GllRule rule = MakeGllRule(4);
  EXPECT_THROW(ModalFilter(rule, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(ModalFilter(rule, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(ModalFilter(rule, 0.1, 7), std::invalid_argument);
  ModalFilter ok(rule, 0.1, 1);
  std::vector<double> wrong(10);
  EXPECT_THROW(ok.Apply(wrong), std::invalid_argument);
}

}  // namespace
