// Buffer sentinel coverage: one death test per violation class when the
// sentinel is compiled in (-DNSM_BUFFER_SENTINEL=ON), and the
// zero-overhead-when-off guarantees for default builds.  The file compiles
// in both configurations; CI runs it in both.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/buffer.hpp"

namespace {

using core::Buffer;

#if defined(NSM_BUFFER_SENTINEL)

TEST(BufferSentinelTest, Enabled) { EXPECT_TRUE(core::BufferSentinelEnabled()); }

// Writing past the data window of an owned block stomps the back guard
// canary; the block's destructor detects it and aborts with a report.
TEST(BufferSentinelDeathTest, CanaryStompAborts) {
  EXPECT_DEATH(
      {
        Buffer b("", 64);
        *(b.data() + b.size()) = std::byte{0x5A};
      },
      "canary-stomp");
}

// Adopting storage that a live buffer already adopted means two keepalives
// both believe they guard the same bytes.
TEST(BufferSentinelDeathTest, DoubleAdoptAborts) {
  auto storage = std::make_shared<std::vector<std::byte>>(64);
  Buffer first = Buffer::Adopt(storage, storage->data(), storage->size());
  EXPECT_DEATH(Buffer::Adopt(storage, storage->data(), storage->size()),
               "double-adopt");
}

// Detaching tracking through a handle whose ownership already moved away:
// the caller thinks it still holds bytes it handed to another rank.
TEST(BufferSentinelDeathTest, ReleaseAfterMoveAborts) {
  Buffer b("", 64);
  Buffer taken = std::move(b);
  EXPECT_DEATH(b.DetachTracking(), "release-after-move");
}

// Destroying the same handle twice would underflow the block's refcount;
// the handle-state brand catches it before the shared_ptr is touched.
TEST(BufferSentinelDeathTest, RefcountUnderflowAborts) {
  alignas(Buffer) unsigned char raw[sizeof(Buffer)];
  auto* b = new (raw) Buffer("", 64);
  b->~Buffer();
  EXPECT_DEATH(b->~Buffer(), "refcount-underflow");
}

// The sentinel must audit, never distort: data-plane statistics count the
// same operations as a default build (bench invariants compare against
// non-sentinel baselines, so the *counting* must not drift either).
TEST(BufferSentinelTest, StatsCountingUnchanged) {
  core::ResetLocalBufferStats();
  std::vector<std::byte> src(8192, std::byte{0x11});
  Buffer copy = Buffer::CopyOf("", src);
  Buffer shared = copy;
  Buffer sliced = copy.Slice(16, 256);
  const core::BufferStats& stats = core::LocalBufferStats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.full_copies, 1u);
  EXPECT_EQ(stats.small_copies, 0u);
  EXPECT_EQ(stats.adoptions, 1u);  // the slice; plain copies never count
  core::ResetLocalBufferStats();
}

#else  // !NSM_BUFFER_SENTINEL

TEST(BufferSentinelTest, Disabled) {
  EXPECT_FALSE(core::BufferSentinelEnabled());
}

// Zero overhead when off: no extra state in the handle (the brand and audit
// helpers compile away entirely).
static_assert(sizeof(Buffer) ==
                  sizeof(std::shared_ptr<void>) + 2 * sizeof(std::size_t),
              "default-build Buffer must carry no sentinel state");

TEST(BufferSentinelTest, HandleHasNoSentinelState) {
  EXPECT_EQ(sizeof(Buffer),
            sizeof(std::shared_ptr<void>) + 2 * sizeof(std::size_t));
}

#endif  // NSM_BUFFER_SENTINEL

}  // namespace
