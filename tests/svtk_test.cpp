#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/buffer.hpp"
#include "instrument/memory_tracker.hpp"
#include "svtk/data_array.hpp"
#include "svtk/serialize.hpp"
#include "svtk/unstructured_grid.hpp"
#include "svtk/vtu_writer.hpp"

namespace {

using svtk::DataArray;
using svtk::MultiBlockDataSet;
using svtk::UnstructuredGrid;

UnstructuredGrid MakeUnitCubeGrid() {
  // One hexahedron spanning the unit cube, with a scalar and a vector array.
  UnstructuredGrid grid(8, 1);
  int p = 0;
  for (int k = 0; k < 2; ++k) {
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 2; ++i) {
        grid.SetPoint(static_cast<std::size_t>(p++), i, j, k);
      }
    }
  }
  grid.SetCell(0, {0, 1, 3, 2, 4, 5, 7, 6});
  DataArray& scalar = grid.AddPointArray("pressure", 1);
  for (std::size_t t = 0; t < 8; ++t) scalar.At(t) = static_cast<double>(t);
  DataArray& vec = grid.AddPointArray("velocity", 3);
  for (std::size_t t = 0; t < 8; ++t) {
    vec.At(t, 0) = 1.0;
    vec.At(t, 1) = 2.0;
    vec.At(t, 2) = 2.0;
  }
  DataArray& cell = grid.AddCellArray("rank", 1);
  cell.At(0) = 42.0;
  return grid;
}

TEST(DataArrayTest, StoresTuplesAndComponents) {
  DataArray array("velocity", 10, 3);
  EXPECT_EQ(array.Name(), "velocity");
  EXPECT_EQ(array.Tuples(), 10u);
  EXPECT_EQ(array.Components(), 3);
  EXPECT_EQ(array.Values(), 30u);
  array.At(4, 2) = 7.5;
  EXPECT_DOUBLE_EQ(array.Data()[4 * 3 + 2], 7.5);
}

TEST(DataArrayTest, MagnitudeAndRange) {
  DataArray array("v", 2, 3);
  array.At(0, 0) = 3.0;
  array.At(0, 1) = 4.0;
  array.At(1, 2) = 1.0;
  EXPECT_DOUBLE_EQ(array.Magnitude(0), 5.0);
  EXPECT_DOUBLE_EQ(array.Magnitude(1), 1.0);
  auto range = array.ValueRange(true);
  EXPECT_DOUBLE_EQ(range.min, 1.0);
  EXPECT_DOUBLE_EQ(range.max, 5.0);
  auto flat = array.ValueRange(false);
  EXPECT_DOUBLE_EQ(flat.min, 0.0);
  EXPECT_DOUBLE_EQ(flat.max, 4.0);
}

TEST(DataArrayTest, ValueRangeOfEmptyArrayIsEmptyInterval) {
  DataArray scalar("s", 0, 1);
  auto r = scalar.ValueRange(false);
  // No values: the range must come back inverted/empty, not garbage, and
  // must not read out of bounds.
  EXPECT_GT(r.min, r.max);
  DataArray vec("v", 0, 3);
  auto m = vec.ValueRange(true);
  EXPECT_GT(m.min, m.max);
}

TEST(DataArrayTest, MagnitudeAndRangeOfSingleTupleVector) {
  DataArray vec("v", 1, 3);
  vec.At(0, 0) = 2.0;
  vec.At(0, 1) = 3.0;
  vec.At(0, 2) = 6.0;
  EXPECT_DOUBLE_EQ(vec.Magnitude(0), 7.0);
  auto mag = vec.ValueRange(true);
  EXPECT_DOUBLE_EQ(mag.min, 7.0);
  EXPECT_DOUBLE_EQ(mag.max, 7.0);
  auto flat = vec.ValueRange(false);
  EXPECT_DOUBLE_EQ(flat.min, 2.0);
  EXPECT_DOUBLE_EQ(flat.max, 6.0);
}

TEST(DataArrayTest, AdoptsExternalStorageWithoutCopy) {
  core::Buffer storage("", 6 * sizeof(double));
  {
    auto values = storage.As<double>();
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>(i);
    }
  }
  const std::byte* raw = storage.data();
  DataArray array("adopted", 2, 3, std::move(storage));
  EXPECT_EQ(array.Tuples(), 2u);
  EXPECT_EQ(array.Components(), 3);
  // Same bytes, same address: adopted, not copied.
  EXPECT_EQ(reinterpret_cast<const std::byte*>(array.Data().data()), raw);
  EXPECT_DOUBLE_EQ(array.At(1, 2), 5.0);
}

TEST(DataArrayTest, AdoptRejectsSizeMismatch) {
  core::Buffer storage("", 5 * sizeof(double));
  EXPECT_THROW(DataArray("bad", 2, 3, std::move(storage)),
               std::invalid_argument);
}

TEST(UnstructuredGridTest, AdoptPointArrayCountsAdoption) {
  UnstructuredGrid grid(8, 1);
  core::ResetLocalBufferStats();
  core::Buffer storage("", 8 * sizeof(double));
  grid.AdoptPointArray("p", 1, std::move(storage));
  EXPECT_GE(core::LocalBufferStats().adoptions, 1u);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
  EXPECT_NE(grid.PointArray("p"), nullptr);
}

TEST(DataArrayTest, TracksMemory) {
  instrument::MemoryTracker tracker;
  instrument::TrackerScope scope(&tracker);
  {
    DataArray array("t", 100, 1);
    EXPECT_EQ(tracker.CurrentBytes("vtk"), 100 * sizeof(double));
  }
  EXPECT_EQ(tracker.CurrentBytes("vtk"), 0u);
}

TEST(UnstructuredGridTest, GeometryAndConnectivity) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  EXPECT_EQ(grid.NumPoints(), 8u);
  EXPECT_EQ(grid.NumCells(), 1u);
  auto cell = grid.GetCell(0);
  EXPECT_EQ(cell[0], 0);
  EXPECT_EQ(cell[7], 6);
  auto p = grid.GetPoint(7);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(UnstructuredGridTest, BoundsComputed) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  auto b = grid.Bounds();
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 1.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
  EXPECT_DOUBLE_EQ(b[5], 1.0);
}

TEST(UnstructuredGridTest, ArrayLookupAndNames) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  EXPECT_NE(grid.PointArray("pressure"), nullptr);
  EXPECT_NE(grid.PointArray("velocity"), nullptr);
  EXPECT_EQ(grid.PointArray("nope"), nullptr);
  EXPECT_NE(grid.CellArray("rank"), nullptr);
  EXPECT_EQ(grid.PointArrayNames().size(), 2u);
  EXPECT_EQ(grid.CellArrayNames().size(), 1u);
}

TEST(UnstructuredGridTest, MemoryBytesCountsEverything) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  const std::size_t expected = 8 * 3 * sizeof(double)      // points
                               + 8 * sizeof(std::int64_t)  // connectivity
                               + 8 * sizeof(double)        // pressure
                               + 24 * sizeof(double)       // velocity
                               + 1 * sizeof(double);       // rank
  EXPECT_EQ(grid.MemoryBytes(), expected);
}

TEST(MultiBlockTest, AggregatesBlocks) {
  MultiBlockDataSet mb;
  mb.blocks.push_back(std::make_shared<UnstructuredGrid>(MakeUnitCubeGrid()));
  mb.blocks.push_back(nullptr);
  mb.global_block_count = 4;
  EXPECT_GT(mb.MemoryBytes(), 0u);
}

TEST(Base64Test, EncodesKnownVector) {
  EXPECT_EQ(svtk::Base64Encode("Man", 3), "TWFu");
  EXPECT_EQ(svtk::Base64Encode("Ma", 2), "TWE=");
  EXPECT_EQ(svtk::Base64Encode("M", 1), "TQ==");
}

TEST(Base64Test, RoundTripsBinary) {
  std::vector<std::byte> data(255);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  const std::string text = svtk::Base64Encode(data.data(), data.size());
  EXPECT_EQ(svtk::Base64Decode(text), data);
}

class VtuRoundTripTest : public ::testing::TestWithParam<svtk::VtuEncoding> {};

TEST_P(VtuRoundTripTest, WriteThenReadPreservesEverything) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  const std::string path = ::testing::TempDir() + "/roundtrip.vtu";
  const std::size_t bytes = svtk::WriteVtu(grid, path, GetParam());
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(path), bytes);

  UnstructuredGrid back = svtk::ReadVtu(path);
  ASSERT_EQ(back.NumPoints(), grid.NumPoints());
  ASSERT_EQ(back.NumCells(), grid.NumCells());
  for (std::size_t i = 0; i < grid.Points().size(); ++i) {
    EXPECT_DOUBLE_EQ(back.Points()[i], grid.Points()[i]);
  }
  EXPECT_EQ(back.GetCell(0), grid.GetCell(0));
  const DataArray* pressure = back.PointArray("pressure");
  ASSERT_NE(pressure, nullptr);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_DOUBLE_EQ(pressure->At(t), static_cast<double>(t));
  }
  const DataArray* velocity = back.PointArray("velocity");
  ASSERT_NE(velocity, nullptr);
  EXPECT_EQ(velocity->Components(), 3);
  const DataArray* rank = back.CellArray("rank");
  ASSERT_NE(rank, nullptr);
  EXPECT_DOUBLE_EQ(rank->At(0), 42.0);
}

INSTANTIATE_TEST_SUITE_P(Encodings, VtuRoundTripTest,
                         ::testing::Values(svtk::VtuEncoding::kAscii,
                                           svtk::VtuEncoding::kBinary));

TEST(VtuFormatTest, BinarySmallerThanAsciiForLargeGrids) {
  // Binary (base64) encoding should beat ASCII once arrays get long.
  const std::size_t n = 1000;
  UnstructuredGrid grid(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    grid.SetPoint(i, 0.123456789 * static_cast<double>(i), 0.5, 0.75);
  }
  grid.SetCell(0, {0, 1, 2, 3, 4, 5, 6, 7});
  DataArray& a = grid.AddPointArray("f", 1);
  for (std::size_t i = 0; i < n; ++i) {
    a.At(i) = std::sqrt(static_cast<double>(i) + 0.1);
  }
  const std::string ascii_path = ::testing::TempDir() + "/size_a.vtu";
  const std::string binary_path = ::testing::TempDir() + "/size_b.vtu";
  const std::size_t ascii =
      svtk::WriteVtu(grid, ascii_path, svtk::VtuEncoding::kAscii);
  const std::size_t binary =
      svtk::WriteVtu(grid, binary_path, svtk::VtuEncoding::kBinary);
  EXPECT_LT(binary, ascii);
}

TEST(VtuFormatTest, FileIsWellFormedXml) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  const std::string path = ::testing::TempDir() + "/wellformed.vtu";
  svtk::WriteVtu(grid, path, svtk::VtuEncoding::kBinary);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "<?xml version=\"1.0\"?>");
}

TEST(VtuFormatTest, ReadRejectsNonVtu) {
  const std::string path = ::testing::TempDir() + "/not_a.vtu";
  {
    std::ofstream out(path);
    out << "<other/>";
  }
  EXPECT_THROW(svtk::ReadVtu(path), std::runtime_error);
}

TEST(SerializeTest, RoundTripsGrid) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  std::vector<std::byte> bytes = svtk::Serialize(grid);
  UnstructuredGrid back = svtk::Deserialize(bytes);
  EXPECT_EQ(back.NumPoints(), grid.NumPoints());
  EXPECT_EQ(back.NumCells(), grid.NumCells());
  EXPECT_EQ(back.GetCell(0), grid.GetCell(0));
  ASSERT_NE(back.PointArray("velocity"), nullptr);
  EXPECT_DOUBLE_EQ(back.PointArray("velocity")->At(3, 1), 2.0);
  ASSERT_NE(back.CellArray("rank"), nullptr);
}

TEST(SerializeTest, DetectsCorruptMagic) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  std::vector<std::byte> bytes = svtk::Serialize(grid);
  bytes[0] = std::byte{0xFF};
  EXPECT_THROW(svtk::Deserialize(bytes), std::runtime_error);
}

TEST(SerializeTest, DetectsTruncation) {
  UnstructuredGrid grid = MakeUnitCubeGrid();
  std::vector<std::byte> bytes = svtk::Serialize(grid);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(svtk::Deserialize(bytes), std::runtime_error);
}

TEST(SerializeTest, ByteWriterReaderPrimitives) {
  svtk::ByteWriter w;
  w.U64(77);
  w.I32(-5);
  w.F64(2.5);
  w.Str("hello");
  std::vector<double> values{1.0, 2.0, 3.0};
  w.Span<double>(values);
  std::vector<std::byte> buf = w.Take();

  svtk::ByteReader r(buf);
  EXPECT_EQ(r.U64(), 77u);
  EXPECT_EQ(r.I32(), -5);
  EXPECT_DOUBLE_EQ(r.F64(), 2.5);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Vec<double>(), values);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
