// Tests for the cross-rank straggler detector (DESIGN.md §5c): MAD-based
// thresholding on synthetic series, span attribution of the excess, the
// small-rank-count and balanced-run guards, determinism across rank
// partitionings, and the rolling-window monitor's smoothing + dedup.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "instrument/straggler.hpp"

namespace {

using instrument::AnomalyRecord;
using instrument::DetectStragglers;
using instrument::RankHealthSample;
using instrument::StragglerConfig;
using instrument::StragglerMonitor;

// `ranks` balanced samples of `base` seconds each, mostly solver time.
std::vector<RankHealthSample> BalancedSamples(int ranks, double base) {
  std::vector<RankHealthSample> samples;
  for (int r = 0; r < ranks; ++r) {
    RankHealthSample s;
    s.rank = r;
    s.step_seconds = base;
    s.solver_seconds = 0.8 * base;
    s.insitu_seconds = 0.15 * base;
    s.transport_seconds = 0.05 * base;
    samples.push_back(s);
  }
  return samples;
}

// ------------------------------------------------------ pure detector

TEST(DetectStragglersTest, FlagsInjected3xStragglerWithSolverAttribution) {
  auto samples = BalancedSamples(8, 0.010);
  // Rank 5 runs 3x the median, and the whole excess is solver time.
  samples[5].step_seconds = 0.030;
  samples[5].solver_seconds += 0.020;

  const auto anomalies = DetectStragglers(samples, /*step=*/7);
  ASSERT_EQ(anomalies.size(), 1u);
  const AnomalyRecord& a = anomalies[0];
  EXPECT_EQ(a.rank, 5);
  EXPECT_EQ(a.step, 7);
  EXPECT_EQ(a.dominant_span, "solver");
  EXPECT_GE(a.z, StragglerConfig{}.z_threshold);
  EXPECT_DOUBLE_EQ(a.step_seconds, 0.030);
  EXPECT_DOUBLE_EQ(a.median_seconds, 0.010);
  // The solver delta explains the full excess.
  EXPECT_NEAR(a.span_share, 1.0, 1e-9);
}

TEST(DetectStragglersTest, AttributesInsituAndTransportExcess) {
  auto insitu = BalancedSamples(8, 0.010);
  insitu[2].step_seconds = 0.030;
  insitu[2].insitu_seconds += 0.020;
  auto verdicts = DetectStragglers(insitu, 3);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].rank, 2);
  EXPECT_EQ(verdicts[0].dominant_span, "insitu");

  auto transport = BalancedSamples(8, 0.010);
  transport[6].step_seconds = 0.030;
  transport[6].transport_seconds += 0.020;
  verdicts = DetectStragglers(transport, 3);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].rank, 6);
  EXPECT_EQ(verdicts[0].dominant_span, "transport");
}

TEST(DetectStragglersTest, BalancedRunYieldsNoAnomalies) {
  auto samples = BalancedSamples(8, 0.010);
  // Realistic jitter well inside the MAD floor.
  for (std::size_t r = 0; r < samples.size(); ++r) {
    samples[r].step_seconds += 1e-4 * static_cast<double>(r % 3);
  }
  EXPECT_TRUE(DetectStragglers(samples, 1).empty());
}

TEST(DetectStragglersTest, DeterministicAcrossRankPartitionings) {
  // The same per-rank work split over 4 vs 8 ranks: the median and the
  // MAD floor are identical, so the straggler's z, span, and share must
  // come out identical regardless of the partitioning.
  auto four = BalancedSamples(4, 0.010);
  four[3].step_seconds = 0.030;
  four[3].solver_seconds += 0.020;
  auto eight = BalancedSamples(8, 0.010);
  eight[7].step_seconds = 0.030;
  eight[7].solver_seconds += 0.020;

  const auto a4 = DetectStragglers(four, 5);
  const auto a8 = DetectStragglers(eight, 5);
  ASSERT_EQ(a4.size(), 1u);
  ASSERT_EQ(a8.size(), 1u);
  EXPECT_DOUBLE_EQ(a4[0].z, a8[0].z);
  EXPECT_EQ(a4[0].dominant_span, a8[0].dominant_span);
  EXPECT_DOUBLE_EQ(a4[0].span_share, a8[0].span_share);
  EXPECT_DOUBLE_EQ(a4[0].median_seconds, a8[0].median_seconds);

  // Sample order must not matter either (Gather delivers rank order, but
  // the detector should not depend on it).
  auto shuffled = eight;
  std::rotate(shuffled.begin(), shuffled.begin() + 3, shuffled.end());
  const auto rotated = DetectStragglers(shuffled, 5);
  ASSERT_EQ(rotated.size(), 1u);
  EXPECT_EQ(rotated[0].rank, 7);
  EXPECT_DOUBLE_EQ(rotated[0].z, a8[0].z);
}

TEST(DetectStragglersTest, MinRanksGuardSuppressesTinyComms) {
  auto samples = BalancedSamples(2, 0.010);
  samples[1].step_seconds = 0.050;  // wildly slow, but 2 ranks < min_ranks
  EXPECT_TRUE(DetectStragglers(samples, 0).empty());
}

TEST(DetectStragglersTest, MinRatioGuardSuppressesSmallAbsoluteExcess) {
  auto samples = BalancedSamples(8, 0.010);
  // 1.2x the median: with the 5% MAD floor the z-score is 4 (over the 3.5
  // threshold) but the ratio stays below min_ratio 1.3 — not a straggler.
  samples[4].step_seconds = 0.012;
  EXPECT_TRUE(DetectStragglers(samples, 0).empty());
}

TEST(DetectStragglersTest, ZeroMedianYieldsNoAnomalies) {
  std::vector<RankHealthSample> samples(4);
  for (int r = 0; r < 4; ++r) samples[static_cast<std::size_t>(r)].rank = r;
  EXPECT_TRUE(DetectStragglers(samples, 0).empty());
}

TEST(DetectStragglersTest, UnattributableExcessFallsBackToLargestSpan) {
  // Every rank reports identical span deltas, so no span explains the
  // excess: the verdict falls back to the rank's largest absolute span.
  auto samples = BalancedSamples(8, 0.010);
  samples[1].step_seconds = 0.030;  // excess, but span deltas unchanged
  const auto anomalies = DetectStragglers(samples, 0);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].dominant_span, "solver");  // largest absolute span

  // With no span feeds at all (metrics plane off), the verdict is
  // "unknown" rather than a fabricated attribution.
  std::vector<RankHealthSample> bare(8);
  for (int r = 0; r < 8; ++r) {
    bare[static_cast<std::size_t>(r)].rank = r;
    bare[static_cast<std::size_t>(r)].step_seconds = 0.010;
  }
  bare[3].step_seconds = 0.030;
  const auto unknown = DetectStragglers(bare, 0);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].dominant_span, "unknown");
  EXPECT_DOUBLE_EQ(unknown[0].span_share, 0.0);
}

TEST(AnomalyJsonTest, RendersEveryField) {
  AnomalyRecord record;
  record.rank = 3;
  record.step = 12;
  record.z = 7.5;
  record.step_seconds = 0.03;
  record.median_seconds = 0.01;
  record.dominant_span = "insitu";
  record.span_share = 0.9;
  const std::string json = instrument::AnomalyJson(record);
  EXPECT_NE(json.find("\"rank\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"step\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"z\": 7.5"), std::string::npos);
  EXPECT_NE(json.find("\"dominant_span\": \"insitu\""), std::string::npos);
  EXPECT_NE(json.find("\"span_share\": 0.9"), std::string::npos);
}

// --------------------------------------------------- rolling-window monitor

TEST(StragglerMonitorTest, WindowSmoothsTransientSpikeButFlagsSustained) {
  StragglerConfig config;
  config.window = 4;
  StragglerMonitor monitor(config);

  // Fill every window with balanced intervals.
  for (int step = 0; step < 4; ++step) {
    EXPECT_TRUE(monitor.Update(BalancedSamples(8, 0.010), step).empty());
  }
  // One transient 2.1x interval: the window mean stays under min_ratio,
  // so a page-fault-sized blip does not convict.
  auto spike = BalancedSamples(8, 0.010);
  spike[2].step_seconds = 0.021;
  spike[2].solver_seconds += 0.011;
  EXPECT_TRUE(monitor.Update(spike, 4).empty());
  EXPECT_TRUE(monitor.Anomalies().empty());

  // The same rank staying slow fills its window: now it is a straggler.
  std::vector<AnomalyRecord> fresh;
  for (int step = 5; step < 9 && fresh.empty(); ++step) {
    fresh = monitor.Update(spike, step);
  }
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rank, 2);
  EXPECT_EQ(fresh[0].dominant_span, "solver");
  EXPECT_EQ(monitor.Anomalies().size(), 1u);
}

TEST(StragglerMonitorTest, DedupsKeepingFirstStepAndWorstZ) {
  StragglerConfig config;
  config.window = 1;  // no smoothing: direct interval verdicts
  StragglerMonitor monitor(config);

  auto mild = BalancedSamples(8, 0.010);
  mild[5].step_seconds = 0.030;
  mild[5].solver_seconds += 0.020;
  auto fresh = monitor.Update(mild, 3);
  ASSERT_EQ(fresh.size(), 1u);
  const double first_z = fresh[0].z;

  auto worse = BalancedSamples(8, 0.010);
  worse[5].step_seconds = 0.050;
  worse[5].solver_seconds += 0.040;
  // Already-flagged rank: not returned as fresh again...
  EXPECT_TRUE(monitor.Update(worse, 9).empty());
  // ...but the stored record keeps the first-flagged step with the worst z.
  ASSERT_EQ(monitor.Anomalies().size(), 1u);
  EXPECT_EQ(monitor.Anomalies()[0].step, 3);
  EXPECT_GT(monitor.Anomalies()[0].z, first_z);
}

}  // namespace
