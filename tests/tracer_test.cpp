#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "instrument/telemetry.hpp"
#include "instrument/tracer.hpp"

namespace {

using instrument::CurrentTracer;
using instrument::Span;
using instrument::Summarize;
using instrument::TelemetryConfig;
using instrument::TelemetrySummary;
using instrument::Tracer;
using instrument::TracerScope;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TracerTest, RecordsSpanNameStartAndDuration) {
  Tracer tracer(0);
  {
    Span span(&tracer, "solver.step");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Name(), "solver.step");
  EXPECT_GT(spans[0].start_ns, 0);
  EXPECT_GE(spans[0].duration_ns, 1'000'000);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(tracer.TotalSpans(), 1u);
  EXPECT_EQ(tracer.DroppedSpans(), 0u);
}

TEST(TracerTest, NestedSpansTrackDepth) {
  Tracer tracer(0);
  {
    Span outer(&tracer, "solver.step");
    {
      Span inner(&tracer, "solver.helmholtz");
      Span innermost(&tracer, "comm.recv.wait");
    }
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans close innermost-first.
  EXPECT_EQ(spans[0].Name(), "comm.recv.wait");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].Name(), "solver.helmholtz");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].Name(), "solver.step");
  EXPECT_EQ(spans[2].depth, 0);
  // The parent encloses the child on the timeline.
  EXPECT_LE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
}

TEST(TracerTest, ExplicitEndIsIdempotent) {
  Tracer tracer(0);
  Span span(&tracer, "bridge.update");
  span.End();
  span.End();  // second End (and the destructor later) must not re-record
  EXPECT_EQ(tracer.TotalSpans(), 1u);
}

TEST(TracerTest, LongNamesAreTruncatedNotDangling) {
  Tracer tracer(0);
  const std::string long_name(200, 'x');
  { Span span(&tracer, long_name); }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Name().size(), Tracer::SpanRecord::kNameCapacity);
  EXPECT_EQ(spans[0].Name(),
            std::string(Tracer::SpanRecord::kNameCapacity, 'x'));
}

TEST(TracerTest, RingWrapsOldestFirstAndCountsDrops) {
  Tracer::Options options;
  options.span_capacity = 4;
  Tracer tracer(0, options);
  for (int i = 0; i < 10; ++i) {
    const std::string name = "s" + std::to_string(i);  // outlives the span
    Span span(&tracer, name);
  }
  EXPECT_EQ(tracer.TotalSpans(), 10u);
  EXPECT_EQ(tracer.DroppedSpans(), 6u);
  EXPECT_EQ(tracer.RetainedSpans(), 4u);
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // The survivors are the newest four, oldest-first.
  EXPECT_EQ(spans[0].Name(), "s6");
  EXPECT_EQ(spans[3].Name(), "s9");
}

TEST(TracerTest, NoTracerInstalledMeansNothingRecorded) {
  // The disabled path: Span against a null tracer must be a no-op, so runs
  // without telemetry carry no recording overhead or storage.
  ASSERT_EQ(CurrentTracer(), nullptr);
  { Span span("solver.step"); }
  Tracer probe(0);
  {
    TracerScope scope(&probe);
    { Span span("solver.step"); }
  }
  // Only the span opened while the scope was installed was seen.
  EXPECT_EQ(probe.TotalSpans(), 1u);
  { Span span("solver.step"); }  // scope gone again
  EXPECT_EQ(probe.TotalSpans(), 1u);
}

TEST(TracerTest, TracerScopeRestoresPrevious) {
  Tracer outer(0), inner(1);
  TracerScope outer_scope(&outer);
  EXPECT_EQ(CurrentTracer(), &outer);
  {
    TracerScope inner_scope(&inner);
    EXPECT_EQ(CurrentTracer(), &inner);
  }
  EXPECT_EQ(CurrentTracer(), &outer);
}

TEST(TracerTest, ThresholdModeTalliesShortWaits) {
  Tracer::Options options;
  options.wait_min_ns = 50'000'000;  // 50 ms: everything below is tallied
  Tracer tracer(0, options);
  for (int i = 0; i < 3; ++i) {
    Span span(&tracer, "comm.recv.wait", Span::Mode::kThreshold);
  }
  EXPECT_EQ(tracer.TotalSpans(), 0u);  // nothing hit the ring
  EXPECT_EQ(tracer.SkippedWaits(), 3u);
  EXPECT_GE(tracer.SkippedWaitSeconds(), 0.0);
  // A wait above the threshold is recorded normally.
  {
    Tracer::Options fine;
    fine.wait_min_ns = 100;  // 100 ns
    Tracer t2(0, fine);
    Span span(&t2, "comm.barrier.wait", Span::Mode::kThreshold);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    span.End();
    EXPECT_EQ(t2.TotalSpans(), 1u);
    EXPECT_EQ(t2.SkippedWaits(), 0u);
  }
}

TEST(TracerTest, CountersAccumulateAndSample) {
  Tracer tracer(0);
  tracer.AddCounter("sst.bytes", 100.0);
  tracer.AddCounter("sst.bytes", 50.0);
  tracer.SampleCounter("d2h.bytes", 4096.0);
  EXPECT_DOUBLE_EQ(tracer.CounterTotals().at("sst.bytes"), 150.0);
  EXPECT_DOUBLE_EQ(tracer.CounterTotals().at("d2h.bytes"), 4096.0);
  ASSERT_EQ(tracer.CounterSamples().size(), 1u);
  EXPECT_EQ(tracer.CounterSamples()[0].Name(), "d2h.bytes");
  EXPECT_DOUBLE_EQ(tracer.CounterSamples()[0].value, 4096.0);
}

TEST(TracerTest, InstantEventsAreTimestamped) {
  Tracer tracer(0);
  const std::int64_t before = Tracer::NowNs();
  tracer.Instant("step.begin");
  const std::int64_t after = Tracer::NowNs();
  ASSERT_EQ(tracer.Events().size(), 1u);
  EXPECT_EQ(tracer.Events()[0].Name(), "step.begin");
  EXPECT_GE(tracer.Events()[0].ts_ns, before);
  EXPECT_LE(tracer.Events()[0].ts_ns, after);
}

TEST(TracerTest, ClearKeepsCapacityDropsData) {
  Tracer tracer(0);
  { Span span(&tracer, "a"); }
  tracer.Instant("e");
  tracer.AddCounter("c", 1.0);
  tracer.Clear();
  EXPECT_EQ(tracer.TotalSpans(), 0u);
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_TRUE(tracer.CounterTotals().empty());
}

TEST(TracerTest, SummaryLineMentionsDropsAndCounters) {
  Tracer::Options options;
  options.span_capacity = 2;
  Tracer tracer(3, options);
  for (int i = 0; i < 5; ++i) {
    Span span(&tracer, "s");
  }
  tracer.AddCounter("sst.bytes", 2048.0);
  tracer.AddCounter("images", 4.0);
  const std::string line = tracer.SummaryLine();
  EXPECT_NE(line.find("rank 3"), std::string::npos);
  EXPECT_NE(line.find("5 spans"), std::string::npos);
  EXPECT_NE(line.find("3 dropped"), std::string::npos);
  EXPECT_NE(line.find("2.0 KB"), std::string::npos);  // bytes humanized
  EXPECT_NE(line.find("images=4"), std::string::npos);
}

// --- aggregation ------------------------------------------------------------

TEST(SummarizeTest, MergesSpansAndCountersAcrossRanks) {
  Tracer r0(0), r1(1);
  // Deterministic durations via direct CloseSpan through the Span API are
  // timing-dependent; instead exercise the statistics through counters and
  // span counts, and the duration math through ranges.
  for (int i = 0; i < 3; ++i) {
    Span span(&r0, "solver.step");
  }
  for (int i = 0; i < 2; ++i) {
    Span span(&r1, "solver.step");
  }
  { Span span(&r1, "bridge.update"); }
  r0.AddCounter("sst.bytes", 100.0);
  r1.AddCounter("sst.bytes", 200.0);
  const TelemetrySummary summary = Summarize({&r0, &r1});
  EXPECT_EQ(summary.ranks, 2);
  EXPECT_EQ(summary.total_spans, 6u);
  EXPECT_EQ(summary.dropped_spans, 0u);
  EXPECT_EQ(summary.SpanCount("solver.step"), 5u);
  EXPECT_EQ(summary.SpanCount("bridge.update"), 1u);
  EXPECT_DOUBLE_EQ(summary.Counter("sst.bytes"), 300.0);
  const auto& agg = summary.spans.at("solver.step");
  EXPECT_GE(agg.max_seconds, agg.p95_seconds);
  EXPECT_GE(agg.p95_seconds, agg.p50_seconds);
  EXPECT_GE(agg.total_seconds, 0.0);
  EXPECT_NEAR(agg.total_seconds, agg.mean_seconds * 5.0, 1e-12);
  // Null entries are tolerated (a rank that never started).
  const TelemetrySummary with_null = Summarize({&r0, nullptr, &r1});
  EXPECT_EQ(with_null.ranks, 2);
  EXPECT_EQ(with_null.total_spans, 6u);
}

TEST(SummarizeTest, EmptyInputIsEmptySummary) {
  const TelemetrySummary summary = Summarize({});
  EXPECT_TRUE(summary.Empty());
  EXPECT_EQ(summary.ranks, 0);
  EXPECT_DOUBLE_EQ(summary.SpanTotalSeconds("anything"), 0.0);
  EXPECT_DOUBLE_EQ(summary.Counter("anything"), 0.0);
}

// --- exporters --------------------------------------------------------------

TEST(ChromeTraceTest, EmitsOneTrackPerRankWithNestedSpans) {
  Tracer r0(0), r1(1);
  {
    Span outer(&r0, "solver.step");
    Span inner(&r0, "solver.helmholtz");
  }
  { Span span(&r1, "bridge.update"); }
  r0.Instant("step.begin");
  r0.SampleCounter("d2h.bytes", 512.0);
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(instrument::WriteChromeTrace(path, {&r0, &r1}));
  const std::string json = ReadFile(path);
  // Structural checks: the trace-event envelope, one thread_name metadata
  // record per rank, complete events for the spans, and matching braces
  // (Perfetto rejects unterminated JSON).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"solver.helmholtz\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
  std::ptrdiff_t depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTraceTest, FailsOnUnwritablePath) {
  Tracer tracer(0);
  EXPECT_FALSE(
      instrument::WriteChromeTrace("/nonexistent-nsm-dir/trace.json", {&tracer}));
}

TEST(TelemetryJsonTest, WritesAggregateWithSpansAndCounters) {
  Tracer tracer(0);
  { Span span(&tracer, "solver.step"); }
  tracer.AddCounter("images", 2.0);
  const TelemetrySummary summary = Summarize({&tracer});
  const std::string path = ::testing::TempDir() + "/telemetry_test.json";
  ASSERT_TRUE(instrument::WriteTelemetryJson(path, summary));
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"ranks\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"solver.step\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"images\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
}

TEST(TelemetryTableTest, SortsByTotalTimeDescending) {
  TelemetrySummary summary;
  summary.ranks = 1;
  summary.total_spans = 3;
  summary.spans["small"] = {1, 0.1, 0.1, 0.1, 0.1, 0.1};
  summary.spans["large"] = {2, 5.0, 2.5, 2.5, 2.5, 2.5};
  const instrument::Table table = instrument::TelemetryTable(summary, "t");
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  const auto large_at = text.find("large");
  const auto small_at = text.find("small");
  ASSERT_NE(large_at, std::string::npos);
  ASSERT_NE(small_at, std::string::npos);
  EXPECT_LT(large_at, small_at);
}

TEST(TelemetryConfigTest, TranslatesToTracerOptions) {
  TelemetryConfig config;
  config.span_capacity = 128;
  config.wait_min_seconds = 0.001;
  const Tracer::Options options = config.TracerOptions();
  EXPECT_EQ(options.span_capacity, 128u);
  EXPECT_EQ(options.wait_min_ns, 1'000'000);
}

#if defined(NSM_THREAD_CHECKS)

// The tracer is single-owner by contract; under NSM_THREAD_CHECKS a mutation
// from a second thread must abort with a report instead of racing the ring.
TEST(TracerDeathTest, CrossThreadMutationAborts) {
  instrument::Tracer tracer(0);
  tracer.Instant("bind.owner");  // binds the owning thread
  EXPECT_DEATH(
      {
        std::thread intruder([&] { tracer.Instant("foreign.write"); });
        intruder.join();
      },
      "single-owner violation");
}

// Clear() is the documented handoff point: after it, a new thread may own.
TEST(TracerThreadChecksTest, ClearHandsOffOwnership) {
  instrument::Tracer tracer(0);
  tracer.Instant("first.owner");
  tracer.Clear();
  std::thread successor([&] { tracer.Instant("second.owner"); });
  successor.join();
  EXPECT_EQ(tracer.Events().size(), 1u);
}

#endif  // NSM_THREAD_CHECKS

}  // namespace
