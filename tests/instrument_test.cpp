#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "instrument/memory_tracker.hpp"
#include "instrument/report.hpp"
#include "instrument/timer.hpp"

namespace {

using instrument::BusyClock;
using instrument::MemoryTracker;
using instrument::RunningStats;
using instrument::Table;
using instrument::TimingRegistry;
using instrument::TrackedBuffer;
using instrument::TrackerScope;
using instrument::WallTimer;

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.Elapsed(), 0.009);
}

TEST(WallTimerTest, RestartResetsOrigin) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Restart();
  EXPECT_LT(timer.Elapsed(), 0.009);
}

// Burn CPU so the thread CPU-time clock advances (sleeping would not).
void SpinFor(double seconds) {
  const double start = BusyClock::ThreadCpuSeconds();
  volatile double sink = 0.0;
  while (BusyClock::ThreadCpuSeconds() - start < seconds) {
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  (void)sink;
}

TEST(BusyClockTest, AccumulatesOnlyWhileRunning) {
  BusyClock clock;
  clock.Resume();
  SpinFor(0.01);
  clock.Pause();
  const double busy = clock.Seconds();
  SpinFor(0.01);  // CPU burned while paused must not count
  EXPECT_DOUBLE_EQ(clock.Seconds(), busy);
  EXPECT_GE(busy, 0.009);
}

TEST(BusyClockTest, SleepConsumesNoBusyTime) {
  // The clock measures CPU time: a blocked (sleeping) rank accumulates
  // nothing even while "running" — the property the scaling figures rely
  // on when rank threads share one core.
  BusyClock clock;
  clock.Resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  clock.Pause();
  EXPECT_LT(clock.Seconds(), 0.010);
}

TEST(BusyClockTest, DoubleResumeIsIdempotent) {
  BusyClock clock;
  clock.Resume();
  clock.Resume();
  clock.Pause();
  clock.Pause();
  EXPECT_GE(clock.Seconds(), 0.0);
}

TEST(BusyClockTest, ResetClearsAccumulation) {
  BusyClock clock;
  clock.Resume();
  SpinFor(0.005);
  clock.Pause();
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Seconds(), 0.0);
}

TEST(TimingRegistryTest, AccumulatesNamedBuckets) {
  TimingRegistry registry;
  registry.Accumulate("solve", 1.0);
  registry.Accumulate("solve", 2.0);
  registry.Accumulate("io", 0.5);
  EXPECT_DOUBLE_EQ(registry.Total("solve"), 3.0);
  EXPECT_DOUBLE_EQ(registry.Total("io"), 0.5);
  EXPECT_DOUBLE_EQ(registry.Total("missing"), 0.0);
  EXPECT_EQ(registry.Entries().at("solve").count, 2u);
}

TEST(RunningStatsTest, ComputesMomentsAndExtremes) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.Count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_NEAR(stats.StdDev(), 2.13809, 1e-4);
}

TEST(RunningStatsTest, MergeMatchesSingleAccumulator) {
  // Merging per-rank accumulators must give the same moments as feeding
  // every sample into one accumulator (the property Summarize relies on).
  const std::vector<double> a = {2.0, 4.0, 4.0, 4.0};
  const std::vector<double> b = {5.0, 5.0, 7.0, 9.0, 11.0};
  RunningStats left, right, all;
  for (double x : a) {
    left.Add(x);
    all.Add(x);
  }
  for (double x : b) {
    right.Add(x);
    all.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_DOUBLE_EQ(left.Mean(), all.Mean());
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats filled;
  for (double x : {1.0, 3.0}) filled.Add(x);
  RunningStats empty;
  RunningStats copy = filled;
  copy.Merge(empty);
  EXPECT_EQ(copy.Count(), 2u);
  EXPECT_DOUBLE_EQ(copy.Mean(), 2.0);
  empty.Merge(filled);
  EXPECT_EQ(empty.Count(), 2u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.Min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.Max(), 3.0);
}

TEST(PercentileTest, NearestRankEdgeCases) {
  EXPECT_DOUBLE_EQ(instrument::Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile({7.0}, 1.0), 7.0);
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0,
                                      6.0, 7.0, 8.0, 9.0, 10.0};
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, 1.0), 10.0);
  // Out-of-range q is clamped rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(instrument::Percentile(sorted, 1.5), 10.0);
}

TEST(ScopedTimerTest, StopExcludesLaterWork) {
  TimingRegistry registry;
  {
    instrument::ScopedTimer timer(registry, "loop");
    timer.Stop();
    const double at_stop = registry.Total("loop");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    timer.Stop();  // idempotent: destruction must not re-accumulate
    EXPECT_DOUBLE_EQ(registry.Total("loop"), at_stop);
  }
  EXPECT_EQ(registry.Entries().at("loop").count, 1u);
  EXPECT_LT(registry.Total("loop"), 0.010);
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Allocate("field", 1000);
  tracker.Allocate("staging", 500);
  EXPECT_EQ(tracker.CurrentBytes(), 1500u);
  EXPECT_EQ(tracker.PeakBytes(), 1500u);
  tracker.Release("staging", 500);
  EXPECT_EQ(tracker.CurrentBytes(), 1000u);
  EXPECT_EQ(tracker.PeakBytes(), 1500u);
  EXPECT_EQ(tracker.CurrentBytes("field"), 1000u);
  EXPECT_EQ(tracker.PeakBytes("staging"), 500u);
}

TEST(MemoryTrackerTest, PeakPerCategoryIsIndependent) {
  MemoryTracker tracker;
  tracker.Allocate("a", 100);
  tracker.Release("a", 100);
  tracker.Allocate("b", 50);
  EXPECT_EQ(tracker.PeakBytes("a"), 100u);
  EXPECT_EQ(tracker.PeakBytes("b"), 50u);
  EXPECT_EQ(tracker.PeakBytes(), 100u);
}

TEST(MemoryTrackerTest, ResetClearsEverything) {
  MemoryTracker tracker;
  tracker.Allocate("a", 10);
  tracker.Reset();
  EXPECT_EQ(tracker.CurrentBytes(), 0u);
  EXPECT_EQ(tracker.PeakBytes(), 0u);
}

TEST(TrackedBufferTest, RegistersWithCurrentTracker) {
  MemoryTracker tracker;
  {
    TrackerScope scope(&tracker);
    TrackedBuffer<double> buffer("field", 128);
    EXPECT_EQ(tracker.CurrentBytes(), 128 * sizeof(double));
  }
  EXPECT_EQ(tracker.CurrentBytes(), 0u);
  EXPECT_EQ(tracker.PeakBytes(), 128 * sizeof(double));
}

TEST(TrackedBufferTest, MoveTransfersOwnership) {
  MemoryTracker tracker;
  TrackerScope scope(&tracker);
  TrackedBuffer<int> a("x", 64);
  TrackedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(tracker.CurrentBytes(), 64 * sizeof(int));
  b = TrackedBuffer<int>("x", 32);
  EXPECT_EQ(tracker.CurrentBytes(), 32 * sizeof(int));
}

TEST(TrackedBufferTest, UntrackedOutsideScope) {
  TrackedBuffer<double> buffer("field", 16);
  EXPECT_EQ(buffer.size(), 16u);  // works without a tracker installed
}

TEST(TableTest, PrintsAlignedColumns) {
  Table table("demo");
  table.SetHeader({"config", "seconds"});
  table.AddRow({"catalyst", "1.5"});
  table.AddRow({"checkpointing", "1.2"});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("catalyst"), std::string::npos);
  EXPECT_NE(text.find("checkpointing"), std::string::npos);
}

TEST(TableTest, WritesCsvWithEscaping) {
  Table table("csv");
  table.SetHeader({"name", "value"});
  table.AddRow({"a,b", "say \"hi\""});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  EXPECT_TRUE(table.WriteCsv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",\"say \"\"hi\"\"\"");
}

TEST(TableTest, WriteCsvReportsUnwritablePath) {
  Table table("csv");
  table.SetHeader({"a"});
  table.AddRow({"1"});
  EXPECT_FALSE(
      table.WriteCsv("/nonexistent-nsm-dir/definitely/not/here.csv"));
}

TEST(FormatTest, FormatBytesPicksHumanUnits) {
  EXPECT_EQ(instrument::FormatBytes(512), "512.0 B");
  EXPECT_EQ(instrument::FormatBytes(6815744), "6.5 MB");
  EXPECT_EQ(instrument::FormatBytes(20401094656ULL), "19.0 GB");
}

TEST(FormatTest, FormatBytesUnitBoundaries) {
  EXPECT_EQ(instrument::FormatBytes(0), "0.0 B");
  EXPECT_EQ(instrument::FormatBytes(1023), "1023.0 B");
  EXPECT_EQ(instrument::FormatBytes(1024), "1.0 KB");  // exactly 1 KB flips
  EXPECT_EQ(instrument::FormatBytes(1024 * 1024), "1.0 MB");
  EXPECT_EQ(instrument::FormatBytes(1024 * 1024 - 1), "1024.0 KB");
}

TEST(FormatTest, FormatSecondsFourDecimals) {
  EXPECT_EQ(instrument::FormatSeconds(1.23456), "1.2346");
}

TEST(FormatTest, FormatSecondsSubMillisecond) {
  EXPECT_EQ(instrument::FormatSeconds(0.00042), "0.0004");
  EXPECT_EQ(instrument::FormatSeconds(0.0), "0.0000");
  EXPECT_EQ(instrument::FormatSeconds(4.2e-7), "0.0000");  // below resolution
}

}  // namespace
