#include <gtest/gtest.h>

#include <cmath>

#include "render/isosurface.hpp"

namespace {

using render::ExtractIsosurface;
using render::TriangleMesh;

// n^3-cell block grid on [-1,1]^3 with a radial distance field and a
// secondary linear color field.
svtk::UnstructuredGrid MakeRadialGrid(int n) {
  const int np = n + 1;
  svtk::UnstructuredGrid grid(static_cast<std::size_t>(np) * np * np,
                              static_cast<std::size_t>(n) * n * n);
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        const std::size_t p = static_cast<std::size_t>(i + np * (j + np * k));
        grid.SetPoint(p, -1.0 + 2.0 * i / n, -1.0 + 2.0 * j / n,
                      -1.0 + 2.0 * k / n);
      }
    }
  }
  std::size_t c = 0;
  auto id = [np](int i, int j, int k) {
    return static_cast<std::int64_t>(i + np * (j + np * k));
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        grid.SetCell(c++, {id(i, j, k), id(i + 1, j, k), id(i + 1, j + 1, k),
                           id(i, j + 1, k), id(i, j, k + 1),
                           id(i + 1, j, k + 1), id(i + 1, j + 1, k + 1),
                           id(i, j + 1, k + 1)});
      }
    }
  }
  svtk::DataArray& r = grid.AddPointArray("radius", 1);
  svtk::DataArray& cx = grid.AddPointArray("xcoord", 1);
  for (std::size_t p = 0; p < grid.NumPoints(); ++p) {
    const auto xyz = grid.GetPoint(p);
    r.At(p) = std::sqrt(xyz[0] * xyz[0] + xyz[1] * xyz[1] + xyz[2] * xyz[2]);
    cx.At(p) = xyz[0];
  }
  return grid;
}

TEST(IsosurfaceTest, SphereVerticesLieOnSphere) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(12);
  const double iso = 0.6;
  TriangleMesh mesh = ExtractIsosurface(grid, "radius", iso, "radius");
  ASSERT_GT(mesh.NumTriangles(), 100u);
  // Every extracted vertex sits near the sphere |x| = iso (linear
  // interpolation of a smooth field on a fine-ish grid).
  for (const render::Vec3& p : mesh.positions) {
    EXPECT_NEAR(render::Length(p), iso, 0.02);
  }
}

TEST(IsosurfaceTest, SurfaceAreaApproximatesSphere) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(16);
  const double iso = 0.7;
  TriangleMesh mesh = ExtractIsosurface(grid, "radius", iso, "radius");
  double area = 0.0;
  for (std::size_t t = 0; t < mesh.NumTriangles(); ++t) {
    const render::Vec3 a = mesh.positions[3 * t];
    const render::Vec3 b = mesh.positions[3 * t + 1];
    const render::Vec3 c = mesh.positions[3 * t + 2];
    area += 0.5 * render::Length(render::Cross(b - a, c - a));
  }
  const double exact = 4.0 * std::numbers::pi * iso * iso;
  EXPECT_NEAR(area, exact, 0.05 * exact);
}

TEST(IsosurfaceTest, ColorArrayInterpolatedOnSurface) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(10);
  TriangleMesh mesh = ExtractIsosurface(grid, "radius", 0.5, "xcoord");
  ASSERT_GT(mesh.NumTriangles(), 0u);
  for (std::size_t v = 0; v < mesh.positions.size(); ++v) {
    EXPECT_NEAR(mesh.scalars[v], mesh.positions[v].x, 0.02);
  }
}

TEST(IsosurfaceTest, NormalsAreUnit) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(8);
  TriangleMesh mesh = ExtractIsosurface(grid, "radius", 0.5, "radius");
  for (const render::Vec3& n : mesh.normals) {
    EXPECT_NEAR(render::Length(n), 1.0, 1e-9);
  }
}

TEST(IsosurfaceTest, NoSurfaceOutsideRange) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(6);
  EXPECT_EQ(ExtractIsosurface(grid, "radius", 10.0, "radius").NumTriangles(),
            0u);
  EXPECT_EQ(ExtractIsosurface(grid, "radius", -1.0, "radius").NumTriangles(),
            0u);
}

TEST(IsosurfaceTest, MissingArrayThrows) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(4);
  EXPECT_THROW(ExtractIsosurface(grid, "nope", 0.5, "radius"),
               std::invalid_argument);
  EXPECT_THROW(ExtractIsosurface(grid, "radius", 0.5, "nope"),
               std::invalid_argument);
}

TEST(IsosurfaceTest, RenderedSphereCoversCenter) {
  svtk::UnstructuredGrid grid = MakeRadialGrid(10);
  TriangleMesh mesh = ExtractIsosurface(grid, "radius", 0.6, "radius");
  render::Framebuffer fb(64, 64);
  fb.Clear({0, 0, 0});
  render::Camera camera =
      render::FitCamera({-1, 1, -1, 1, -1, 1}, 30, 20, 1.0, 1.0);
  auto stats = render::RasterizeTriangleMesh(mesh, "grayscale", 0.0, 1.0,
                                             camera, fb);
  EXPECT_GT(stats.pixels_shaded, 50u);
  // The sphere occupies the view centre; shading must be non-background.
  const render::Rgb center = fb.Pixel(32, 32);
  EXPECT_GT(static_cast<int>(center.r) + center.g + center.b, 0);
}

}  // namespace
