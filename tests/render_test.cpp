#include <gtest/gtest.h>

#include <filesystem>

#include "mpimini/runtime.hpp"
#include "render/camera.hpp"
#include "render/colormap.hpp"
#include "render/compositor.hpp"
#include "render/image_io.hpp"
#include "render/rasterizer.hpp"

namespace {

using render::Camera;
using render::Colormap;
using render::FitCamera;
using render::Framebuffer;
using render::GetColormap;
using render::RenderSpec;
using render::Rgb;

svtk::UnstructuredGrid MakeCube(double lo, double hi, double scalar) {
  svtk::UnstructuredGrid grid(8, 1);
  int p = 0;
  for (int k = 0; k < 2; ++k) {
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 2; ++i) {
        grid.SetPoint(static_cast<std::size_t>(p++), i ? hi : lo,
                      j ? hi : lo, k ? hi : lo);
      }
    }
  }
  grid.SetCell(0, {0, 1, 3, 2, 4, 5, 7, 6});
  svtk::DataArray& s = grid.AddPointArray("f", 1);
  for (std::size_t t = 0; t < 8; ++t) s.At(t) = scalar;
  return grid;
}

TEST(ColormapTest, EndpointsAndMidpoints) {
  const Colormap& gray = GetColormap("grayscale");
  EXPECT_EQ(gray.Sample(0.0), (Rgb{0, 0, 0}));
  EXPECT_EQ(gray.Sample(1.0), (Rgb{255, 255, 255}));
  EXPECT_EQ(gray.Sample(0.5), (Rgb{128, 128, 128}));
}

TEST(ColormapTest, ClampsOutOfRange) {
  const Colormap& gray = GetColormap("grayscale");
  EXPECT_EQ(gray.Sample(-5.0), gray.Sample(0.0));
  EXPECT_EQ(gray.Sample(7.0), gray.Sample(1.0));
}

TEST(ColormapTest, MapUsesRange) {
  const Colormap& gray = GetColormap("grayscale");
  EXPECT_EQ(gray.Map(15.0, 10.0, 20.0), gray.Sample(0.5));
  EXPECT_EQ(gray.Map(3.0, 3.0, 3.0), gray.Sample(0.5));  // degenerate
}

TEST(ColormapTest, KnownMapsExistUnknownThrows) {
  EXPECT_NO_THROW(GetColormap("viridis"));
  EXPECT_NO_THROW(GetColormap("coolwarm"));
  EXPECT_NO_THROW(GetColormap("plasma"));
  EXPECT_THROW(GetColormap("sunset"), std::invalid_argument);
}

TEST(CameraTest, LookAtProjectsTargetToCenter) {
  Camera camera;
  camera.position = {3.0, 2.0, 4.0};
  camera.target = {0.5, 0.5, 0.5};
  const render::Vec4 clip =
      render::Transform(camera.ViewProjection(), camera.target);
  EXPECT_GT(clip.w, 0.0);
  EXPECT_NEAR(clip.x / clip.w, 0.0, 1e-9);
  EXPECT_NEAR(clip.y / clip.w, 0.0, 1e-9);
}

TEST(CameraTest, FitCameraSeesWholeBox) {
  const std::array<double, 6> bounds{0, 1, 0, 1, 0, 1};
  Camera camera = FitCamera(bounds, 30.0, 20.0, 1.0);
  const render::Mat4 vp = camera.ViewProjection();
  // All 8 corners project inside clip space.
  for (int c = 0; c < 8; ++c) {
    const render::Vec3 corner{(c & 1) ? 1.0 : 0.0, (c & 2) ? 1.0 : 0.0,
                              (c & 4) ? 1.0 : 0.0};
    const render::Vec4 clip = render::Transform(vp, corner);
    ASSERT_GT(clip.w, 0.0);
    EXPECT_LE(std::abs(clip.x / clip.w), 1.0);
    EXPECT_LE(std::abs(clip.y / clip.w), 1.0);
  }
}

TEST(FramebufferTest, ClearSetsBackgroundAndFarDepth) {
  Framebuffer fb(8, 4);
  fb.Clear({1, 2, 3});
  EXPECT_EQ(fb.Pixel(0, 0), (Rgb{1, 2, 3}));
  EXPECT_EQ(fb.Pixel(7, 3), (Rgb{1, 2, 3}));
  EXPECT_EQ(fb.Depth(4, 2), Framebuffer::kFarDepth);
}

TEST(FramebufferTest, TracksRenderMemory) {
  instrument::MemoryTracker tracker;
  instrument::TrackerScope scope(&tracker);
  {
    Framebuffer fb(100, 50);
    EXPECT_EQ(tracker.CurrentBytes("render"),
              100u * 50u * (3 + sizeof(float)));
  }
  EXPECT_EQ(tracker.CurrentBytes("render"), 0u);
}

TEST(RasterizerTest, CubeCoversCenterPixels) {
  svtk::UnstructuredGrid grid = MakeCube(0.0, 1.0, 5.0);
  Framebuffer fb(64, 64);
  fb.Clear({0, 0, 0});
  RenderSpec spec;
  spec.array = "f";
  spec.colormap = "grayscale";
  spec.range_min = 0.0;
  spec.range_max = 10.0;
  Camera camera = FitCamera(grid.Bounds(), 40.0, 25.0, 1.0);
  auto stats = render::RasterizeGrid(grid, spec, camera, fb);
  EXPECT_EQ(stats.cells_drawn, 1u);
  EXPECT_GT(stats.pixels_shaded, 100u);
  // Center pixel shows the cube colored at scalar 5 in [0,10] => mid-gray.
  EXPECT_EQ(fb.Pixel(32, 32), (Rgb{128, 128, 128}));
  // Corner pixel stays background.
  EXPECT_EQ(fb.Pixel(0, 0), (Rgb{0, 0, 0}));
  EXPECT_LT(fb.Depth(32, 32), Framebuffer::kFarDepth);
}

TEST(RasterizerTest, NearerCubeWinsDepthTest) {
  // Two cubes along the view axis; the nearer one must cover the center.
  Camera camera;
  camera.position = {0.5, 0.5, 6.0};
  camera.target = {0.5, 0.5, 0.0};
  camera.up = {0.0, 1.0, 0.0};
  camera.aspect = 1.0;

  Framebuffer fb(64, 64);
  fb.Clear({0, 0, 0});
  RenderSpec spec;
  spec.array = "f";
  spec.colormap = "grayscale";
  spec.range_min = 0.0;
  spec.range_max = 10.0;

  svtk::UnstructuredGrid far_cube = MakeCube(0.0, 1.0, 0.0);    // black
  svtk::UnstructuredGrid near_cube = MakeCube(0.25, 0.75, 10.0);  // white
  // Shift the near cube toward the camera in z.
  for (std::size_t i = 0; i < near_cube.NumPoints(); ++i) {
    near_cube.Points()[3 * i + 2] += 2.0;
  }
  render::RasterizeGrid(far_cube, spec, camera, fb);
  render::RasterizeGrid(near_cube, spec, camera, fb);
  EXPECT_EQ(fb.Pixel(32, 32), (Rgb{255, 255, 255}));
}

TEST(RasterizerTest, ThresholdSkipsCells) {
  svtk::UnstructuredGrid grid = MakeCube(0.0, 1.0, 5.0);
  Framebuffer fb(32, 32);
  fb.Clear({0, 0, 0});
  RenderSpec spec;
  spec.array = "f";
  spec.threshold_min = 6.0;  // cell mean is 5 -> excluded
  Camera camera = FitCamera(grid.Bounds(), 40.0, 25.0, 1.0);
  auto stats = render::RasterizeGrid(grid, spec, camera, fb);
  EXPECT_EQ(stats.cells_drawn, 0u);
  EXPECT_EQ(stats.pixels_shaded, 0u);
}

TEST(RasterizerTest, CellCenteredColoring) {
  svtk::UnstructuredGrid grid = MakeCube(0.0, 1.0, 0.0);
  svtk::DataArray& c = grid.AddCellArray("rank", 1);
  c.At(0) = 1.0;
  Framebuffer fb(32, 32);
  fb.Clear({0, 0, 0});
  RenderSpec spec;
  spec.array = "rank";
  spec.centering = svtk::Centering::kCell;
  spec.colormap = "grayscale";
  spec.range_min = 0.0;
  spec.range_max = 1.0;
  Camera camera = FitCamera(grid.Bounds(), 40.0, 25.0, 1.0);
  render::RasterizeGrid(grid, spec, camera, fb);
  EXPECT_EQ(fb.Pixel(16, 16), (Rgb{255, 255, 255}));
}

TEST(RasterizerTest, MissingArrayThrows) {
  svtk::UnstructuredGrid grid = MakeCube(0.0, 1.0, 0.0);
  Framebuffer fb(16, 16);
  RenderSpec spec;
  spec.array = "nope";
  Camera camera = FitCamera(grid.Bounds(), 40.0, 25.0, 1.0);
  EXPECT_THROW(render::RasterizeGrid(grid, spec, camera, fb),
               std::invalid_argument);
}

class CompositorRankTest : public ::testing::TestWithParam<int> {};

TEST_P(CompositorRankTest, NearestDepthWinsAcrossRanks) {
  const int nranks = GetParam();
  mpimini::Runtime::Run(nranks, [nranks](mpimini::Comm& comm) {
    Framebuffer fb(16, 16);
    fb.Clear({0, 0, 0});
    // Each rank writes its id at depth (rank+1): rank 0 is nearest.
    const auto shade = static_cast<unsigned char>(50 + comm.Rank() * 10);
    fb.SetPixel(8, 8, {shade, shade, shade},
                static_cast<float>(comm.Rank() + 1));
    render::CompositeToRoot(comm, fb, 0);
    if (comm.Rank() == 0) {
      EXPECT_EQ(fb.Pixel(8, 8), (Rgb{50, 50, 50}));
      EXPECT_EQ(fb.Pixel(0, 0), (Rgb{0, 0, 0}));
    }
    (void)nranks;
  });
}

TEST_P(CompositorRankTest, DisjointRegionsAllSurvive) {
  const int nranks = GetParam();
  mpimini::Runtime::Run(nranks, [](mpimini::Comm& comm) {
    Framebuffer fb(16, 16);
    fb.Clear({0, 0, 0});
    fb.SetPixel(comm.Rank(), 0, {255, 0, 0}, 1.0F);
    render::CompositeToRoot(comm, fb, 0);
    if (comm.Rank() == 0) {
      for (int r = 0; r < comm.Size(); ++r) {
        EXPECT_EQ(fb.Pixel(r, 0), (Rgb{255, 0, 0})) << "rank " << r;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, CompositorRankTest,
                         ::testing::Values(1, 2, 4));

TEST(ImageIoTest, PpmRoundTrip) {
  Framebuffer fb(20, 10);
  fb.Clear({7, 8, 9});
  fb.SetPixel(3, 2, {200, 100, 50}, 1.0F);
  const std::string path = ::testing::TempDir() + "/img.ppm";
  const std::size_t bytes = render::WritePpm(fb, path);
  EXPECT_EQ(bytes, std::filesystem::file_size(path));
  Framebuffer back = render::ReadPpm(path);
  EXPECT_EQ(back.Width(), 20);
  EXPECT_EQ(back.Height(), 10);
  EXPECT_EQ(back.Pixel(3, 2), (Rgb{200, 100, 50}));
  EXPECT_EQ(back.Pixel(0, 0), (Rgb{7, 8, 9}));
}

TEST(ImageIoTest, PpmSizeIsHeaderPlusPixels) {
  Framebuffer fb(640, 480);
  const std::string path = ::testing::TempDir() + "/size.ppm";
  const std::size_t bytes = render::WritePpm(fb, path);
  EXPECT_EQ(bytes, 15u + 640u * 480u * 3u);
}


TEST(RasterizerTest, SliceKeepsOnlyStraddlingCells) {
  // Two unit cubes stacked in z; slice through the lower one only.
  svtk::UnstructuredGrid lower = MakeCube(0.0, 1.0, 5.0);
  svtk::UnstructuredGrid upper = MakeCube(0.0, 1.0, 5.0);
  for (std::size_t i = 0; i < upper.NumPoints(); ++i) {
    upper.Points()[3 * i + 2] += 1.5;
  }
  RenderSpec spec;
  spec.array = "f";
  spec.slice_axis = 2;
  spec.slice_position = 0.5;  // inside the lower cube only
  Framebuffer fb(32, 32);
  fb.Clear({0, 0, 0});
  Camera camera = FitCamera({0, 1, 0, 1, 0, 2.5}, 40, 25, 1.0);
  auto s_low = render::RasterizeGrid(lower, spec, camera, fb);
  auto s_up = render::RasterizeGrid(upper, spec, camera, fb);
  EXPECT_EQ(s_low.cells_drawn, 1u);
  EXPECT_EQ(s_up.cells_drawn, 0u);
}

TEST(ScalarBarTest, DrawsGradientAndTicks) {
  Framebuffer fb(120, 90);
  fb.Clear({0, 0, 0});
  render::DrawScalarBar(render::GetColormap("grayscale"), 0.0, 1.0, fb);
  const int bar_width = std::max(6, fb.Width() / 60);
  const int x = fb.Width() - 2 * bar_width + bar_width / 2;  // inside bar
  const int top = fb.Height() / 10;
  const int bottom = fb.Height() - top;
  // Top of the bar maps to hi (white), bottom to lo (black-ish).
  EXPECT_GT(fb.Pixel(x, top + 1).r, 200);
  EXPECT_LT(fb.Pixel(x, bottom - 2).r, 55);
}

}  // namespace
