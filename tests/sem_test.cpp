#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <numeric>

#include "mpimini/runtime.hpp"
#include "sem/box_mesh.hpp"
#include "sem/gather_scatter.hpp"
#include "sem/gll.hpp"
#include "sem/operators.hpp"
#include "sem/tensor.hpp"

namespace {

using mpimini::Comm;
using mpimini::Runtime;
using sem::BoxMesh;
using sem::BoxMeshSpec;
using sem::GatherScatter;
using sem::GllRule;
using sem::MakeGllRule;

// ---- GLL quadrature -------------------------------------------------------

class GllOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(GllOrderTest, NodesAreSymmetricAndSorted) {
  const GllRule rule = MakeGllRule(GetParam());
  const int np = rule.NumPoints();
  EXPECT_DOUBLE_EQ(rule.nodes.front(), -1.0);
  EXPECT_DOUBLE_EQ(rule.nodes.back(), 1.0);
  for (int i = 0; i + 1 < np; ++i) {
    EXPECT_LT(rule.nodes[static_cast<std::size_t>(i)],
              rule.nodes[static_cast<std::size_t>(i + 1)]);
  }
  for (int i = 0; i < np; ++i) {
    EXPECT_NEAR(rule.nodes[static_cast<std::size_t>(i)],
                -rule.nodes[static_cast<std::size_t>(np - 1 - i)], 1e-13);
  }
}

TEST_P(GllOrderTest, WeightsSumToTwo) {
  const GllRule rule = MakeGllRule(GetParam());
  const double sum =
      std::accumulate(rule.weights.begin(), rule.weights.end(), 0.0);
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllOrderTest, QuadratureExactForPolynomials) {
  // GLL with N+1 points integrates polynomials up to degree 2N-1 exactly.
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  for (int degree = 0; degree <= 2 * order - 1; ++degree) {
    double integral = 0.0;
    for (int i = 0; i < rule.NumPoints(); ++i) {
      integral += rule.weights[static_cast<std::size_t>(i)] *
                  std::pow(rule.nodes[static_cast<std::size_t>(i)], degree);
    }
    const double exact = (degree % 2 == 0) ? 2.0 / (degree + 1) : 0.0;
    EXPECT_NEAR(integral, exact, 1e-11)
        << "order " << order << " degree " << degree;
  }
}

TEST_P(GllOrderTest, DerivativeMatrixExactForPolynomials) {
  // D applied to x^q sampled at the nodes gives q x^{q-1} for q <= N.
  const int order = GetParam();
  const GllRule rule = MakeGllRule(order);
  const int np = rule.NumPoints();
  for (int q = 0; q <= order; ++q) {
    for (int i = 0; i < np; ++i) {
      double d = 0.0;
      for (int j = 0; j < np; ++j) {
        d += rule.D(i, j) * std::pow(rule.nodes[static_cast<std::size_t>(j)], q);
      }
      const double exact =
          q == 0 ? 0.0
                 : q * std::pow(rule.nodes[static_cast<std::size_t>(i)], q - 1);
      EXPECT_NEAR(d, exact, 1e-10 * (1 << order));
    }
  }
}

TEST_P(GllOrderTest, DerivativeRowsSumToZero) {
  // D * constant = 0.
  const GllRule rule = MakeGllRule(GetParam());
  for (int i = 0; i < rule.NumPoints(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < rule.NumPoints(); ++j) sum += rule.D(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-11);
  }
}

TEST_P(GllOrderTest, TransposeMatchesDeriv) {
  const GllRule rule = MakeGllRule(GetParam());
  const int np = rule.NumPoints();
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      EXPECT_DOUBLE_EQ(rule.deriv_t[static_cast<std::size_t>(i * np + j)],
                       rule.D(j, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GllOrderTest, ::testing::Values(1, 2, 3, 4,
                                                                 5, 7, 9));

TEST(GllTest, LagrangeBasisIsCardinal) {
  const GllRule rule = MakeGllRule(4);
  for (int j = 0; j < rule.NumPoints(); ++j) {
    for (int i = 0; i < rule.NumPoints(); ++i) {
      EXPECT_NEAR(sem::LagrangeBasis(rule, j,
                                     rule.nodes[static_cast<std::size_t>(i)]),
                  i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(GllTest, InterpolationMatrixReproducesPolynomials) {
  const GllRule rule = MakeGllRule(4);
  std::vector<double> targets{-0.9, -0.3, 0.1, 0.77};
  auto matrix = sem::InterpolationMatrix(rule, targets);
  // Interpolate f(x) = x^3 - 2x.
  auto f = [](double x) { return x * x * x - 2.0 * x; };
  for (std::size_t t = 0; t < targets.size(); ++t) {
    double value = 0.0;
    for (int j = 0; j < rule.NumPoints(); ++j) {
      value += matrix[t * static_cast<std::size_t>(rule.NumPoints()) +
                      static_cast<std::size_t>(j)] *
               f(rule.nodes[static_cast<std::size_t>(j)]);
    }
    EXPECT_NEAR(value, f(targets[t]), 1e-12);
  }
}

TEST(GllTest, InvalidOrderThrows) {
  EXPECT_THROW(MakeGllRule(0), std::invalid_argument);
}

// ---- Tensor kernels -------------------------------------------------------

TEST(TensorTest, DerivativesExactOnTrilinearMonomials) {
  const GllRule rule = MakeGllRule(4);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np * np * np);
  std::vector<double> u(n), ur(n), us(n), ut(n);
  // u = r^2 s + t^3
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        const double r = rule.nodes[static_cast<std::size_t>(i)];
        const double s = rule.nodes[static_cast<std::size_t>(j)];
        const double t = rule.nodes[static_cast<std::size_t>(k)];
        u[static_cast<std::size_t>(i + np * (j + np * k))] =
            r * r * s + t * t * t;
      }
    }
  }
  sem::DerivR(rule, u, ur);
  sem::DerivS(rule, u, us);
  sem::DerivT(rule, u, ut);
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        const double r = rule.nodes[static_cast<std::size_t>(i)];
        const double s = rule.nodes[static_cast<std::size_t>(j)];
        const double t = rule.nodes[static_cast<std::size_t>(k)];
        const std::size_t q = static_cast<std::size_t>(i + np * (j + np * k));
        EXPECT_NEAR(ur[q], 2.0 * r * s, 1e-10);
        EXPECT_NEAR(us[q], r * r, 1e-10);
        EXPECT_NEAR(ut[q], 3.0 * t * t, 1e-10);
      }
    }
  }
}

TEST(TensorTest, TransposedApplyIsAdjoint) {
  // <D_r u, v> == <u, D_r^T v> for the plain lattice inner product.
  const GllRule rule = MakeGllRule(3);
  const int np = rule.NumPoints();
  const std::size_t n = static_cast<std::size_t>(np * np * np);
  std::vector<double> u(n), v(n), du(n), dtv(n, 0.0);
  for (std::size_t q = 0; q < n; ++q) {
    u[q] = std::sin(0.1 * static_cast<double>(q));
    v[q] = std::cos(0.05 * static_cast<double>(q) + 1.0);
  }
  sem::DerivR(rule, u, du);
  sem::DerivRTAdd(rule, v, dtv);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t q = 0; q < n; ++q) {
    lhs += du[q] * v[q];
    rhs += u[q] * dtv[q];
  }
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(TensorTest, Interp3DRefinesSmoothly) {
  const GllRule rule = MakeGllRule(4);
  const int np = rule.NumPoints();
  const int m = 7;
  std::vector<double> targets(m);
  for (int i = 0; i < m; ++i) targets[static_cast<std::size_t>(i)] = -1.0 + 2.0 * i / (m - 1);
  auto matrix = sem::InterpolationMatrix(rule, targets);
  std::vector<double> u(static_cast<std::size_t>(np * np * np));
  auto f = [](double r, double s, double t) { return r * s + t * t; };
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        u[static_cast<std::size_t>(i + np * (j + np * k))] =
            f(rule.nodes[static_cast<std::size_t>(i)],
              rule.nodes[static_cast<std::size_t>(j)],
              rule.nodes[static_cast<std::size_t>(k)]);
      }
    }
  }
  auto fine = sem::Interp3D(matrix, m, np, u);
  for (int k = 0; k < m; ++k) {
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        EXPECT_NEAR(fine[static_cast<std::size_t>(i + m * (j + m * k))],
                    f(targets[static_cast<std::size_t>(i)],
                      targets[static_cast<std::size_t>(j)],
                      targets[static_cast<std::size_t>(k)]),
                    1e-11);
      }
    }
  }
}

// Deterministic pseudo-random fill for the kernel-equivalence tests: rich
// enough to exercise every term, reproducible across runs and platforms.
double Wiggle(std::size_t i) {
  return std::sin(0.37 * static_cast<double>(i) + 0.11) +
         0.25 * std::cos(1.91 * static_cast<double>(i));
}

// Reference for the fused Laplacian: the six separate matrix sweeps it
// replaces, composed per element with the same per-entry operation order.
void LaplacianByDimComposition(std::span<const double> deriv,
                               std::span<const double> deriv_t, int np,
                               int nel, const sem::LaplacianGeo<double>& geo,
                               std::span<const double> u,
                               std::span<double> out) {
  const std::size_t per_el = static_cast<std::size_t>(np) * np * np;
  std::vector<double> ur(per_el), us(per_el), ut(per_el);
  std::vector<double> wr(per_el), ws(per_el), wt(per_el);
  std::vector<double> ar(per_el), as(per_el), at(per_el);
  for (int e = 0; e < nel; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el;
    auto sub = [&](std::span<const double> v) {
      return v.subspan(base, per_el);
    };
    sem::ApplyDim0T<double>(deriv, np, np, u.subspan(base, per_el), ur);
    sem::ApplyDim1T<double>(deriv, np, np, u.subspan(base, per_el), us);
    sem::ApplyDim2T<double>(deriv, np, np, u.subspan(base, per_el), ut);
    auto g11 = sub(geo.g11), g12 = sub(geo.g12), g13 = sub(geo.g13);
    auto g22 = sub(geo.g22), g23 = sub(geo.g23), g33 = sub(geo.g33);
    for (std::size_t q = 0; q < per_el; ++q) {
      wr[q] = g11[q] * ur[q] + g12[q] * us[q] + g13[q] * ut[q];
      ws[q] = g12[q] * ur[q] + g22[q] * us[q] + g23[q] * ut[q];
      wt[q] = g13[q] * ur[q] + g23[q] * us[q] + g33[q] * ut[q];
    }
    sem::ApplyDim0T<double>(deriv_t, np, np, wr, ar);
    sem::ApplyDim1T<double>(deriv_t, np, np, ws, as);
    sem::ApplyDim2T<double>(deriv_t, np, np, wt, at);
    for (std::size_t q = 0; q < per_el; ++q) {
      out[base + q] = (ar[q] + as[q]) + at[q];
    }
  }
}

struct FusedProblem {
  int np = 0;
  int nel = 0;
  std::vector<double> deriv, deriv_t;
  std::vector<double> g11, g12, g13, g22, g23, g33;
  std::vector<double> u;
  [[nodiscard]] sem::LaplacianGeo<double> Geo() const {
    return {g11, g12, g13, g22, g23, g33};
  }
};

FusedProblem MakeFusedProblem(int np, int nel) {
  FusedProblem p;
  p.np = np;
  p.nel = nel;
  const std::size_t n = static_cast<std::size_t>(nel) * np * np * np;
  p.deriv.resize(static_cast<std::size_t>(np) * np);
  p.deriv_t.resize(p.deriv.size());
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      const double v = Wiggle(static_cast<std::size_t>(i * np + j));
      p.deriv[static_cast<std::size_t>(i) * np + j] = v;
      p.deriv_t[static_cast<std::size_t>(j) * np + i] = v;
    }
  }
  p.g11.resize(n);
  p.g12.resize(n);
  p.g13.resize(n);
  p.g22.resize(n);
  p.g23.resize(n);
  p.g33.resize(n);
  p.u.resize(n);
  for (std::size_t q = 0; q < n; ++q) {
    p.g11[q] = 1.0 + 0.1 * Wiggle(q);
    p.g22[q] = 1.2 + 0.1 * Wiggle(q + 7);
    p.g33[q] = 0.9 + 0.1 * Wiggle(q + 13);
    p.g12[q] = 0.05 * Wiggle(q + 3);
    p.g13[q] = 0.05 * Wiggle(q + 5);
    p.g23[q] = 0.05 * Wiggle(q + 11);
    p.u[q] = Wiggle(q + 17);
  }
  return p;
}

TEST(TensorTest, LaplacianFusedBitIdenticalToDimComposition) {
  // np in {4, 9} exercises the compile-time-unrolled dispatch cases;
  // np = 11 the runtime-extent fallback.  Bit identity (EXPECT_EQ on
  // doubles) is the contract the solver's golden norms rest on.
  for (const int np : {4, 9, 11}) {
    const int nel = 3;
    FusedProblem p = MakeFusedProblem(np, nel);
    const std::size_t n = p.u.size();
    std::vector<double> ref(n), fused(n);
    std::vector<double> scratch(6 * static_cast<std::size_t>(np) * np * np);
    LaplacianByDimComposition(p.deriv, p.deriv_t, np, nel, p.Geo(), p.u,
                              ref);
    sem::LaplacianFused<double>(p.deriv, p.deriv_t, np, nel, p.Geo(), p.u,
                                fused, scratch);
    for (std::size_t q = 0; q < n; ++q) {
      ASSERT_EQ(ref[q], fused[q]) << "np=" << np << " q=" << q;
    }
  }
}

TEST(TensorTest, LaplacianFusedFloatTracksDouble) {
  // The pfloat instantiation of the same kernel: no bit contract, but the
  // relative error must stay at the level of float rounding accumulated
  // over np-length dot products.
  const int np = 5, nel = 4;
  FusedProblem p = MakeFusedProblem(np, nel);
  const std::size_t n = p.u.size();
  std::vector<double> ref(n), scratch_d(6 * static_cast<std::size_t>(np) * np * np);
  sem::LaplacianFused<double>(p.deriv, p.deriv_t, np, nel, p.Geo(), p.u, ref,
                              scratch_d);

  auto to_float = [](std::span<const double> v) {
    std::vector<float> f(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      f[i] = static_cast<float>(v[i]);
    }
    return f;
  };
  auto deriv = to_float(p.deriv);
  auto deriv_t = to_float(p.deriv_t);
  auto g11 = to_float(p.g11), g12 = to_float(p.g12), g13 = to_float(p.g13);
  auto g22 = to_float(p.g22), g23 = to_float(p.g23), g33 = to_float(p.g33);
  auto uf = to_float(p.u);
  sem::LaplacianGeo<float> geo{g11, g12, g13, g22, g23, g33};
  std::vector<float> out(n), scratch_f(scratch_d.size());
  sem::LaplacianFused<float>(deriv, deriv_t, np, nel, geo, uf, out,
                             scratch_f);

  double scale = 0.0;
  for (std::size_t q = 0; q < n; ++q) scale = std::max(scale, std::abs(ref[q]));
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(static_cast<double>(out[q]), ref[q], 1e-4 * scale);
  }
}

TEST(TensorTest, Interp3DScratchOverloadBitIdentical) {
  // The allocation-free overload is the multigrid transfer hot path; it
  // must reproduce the vector-returning reference exactly.
  const GllRule rule = MakeGllRule(4);
  const int np = rule.NumPoints();
  const int m = 3;  // coarsen, as Restrict does
  std::vector<double> targets(m);
  for (int i = 0; i < m; ++i) {
    targets[static_cast<std::size_t>(i)] = -1.0 + 2.0 * i / (m - 1);
  }
  auto matrix = sem::InterpolationMatrix(rule, targets);
  std::vector<double> u(static_cast<std::size_t>(np) * np * np);
  for (std::size_t q = 0; q < u.size(); ++q) u[q] = Wiggle(q);

  auto ref = sem::Interp3D(matrix, m, np, u);
  std::vector<double> out(static_cast<std::size_t>(m) * m * m);
  std::vector<double> scratch(sem::Interp3DScratchSize(m, np));
  sem::Interp3D<double>(matrix, m, np, u, out, scratch);
  ASSERT_EQ(ref.size(), out.size());
  for (std::size_t q = 0; q < out.size(); ++q) {
    ASSERT_EQ(ref[q], out[q]);
  }
}

// ---- BoxMesh --------------------------------------------------------------

TEST(BoxMeshTest, PartitionCoversAllLayers) {
  BoxMeshSpec spec;
  spec.elements = {2, 3, 7};
  int total = 0;
  for (int rank = 0; rank < 3; ++rank) {
    BoxMesh mesh(spec, rank, 3);
    total += mesh.NumLayers();
    EXPECT_EQ(mesh.NumLocalElements(), 2 * 3 * mesh.NumLayers());
  }
  EXPECT_EQ(total, 7);
}

TEST(BoxMeshTest, SharedFaceNodesGetSameGlobalId) {
  BoxMeshSpec spec;
  spec.order = 3;
  spec.elements = {2, 1, 1};
  BoxMesh mesh(spec, 0, 1);
  const int np = mesh.NumPoints1D();
  // Face x=hi of element 0 coincides with face x=lo of element 1.
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      EXPECT_EQ(mesh.GlobalNodeId(0, np - 1, j, k),
                mesh.GlobalNodeId(1, 0, j, k));
    }
  }
}

TEST(BoxMeshTest, PeriodicWrapsIds) {
  BoxMeshSpec spec;
  spec.order = 2;
  spec.elements = {3, 1, 1};
  spec.periodic = {true, false, false};
  BoxMesh mesh(spec, 0, 1);
  const int np = mesh.NumPoints1D();
  EXPECT_EQ(mesh.GlobalNodeId(2, np - 1, 0, 0), mesh.GlobalNodeId(0, 0, 0, 0));
}

TEST(BoxMeshTest, GlobalNodeCountMatchesLattice) {
  BoxMeshSpec spec;
  spec.order = 3;
  spec.elements = {2, 2, 2};
  BoxMesh closed(spec, 0, 1);
  EXPECT_EQ(closed.NumGlobalNodes(), 7LL * 7 * 7);
  spec.periodic = {true, true, true};
  BoxMesh wrapped(spec, 0, 1);
  EXPECT_EQ(wrapped.NumGlobalNodes(), 6LL * 6 * 6);
}

TEST(BoxMeshTest, CoordinatesSpanDomain) {
  BoxMeshSpec spec;
  spec.order = 4;
  spec.elements = {2, 2, 2};
  spec.length = {2.0, 3.0, 4.0};
  BoxMesh mesh(spec, 0, 1);
  const GllRule rule = MakeGllRule(spec.order);
  std::vector<double> x(mesh.NumLocalDofs()), y(x.size()), z(x.size());
  mesh.FillCoordinates(rule, x, y, z);
  EXPECT_DOUBLE_EQ(*std::min_element(x.begin(), x.end()), 0.0);
  EXPECT_DOUBLE_EQ(*std::max_element(x.begin(), x.end()), 2.0);
  EXPECT_DOUBLE_EQ(*std::max_element(y.begin(), y.end()), 3.0);
  EXPECT_DOUBLE_EQ(*std::max_element(z.begin(), z.end()), 4.0);
}

TEST(BoxMeshTest, DirichletMaskMarksRequestedFacesOnly) {
  BoxMeshSpec spec;
  spec.order = 2;
  spec.elements = {2, 2, 2};
  BoxMesh mesh(spec, 0, 1);
  const GllRule rule = MakeGllRule(spec.order);
  std::vector<double> mask(mesh.NumLocalDofs());
  mesh.FillDirichletMask({true, false, false, false, false, false}, mask);
  std::vector<double> x(mask.size()), y(mask.size()), z(mask.size());
  mesh.FillCoordinates(rule, x, y, z);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (x[i] == 0.0) {
      EXPECT_EQ(mask[i], 0.0);
    } else {
      EXPECT_EQ(mask[i], 1.0);
    }
  }
}

TEST(BoxMeshTest, PeriodicAxisIgnoresDirichletFlag) {
  BoxMeshSpec spec;
  spec.order = 2;
  spec.elements = {2, 1, 1};
  spec.periodic = {true, false, false};
  BoxMesh mesh(spec, 0, 1);
  std::vector<double> mask(mesh.NumLocalDofs());
  mesh.FillDirichletMask({true, true, false, false, false, false}, mask);
  for (double m : mask) EXPECT_EQ(m, 1.0);
}

TEST(BoxMeshTest, TooFewLayersThrows) {
  BoxMeshSpec spec;
  spec.elements = {2, 2, 2};
  EXPECT_THROW(BoxMesh(spec, 0, 3), std::invalid_argument);
}

// ---- GatherScatter --------------------------------------------------------

class GatherScatterRankTest : public ::testing::TestWithParam<int> {};

TEST_P(GatherScatterRankTest, SumEqualsCopyCount) {
  // Every dof starts at 1; after Sum each dof equals its global copy count.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2 * comm.Size()};
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    std::vector<double> values(gids.size(), 1.0);
    gs.Sum(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_DOUBLE_EQ(values[i], gs.Multiplicity()[i]) << "dof " << i;
    }
  });
}

TEST_P(GatherScatterRankTest, SumIsPartitionIndependent) {
  // gs-sum of f(gid) must equal multiplicity * f(gid) regardless of ranks.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 2;
    spec.elements = {2, 2, std::max(2, comm.Size())};
    spec.periodic = {true, false, true};
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    std::vector<double> values(gids.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = 0.5 + 0.25 * static_cast<double>(gids[i] % 17);
    }
    std::vector<double> original = values;
    gs.Sum(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_NEAR(values[i], original[i] * gs.Multiplicity()[i], 1e-12);
    }
  });
}

TEST_P(GatherScatterRankTest, AverageRestoresContinuousField) {
  // A continuous nodal field is a fixed point of Average.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, std::max(2, comm.Size())};
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    std::vector<double> values(gids.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = std::sin(0.01 * static_cast<double>(gids[i]));
    }
    std::vector<double> original = values;
    gs.Average(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_NEAR(values[i], original[i], 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, GatherScatterRankTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(GatherScatterTest, InteriorNodeMultiplicityIsEight) {
  // A corner shared by 8 elements has multiplicity 8 in a 2x2x2 mesh.
  Runtime::Run(1, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 2;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    const double max_mult = *std::max_element(gs.Multiplicity().begin(),
                                              gs.Multiplicity().end());
    EXPECT_DOUBLE_EQ(max_mult, 8.0);
  });
}

// ---- ElementOperators -----------------------------------------------------

TEST(OperatorsTest, MassDiagSumsToVolume) {
  Runtime::Run(1, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 3, 2};
    spec.length = {2.0, 1.0, 3.0};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    double volume = 0.0;
    for (double m : ops.MassDiag()) volume += m;
    volume = comm.AllReduceValue(volume, mpimini::Op::kSum);
    EXPECT_NEAR(volume, 6.0, 1e-12);
  });
}

TEST(OperatorsTest, LaplacianAnnihilatesConstants) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<double> u(mesh.NumLocalDofs(), 3.7), au(u.size());
    ops.Laplacian(u, au);
    for (double v : au) EXPECT_NEAR(v, 0.0, 1e-10);
  });
}

TEST(OperatorsTest, GradientExactForLinears) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2};
    spec.length = {1.5, 2.0, 0.5};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), u(n), ux(n), uy(n), uz(n);
    mesh.FillCoordinates(rule, x, y, z);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = 2.0 * x[i] - 3.0 * y[i] + 0.5 * z[i];
    }
    ops.Gradient(u, ux, uy, uz);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ux[i], 2.0, 1e-10);
      EXPECT_NEAR(uy[i], -3.0, 1e-10);
      EXPECT_NEAR(uz[i], 0.5, 1e-10);
    }
  });
}

TEST(OperatorsTest, LaplacianMatchesQuadraticEnergy) {
  // u^T A u == integral |grad u|^2 for u = x^2 (within quadrature accuracy
  // the integrand 4x^2 is exactly integrated).
  Runtime::Run(1, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), u(n), au(n);
    mesh.FillCoordinates(rule, x, y, z);
    for (std::size_t i = 0; i < n; ++i) u[i] = x[i] * x[i];
    ops.Laplacian(u, au);
    double energy = 0.0;
    for (std::size_t i = 0; i < n; ++i) energy += u[i] * au[i];
    energy = comm.AllReduceValue(energy, mpimini::Op::kSum);
    // integral over unit cube of (2x)^2 = 4/3.
    EXPECT_NEAR(energy, 4.0 / 3.0, 1e-10);
  });
}

TEST(OperatorsTest, DivergenceOfLinearField) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), u(n), v(n), w(n), div(n);
    mesh.FillCoordinates(rule, x, y, z);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = x[i];
      v[i] = 2.0 * y[i];
      w[i] = -3.0 * z[i];
    }
    ops.Divergence(u, v, w, div);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(div[i], 0.0, 1e-10);
  });
}

TEST(OperatorsTest, AdvectionOfLinearByConstant) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), cx(n, 1.0), cy(n, 2.0), cz(n, 0.0),
        u(n), out(n);
    mesh.FillCoordinates(rule, x, y, z);
    for (std::size_t i = 0; i < n; ++i) u[i] = 5.0 * x[i] + y[i];
    ops.Advect(cx, cy, cz, u, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], 1.0 * 5.0 + 2.0 * 1.0, 1e-10);
    }
  });
}

TEST(OperatorsTest, StiffnessDiagPositive) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    for (double d : ops.StiffnessDiag()) EXPECT_GT(d, 0.0);
  });
}

TEST(OperatorsTest, AssembledDotCountsEachNodeOnce) {
  Runtime::Run(2, [](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 2;
    spec.elements = {1, 1, 2};
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    std::vector<double> ones(gids.size(), 1.0);
    const double count =
        sem::AssembledDot(comm, ones, ones, gs.Multiplicity());
    // Unique global nodes in a 1x1x2 mesh of order 2: 3*3*5.
    EXPECT_NEAR(count, 45.0, 1e-12);
  });
}


// ---- Dealiased advection ----------------------------------------------------

TEST(DealiasTest, MatchesNodalAdvectionOnResolvedFields) {
  // For fields whose product is exactly representable (constant advecting
  // velocity, linear u), dealiased and nodal advection agree.
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 2};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    ops.EnableDealiasing();
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n);
    mesh.FillCoordinates(rule, x, y, z);
    std::vector<double> cx(n, 2.0), cy(n, -1.0), cz(n, 0.5), u(n);
    for (std::size_t i = 0; i < n; ++i) u[i] = x[i] + 3.0 * y[i] - z[i];
    std::vector<double> nodal(n), dealiased(n);
    ops.Advect(cx, cy, cz, u, nodal);
    ops.AdvectDealiased(cx, cy, cz, u, dealiased);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(dealiased[i], nodal[i], 1e-9);
      EXPECT_NEAR(nodal[i], 2.0 * 1.0 - 1.0 * 3.0 + 0.5 * (-1.0), 1e-9);
    }
  });
}

TEST(DealiasTest, ProjectsQuadraticProductAccurately) {
  // c = u = high-degree field: the nodal product aliases, the dealiased
  // version equals the exact L2 projection. Check against the analytic
  // value at interior nodes via a fine reference.
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 6;
    spec.elements = {2, 2, 2};
    spec.length = {1.0, 1.0, 1.0};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    ops.EnableDealiasing();
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n);
    mesh.FillCoordinates(rule, x, y, z);
    using std::numbers::pi;
    std::vector<double> c(n), u(n), zero(n, 0.0), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = std::sin(pi * x[i]);
      u[i] = std::cos(pi * x[i]);
    }
    // c du/dx = -pi sin^2(pi x); well resolved at order 6 with 2 elements,
    // so the dealiased projection must be pointwise accurate.
    ops.AdvectDealiased(c, zero, zero, u, out);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = std::sin(pi * x[i]);
      max_err = std::max(max_err, std::abs(out[i] + pi * s * s));
    }
    EXPECT_LT(max_err, 1e-3);
  });
}

TEST(DealiasTest, RequiresEnable) {
  Runtime::Run(1, [](Comm&) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {1, 1, 1};
    BoxMesh mesh(spec, 0, 1);
    const GllRule rule = MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<double> v(mesh.NumLocalDofs(), 0.0);
    EXPECT_THROW(ops.AdvectDealiased(v, v, v, v, v), std::runtime_error);
    EXPECT_FALSE(ops.DealiasingEnabled());
    ops.EnableDealiasing();
    EXPECT_TRUE(ops.DealiasingEnabled());
    EXPECT_NO_THROW(ops.AdvectDealiased(v, v, v, v, v));
  });
}


// ---- Partition axis ---------------------------------------------------------

class PartitionAxisTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionAxisTest, GatherScatterInvariantAcrossAxes) {
  // The assembled sum must be identical no matter which axis the mesh is
  // partitioned along.
  const int axis = GetParam();
  Runtime::Run(3, [axis](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {3, 3, 3};
    spec.periodic = {true, false, true};
    spec.partition_axis = axis;
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    GatherScatter gs(comm, gids);
    std::vector<double> values(gids.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = 0.5 + static_cast<double>(gids[i] % 13);
    }
    std::vector<double> original = values;
    gs.Sum(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_NEAR(values[i], original[i] * gs.Multiplicity()[i], 1e-12);
    }
    // Total element count conserved across the partition.
    const int total = comm.AllReduceValue(mesh.NumLocalElements(),
                                          mpimini::Op::kSum);
    EXPECT_EQ(total, 27);
  });
}

TEST_P(PartitionAxisTest, CoordinatesCoverDomainExactlyOnce) {
  const int axis = GetParam();
  Runtime::Run(2, [axis](Comm& comm) {
    BoxMeshSpec spec;
    spec.order = 2;
    spec.elements = {2, 2, 2};
    spec.length = {1.0, 2.0, 3.0};
    spec.partition_axis = axis;
    BoxMesh mesh(spec, comm.Rank(), comm.Size());
    const GllRule rule = MakeGllRule(spec.order);
    std::vector<double> x(mesh.NumLocalDofs()), y(x.size()), z(x.size());
    mesh.FillCoordinates(rule, x, y, z);
    // The mass over all ranks must integrate to the domain volume.
    sem::ElementOperators ops(rule, mesh);
    double volume = 0.0;
    for (double m : ops.MassDiag()) volume += m;
    volume = comm.AllReduceValue(volume, mpimini::Op::kSum);
    EXPECT_NEAR(volume, 6.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Axes, PartitionAxisTest, ::testing::Values(0, 1, 2));

}  // namespace
