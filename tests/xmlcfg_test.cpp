#include <gtest/gtest.h>

#include <fstream>

#include "xmlcfg/xml.hpp"

namespace {

using xmlcfg::Document;
using xmlcfg::Element;
using xmlcfg::Parse;
using xmlcfg::ParseError;

TEST(XmlParseTest, ParsesSenseiConfig) {
  // The exact shape of Listing 1 in the paper.
  const char* text = R"(<sensei>
 <analysis type="catalyst" pipeline="pythonscript" filename="analysis.py"
 frequency="100" />
</sensei>)";
  Document doc = Parse(text);
  EXPECT_EQ(doc.root.name, "sensei");
  ASSERT_EQ(doc.root.children.size(), 1u);
  const Element& analysis = doc.root.children[0];
  EXPECT_EQ(analysis.name, "analysis");
  EXPECT_EQ(analysis.Attr("type"), "catalyst");
  EXPECT_EQ(analysis.Attr("pipeline"), "pythonscript");
  EXPECT_EQ(analysis.AttrInt("frequency"), 100);
}

TEST(XmlParseTest, ParsesDeclarationAndComments) {
  Document doc = Parse(
      "<?xml version=\"1.0\"?>\n<!-- top --><root><!-- in -->"
      "<child a='1'/></root><!-- after -->");
  EXPECT_EQ(doc.root.name, "root");
  ASSERT_EQ(doc.root.children.size(), 1u);
  EXPECT_EQ(doc.root.children[0].AttrInt("a"), 1);
}

TEST(XmlParseTest, ParsesTextContentAndEntities) {
  Document doc = Parse("<msg>a &lt;b&gt; &amp; c &quot;d&quot;</msg>");
  EXPECT_EQ(doc.root.text, "a <b> & c \"d\"");
}

TEST(XmlParseTest, SingleAndDoubleQuotedAttributes) {
  Document doc = Parse("<e one='1' two=\"2\"/>");
  EXPECT_EQ(doc.root.Attr("one"), "1");
  EXPECT_EQ(doc.root.Attr("two"), "2");
}

TEST(XmlParseTest, NestedChildrenPreserveOrder) {
  Document doc = Parse("<a><b i='0'/><c/><b i='1'/></a>");
  auto bs = doc.root.FindAll("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->AttrInt("i"), 0);
  EXPECT_EQ(bs[1]->AttrInt("i"), 1);
  EXPECT_NE(doc.root.FindChild("c"), nullptr);
  EXPECT_EQ(doc.root.FindChild("zz"), nullptr);
}

TEST(XmlParseTest, AttrFallbacks) {
  Document doc = Parse("<e x='2.5'/>");
  EXPECT_EQ(doc.root.Attr("missing", "def"), "def");
  EXPECT_EQ(doc.root.AttrInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(doc.root.AttrDouble("x"), 2.5);
  EXPECT_DOUBLE_EQ(doc.root.AttrDouble("missing", 1.5), 1.5);
}

TEST(XmlParseTest, RejectsMismatchedClosingTag) {
  EXPECT_THROW(Parse("<a><b></a></b>"), ParseError);
}

TEST(XmlParseTest, RejectsUnterminatedElement) {
  EXPECT_THROW(Parse("<a><b/>"), ParseError);
}

TEST(XmlParseTest, RejectsDuplicateAttribute) {
  EXPECT_THROW(Parse("<a x='1' x='2'/>"), ParseError);
}

TEST(XmlParseTest, RejectsTrailingContent) {
  EXPECT_THROW(Parse("<a/><b/>"), ParseError);
}

TEST(XmlParseTest, RejectsUnknownEntity) {
  EXPECT_THROW(Parse("<a>&bogus;</a>"), ParseError);
}

TEST(XmlParseTest, ReportsLineNumbers) {
  try {
    Parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 3);
  }
}

TEST(XmlSerializeTest, RoundTripsElementTree) {
  Document doc = Parse(
      "<sensei><analysis type=\"catalyst\" frequency=\"10\">"
      "<camera phi=\"30\"/></analysis><analysis type=\"checkpoint\"/>"
      "</sensei>");
  const std::string text = xmlcfg::Serialize(doc.root);
  Document again = Parse(text);
  ASSERT_EQ(again.root.children.size(), 2u);
  EXPECT_EQ(again.root.children[0].Attr("type"), "catalyst");
  EXPECT_EQ(again.root.children[0].children[0].Attr("phi"), "30");
  EXPECT_EQ(again.root.children[1].Attr("type"), "checkpoint");
}

TEST(XmlSerializeTest, EscapesSpecialCharacters) {
  Element e;
  e.name = "v";
  e.attributes["a"] = "x<y&\"z\"";
  e.text = "1 < 2";
  Document doc = Parse(xmlcfg::Serialize(e));
  EXPECT_EQ(doc.root.Attr("a"), "x<y&\"z\"");
  EXPECT_EQ(doc.root.text, "1 < 2");
}

TEST(XmlFileTest, ParseFileReadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/config_test.xml";
  {
    std::ofstream out(path);
    out << "<sensei><analysis type=\"stats\" frequency=\"5\"/></sensei>";
  }
  Document doc = xmlcfg::ParseFile(path);
  EXPECT_EQ(doc.root.children[0].Attr("type"), "stats");
}

TEST(XmlFileTest, MissingFileThrows) {
  EXPECT_THROW(xmlcfg::ParseFile("/nonexistent/nope.xml"), std::runtime_error);
}

}  // namespace
