#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "adios/bp_file.hpp"
#include "adios/marshal.hpp"
#include "adios/sst.hpp"
#include "mpimini/runtime.hpp"

namespace {

using adios::BpFileReader;
using adios::BpFileWriter;
using adios::MarshalStep;
using adios::SstReader;
using adios::SstWriter;
using adios::StepPayload;
using adios::UnmarshalStep;
using mpimini::Comm;
using mpimini::Runtime;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

core::Buffer Buf(const std::string& s) {
  return core::Buffer::TakeVector("", Bytes(s));
}

TEST(MarshalTest, RoundTripsVariables) {
  StepPayload payload;
  payload.step = 42;
  payload.writer_rank = 3;
  payload.variables["mesh"] = Buf("geometry-bytes");
  payload.variables["time"] = Buf("12345678");
  payload.variables["empty"] = {};

  auto buffer = MarshalStep(payload);
  StepPayload back = UnmarshalStep(buffer);
  EXPECT_EQ(back.step, 42);
  EXPECT_EQ(back.writer_rank, 3);
  ASSERT_EQ(back.variables.size(), 3u);
  EXPECT_EQ(back.variables.at("mesh"), payload.variables.at("mesh"));
  EXPECT_TRUE(back.variables.at("empty").empty());
  EXPECT_EQ(back.TotalBytes(), payload.TotalBytes());
}

TEST(MarshalTest, RejectsCorruptMagic) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  buffer[0] = std::byte{0xEE};
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsTruncation) {
  StepPayload payload;
  payload.variables["x"] = Buf("abcdefgh");
  auto buffer = MarshalStep(payload);
  buffer.resize(buffer.size() - 4);
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsTrailingBytes) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  buffer.resize(buffer.size() + 3);
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

// Wire layout: u64 magic, i64 step, i64 writer_rank, u64 count, then per
// variable u64 name_len, name, u64 data_len, data.  The corruption tests
// below overwrite a length field with a value far past the buffer end; the
// parser must throw instead of reading out of bounds.
TEST(MarshalTest, RejectsOversizedNameLength) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(buffer.data() + 32, &huge, sizeof(huge));  // name_len field
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsOversizedDataLength) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(buffer.data() + 41, &huge, sizeof(huge));  // data_len of "x"
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsDataLengthJustPastEnd) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t off_by_one = 4;  // actual data is 3 bytes
  std::memcpy(buffer.data() + 41, &off_by_one, sizeof(off_by_one));
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, ZeroByteVariablesRoundTrip) {
  StepPayload payload;
  payload.step = 7;
  payload.variables["a"] = {};
  payload.variables["b"] = {};
  auto buffer = MarshalStep(payload);
  StepPayload back = UnmarshalStep(buffer);
  ASSERT_EQ(back.variables.size(), 2u);
  EXPECT_TRUE(back.variables.at("a").empty());
  EXPECT_TRUE(back.variables.at("b").empty());
  EXPECT_EQ(back.TotalBytes(), 0u);
}

TEST(MarshalTest, UnmarshalSharedSlicesWithoutCopy) {
  StepPayload payload;
  payload.step = 9;
  payload.variables["mesh"] = Buf("geometry-bytes");
  core::Buffer packed = core::Buffer::TakeVector("", MarshalStep(payload));
  const std::byte* lo = packed.data();
  const std::byte* hi = packed.data() + packed.size();

  StepPayload back = adios::UnmarshalShared(packed);
  const core::Buffer& mesh = back.variables.at("mesh");
  EXPECT_EQ(mesh, payload.variables.at("mesh"));
  // Zero-copy: the variable's bytes live inside the packed buffer, and the
  // packed block is shared (kept alive) by the slice.
  EXPECT_GE(mesh.data(), lo);
  EXPECT_LE(mesh.data() + mesh.size(), hi);
  EXPECT_GT(packed.UseCount(), 1);
}

TEST(MarshalTest, UnmarshalSharedValidatesLikeUnmarshalStep) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto bytes = MarshalStep(payload);
  bytes[0] = std::byte{0xEE};
  core::Buffer packed = core::Buffer::TakeVector("", std::move(bytes));
  EXPECT_THROW(adios::UnmarshalShared(packed), std::runtime_error);
}

TEST(SstTest, OneWriterOneReaderStreamsSteps) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1);
      for (int s = 0; s < 5; ++s) {
        writer.BeginStep(s * 10);
        writer.Put("mesh", Bytes("step " + std::to_string(s)));
        writer.EndStep();
      }
      writer.Close();
      EXPECT_EQ(writer.Stats().steps, 5u);
    } else {
      SstReader reader(comm, {0});
      int expected = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->step, expected * 10);
        ASSERT_EQ(step->payloads.size(), 1u);
        const auto& payload = step->payloads.at(0);
        EXPECT_EQ(payload.variables.at("mesh"),
                  Bytes("step " + std::to_string(expected)));
        ++expected;
      }
      EXPECT_EQ(expected, 5);
      EXPECT_EQ(reader.Stats().steps, 5u);
    }
  });
}

TEST(SstTest, FourToOneFanIn) {
  // The paper's 4:1 sim:endpoint ratio.
  Runtime::Run(5, [](Comm& comm) {
    if (comm.Rank() < 4) {
      SstWriter writer(comm, 4);
      for (int s = 0; s < 3; ++s) {
        writer.BeginStep(s);
        writer.Put("mesh", Bytes("rank" + std::to_string(comm.Rank())));
        writer.EndStep();
      }
      writer.Close();
    } else {
      SstReader reader(comm, {0, 1, 2, 3});
      int steps = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->payloads.size(), 4u);
        for (int w = 0; w < 4; ++w) {
          EXPECT_EQ(step->payloads.at(w).variables.at("mesh"),
                    Bytes("rank" + std::to_string(w)));
        }
        ++steps;
      }
      EXPECT_EQ(steps, 3);
    }
  });
}

TEST(SstTest, QueueLimitBoundsInFlightSteps) {
  // With queue_limit 1 the writer cannot run ahead: after EndStep(n), the
  // next BeginStep blocks until the reader acked step n. We verify the
  // blocking indirectly: the writer's 50 steps complete against a slow
  // reader and arrive in order.
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1, {.queue_limit = 1});
      for (int s = 0; s < 50; ++s) {
        writer.BeginStep(s);
        writer.Put("v", Bytes(std::string(1000, 'x')));
        writer.EndStep();
      }
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      int expected = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->step, expected++);
      }
      EXPECT_EQ(expected, 50);
    }
  });
}

TEST(SstTest, QueueDepthWatermarkExactUnderConcurrentFeeders) {
  // Two writer ranks feed one reader concurrently; the reader is held back
  // (tag-7 rendezvous) until both writers have filled their staging queues.
  // Pins the sst.queue_depth gauge watermark: it must reach queue_limit
  // exactly and never exceed it, per writer, with no cross-rank bleed.
  constexpr int kQueueLimit = 2;
  constexpr int kSteps = 5;
  constexpr int kReaderRank = 2;
  constexpr int kGoTag = 7;
  mpimini::RunSettings settings;
  settings.metrics = true;
  auto result = Runtime::Run(3, settings, [&](Comm& comm) {
    if (comm.Rank() != kReaderRank) {
      SstWriter writer(comm, kReaderRank, {.queue_limit = kQueueLimit});
      for (int s = 0; s < kSteps; ++s) {
        writer.BeginStep(s);
        writer.Put("v", Bytes(std::string(1000, 'x')));
        writer.EndStep();
        // Release the reader only once the staging queue is full: the
        // watermark deterministically hits the limit before any ack.
        if (s == kQueueLimit - 1) {
          comm.SendValue<std::int32_t>(kReaderRank, kGoTag, 1);
        }
      }
      writer.Close();
    } else {
      comm.RecvValue<std::int32_t>(0, kGoTag);
      comm.RecvValue<std::int32_t>(1, kGoTag);
      SstReader reader(comm, {0, 1});
      int steps = 0;
      while (reader.NextStep()) ++steps;
      EXPECT_EQ(steps, kSteps);
    }
  });
  ASSERT_EQ(result.metrics.size(), 3u);
  for (int w = 0; w < 2; ++w) {
    const auto& registry = *result.metrics[static_cast<std::size_t>(w)];
    const auto* depth = registry.Gauge("sst.queue_depth");
    ASSERT_NE(depth, nullptr) << "writer " << w;
    EXPECT_EQ(depth->high, static_cast<double>(kQueueLimit)) << "writer " << w;
    EXPECT_EQ(registry.Counter("sst.steps"), static_cast<double>(kSteps))
        << "writer " << w;
  }
  // The reader never stages: its registry must not grow a queue gauge.
  EXPECT_EQ(result.metrics[kReaderRank]->Gauge("sst.queue_depth"), nullptr);
}

TEST(SstTest, ArrivalOrderDrainAvoidsHeadOfLineBlocking) {
  // Writer 0 is deliberately the SLOWEST: it ships only after writer 1's
  // payload has been consumed AND acked — writer 1's Close() returns once
  // its data ack arrived, and only then does the tag-7 signal release
  // writer 0.  A fixed-order drain (blocking receive on writer 0 first)
  // deadlocks here: the reader waits on writer 0, writer 0 waits on the
  // signal, the signal waits on writer 1's ack, and the ack waits on the
  // reader.  Arrival-order draining must consume writer 1 first.
  constexpr int kGoTag = 7;
  Runtime::Run(3, [&](Comm& comm) {
    if (comm.Rank() == 0) {
      comm.RecvValue<std::int32_t>(1, kGoTag);  // gate on writer 1's ack
      SstWriter writer(comm, 2);
      writer.BeginStep(0);
      writer.Put("v", Bytes("slow"));
      writer.EndStep();
      writer.Close();
    } else if (comm.Rank() == 1) {
      SstWriter writer(comm, 2);
      writer.BeginStep(0);
      writer.Put("v", Bytes("fast"));
      writer.EndStep();
      writer.Close();  // returns only after the reader acked the step
      comm.SendValue<std::int32_t>(0, kGoTag, 1);
    } else {
      SstReader reader(comm, {0, 1});
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      EXPECT_EQ(step->step, 0);
      ASSERT_EQ(step->payloads.size(), 2u);
      EXPECT_EQ(step->payloads.at(0).variables.at("v"), Bytes("slow"));
      EXPECT_EQ(step->payloads.at(1).variables.at("v"), Bytes("fast"));
      EXPECT_FALSE(reader.NextStep().has_value());
    }
  });
}

TEST(SstTest, AckMismatchThrowsDescriptively) {
  // A misbehaving endpoint acks a step the writer never shipped.  The
  // writer must refuse to free a staging slot on the bogus ack: the next
  // BeginStep (queue full -> drains acks) throws, naming both the acked
  // step and the oldest in-flight step.
  Runtime::Run(2, [](Comm& comm) {
    constexpr int kTagSstMsg = 8001;  // wire tags, mirrored from sst.cpp
    constexpr int kTagSstAck = 8002;
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1, {.queue_limit = 1});
      writer.BeginStep(5);
      writer.Put("v", Bytes("abc"));
      writer.EndStep();
      try {
        writer.BeginStep(6);
        FAIL() << "BeginStep accepted a mismatched ack";
      } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ack mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("99"), std::string::npos) << what;  // bogus ack
        EXPECT_NE(what.find("5"), std::string::npos) << what;   // in flight
      }
    } else {
      core::Buffer message = comm.RecvBuffer(0, kTagSstMsg);
      EXPECT_FALSE(message.empty());
      comm.SendValue<std::int32_t>(0, kTagSstAck, 99);
    }
  });
}

TEST(SstTest, WriterMisuseThrows) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1);
      EXPECT_THROW(writer.Put("x", {}), std::runtime_error);
      EXPECT_THROW(writer.EndStep(), std::runtime_error);
      writer.BeginStep(0);
      EXPECT_THROW(writer.BeginStep(1), std::runtime_error);
      EXPECT_THROW(writer.Close(), std::runtime_error);
      writer.EndStep();
      writer.Close();
      EXPECT_THROW(writer.BeginStep(2), std::runtime_error);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, MarshalMemoryHeldUntilAck) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      mpimini::RankEnv* env = mpimini::CurrentEnv();
      SstWriter writer(comm, 1);
      writer.BeginStep(0);
      writer.Put("big", std::vector<std::byte>(1 << 16));
      EXPECT_GE(env->memory.CurrentBytes("marshal"), std::size_t{1} << 16);
      writer.EndStep();
      // The packed step stays attributed to the writer until acked (SST
      // staging-queue semantics).
      EXPECT_GE(env->memory.CurrentBytes("marshal"), std::size_t{1} << 16);
      writer.Close();  // drains the ack
      EXPECT_EQ(env->memory.CurrentBytes("marshal"), 0u);
      // High-water saw both the staged variable and the packed buffer.
      EXPECT_GT(env->memory.PeakBytes("marshal"), std::size_t{1} << 16);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, QueueLimitBoundsStagingMemory) {
  // With queue_limit 2 the writer may hold at most two packed steps even
  // when the reader is slow — the sim-node memory bound of Fig 6.
  Runtime::Run(2, [](Comm& comm) {
    constexpr std::size_t kPayload = 1 << 14;
    if (comm.Rank() == 0) {
      mpimini::RankEnv* env = mpimini::CurrentEnv();
      SstWriter writer(comm, 1, {.queue_limit = 2});
      for (int s = 0; s < 10; ++s) {
        writer.BeginStep(s);
        writer.Put("v", std::vector<std::byte>(kPayload));
        writer.EndStep();
      }
      writer.Close();
      // Peak below ~ 3x payload: 2 in-flight packed steps + one staged.
      EXPECT_LT(env->memory.PeakBytes("marshal"), 4 * kPayload);
      EXPECT_EQ(env->memory.CurrentBytes("marshal"), 0u);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, ZeroCopyPutChainPacksFieldExactlyOnce) {
  // The in transit data-plane invariant: a staged full-size field crosses
  // the writer with exactly ONE bulk copy — the transport-boundary pack in
  // SendGather.  The seed path copied it >= 4 times (serialize, Put,
  // marshal, mailbox send).
  Runtime::Run(2, [](Comm& comm) {
    constexpr std::size_t kField = std::size_t{1} << 16;
    if (comm.Rank() == 0) {
      core::Buffer field("", kField);
      field.bytes()[kField - 1] = std::byte{0x3C};
      SstWriter writer(comm, 1);
      writer.BeginStep(0);
      core::ResetLocalBufferStats();
      writer.PutChain("field", core::BufferChain(core::BufferView(field)));
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);  // staging is free
      writer.EndStep();
      EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);  // the one pack
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      core::ResetLocalBufferStats();
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      const core::Buffer& field = step->payloads.at(0).variables.at("field");
      ASSERT_EQ(field.size(), kField);
      EXPECT_EQ(field[kField - 1], std::byte{0x3C});
      // Reader side is fully zero-copy: the variable is a slice of the
      // received transport buffer.
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
      EXPECT_GE(core::LocalBufferStats().adoptions, 1u);
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(BpFileTest, WriteThenReadSteps) {
  const std::string path = ::testing::TempDir() + "/stream.bp";
  {
    BpFileWriter writer(path);
    for (int s = 0; s < 4; ++s) {
      writer.BeginStep(s);
      writer.Put("data", Bytes("payload" + std::to_string(s)));
      writer.EndStep();
    }
    writer.Close();
    EXPECT_EQ(writer.BytesWritten(), std::filesystem::file_size(path));
  }
  BpFileReader reader(path);
  int expected = 0;
  while (auto step = reader.NextStep()) {
    EXPECT_EQ(step->step, expected);
    EXPECT_EQ(step->variables.at("data"),
              Bytes("payload" + std::to_string(expected)));
    ++expected;
  }
  EXPECT_EQ(expected, 4);
}

TEST(BpFileTest, EmptyFileYieldsNoSteps) {
  const std::string path = ::testing::TempDir() + "/empty.bp";
  {
    BpFileWriter writer(path);
    writer.Close();
  }
  BpFileReader reader(path);
  EXPECT_FALSE(reader.NextStep().has_value());
}

TEST(BpFileTest, MissingFileThrows) {
  EXPECT_THROW(BpFileReader("/nonexistent/x.bp"), std::runtime_error);
}

}  // namespace
