#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "adios/bp_file.hpp"
#include "adios/marshal.hpp"
#include "adios/sst.hpp"
#include "codec/codec.hpp"
#include "instrument/flight_recorder.hpp"
#include "instrument/provenance.hpp"
#include "instrument/tracer.hpp"
#include "mpimini/runtime.hpp"

namespace {

using adios::BpFileReader;
using adios::BpFileWriter;
using adios::MarshalStep;
using adios::SstReader;
using adios::SstWriter;
using adios::StepPayload;
using adios::UnmarshalStep;
using mpimini::Comm;
using mpimini::Runtime;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

core::Buffer Buf(const std::string& s) {
  return core::Buffer::TakeVector("", Bytes(s));
}

std::vector<double> SmoothField(std::size_t n, double phase = 0.0) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.013 + phase) * 300.0;
  }
  return values;
}

std::vector<std::byte> AsBytes(const std::vector<double>& values) {
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

codec::Spec BlockFloat8() {
  codec::Spec spec;
  spec.kind = codec::Kind::kBlockFloat;
  spec.rate = 8;
  return spec;
}

/// A fully populated step context with distinctive values in every field.
adios::StepContext TestContext() {
  adios::StepContext context;
  context.run_id = 0x1122334455667788ULL;
  context.origin_span_id = 0x00FFEEDDCCBBAA99ULL;
  context.origin_ts_ns = 123456789;
  context.origin_offset_ns = -4242;
  return context;
}

/// Message of the std::runtime_error thrown by UnmarshalStep, or "" if it
/// unexpectedly succeeded.
std::string UnmarshalError(std::span<const std::byte> buffer) {
  try {
    (void)UnmarshalStep(buffer);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(MarshalTest, RoundTripsVariables) {
  StepPayload payload;
  payload.step = 42;
  payload.writer_rank = 3;
  payload.variables["mesh"] = Buf("geometry-bytes");
  payload.variables["time"] = Buf("12345678");
  payload.variables["empty"] = {};

  auto buffer = MarshalStep(payload);
  StepPayload back = UnmarshalStep(buffer);
  EXPECT_EQ(back.step, 42);
  EXPECT_EQ(back.writer_rank, 3);
  ASSERT_EQ(back.variables.size(), 3u);
  EXPECT_EQ(back.variables.at("mesh"), payload.variables.at("mesh"));
  EXPECT_TRUE(back.variables.at("empty").empty());
  EXPECT_EQ(back.TotalBytes(), payload.TotalBytes());
}

TEST(MarshalTest, RejectsCorruptMagic) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  buffer[0] = std::byte{0xEE};
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsTruncation) {
  StepPayload payload;
  payload.variables["x"] = Buf("abcdefgh");
  auto buffer = MarshalStep(payload);
  buffer.resize(buffer.size() - 4);
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsTrailingBytes) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  buffer.resize(buffer.size() + 3);
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

// Wire layout (v2): u64 magic, i64 step, i64 writer_rank, u64 count, then
// per variable u64 name_len, name, u64 codec_kind, u64 raw_len,
// u64 wire_len, wire bytes.  For the single variable "x" that puts name_len
// at offset 32, codec_kind at 41, raw_len at 49, wire_len at 57 and the
// data at 65.  The corruption tests below overwrite header fields with
// values far past the buffer end; the parser must throw a descriptive
// error instead of reading out of bounds.
TEST(MarshalTest, RejectsOversizedNameLength) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(buffer.data() + 32, &huge, sizeof(huge));  // name_len field
  EXPECT_NE(UnmarshalError(buffer).find("overruns"), std::string::npos);
}

TEST(MarshalTest, RejectsUnknownCodecKind) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t bogus = 99;
  std::memcpy(buffer.data() + 41, &bogus, sizeof(bogus));  // codec_kind
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("unknown codec kind"), std::string::npos) << what;
  EXPECT_NE(what.find("99"), std::string::npos) << what;
}

TEST(MarshalTest, RejectsOversizedDataLength) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t huge = std::uint64_t{1} << 60;
  // Keep raw_len == wire_len so the identity consistency check passes and
  // the bounds check is what fires.
  std::memcpy(buffer.data() + 49, &huge, sizeof(huge));  // raw_len of "x"
  std::memcpy(buffer.data() + 57, &huge, sizeof(huge));  // wire_len of "x"
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("data overruns"), std::string::npos) << what;
}

TEST(MarshalTest, RejectsImplausibleRawLengthOnCodedVariable) {
  // For a non-identity variable raw_len != wire_len is legal, so the
  // identity consistency check never sees it; a corrupt raw_len of ~2^60
  // must still fail with a named parse error at decode time, not a huge
  // allocation / bad_alloc.
  adios::StepChain staged;
  codec::Spec rle;
  rle.kind = codec::Kind::kShuffleRle;
  staged.variables["x"] =
      core::BufferChain(core::BufferView(Buf(std::string(256, 'a'))));
  staged.codecs["x"] = rle;
  core::Buffer packed = adios::MarshalChain(staged).Pack("test");
  std::vector<std::byte> buffer(packed.bytes().begin(), packed.bytes().end());
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(buffer.data() + 49, &huge, sizeof(huge));  // raw_len of "x"
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("corrupt length field"), std::string::npos) << what;
}

TEST(MarshalTest, RejectsDataLengthJustPastEnd) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t off_by_one = 4;  // actual data is 3 bytes
  std::memcpy(buffer.data() + 49, &off_by_one, sizeof(off_by_one));
  std::memcpy(buffer.data() + 57, &off_by_one, sizeof(off_by_one));
  EXPECT_THROW(UnmarshalStep(buffer), std::runtime_error);
}

TEST(MarshalTest, RejectsIdentityRawWireMismatch) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t wrong = 2;  // raw_len stays 3
  std::memcpy(buffer.data() + 57, &wrong, sizeof(wrong));  // wire_len
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("identity-coded"), std::string::npos) << what;
}

TEST(MarshalTest, EveryTruncatedPrefixThrows) {
  // Fuzz-style sweep: no prefix of a valid step buffer may parse, crash, or
  // read out of bounds — every cut point must surface a runtime_error.
  StepPayload payload;
  payload.step = 11;
  payload.writer_rank = 2;
  payload.variables["x"] = Buf("abc");
  payload.variables["yy"] = Buf("defgh");
  const auto buffer = MarshalStep(payload);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    EXPECT_THROW((void)UnmarshalStep(std::span(buffer.data(), cut)),
                 std::runtime_error)
        << "prefix " << cut << " of " << buffer.size();
  }
  EXPECT_NO_THROW((void)UnmarshalStep(buffer));
}

TEST(MarshalTest, TruncationErrorsNameTheHeaderField) {
  // Each header field has a known offset for the single variable "x"; a cut
  // inside a field must name that field in the error message.
  StepPayload payload;
  payload.variables["x"] = Buf("abc");  // total size 68
  const auto buffer = MarshalStep(payload);
  ASSERT_EQ(buffer.size(), 68u);
  const std::pair<std::size_t, const char*> cases[] = {
      {4, "magic"},           {12, "step"},
      {20, "writer_rank"},    {28, "variable count"},
      {36, "name length"},    {40, "name overruns"},
      {44, "codec kind"},     {52, "raw length"},
      {60, "wire length"},    {66, "data overruns"},
  };
  for (const auto& [cut, field] : cases) {
    const std::string what =
        UnmarshalError(std::span(buffer.data(), cut));
    EXPECT_NE(what.find(field), std::string::npos)
        << "prefix " << cut << " gave: " << what;
  }
  EXPECT_NE(UnmarshalError({}).find("magic"), std::string::npos);
}

TEST(MarshalTest, TrailingByteErrorCountsTheExcess) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  buffer.resize(buffer.size() + 3);
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("trailing"), std::string::npos) << what;
  EXPECT_NE(what.find("3"), std::string::npos) << what;
}

// Wire layout (v3): as v2 but magic "BP7MINI" and, between writer_rank and
// the variable count, the 40-byte step context — u64 version at offset 24,
// u64 run_id at 32, u64 origin_span_id at 40, i64 origin_ts_ns at 48,
// i64 origin_offset_ns at 56; the variable count moves to 64.
TEST(MarshalTest, StepContextRoundTripsThroughV3Header) {
  StepPayload payload;
  payload.step = 42;
  payload.writer_rank = 3;
  payload.context = TestContext();
  payload.variables["mesh"] = Buf("geometry-bytes");
  auto buffer = MarshalStep(payload);
  StepPayload back = UnmarshalStep(buffer);
  EXPECT_EQ(back.step, 42);
  EXPECT_EQ(back.writer_rank, 3);
  ASSERT_TRUE(back.context.Valid());
  EXPECT_EQ(back.context.run_id, payload.context.run_id);
  EXPECT_EQ(back.context.origin_span_id, payload.context.origin_span_id);
  EXPECT_EQ(back.context.origin_ts_ns, payload.context.origin_ts_ns);
  EXPECT_EQ(back.context.origin_offset_ns, payload.context.origin_offset_ns);
  EXPECT_EQ(back.variables.at("mesh"), payload.variables.at("mesh"));
  // The zero-copy flavor (the SST receive path) parses the same header.
  core::Buffer packed = core::Buffer::TakeVector("", std::move(buffer));
  StepPayload shared = adios::UnmarshalShared(packed);
  EXPECT_EQ(shared.context.run_id, payload.context.run_id);
  EXPECT_EQ(shared.context.origin_offset_ns, payload.context.origin_offset_ns);
}

TEST(MarshalTest, ContextFreeStepIsBitIdenticalToV2Wire) {
  // Compatibility pin: a step staged without a causal context marshals to
  // the exact v2 wire bytes, hand-assembled here from the documented
  // layout.  Pre-v3 readers, BP files on disk, and the byte counters the
  // bench baselines pin all stay unchanged unless provenance is attached.
  StepPayload payload;
  payload.step = 11;
  payload.writer_rank = 2;
  payload.variables["x"] = Buf("abc");
  const auto buffer = MarshalStep(payload);

  std::vector<std::byte> expected;
  auto append_u64 = [&](std::uint64_t v) {
    const std::size_t old = expected.size();
    expected.resize(old + sizeof(v));
    std::memcpy(expected.data() + old, &v, sizeof(v));
  };
  auto append_ascii = [&](const std::string& s) {
    for (char c : s) expected.push_back(static_cast<std::byte>(c));
  };
  append_u64(0x4250364D494E49ULL);  // "BP6MINI" (v2 magic, marshal.cpp)
  append_u64(11);                   // step
  append_u64(2);                    // writer_rank
  append_u64(1);                    // variable count
  append_u64(1);                    // name length
  append_ascii("x");
  append_u64(0);                    // codec kind (identity)
  append_u64(3);                    // raw length
  append_u64(3);                    // wire length
  append_ascii("abc");
  ASSERT_EQ(buffer.size(), expected.size());
  EXPECT_EQ(std::memcmp(buffer.data(), expected.data(), expected.size()), 0);

  // Attaching a context grows the buffer by exactly the 40-byte context
  // block, switches the magic to v3, and moves nothing else: everything
  // after the (step, writer_rank) header is byte-identical.
  payload.context = TestContext();
  const auto v3 = MarshalStep(payload);
  ASSERT_EQ(v3.size(), expected.size() + 40);
  std::uint64_t magic = 0;
  std::memcpy(&magic, v3.data(), sizeof(magic));
  EXPECT_EQ(magic, 0x4250374D494E49ULL);  // "BP7MINI"
  EXPECT_EQ(std::memcmp(v3.data() + 24 + 40, expected.data() + 24,
                        expected.size() - 24),
            0);
}

TEST(MarshalTest, RejectsUnknownStepContextVersionByName) {
  // Forward compatibility: a reader must refuse (not mis-parse) a context
  // layout it does not understand, naming the field and the value.
  StepPayload payload;
  payload.context = TestContext();
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t future = 7;
  std::memcpy(buffer.data() + 24, &future, sizeof(future));  // version field
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("step-context version"), std::string::npos) << what;
  EXPECT_NE(what.find("7"), std::string::npos) << what;
}

TEST(MarshalTest, RejectsNullContextRunIdInV3Header) {
  // A v3 header claiming "provenance attached" with run_id 0 is corrupt:
  // writers only upgrade to v3 for a valid context.
  StepPayload payload;
  payload.context = TestContext();
  payload.variables["x"] = Buf("abc");
  auto buffer = MarshalStep(payload);
  const std::uint64_t zero = 0;
  std::memcpy(buffer.data() + 32, &zero, sizeof(zero));  // run_id field
  const std::string what = UnmarshalError(buffer);
  EXPECT_NE(what.find("run_id"), std::string::npos) << what;
}

TEST(MarshalTest, EveryTruncatedPrefixOfV3BufferThrows) {
  // The v2 fuzz sweep repeated over a context-carrying buffer: no prefix
  // may parse, crash, or read out of bounds.
  StepPayload payload;
  payload.step = 11;
  payload.writer_rank = 2;
  payload.context = TestContext();
  payload.variables["x"] = Buf("abc");
  payload.variables["yy"] = Buf("defgh");
  const auto buffer = MarshalStep(payload);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    EXPECT_THROW((void)UnmarshalStep(std::span(buffer.data(), cut)),
                 std::runtime_error)
        << "prefix " << cut << " of " << buffer.size();
  }
  EXPECT_NO_THROW((void)UnmarshalStep(buffer));
}

TEST(MarshalTest, ContextTruncationErrorsNameTheContextField) {
  // A cut inside each context field must name that field in the error.
  StepPayload payload;
  payload.context = TestContext();
  payload.variables["x"] = Buf("abc");
  const auto buffer = MarshalStep(payload);
  ASSERT_EQ(buffer.size(), 108u);  // 68-byte v2 body + 40-byte context
  const std::pair<std::size_t, const char*> cases[] = {
      {28, "step-context version"},
      {36, "step-context run_id"},
      {44, "step-context origin_span_id"},
      {52, "step-context origin_ts_ns"},
      {60, "step-context origin_offset_ns"},
  };
  for (const auto& [cut, field] : cases) {
    const std::string what = UnmarshalError(std::span(buffer.data(), cut));
    EXPECT_NE(what.find(field), std::string::npos)
        << "prefix " << cut << " gave: " << what;
  }
}

TEST(MarshalTest, CodecTaggedChainRoundTripsWithStats) {
  const std::vector<double> field = SmoothField(512);
  core::Buffer temp = core::Buffer::TakeVector("", AsBytes(field));

  std::vector<std::int64_t> ids(256);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(7 * i);
  }
  std::vector<std::byte> id_bytes(ids.size() * sizeof(std::int64_t));
  std::memcpy(id_bytes.data(), ids.data(), id_bytes.size());
  core::Buffer conn =
      core::Buffer::TakeVector("", std::vector<std::byte>(id_bytes));

  adios::StepChain staged;
  staged.step = 3;
  staged.writer_rank = 1;
  staged.variables["temp"] = core::BufferChain(core::BufferView(temp));
  staged.codecs["temp"] = BlockFloat8();
  staged.variables["conn"] = core::BufferChain(core::BufferView(conn));
  codec::Spec rle;
  rle.kind = codec::Kind::kShuffleRle;
  rle.delta = true;
  staged.codecs["conn"] = rle;
  staged.variables["meta"] = core::BufferChain(core::BufferView(Buf("hi")));

  adios::MarshalStats stats;
  core::BufferChain chain = adios::MarshalChain(staged, &stats);
  const std::size_t total_raw = temp.size() + conn.size() + 2;
  EXPECT_EQ(stats.raw_bytes, total_raw);
  EXPECT_LT(stats.wire_bytes, stats.raw_bytes);

  core::Buffer packed = chain.Pack("test");
  StepPayload back = UnmarshalStep(packed.bytes());
  EXPECT_EQ(back.step, 3);
  EXPECT_EQ(back.writer_rank, 1);
  EXPECT_EQ(back.raw_bytes, stats.raw_bytes);
  EXPECT_EQ(back.wire_bytes, stats.wire_bytes);

  // Lossless planes come back byte-exact; the lossy plane honours the
  // documented blockfloat bound.
  EXPECT_EQ(back.variables.at("conn"), id_bytes);
  EXPECT_EQ(back.variables.at("meta"), Bytes("hi"));
  const core::Buffer& decoded = back.variables.at("temp");
  ASSERT_EQ(decoded.size(), field.size() * sizeof(double));
  std::vector<double> values(field.size());
  std::memcpy(values.data(), decoded.data(), decoded.size());
  const double bound = codec::BlockFloatErrorBound(field, 8);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_LE(std::fabs(field[i] - values[i]), bound) << i;
  }
}

TEST(MarshalTest, IdentityOnlyChainMatchesMarshalStepExactly) {
  // Sync/uncompressed compatibility pin: with no codecs configured the
  // chain-marshaled bytes are byte-identical to the value-semantics path,
  // so pre-codec readers and files keep working unchanged.
  StepPayload payload;
  payload.step = 5;
  payload.writer_rank = 0;
  payload.variables["mesh"] = Buf("geometry-bytes");
  payload.variables["time"] = Buf("12345678");
  const auto reference = MarshalStep(payload);

  adios::StepChain staged;
  staged.step = 5;
  staged.writer_rank = 0;
  for (const auto& [name, data] : payload.variables) {
    staged.variables[name] = core::BufferChain(core::BufferView(data));
  }
  adios::MarshalStats stats;
  core::Buffer packed = adios::MarshalChain(staged, &stats).Pack("test");
  ASSERT_EQ(packed.size(), reference.size());
  EXPECT_EQ(std::memcmp(packed.data(), reference.data(), packed.size()), 0);
  EXPECT_EQ(stats.raw_bytes, stats.wire_bytes);
}

TEST(MarshalTest, ZeroByteVariablesRoundTrip) {
  StepPayload payload;
  payload.step = 7;
  payload.variables["a"] = {};
  payload.variables["b"] = {};
  auto buffer = MarshalStep(payload);
  StepPayload back = UnmarshalStep(buffer);
  ASSERT_EQ(back.variables.size(), 2u);
  EXPECT_TRUE(back.variables.at("a").empty());
  EXPECT_TRUE(back.variables.at("b").empty());
  EXPECT_EQ(back.TotalBytes(), 0u);
}

TEST(MarshalTest, UnmarshalSharedSlicesWithoutCopy) {
  StepPayload payload;
  payload.step = 9;
  payload.variables["mesh"] = Buf("geometry-bytes");
  core::Buffer packed = core::Buffer::TakeVector("", MarshalStep(payload));
  const std::byte* lo = packed.data();
  const std::byte* hi = packed.data() + packed.size();

  StepPayload back = adios::UnmarshalShared(packed);
  const core::Buffer& mesh = back.variables.at("mesh");
  EXPECT_EQ(mesh, payload.variables.at("mesh"));
  // Zero-copy: the variable's bytes live inside the packed buffer, and the
  // packed block is shared (kept alive) by the slice.
  EXPECT_GE(mesh.data(), lo);
  EXPECT_LE(mesh.data() + mesh.size(), hi);
  EXPECT_GT(packed.UseCount(), 1);
}

TEST(MarshalTest, UnmarshalSharedValidatesLikeUnmarshalStep) {
  StepPayload payload;
  payload.variables["x"] = Buf("abc");
  auto bytes = MarshalStep(payload);
  bytes[0] = std::byte{0xEE};
  core::Buffer packed = core::Buffer::TakeVector("", std::move(bytes));
  EXPECT_THROW(adios::UnmarshalShared(packed), std::runtime_error);
}

TEST(SstTest, OneWriterOneReaderStreamsSteps) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1);
      for (int s = 0; s < 5; ++s) {
        writer.BeginStep(s * 10);
        writer.Put("mesh", Bytes("step " + std::to_string(s)));
        writer.EndStep();
      }
      writer.Close();
      EXPECT_EQ(writer.Stats().steps, 5u);
    } else {
      SstReader reader(comm, {0});
      int expected = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->step, expected * 10);
        ASSERT_EQ(step->payloads.size(), 1u);
        const auto& payload = step->payloads.at(0);
        EXPECT_EQ(payload.variables.at("mesh"),
                  Bytes("step " + std::to_string(expected)));
        ++expected;
      }
      EXPECT_EQ(expected, 5);
      EXPECT_EQ(reader.Stats().steps, 5u);
    }
  });
}

TEST(SstTest, StepContextRidesTheWireToTheReader) {
  // The tentpole propagation path: a provenance installed on the writer's
  // thread when the step is staged crosses the wire in the v3 header and
  // surfaces on the reader's payload; a step staged with no current
  // provenance arrives context-free (and stays v2 on the wire).
  Runtime::Run(2, [](Comm& comm) {
    constexpr int kRunIdTag = 7;
    constexpr int kSpanIdTag = 8;
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1);
      instrument::StepProvenance provenance;
      provenance.run_id = instrument::MakeRunId();
      provenance.origin_rank = 0;
      provenance.step = 0;
      provenance.origin_span_id =
          instrument::StepSpanId(provenance.run_id, 0, 0);
      provenance.origin_ts_ns = 123456789;
      provenance.origin_offset_ns = -4242;
      {
        instrument::ProvenanceScope scope(&provenance);
        writer.BeginStep(0);
        writer.Put("mesh", Bytes("with-context"));
        writer.EndStep();
      }
      writer.BeginStep(1);
      writer.Put("mesh", Bytes("without"));
      writer.EndStep();
      writer.Close();
      comm.SendValue<std::uint64_t>(1, kRunIdTag, provenance.run_id);
      comm.SendValue<std::uint64_t>(1, kSpanIdTag,
                                    provenance.origin_span_id);
    } else {
      SstReader reader(comm, {0});
      auto first = reader.NextStep();
      ASSERT_TRUE(first.has_value());
      auto second = reader.NextStep();
      ASSERT_TRUE(second.has_value());
      EXPECT_FALSE(reader.NextStep().has_value());
      const auto run_id = comm.RecvValue<std::uint64_t>(0, kRunIdTag);
      const auto span_id = comm.RecvValue<std::uint64_t>(0, kSpanIdTag);
      const adios::StepContext& context = first->payloads.at(0).context;
      ASSERT_TRUE(context.Valid());
      EXPECT_EQ(context.run_id, run_id);
      EXPECT_EQ(context.origin_span_id, span_id);
      EXPECT_EQ(context.origin_ts_ns, 123456789);
      EXPECT_EQ(context.origin_offset_ns, -4242);
      EXPECT_FALSE(second->payloads.at(0).context.Valid());
    }
  });
}

TEST(SstTest, FlowEventsPairAcrossTheWire) {
  // Causal arrows in the trace: shipping a context-carrying step records a
  // start flow ("s") inside the writer's sst.send and a matching finish
  // ("f") inside the reader's sst.recv, both under the deterministic
  // StepSpanId — no id negotiation crosses the wire besides the context.
  std::atomic<std::uint64_t> expected_id{0};
  mpimini::RunSettings settings;
  settings.trace = true;
  auto result = Runtime::Run(2, settings, [&](Comm& comm) {
    if (comm.Rank() == 0) {
      instrument::StepProvenance provenance;
      provenance.run_id = instrument::MakeRunId();
      provenance.origin_rank = 0;
      provenance.step = 3;
      provenance.origin_span_id =
          instrument::StepSpanId(provenance.run_id, 0, 3);
      provenance.origin_ts_ns = 1;
      expected_id = provenance.origin_span_id;
      instrument::ProvenanceScope scope(&provenance);
      SstWriter writer(comm, 1);
      writer.BeginStep(3);
      writer.Put("mesh", Bytes("payload"));
      writer.EndStep();
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
  ASSERT_EQ(result.tracers.size(), 2u);
  const auto& sends = result.tracers[0]->Flows();
  const auto& recvs = result.tracers[1]->Flows();
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(recvs.size(), 1u);
  EXPECT_TRUE(sends[0].start);
  EXPECT_FALSE(recvs[0].start);
  EXPECT_EQ(sends[0].id, expected_id.load());
  EXPECT_EQ(recvs[0].id, expected_id.load());
  EXPECT_EQ(sends[0].step, 3);
  EXPECT_EQ(recvs[0].step, 3);
  EXPECT_GE(recvs[0].ts_ns, sends[0].ts_ns);
}

TEST(SstTest, FourToOneFanIn) {
  // The paper's 4:1 sim:endpoint ratio.
  Runtime::Run(5, [](Comm& comm) {
    if (comm.Rank() < 4) {
      SstWriter writer(comm, 4);
      for (int s = 0; s < 3; ++s) {
        writer.BeginStep(s);
        writer.Put("mesh", Bytes("rank" + std::to_string(comm.Rank())));
        writer.EndStep();
      }
      writer.Close();
    } else {
      SstReader reader(comm, {0, 1, 2, 3});
      int steps = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->payloads.size(), 4u);
        for (int w = 0; w < 4; ++w) {
          EXPECT_EQ(step->payloads.at(w).variables.at("mesh"),
                    Bytes("rank" + std::to_string(w)));
        }
        ++steps;
      }
      EXPECT_EQ(steps, 3);
    }
  });
}

TEST(SstTest, QueueLimitBoundsInFlightSteps) {
  // With queue_limit 1 the writer cannot run ahead: after EndStep(n), the
  // next BeginStep blocks until the reader acked step n. We verify the
  // blocking indirectly: the writer's 50 steps complete against a slow
  // reader and arrive in order.
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1, {.queue_limit = 1});
      for (int s = 0; s < 50; ++s) {
        writer.BeginStep(s);
        writer.Put("v", Bytes(std::string(1000, 'x')));
        writer.EndStep();
      }
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      int expected = 0;
      while (auto step = reader.NextStep()) {
        EXPECT_EQ(step->step, expected++);
      }
      EXPECT_EQ(expected, 50);
    }
  });
}

TEST(SstTest, QueueFullBlockLandsInTheFlightRecorder) {
  // Backpressure forensics: whenever BeginStep must drain an ack first,
  // the writer's (always-on) flight recorder gets a queue_block event
  // naming the oldest in-flight step it was waiting on.
  auto result = Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1, {.queue_limit = 1});
      for (int s = 0; s < 3; ++s) {
        writer.BeginStep(s);
        writer.Put("v", Bytes("payload"));
        writer.EndStep();
      }
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
  ASSERT_EQ(result.flight_recorders.size(), 2u);
  int queue_blocks = 0;
  for (const auto& event : result.flight_recorders[0]->Events()) {
    if (event.kind == instrument::FlightEventKind::kQueueBlock) {
      ++queue_blocks;
      EXPECT_EQ(event.detail, "sst.queue_full");
      EXPECT_GE(event.step, 0);
      EXPECT_LT(event.step, 3);
    }
  }
  // BeginStep(1), BeginStep(2), and Close each had to drain an ack.
  EXPECT_EQ(queue_blocks, 3);
}

TEST(SstTest, QueueDepthWatermarkExactUnderConcurrentFeeders) {
  // Two writer ranks feed one reader concurrently; the reader is held back
  // (tag-7 rendezvous) until both writers have filled their staging queues.
  // Pins the sst.queue_depth gauge watermark: it must reach queue_limit
  // exactly and never exceed it, per writer, with no cross-rank bleed.
  constexpr int kQueueLimit = 2;
  constexpr int kSteps = 5;
  constexpr int kReaderRank = 2;
  constexpr int kGoTag = 7;
  mpimini::RunSettings settings;
  settings.metrics = true;
  auto result = Runtime::Run(3, settings, [&](Comm& comm) {
    if (comm.Rank() != kReaderRank) {
      SstWriter writer(comm, kReaderRank, {.queue_limit = kQueueLimit});
      for (int s = 0; s < kSteps; ++s) {
        writer.BeginStep(s);
        writer.Put("v", Bytes(std::string(1000, 'x')));
        writer.EndStep();
        // Release the reader only once the staging queue is full: the
        // watermark deterministically hits the limit before any ack.
        if (s == kQueueLimit - 1) {
          comm.SendValue<std::int32_t>(kReaderRank, kGoTag, 1);
        }
      }
      writer.Close();
    } else {
      comm.RecvValue<std::int32_t>(0, kGoTag);
      comm.RecvValue<std::int32_t>(1, kGoTag);
      SstReader reader(comm, {0, 1});
      int steps = 0;
      while (reader.NextStep()) ++steps;
      EXPECT_EQ(steps, kSteps);
    }
  });
  ASSERT_EQ(result.metrics.size(), 3u);
  for (int w = 0; w < 2; ++w) {
    const auto& registry = *result.metrics[static_cast<std::size_t>(w)];
    const auto* depth = registry.Gauge("sst.queue_depth");
    ASSERT_NE(depth, nullptr) << "writer " << w;
    EXPECT_EQ(depth->high, static_cast<double>(kQueueLimit)) << "writer " << w;
    EXPECT_EQ(registry.Counter("sst.steps"), static_cast<double>(kSteps))
        << "writer " << w;
  }
  // The reader never stages: its registry must not grow a queue gauge.
  EXPECT_EQ(result.metrics[kReaderRank]->Gauge("sst.queue_depth"), nullptr);
}

TEST(SstTest, ArrivalOrderDrainAvoidsHeadOfLineBlocking) {
  // Writer 0 is deliberately the SLOWEST: it ships only after writer 1's
  // payload has been consumed AND acked — writer 1's Close() returns once
  // its data ack arrived, and only then does the tag-7 signal release
  // writer 0.  A fixed-order drain (blocking receive on writer 0 first)
  // deadlocks here: the reader waits on writer 0, writer 0 waits on the
  // signal, the signal waits on writer 1's ack, and the ack waits on the
  // reader.  Arrival-order draining must consume writer 1 first.
  constexpr int kGoTag = 7;
  Runtime::Run(3, [&](Comm& comm) {
    if (comm.Rank() == 0) {
      comm.RecvValue<std::int32_t>(1, kGoTag);  // gate on writer 1's ack
      SstWriter writer(comm, 2);
      writer.BeginStep(0);
      writer.Put("v", Bytes("slow"));
      writer.EndStep();
      writer.Close();
    } else if (comm.Rank() == 1) {
      SstWriter writer(comm, 2);
      writer.BeginStep(0);
      writer.Put("v", Bytes("fast"));
      writer.EndStep();
      writer.Close();  // returns only after the reader acked the step
      comm.SendValue<std::int32_t>(0, kGoTag, 1);
    } else {
      SstReader reader(comm, {0, 1});
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      EXPECT_EQ(step->step, 0);
      ASSERT_EQ(step->payloads.size(), 2u);
      EXPECT_EQ(step->payloads.at(0).variables.at("v"), Bytes("slow"));
      EXPECT_EQ(step->payloads.at(1).variables.at("v"), Bytes("fast"));
      EXPECT_FALSE(reader.NextStep().has_value());
    }
  });
}

TEST(SstTest, AckMismatchThrowsDescriptively) {
  // A misbehaving endpoint acks a step the writer never shipped.  The
  // writer must refuse to free a staging slot on the bogus ack: the next
  // BeginStep (queue full -> drains acks) throws, naming both the acked
  // step and the oldest in-flight step.
  Runtime::Run(2, [](Comm& comm) {
    constexpr int kTagSstMsg = 8001;  // wire tags, mirrored from sst.cpp
    constexpr int kTagSstAck = 8002;
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1, {.queue_limit = 1});
      writer.BeginStep(5);
      writer.Put("v", Bytes("abc"));
      writer.EndStep();
      try {
        writer.BeginStep(6);
        FAIL() << "BeginStep accepted a mismatched ack";
      } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ack mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("99"), std::string::npos) << what;  // bogus ack
        EXPECT_NE(what.find("5"), std::string::npos) << what;   // in flight
      }
    } else {
      core::Buffer message = comm.RecvBuffer(0, kTagSstMsg);
      EXPECT_FALSE(message.empty());
      comm.SendValue<std::int32_t>(0, kTagSstAck, 99);
    }
  });
}

TEST(SstTest, WriterMisuseThrows) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      SstWriter writer(comm, 1);
      EXPECT_THROW(writer.Put("x", {}), std::runtime_error);
      EXPECT_THROW(writer.EndStep(), std::runtime_error);
      writer.BeginStep(0);
      EXPECT_THROW(writer.BeginStep(1), std::runtime_error);
      EXPECT_THROW(writer.Close(), std::runtime_error);
      writer.EndStep();
      writer.Close();
      EXPECT_THROW(writer.BeginStep(2), std::runtime_error);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, MarshalMemoryHeldUntilAck) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      mpimini::RankEnv* env = mpimini::CurrentEnv();
      SstWriter writer(comm, 1);
      writer.BeginStep(0);
      writer.Put("big", std::vector<std::byte>(1 << 16));
      EXPECT_GE(env->memory.CurrentBytes("marshal"), std::size_t{1} << 16);
      writer.EndStep();
      // The packed step stays attributed to the writer until acked (SST
      // staging-queue semantics).
      EXPECT_GE(env->memory.CurrentBytes("marshal"), std::size_t{1} << 16);
      writer.Close();  // drains the ack
      EXPECT_EQ(env->memory.CurrentBytes("marshal"), 0u);
      // High-water saw both the staged variable and the packed buffer.
      EXPECT_GT(env->memory.PeakBytes("marshal"), std::size_t{1} << 16);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, QueueLimitBoundsStagingMemory) {
  // With queue_limit 2 the writer may hold at most two packed steps even
  // when the reader is slow — the sim-node memory bound of Fig 6.
  Runtime::Run(2, [](Comm& comm) {
    constexpr std::size_t kPayload = 1 << 14;
    if (comm.Rank() == 0) {
      mpimini::RankEnv* env = mpimini::CurrentEnv();
      SstWriter writer(comm, 1, {.queue_limit = 2});
      for (int s = 0; s < 10; ++s) {
        writer.BeginStep(s);
        writer.Put("v", std::vector<std::byte>(kPayload));
        writer.EndStep();
      }
      writer.Close();
      // Peak below ~ 3x payload: 2 in-flight packed steps + one staged.
      EXPECT_LT(env->memory.PeakBytes("marshal"), 4 * kPayload);
      EXPECT_EQ(env->memory.CurrentBytes("marshal"), 0u);
    } else {
      SstReader reader(comm, {0});
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, ZeroCopyPutChainPacksFieldExactlyOnce) {
  // The in transit data-plane invariant: a staged full-size field crosses
  // the writer with exactly ONE bulk copy — the transport-boundary pack in
  // SendGather.  The seed path copied it >= 4 times (serialize, Put,
  // marshal, mailbox send).
  Runtime::Run(2, [](Comm& comm) {
    constexpr std::size_t kField = std::size_t{1} << 16;
    if (comm.Rank() == 0) {
      core::Buffer field("", kField);
      field.bytes()[kField - 1] = std::byte{0x3C};
      SstWriter writer(comm, 1);
      writer.BeginStep(0);
      core::ResetLocalBufferStats();
      writer.PutChain("field", core::BufferChain(core::BufferView(field)));
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);  // staging is free
      writer.EndStep();
      EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);  // the one pack
      writer.Close();
    } else {
      SstReader reader(comm, {0});
      core::ResetLocalBufferStats();
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      const core::Buffer& field = step->payloads.at(0).variables.at("field");
      ASSERT_EQ(field.size(), kField);
      EXPECT_EQ(field[kField - 1], std::byte{0x3C});
      // Reader side is fully zero-copy: the variable is a slice of the
      // received transport buffer.
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
      EXPECT_GE(core::LocalBufferStats().adoptions, 1u);
      while (reader.NextStep()) {
      }
    }
  });
}

TEST(SstTest, StreamsCompressedChainAndCountsRawWireBytes) {
  Runtime::Run(2, [](Comm& comm) {
    const std::vector<double> field = SmoothField(512);
    const std::vector<std::byte> raw = AsBytes(field);
    if (comm.Rank() == 0) {
      core::Buffer staged =
          core::Buffer::TakeVector("", std::vector<std::byte>(raw));
      SstWriter writer(comm, 1);
      writer.BeginStep(0);
      writer.PutChain("temp", core::BufferChain(core::BufferView(staged)),
                      BlockFloat8());
      writer.EndStep();
      writer.Close();
      EXPECT_EQ(writer.RawBytes(), raw.size());
      EXPECT_GT(writer.WireBytes(), 0u);
      // The acceptance floor: >= 4x on-the-wire reduction at rate 8.
      EXPECT_LT(writer.WireBytes() * 4, writer.RawBytes());
      EXPECT_EQ(writer.Stats().raw_bytes, writer.RawBytes());
      EXPECT_EQ(writer.Stats().wire_bytes, writer.WireBytes());
    } else {
      SstReader reader(comm, {0});
      auto step = reader.NextStep();
      ASSERT_TRUE(step.has_value());
      const core::Buffer& temp = step->payloads.at(0).variables.at("temp");
      ASSERT_EQ(temp.size(), raw.size());
      std::vector<double> decoded(field.size());
      std::memcpy(decoded.data(), temp.data(), temp.size());
      const double bound = codec::BlockFloatErrorBound(field, 8);
      for (std::size_t i = 0; i < field.size(); ++i) {
        EXPECT_LE(std::fabs(field[i] - decoded[i]), bound) << i;
      }
      while (reader.NextStep()) {
      }
      EXPECT_EQ(reader.Stats().raw_bytes, raw.size());
      EXPECT_LT(reader.Stats().wire_bytes * 4, reader.Stats().raw_bytes);
    }
  });
}

TEST(SstTest, RawWireCountersDeterministicAcrossPartitionings) {
  // The same 8 chunk-variables partitioned over 4 writers (2 each) vs 8
  // writers (1 each) must produce identical cross-rank sst.bytes_raw /
  // sst.bytes_wire sums: the counters account variable payloads, not
  // per-writer framing, so the metrics.json compression ratio is
  // deterministic across rank partitionings.
  constexpr int kChunks = 8;
  auto run = [&](int writers) {
    const int reader_rank = writers;
    const int per_writer = kChunks / writers;
    mpimini::RunSettings settings;
    settings.metrics = true;
    auto result = Runtime::Run(writers + 1, settings, [&](Comm& comm) {
      if (comm.Rank() < writers) {
        SstWriter writer(comm, reader_rank);
        writer.BeginStep(0);
        std::vector<core::Buffer> held;  // staged views must outlive EndStep
        for (int c = comm.Rank() * per_writer;
             c < (comm.Rank() + 1) * per_writer; ++c) {
          held.push_back(core::Buffer::TakeVector(
              "", AsBytes(SmoothField(256, static_cast<double>(c)))));
          writer.PutChain("c" + std::to_string(c),
                          core::BufferChain(core::BufferView(held.back())),
                          BlockFloat8());
        }
        writer.EndStep();
        writer.Close();
      } else {
        std::vector<int> sources(static_cast<std::size_t>(writers));
        for (int w = 0; w < writers; ++w) sources[static_cast<std::size_t>(w)] = w;
        SstReader reader(comm, sources);
        while (reader.NextStep()) {
        }
      }
    });
    double raw = 0.0;
    double wire = 0.0;
    for (int w = 0; w < writers; ++w) {
      const auto& registry = *result.metrics[static_cast<std::size_t>(w)];
      raw += registry.Counter("sst.bytes_raw");
      wire += registry.Counter("sst.bytes_wire");
    }
    return std::pair(raw, wire);
  };
  const auto [raw4, wire4] = run(4);
  const auto [raw8, wire8] = run(8);
  EXPECT_EQ(raw4, static_cast<double>(kChunks * 256 * sizeof(double)));
  EXPECT_EQ(raw4, raw8);
  EXPECT_EQ(wire4, wire8);
  EXPECT_GT(wire4, 0.0);
  EXPECT_LT(wire4 * 4, raw4);
}

TEST(BpFileTest, WriteThenReadSteps) {
  const std::string path = ::testing::TempDir() + "/stream.bp";
  {
    BpFileWriter writer(path);
    for (int s = 0; s < 4; ++s) {
      writer.BeginStep(s);
      writer.Put("data", Bytes("payload" + std::to_string(s)));
      writer.EndStep();
    }
    writer.Close();
    EXPECT_EQ(writer.BytesWritten(), std::filesystem::file_size(path));
  }
  BpFileReader reader(path);
  int expected = 0;
  while (auto step = reader.NextStep()) {
    EXPECT_EQ(step->step, expected);
    EXPECT_EQ(step->variables.at("data"),
              Bytes("payload" + std::to_string(expected)));
    ++expected;
  }
  EXPECT_EQ(expected, 4);
}

TEST(BpFileTest, CompressedVariablesRoundTripThroughFile) {
  // The checkpoint-plane reuse of the codec plane: BP files persist the
  // encoded chain and the reader decodes it back transparently.
  const std::string path = ::testing::TempDir() + "/compressed.bp";
  const std::vector<double> field = SmoothField(1024);
  {
    core::Buffer staged =
        core::Buffer::TakeVector("", AsBytes(field));
    BpFileWriter writer(path);
    writer.BeginStep(0);
    writer.PutChain("temp", core::BufferChain(core::BufferView(staged)),
                    BlockFloat8());
    writer.EndStep();
    writer.Close();
    EXPECT_EQ(writer.CodecStats().raw_bytes, field.size() * sizeof(double));
    EXPECT_LT(writer.CodecStats().wire_bytes * 4,
              writer.CodecStats().raw_bytes);
    // The compressed file really is smaller than the raw field.
    EXPECT_LT(std::filesystem::file_size(path),
              field.size() * sizeof(double));
  }
  BpFileReader reader(path);
  auto step = reader.NextStep();
  ASSERT_TRUE(step.has_value());
  const core::Buffer& temp = step->variables.at("temp");
  ASSERT_EQ(temp.size(), field.size() * sizeof(double));
  std::vector<double> decoded(field.size());
  std::memcpy(decoded.data(), temp.data(), temp.size());
  const double bound = codec::BlockFloatErrorBound(field, 8);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_LE(std::fabs(field[i] - decoded[i]), bound) << i;
  }
  EXPECT_FALSE(reader.NextStep().has_value());
}

TEST(BpFileTest, EmptyFileYieldsNoSteps) {
  const std::string path = ::testing::TempDir() + "/empty.bp";
  {
    BpFileWriter writer(path);
    writer.Close();
  }
  BpFileReader reader(path);
  EXPECT_FALSE(reader.NextStep().has_value());
}

TEST(BpFileTest, MissingFileThrows) {
  EXPECT_THROW(BpFileReader("/nonexistent/x.bp"), std::runtime_error);
}

}  // namespace
