#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/bridge.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/checkpoint_adaptor.hpp"
#include "core/nek_data_adaptor.hpp"
#include "core/workflows.hpp"
#include "mpimini/runtime.hpp"
#include "nekrs/cases.hpp"

namespace {

using mpimini::Comm;
using mpimini::Runtime;
using nek_sensei::Bridge;
using nek_sensei::NekDataAdaptor;

std::string TempSubdir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/core_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

nekrs::FlowConfig SmallCase() {
  nekrs::cases::TaylorGreenOptions options;
  options.elements = {2, 2, 2};
  options.order = 3;
  return nekrs::cases::TaylorGreenCase(options);
}

// ---- NekDataAdaptor ---------------------------------------------------------

TEST(NekDataAdaptorTest, MeshTessellatesElements) {
  Runtime::Run(2, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());
    NekDataAdaptor adaptor;
    adaptor.Initialize(&solver);

    EXPECT_EQ(adaptor.GetNumberOfMeshes(), 1);
    auto mesh = adaptor.GetMesh(0);
    // 4 local elements (2x2x1 layers per rank), (3+1)^3 points each,
    // 3^3 sub-hexes each.
    EXPECT_EQ(mesh->NumPoints(), 4u * 64u);
    EXPECT_EQ(mesh->NumCells(), 4u * 27u);
    // Cached until release.
    EXPECT_EQ(adaptor.GetMesh(0).get(), mesh.get());
    adaptor.ReleaseData();
    EXPECT_NE(adaptor.GetMesh(0).get(), mesh.get());
  });
}

TEST(NekDataAdaptorTest, MetadataAdvertisesSolverArrays) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::RayleighBenardOptions options;
    options.elements = {2, 2, 2};
    options.order = 3;
    nekrs::FlowSolver solver(comm, device,
                             nekrs::cases::RayleighBenardCase(options));
    NekDataAdaptor adaptor;
    adaptor.Initialize(&solver);
    auto md = adaptor.GetMeshMetadata(0);
    ASSERT_EQ(md.arrays.size(), 3u);  // velocity, pressure, temperature
    EXPECT_EQ(md.arrays[0].name, "velocity");
    EXPECT_EQ(md.arrays[0].components, 3);
    EXPECT_DOUBLE_EQ(md.global_bounds[1], 3.0);  // aspect 3 in x
  });
}

TEST(NekDataAdaptorTest, AddArrayCopiesDeviceToHostStaging) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());
    NekDataAdaptor adaptor;
    adaptor.Initialize(&solver);
    auto mesh = adaptor.GetMesh(0);

    const auto d2h_before = device.Transfers().d2h_count;
    core::ResetLocalBufferStats();
    ASSERT_TRUE(adaptor.AddArray(*mesh, "velocity", svtk::Centering::kPoint));
    // The three components are interleaved on the device (pack_vector3
    // kernel) and staged with a single device->host copy; the host side
    // adopts that buffer outright — zero host-to-host full-field copies.
    EXPECT_EQ(device.Transfers().d2h_count, d2h_before + 1);
    EXPECT_GE(device.Kernels().count("pack_vector3"), 1u);
    EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
    EXPECT_EQ(core::LocalBufferStats().device_stages, 1u);
    EXPECT_GE(core::LocalBufferStats().adoptions, 1u);
    EXPECT_GT(adaptor.StagingBytes(), 0u);

    // Values match the Taylor-Green initial condition at the nodes.
    const svtk::DataArray* v = mesh->PointArray("velocity");
    ASSERT_NE(v, nullptr);
    auto p = mesh->GetPoint(0);
    EXPECT_NEAR(v->At(0, 0), std::sin(p[0]) * std::cos(p[1]), 1e-12);

    adaptor.ReleaseData();
    EXPECT_EQ(adaptor.StagingBytes(), 0u);
  });
}

TEST(NekDataAdaptorTest, CatalystStepStaysUnderTwoFullFieldCopies) {
  // The tentpole invariant of the unified data plane: one instrumented in
  // situ Catalyst step (mesh + velocity + full render Execute) performs at
  // most 2 full-field host copies.  The seed performed >= 4 (three D2H
  // stagings re-copied into the VTK array plus per-layer repacks).
  const std::string dir = TempSubdir("copycount");
  Runtime::Run(1, [&](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());
    NekDataAdaptor data;
    data.Initialize(&solver);

    sensei::CatalystOptions options;
    options.width = 48;
    options.height = 32;
    options.output_dir = dir;
    sensei::CatalystView view;
    view.array = "velocity";
    view.color_by_magnitude = true;
    options.views.push_back(view);
    sensei::CatalystAnalysisAdaptor catalyst(options);

    for (int step = 1; step <= 2; ++step) {
      solver.Step();
      data.SetPipelineTime(step, solver.Time());
      core::ResetLocalBufferStats();
      ASSERT_TRUE(catalyst.Execute(data));
      EXPECT_LE(core::LocalBufferStats().full_copies, 2u);
      EXPECT_EQ(core::LocalBufferStats().device_stages, 1u);
      data.ReleaseData();
    }
  });
}

TEST(NekDataAdaptorTest, UnknownArrayRejected) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());  // no temperature
    NekDataAdaptor adaptor;
    adaptor.Initialize(&solver);
    auto mesh = adaptor.GetMesh(0);
    EXPECT_FALSE(adaptor.AddArray(*mesh, "enstrophy", svtk::Centering::kPoint));
    EXPECT_FALSE(
        adaptor.AddArray(*mesh, "temperature", svtk::Centering::kPoint));
    EXPECT_FALSE(adaptor.AddArray(*mesh, "velocity", svtk::Centering::kCell));
  });
}

// ---- Bridge -----------------------------------------------------------------

TEST(BridgeTest, UpdateTriggersAtConfiguredFrequency) {
  const std::string dir = TempSubdir("bridge");
  Runtime::Run(1, [&](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());
    Bridge bridge(solver,
                  "<sensei><analysis type=\"checkpoint\" frequency=\"5\" "
                  "output=\"" + dir + "\"/></sensei>");
    for (int s = 0; s < 10; ++s) {
      solver.Step();
      ASSERT_TRUE(bridge.Update());
    }
    bridge.Finalize();
    auto checkpoint =
        std::dynamic_pointer_cast<sensei::CheckpointAnalysisAdaptor>(
            bridge.Analysis().Find("checkpoint"));
    EXPECT_EQ(checkpoint->FilesWritten(), 2u);  // steps 5 and 10
  });
}

// ---- Workflows --------------------------------------------------------------

TEST(WorkflowTest, InSituOriginalRunsWithoutSensei) {
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 3;
  options.use_sensei = false;
  auto metrics = nek_sensei::RunInSitu(2, options);
  ASSERT_EQ(metrics.ranks.size(), 2u);
  EXPECT_EQ(metrics.bytes_written, 0u);
  EXPECT_EQ(metrics.images_written, 0u);
  EXPECT_GT(metrics.MeanSimStepSeconds(), 0.0);
  EXPECT_GT(metrics.MaxSimDevicePeakBytes(), 0u);
}

TEST(WorkflowTest, InSituCatalystWritesImagesAndUsesMoreHostMemory) {
  const std::string dir = TempSubdir("wf_cat");
  nek_sensei::InSituOptions original;
  original.flow = SmallCase();
  original.steps = 4;
  original.use_sensei = false;

  nek_sensei::InSituOptions catalyst = original;
  catalyst.use_sensei = true;
  catalyst.sensei_xml =
      "<sensei><analysis type=\"catalyst\" frequency=\"2\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"64\" height=\"48\"/>"
      "</sensei>";

  auto base = nek_sensei::RunInSitu(2, original);
  auto rendered = nek_sensei::RunInSitu(2, catalyst);
  EXPECT_EQ(rendered.images_written, 2u);  // steps 2 and 4
  EXPECT_GT(rendered.bytes_written, 0u);
  // Catalyst stages device data on the host: CPU footprint must exceed the
  // no-SENSEI baseline (Fig 3's mechanism).
  EXPECT_GT(rendered.MaxSimHostPeakBytes(), base.MaxSimHostPeakBytes());
}

TEST(WorkflowTest, InSituCheckpointWritesFiles) {
  const std::string dir = TempSubdir("wf_chk");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.sensei_xml =
      "<sensei><analysis type=\"checkpoint\" frequency=\"2\" output=\"" +
      dir + "\"/></sensei>";
  auto metrics = nek_sensei::RunInSitu(2, options);
  EXPECT_GT(metrics.bytes_written, 0u);
  // 2 ranks x 2 triggers VTU files on disk.
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 4);
}

class InTransitModeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InTransitModeTest, RunsAllMeasurementPoints) {
  const std::string mode = GetParam();
  const std::string dir = TempSubdir("wf_it_" + mode);

  nek_sensei::InTransitOptions options;
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2, 2, 2};
  rbc.order = 3;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sim_per_endpoint = 2;

  if (mode == "none") {
    options.sim_xml = "<sensei/>";
    options.endpoint_xml = "<sensei/>";
  } else {
    options.sim_xml =
        "<sensei><analysis type=\"adios\" frequency=\"2\"/></sensei>";
    if (mode == "checkpoint") {
      options.endpoint_xml =
          "<sensei><analysis type=\"checkpoint\" output=\"" + dir +
          "\"/></sensei>";
    } else {
      options.endpoint_xml =
          "<sensei><analysis type=\"catalyst\" output=\"" + dir +
          "\" width=\"48\" height=\"32\">"
          "<render array=\"temperature\"/>"
          "<render array=\"velocity\" magnitude=\"1\" azimuth=\"90\"/>"
          "</analysis></sensei>";
    }
  }

  auto metrics = nek_sensei::RunInTransit(2, options);
  // 2 sim ranks + 1 endpoint rank reported.
  ASSERT_EQ(metrics.ranks.size(), 3u);
  EXPECT_TRUE(metrics.ranks[0].is_sim);
  EXPECT_FALSE(metrics.ranks[2].is_sim);
  EXPECT_GT(metrics.MeanSimStepSeconds(), 0.0);

  if (mode == "none") {
    EXPECT_EQ(metrics.bytes_written, 0u);
  } else if (mode == "checkpoint") {
    EXPECT_GT(metrics.bytes_written, 0u);
    EXPECT_EQ(metrics.images_written, 0u);
  } else {
    // Two images per trigger, 2 triggers (steps 2 and 4).
    EXPECT_EQ(metrics.images_written, 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, InTransitModeTest,
                         ::testing::Values("none", "checkpoint", "catalyst"));

TEST(WorkflowTest, InTransitSimMemoryIndependentOfEndpointAnalysis) {
  // Fig 6's key claim: the sim-node memory footprint does not depend on
  // what the endpoint does with the data.
  nek_sensei::InTransitOptions options;
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2, 2, 2};
  rbc.order = 3;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sim_per_endpoint = 2;
  options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"2\"/></sensei>";

  const std::string dir = TempSubdir("wf_mem");
  auto none = options;
  none.endpoint_xml = "<sensei/>";
  auto chk = options;
  chk.endpoint_xml = "<sensei><analysis type=\"checkpoint\" output=\"" + dir +
                     "\"/></sensei>";

  auto m_none = nek_sensei::RunInTransit(2, none);
  auto m_chk = nek_sensei::RunInTransit(2, chk);
  EXPECT_EQ(m_none.MaxSimHostPeakBytes(), m_chk.MaxSimHostPeakBytes());
}


// ---- Telemetry --------------------------------------------------------------

TEST(WorkflowTelemetryTest, CatalystRunAttributesStepTimeToChildSpans) {
  const std::string dir = TempSubdir("wf_tel");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  // Pin sync: this test asserts the INLINE path's tracer attribution (the
  // async worker records no spans), so it must not flip under the CI
  // async-default environment.
  options.sensei_xml =
      "<sensei><pipeline mode=\"sync\"/>"
      "<analysis type=\"catalyst\" frequency=\"1\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
      "</sensei>";
  options.telemetry.enabled = true;
  options.telemetry.trace_path = dir + "/trace.json";
  options.telemetry.summary_path = dir + "/telemetry.json";

  const auto metrics = nek_sensei::RunInSitu(2, options);
  const auto& t = metrics.telemetry;
  ASSERT_FALSE(t.Empty());
  EXPECT_EQ(t.ranks, 2);
  EXPECT_EQ(t.dropped_spans, 0u);
  // Every step on every rank produced exactly one solver and bridge span.
  EXPECT_EQ(t.SpanCount("solver.step"), 8u);
  EXPECT_EQ(t.SpanCount("bridge.update"), 8u);
  EXPECT_EQ(t.SpanCount("analysis.catalyst"), 8u);
  EXPECT_GT(t.SpanCount("catalyst.render"), 0u);

  // Attribution: the named child spans must account for >= 90% of each
  // parent's time (the telemetry report's core promise).
  const double solver_children = t.SpanTotalSeconds("solver.advection") +
                                 t.SpanTotalSeconds("solver.helmholtz") +
                                 t.SpanTotalSeconds("solver.pressure") +
                                 t.SpanTotalSeconds("solver.temperature") +
                                 t.SpanTotalSeconds("solver.filter");
  EXPECT_GE(solver_children, 0.9 * t.SpanTotalSeconds("solver.step"));
  const double bridge_children = t.SpanTotalSeconds("analysis.catalyst") +
                                 t.SpanTotalSeconds("analysis.release");
  EXPECT_GE(bridge_children, 0.9 * t.SpanTotalSeconds("bridge.update"));

  // Both export files were written: a Perfetto-loadable trace with one
  // track per rank, and the machine-readable aggregate.
  std::ifstream trace(dir + "/trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream ss;
  ss << trace.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"solver.step\""), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir + "/telemetry.json"));
}

TEST(WorkflowTelemetryTest, XmlTelemetryElementEnablesTracing) {
  // Tracing is a pipeline knob like any other: switched on from the sensei
  // XML without touching the options struct.
  const std::string dir = TempSubdir("wf_tel_xml");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 2;
  // Pin sync: asserts spans from the inline update path.
  options.sensei_xml =
      "<sensei><pipeline mode=\"sync\"/>"
      "<telemetry summary=\"" + dir + "/telemetry.json\"/>"
      "<analysis type=\"checkpoint\" frequency=\"2\" output=\"" + dir +
      "\"/></sensei>";
  const auto metrics = nek_sensei::RunInSitu(1, options);
  ASSERT_FALSE(metrics.telemetry.Empty());
  EXPECT_EQ(metrics.telemetry.SpanCount("solver.step"), 2u);
  EXPECT_GT(metrics.telemetry.SpanCount("checkpoint.write"), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/telemetry.json"));
}

TEST(WorkflowTelemetryTest, DisabledTracingRecordsNothing) {
  // The zero-overhead contract: without the opt-in, no tracer is installed
  // and no span storage is populated anywhere in the pipeline.
  const std::string dir = TempSubdir("wf_tel_off");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 2;
  options.sensei_xml =
      "<sensei><analysis type=\"catalyst\" frequency=\"1\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
      "</sensei>";
  const auto metrics = nek_sensei::RunInSitu(1, options);
  EXPECT_TRUE(metrics.telemetry.Empty());
  EXPECT_EQ(metrics.telemetry.total_spans, 0u);
  EXPECT_TRUE(metrics.telemetry.spans.empty());
  EXPECT_TRUE(metrics.telemetry.counters.empty());
}

TEST(WorkflowTelemetryTest, CountersReportZeroCopyCatalystInvariant) {
  // Cross-check the tracer's counters against the data plane's zero-copy
  // invariant (PR 1): an in situ Catalyst pipeline performs no full-field
  // host copies — fields are staged D2H once and adopted.  Single rank:
  // multi-rank compositing additionally ships framebuffers to root, a
  // separate (bounded, fixed-size) cost outside this invariant.
  const std::string dir = TempSubdir("wf_tel_copies");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.sensei_xml =
      "<sensei><analysis type=\"catalyst\" frequency=\"2\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
      "</sensei>";
  options.telemetry.enabled = true;
  const auto metrics = nek_sensei::RunInSitu(1, options);
  const auto& t = metrics.telemetry;
  ASSERT_FALSE(t.Empty());
  EXPECT_DOUBLE_EQ(t.Counter("buffer.full_copies"), 0.0);
  EXPECT_GT(t.Counter("buffer.adoptions"), 0.0);
  EXPECT_GT(t.Counter("d2h.bytes"), 0.0);
  // Counter totals agree with the independently-gathered run metrics.
  EXPECT_DOUBLE_EQ(t.Counter("catalyst.images"),
                   static_cast<double>(metrics.images_written));
  EXPECT_DOUBLE_EQ(t.Counter("storage.bytes_written"),
                   static_cast<double>(metrics.bytes_written));
}

// ---- Metrics plane ----------------------------------------------------------

TEST(WorkflowMetricsTest, InSituPlaneProducesAggregatedReportAndJson) {
  // The run-health plane works without tracing: it installs a per-rank
  // registry, reduces across ranks at run end, and writes one aggregated
  // metrics.json (min/mean/max/p95 + imbalance per metric).
  const std::string dir = TempSubdir("wf_metrics");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  // Pin sync: bridge.updates counts every inline Update call (8); the async
  // pipeline only counts executed (due) jobs.
  options.sensei_xml =
      "<sensei><pipeline mode=\"sync\"/>"
      "<analysis type=\"catalyst\" frequency=\"2\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
      "</sensei>";
  options.telemetry.metrics = true;
  options.telemetry.metrics_path = dir + "/metrics.json";

  const auto metrics = nek_sensei::RunInSitu(2, options);
  EXPECT_TRUE(metrics.telemetry.Empty());  // no tracer was installed

  const auto& report = metrics.metrics_report;
  ASSERT_FALSE(report.Empty());
  EXPECT_EQ(report.ranks, 2);
  const auto& step = report.counters.at("solver.step_seconds");
  EXPECT_EQ(step.ranks, 2);
  EXPECT_GT(step.min, 0.0);
  EXPECT_GE(step.max, step.mean);
  EXPECT_GE(step.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(report.CounterSum("solver.steps"), 8.0);
  EXPECT_DOUBLE_EQ(report.CounterSum("bridge.updates"), 8.0);
  ASSERT_NE(report.Gauge("memory.host_hwm_bytes"), nullptr);
  EXPECT_GT(report.Gauge("memory.host_hwm_bytes")->high_watermark, 0.0);
  EXPECT_GT(report.histograms.at("solver.step_seconds").count, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/metrics.json.tmp"));
}

TEST(WorkflowMetricsTest, XmlTelemetryAttributesEnablePlaneAndHeartbeat) {
  const std::string dir = TempSubdir("wf_metrics_xml");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.sensei_xml =
      "<sensei><telemetry metrics=\"" + dir + "/metrics.json\""
      " heartbeat=\"2\"/>"
      "<analysis type=\"checkpoint\" frequency=\"2\" output=\"" + dir +
      "\"/></sensei>";
  const auto metrics = nek_sensei::RunInSitu(2, options);
  ASSERT_FALSE(metrics.metrics_report.Empty());
  EXPECT_DOUBLE_EQ(metrics.metrics_report.CounterSum("solver.steps"), 8.0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.json"));
}

TEST(WorkflowMetricsTest, E2eLatencyHistogramCountsPartitionIndependent) {
  // Acceptance pin for the e2e latency plane (DESIGN.md §5d): exactly one
  // e2e.step_to_image / e2e.step_to_recv sample per delivered step —
  // observed on one rank only — so the histogram counts are identical no
  // matter how the same work is partitioned across sim/endpoint ranks.
  auto run = [](int sim_ranks) {
    const std::string dir =
        TempSubdir("wf_e2e_" + std::to_string(sim_ranks));
    nek_sensei::InTransitOptions options;
    nekrs::cases::RayleighBenardOptions rbc;
    rbc.elements = {8, 2, 2};  // 8 x-layers: partitionable 4 or 8 ways
    rbc.order = 3;
    options.flow = nekrs::cases::RayleighBenardCase(rbc);
    options.flow.mesh.partition_axis = 0;
    options.steps = 6;
    options.sim_per_endpoint = 2;
    options.sim_xml =
        "<sensei><analysis type=\"adios\" frequency=\"2\"/></sensei>";
    options.endpoint_xml =
        "<sensei><analysis type=\"catalyst\" output=\"" + dir +
        "\" width=\"48\" height=\"32\">"
        "<render array=\"temperature\"/></analysis></sensei>";
    options.telemetry.metrics = true;  // in-memory report, no file
    return nek_sensei::RunInTransit(sim_ranks, options);
  };
  const auto m4 = run(4);   // 4 sim + 2 endpoint ranks
  const auto m8 = run(8);   // 8 sim + 4 endpoint ranks
  for (const char* name :
       {"e2e.step_to_image_seconds", "e2e.step_to_recv_seconds"}) {
    const auto& h4 = m4.metrics_report.histograms;
    const auto& h8 = m8.metrics_report.histograms;
    ASSERT_TRUE(h4.count(name)) << name;
    ASSERT_TRUE(h8.count(name)) << name;
    // Steps 2, 4, 6 ship (frequency 2): one sample each, on any layout.
    EXPECT_EQ(h4.at(name).count, 3u) << name;
    EXPECT_EQ(h8.at(name).count, h4.at(name).count) << name;
    EXPECT_GE(h4.at(name).min, 0.0) << name;
    EXPECT_GE(h4.at(name).max, h4.at(name).Mean()) << name;
  }
  // Causality: an image cannot land before its step was received.
  EXPECT_GE(m4.metrics_report.histograms.at("e2e.step_to_image_seconds")
                .Mean(),
            m4.metrics_report.histograms.at("e2e.step_to_recv_seconds")
                .Mean());
}

TEST(WorkflowMetricsTest, InTransitPlaneCapturesSstBackpressure) {
  // In transit the plane additionally watches the SST staging queue: depth
  // watermarks plus the block-decision counter that exposes backpressure.
  nek_sensei::InTransitOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.sim_per_endpoint = 2;
  options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"1\"/></sensei>";
  options.endpoint_xml = "<sensei/>";
  options.telemetry.metrics = true;

  const auto metrics = nek_sensei::RunInTransit(2, options);
  const auto& report = metrics.metrics_report;
  ASSERT_FALSE(report.Empty());
  EXPECT_EQ(report.ranks, 3);  // 2 sim + 1 endpoint
  EXPECT_DOUBLE_EQ(report.CounterSum("solver.steps"), 8.0);
  const instrument::MetricStat* queue = report.Gauge("sst.queue_depth");
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->high_watermark, 1.0);
  EXPECT_GT(report.CounterSum("sst.steps"), 0.0);
  EXPECT_GT(report.CounterSum("sst.payload_bytes"), 0.0);
}

TEST(WorkflowMetricsTest, InTransitCompressReportsCompressionRatio) {
  // End-to-end codec plane: blockfloat on points + every data array and
  // delta shuffle_rle on connectivity, selected purely through the SENSEI
  // XML.  The run must ship >= 4x fewer bytes on the wire and surface the
  // aggregate ratio in the reduced metrics report (what metrics.json and
  // the bench gate read).
  nek_sensei::InTransitOptions options;
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2, 2, 2};
  rbc.order = 3;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sim_per_endpoint = 2;
  options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"2\">"
      "<points><codec type=\"blockfloat\" rate=\"8\"/></points>"
      "<connectivity><codec type=\"shuffle_rle\" delta=\"1\"/>"
      "</connectivity>"
      "<array name=\"*\"><codec type=\"blockfloat\" rate=\"8\"/></array>"
      "</analysis></sensei>";
  options.endpoint_xml = "<sensei/>";
  options.telemetry.metrics = true;

  const auto metrics = nek_sensei::RunInTransit(2, options);
  const auto& report = metrics.metrics_report;
  ASSERT_FALSE(report.Empty());
  const double raw = report.CounterSum("sst.bytes_raw");
  const double wire = report.CounterSum("sst.bytes_wire");
  EXPECT_GT(raw, 0.0);
  EXPECT_GT(wire, 0.0);
  EXPECT_GE(raw, 4.0 * wire);  // the acceptance floor on RBC fields
  const instrument::MetricStat* ratio = report.Gauge("sst.compression_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->mean, raw / wire);
  EXPECT_DOUBLE_EQ(ratio->min, ratio->max);
  EXPECT_GE(ratio->mean, 4.0);
}

TEST(WorkflowMetricsTest, UncompressedInTransitRatioIsUnity) {
  // Identity transport still accounts raw/wire (equal), so the synthesized
  // ratio gauge reports exactly 1 — and dashboards need no special case.
  nek_sensei::InTransitOptions options;
  options.flow = SmallCase();
  options.steps = 2;
  options.sim_per_endpoint = 2;
  options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"1\"/></sensei>";
  options.endpoint_xml = "<sensei/>";
  options.telemetry.metrics = true;

  const auto metrics = nek_sensei::RunInTransit(2, options);
  const auto& report = metrics.metrics_report;
  ASSERT_FALSE(report.Empty());
  EXPECT_DOUBLE_EQ(report.CounterSum("sst.bytes_raw"),
                   report.CounterSum("sst.bytes_wire"));
  const instrument::MetricStat* ratio = report.Gauge("sst.compression_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->mean, 1.0);
}

TEST(WorkflowMetricsTest, DisabledPlaneLeavesReportEmpty) {
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 2;
  options.sensei_xml = "<sensei/>";
  const auto metrics = nek_sensei::RunInSitu(2, options);
  EXPECT_TRUE(metrics.metrics_report.Empty());
}

TEST(WorkflowTelemetryTest, InTransitSstWriterPacksExactlyOnePerTrigger) {
  // The streaming side of the same invariant: marshalling a step for SST
  // costs exactly one full-field copy per sim rank per trigger (the gather
  // pack), visible both as spans and as the copy counter.
  nek_sensei::InTransitOptions options;
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2, 2, 2};
  rbc.order = 3;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sim_per_endpoint = 2;
  // Pin sync: asserts the sim-side marshal/send spans, which the async
  // worker would run untraced.
  options.sim_xml =
      "<sensei><pipeline mode=\"sync\"/>"
      "<analysis type=\"adios\" frequency=\"2\"/></sensei>";
  options.endpoint_xml = "<sensei/>";  // endpoint adopts, never copies
  options.telemetry.enabled = true;

  const auto metrics = nek_sensei::RunInTransit(2, options);
  const auto& t = metrics.telemetry;
  ASSERT_FALSE(t.Empty());
  // 2 triggers (steps 2 and 4) x 2 sim ranks.
  EXPECT_EQ(t.SpanCount("adios.marshal"), 4u);
  EXPECT_EQ(t.SpanCount("sst.send"), 4u);
  // The endpoint gathers both writers per NextStep: one recv span per
  // trigger plus the final end-of-stream probe.
  EXPECT_GE(t.SpanCount("sst.recv"), 2u);
  EXPECT_DOUBLE_EQ(t.Counter("buffer.full_copies"), 4.0);
  EXPECT_GT(t.Counter("sst.bytes"), 0.0);
}

// ---- Async pipeline ---------------------------------------------------------

// Every regular file under `root`, keyed by relative path, with its bytes.
std::map<std::string, std::string> ReadTree(const std::string& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[std::filesystem::relative(entry.path(), root).string()] =
        bytes.str();
  }
  return files;
}

void ExpectTreesIdentical(const std::string& sync_dir,
                          const std::string& async_dir) {
  const auto sync_tree = ReadTree(sync_dir);
  const auto async_tree = ReadTree(async_dir);
  ASSERT_FALSE(sync_tree.empty());
  EXPECT_EQ(async_tree.size(), sync_tree.size());
  for (const auto& [name, bytes] : sync_tree) {
    const auto it = async_tree.find(name);
    ASSERT_NE(it, async_tree.end()) << name << " missing from async run";
    EXPECT_EQ(it->second, bytes)
        << name << " differs between sync and async";
  }
}

// Stats + Catalyst + checkpoint (the quickstart shape), optionally behind
// the async pipeline.
std::string QuickstartLikeXml(const std::string& dir,
                              const std::string& pipeline) {
  return "<sensei>" + pipeline +
         "<analysis type=\"stats\" frequency=\"2\" arrays=\"velocity\""
         " log=\"" + dir + "/stats.log\"/>"
         "<analysis type=\"catalyst\" frequency=\"2\" output=\"" + dir +
         "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
         "<analysis type=\"checkpoint\" frequency=\"4\" output=\"" + dir +
         "\"/></sensei>";
}

TEST(AsyncPipelineTest, InSituOutputsByteIdenticalToSync) {
  // The tentpole's correctness bar: offloading the whole Update path to the
  // per-rank worker must not change a single output byte — images,
  // checkpoints, the stats log — nor the zero-copy ledger.
  const std::string sync_dir = TempSubdir("async_eq_sync");
  const std::string async_dir = TempSubdir("async_eq_async");

  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.telemetry.metrics = true;

  auto sync_options = options;
  sync_options.sensei_xml = QuickstartLikeXml(sync_dir, "");
  auto async_options = options;
  async_options.sensei_xml = QuickstartLikeXml(
      async_dir, "<pipeline mode=\"async\" depth=\"2\"/>");

  const auto sync_metrics = nek_sensei::RunInSitu(2, sync_options);
  const auto async_metrics = nek_sensei::RunInSitu(2, async_options);

  EXPECT_GT(sync_metrics.images_written, 0u);
  EXPECT_EQ(async_metrics.images_written, sync_metrics.images_written);
  EXPECT_EQ(async_metrics.bytes_written, sync_metrics.bytes_written);
  ExpectTreesIdentical(sync_dir, async_dir);

  // Mode-independent data plane: the async path stages the same bytes the
  // same way, just on a different thread.  (Allocation counts legitimately
  // drop async — slot reuse — so they are not compared.)
  const auto& s = sync_metrics.metrics_report;
  const auto& a = async_metrics.metrics_report;
  ASSERT_FALSE(s.Empty());
  ASSERT_FALSE(a.Empty());
  for (const char* counter : {"buffer.full_copies", "buffer.copied_bytes",
                              "storage.bytes_written", "d2h.bytes"}) {
    EXPECT_DOUBLE_EQ(a.CounterSum(counter), s.CounterSum(counter))
        << counter;
  }
}

TEST(AsyncPipelineTest, InTransitOutputsByteIdenticalToSync) {
  // Same bar for the streaming path: the worker owns marshal + SST send,
  // and the endpoint must not be able to tell.
  const std::string sync_dir = TempSubdir("async_it_sync");
  const std::string async_dir = TempSubdir("async_it_async");

  nek_sensei::InTransitOptions options;
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2, 2, 2};
  rbc.order = 3;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sim_per_endpoint = 2;

  auto endpoint_xml = [](const std::string& dir) {
    return "<sensei><analysis type=\"catalyst\" output=\"" + dir +
           "\" width=\"48\" height=\"32\">"
           "<render array=\"temperature\"/>"
           "<render array=\"velocity\" magnitude=\"1\" azimuth=\"90\"/>"
           "</analysis></sensei>";
  };
  auto sync_options = options;
  sync_options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"2\"/></sensei>";
  sync_options.endpoint_xml = endpoint_xml(sync_dir);
  auto async_options = options;
  async_options.sim_xml =
      "<sensei><pipeline mode=\"async\" depth=\"2\"/>"
      "<analysis type=\"adios\" frequency=\"2\"/></sensei>";
  async_options.endpoint_xml = endpoint_xml(async_dir);

  const auto sync_metrics = nek_sensei::RunInTransit(2, sync_options);
  const auto async_metrics = nek_sensei::RunInTransit(2, async_options);

  EXPECT_EQ(sync_metrics.images_written, 4u);  // 2 renders x 2 triggers
  EXPECT_EQ(async_metrics.images_written, sync_metrics.images_written);
  EXPECT_EQ(async_metrics.bytes_written, sync_metrics.bytes_written);
  ExpectTreesIdentical(sync_dir, async_dir);
}

TEST(AsyncPipelineTest, AsyncRunSurfacesPipelineMetrics) {
  // The overlap ledger: submits count due steps, worker time lands in
  // bridge.update_seconds, and Shutdown publishes the overlap/offload
  // split the heartbeat and bench tables read.
  const std::string dir = TempSubdir("async_metrics");
  nek_sensei::InSituOptions options;
  options.flow = SmallCase();
  options.steps = 4;
  options.sensei_xml =
      "<sensei><pipeline mode=\"async\" depth=\"2\"/>"
      "<analysis type=\"catalyst\" frequency=\"2\" output=\"" + dir +
      "\" array=\"velocity\" magnitude=\"1\" width=\"48\" height=\"32\"/>"
      "</sensei>";
  options.telemetry.metrics = true;

  const auto metrics = nek_sensei::RunInSitu(2, options);
  const auto& report = metrics.metrics_report;
  ASSERT_FALSE(report.Empty());
  // Steps 2 and 4 are due (frequency 2) on each of the 2 ranks.
  EXPECT_DOUBLE_EQ(report.CounterSum("pipeline.submits"), 4.0);
  EXPECT_DOUBLE_EQ(report.CounterSum("bridge.updates"), 4.0);
  EXPECT_GT(report.CounterSum("bridge.update_seconds"), 0.0);
  EXPECT_EQ(report.counters.count("pipeline.queue_wait_seconds"), 1u);
  EXPECT_EQ(report.counters.count("pipeline.overlap_seconds"), 1u);
  ASSERT_NE(report.Gauge("insitu.offloaded_share"), nullptr);
  EXPECT_LE(report.Gauge("insitu.offloaded_share")->high_watermark, 1.0);
}

// ---- Heartbeat formatting ---------------------------------------------------

TEST(HeartbeatFormatTest, ClampsInsituShareAtOneHundredPercent) {
  // Busy-clock vs wall-clock skew can push the raw ratio past 100; the
  // printed line must clamp (work off the critical path belongs to the
  // offload column instead).
  nek_sensei::HeartbeatLine line;
  line.done = 5;
  line.total = 10;
  line.rate_steps_per_second = 2.0;
  line.eta_seconds = 2.5;
  line.mem_mean_bytes = 1024;
  line.mem_max_bytes = 2048;
  line.insitu_percent = 137.0;
  const std::string out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find("step 5/10 (50%)"), std::string::npos) << out;
  EXPECT_NE(out.find("insitu 100%"), std::string::npos) << out;
  EXPECT_EQ(out.find("137"), std::string::npos) << out;
  // Sync line: no offload or SST queue columns.
  EXPECT_EQ(out.find("offload"), std::string::npos) << out;
  EXPECT_EQ(out.find("sst queue"), std::string::npos) << out;
}

TEST(HeartbeatFormatTest, AsyncLineAddsOffloadAndQueueColumns) {
  nek_sensei::HeartbeatLine line;
  line.done = 4;
  line.total = 8;
  line.insitu_percent = 42.0;
  line.offload_percent = 33.0;
  line.queue_depth = 1;
  line.queue_limit = 2;
  const std::string out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find("insitu 42%"), std::string::npos) << out;
  EXPECT_NE(out.find("offload 33%"), std::string::npos) << out;
  EXPECT_NE(out.find("sst queue 1/2"), std::string::npos) << out;
}

TEST(HeartbeatFormatTest, WireColumnOnlyWhenCompressionRan) {
  nek_sensei::HeartbeatLine line;
  line.done = 2;
  line.total = 4;

  // No transport at all: no wire column.
  EXPECT_EQ(nek_sensei::FormatHeartbeatLine(line).find("wire"),
            std::string::npos);

  // Identity transport (raw == wire): still no wire column, so
  // uncompressed runs keep their exact pre-codec line.
  line.raw_bytes = 4096;
  line.wire_bytes = 4096;
  EXPECT_EQ(nek_sensei::FormatHeartbeatLine(line).find("wire"),
            std::string::npos);

  // A codec actually shrank the stream: the column prints the wire bytes
  // and the compression ratio.
  line.raw_bytes = 8 << 20;
  line.wire_bytes = 1 << 20;
  const std::string out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find("wire"), std::string::npos) << out;
  EXPECT_NE(out.find("1.0 MB"), std::string::npos) << out;
  EXPECT_NE(out.find("8.0x"), std::string::npos) << out;
}

TEST(HeartbeatFormatTest, UnknownEtaRendersNaNeverInfOrGarbage) {
  // A zero observed rate (first tick inside one timer quantum) has no
  // defined ETA.  The line must say `eta n/a` — the old behavior printed
  // the raw division result (inf).
  nek_sensei::HeartbeatLine line;
  line.done = 1;
  line.total = 10;
  line.rate_steps_per_second = 0.0;
  line.eta_seconds = -1.0;
  std::string out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find("| eta n/a"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;

  // Non-finite values (however they were produced) degrade the same way.
  line.eta_seconds = INFINITY;
  EXPECT_NE(nek_sensei::FormatHeartbeatLine(line).find("eta n/a"),
            std::string::npos);
  line.eta_seconds = NAN;
  EXPECT_NE(nek_sensei::FormatHeartbeatLine(line).find("eta n/a"),
            std::string::npos);

  // And a known rate still renders the real ETA.
  line.rate_steps_per_second = 2.0;
  line.eta_seconds = 4.5;
  out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find("| eta 4.5s"), std::string::npos) << out;
  EXPECT_EQ(out.find("n/a"), std::string::npos) << out;
}

TEST(HeartbeatFormatTest, NoteColumnCarriesStragglerVerdicts) {
  nek_sensei::HeartbeatLine line;
  line.done = 3;
  line.total = 9;
  EXPECT_EQ(nek_sensei::FormatHeartbeatLine(line).find("straggler"),
            std::string::npos);
  line.note = "straggler rank 2 (solver)";
  const std::string out = nek_sensei::FormatHeartbeatLine(line);
  EXPECT_NE(out.find(" | straggler rank 2 (solver)"), std::string::npos)
      << out;
}

// ---- Straggler plumbing through the workflow --------------------------------

TEST(WorkflowHealthTest, InjectedStragglerIsFlaggedWithSolverAttribution) {
  // Heartbeat-only path (no monitor): the per-step health gather feeds the
  // detector, and the verdict lands in the run's metrics report + json.
  const std::string dir = TempSubdir("wf_straggler");
  nek_sensei::InSituOptions options;
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {2, 2, 4};  // z is the partition axis: one layer per rank
  tg.order = 3;
  options.flow = nekrs::cases::TaylorGreenCase(tg);
  options.steps = 6;
  options.use_sensei = false;
  options.telemetry.metrics = true;
  options.telemetry.metrics_path = dir + "/metrics.json";
  options.telemetry.heartbeat_steps = 2;
  // A wall-clock-sized spin so the excess dominates base step time even
  // under sanitizer slowdowns.
  options.straggler_rank = 2;
  options.straggler_seconds = 0.02;

  const auto metrics = nek_sensei::RunInSitu(4, options);
  ASSERT_FALSE(metrics.metrics_report.anomalies.empty());
  const auto& anomaly = metrics.metrics_report.anomalies[0];
  EXPECT_EQ(anomaly.rank, 2);
  EXPECT_EQ(anomaly.dominant_span, "solver");
  EXPECT_GE(anomaly.z, 3.5);
  EXPECT_GT(anomaly.step_seconds, anomaly.median_seconds);

  const std::string json = [&] {
    std::ifstream in(dir + "/metrics.json");
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  }();
  EXPECT_EQ(json.find("\"anomalies\": []"), std::string::npos);
  EXPECT_NE(json.find("\"anomalies\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rank\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dominant_span\": \"solver\""), std::string::npos);
}

TEST(WorkflowHealthTest, BalancedRunSerializesEmptyAnomaliesArray) {
  const std::string dir = TempSubdir("wf_balanced");
  nek_sensei::InSituOptions options;
  // A heavier case than SmallCase(): with multi-millisecond steps, OS
  // scheduling jitter stays well inside the detector's 1.3x ratio guard.
  // z is the partition axis — one element layer per rank keeps it balanced.
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {3, 3, 4};
  tg.order = 5;
  options.flow = nekrs::cases::TaylorGreenCase(tg);
  options.steps = 6;
  options.use_sensei = false;
  options.telemetry.metrics = true;
  options.telemetry.metrics_path = dir + "/metrics.json";
  options.telemetry.heartbeat_steps = 2;

  const auto metrics = nek_sensei::RunInSitu(4, options);
  EXPECT_TRUE(metrics.metrics_report.anomalies.empty());
  const std::string json = [&] {
    std::ifstream in(dir + "/metrics.json");
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  }();
  // The key is always serialized — [] is the clean-run contract consumers
  // (and the CI smoke job) rely on.
  EXPECT_NE(json.find("\"anomalies\": []"), std::string::npos);
}

// ---- Derived fields ---------------------------------------------------------

TEST(DerivedFieldTest, TaylorGreenVorticityIsAnalytic) {
  // u = sin x cos y, v = -cos x sin y, w = 0:
  // vorticity = (0, 0, 2 sin x sin y).
  Runtime::Run(2, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 6;
    nekrs::FlowSolver solver(comm, device,
                             nekrs::cases::TaylorGreenCase(options));
    const std::size_t n = solver.VelocityX().size();
    occamini::Array<double> wx(device, n), wy(device, n), wz(device, n);
    solver.ComputeVorticity({wx.DevicePtr(), n}, {wy.DevicePtr(), n},
                            {wz.DevicePtr(), n});
    std::vector<double> x(n), y(n), z(n);
    solver.Mesh().FillCoordinates(solver.Rule(), x, y, z);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(wx.DevicePtr()[i]));
      max_err = std::max(max_err, std::abs(wy.DevicePtr()[i]));
      max_err = std::max(
          max_err,
          std::abs(wz.DevicePtr()[i] - 2.0 * std::sin(x[i]) * std::sin(y[i])));
    }
    max_err = comm.AllReduceValue(max_err, mpimini::Op::kMax);
    EXPECT_LT(max_err, 5e-3);  // spectral accuracy at order 6
  });
}

TEST(DerivedFieldTest, TaylorGreenQCriterionIsAnalytic) {
  // For the 2-D TG field: Q = -0.5(ux^2 + vy^2) - uy vx
  //   = -cos^2x cos^2y + sin^2x sin^2y.
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 6;
    nekrs::FlowSolver solver(comm, device,
                             nekrs::cases::TaylorGreenCase(options));
    const std::size_t n = solver.VelocityX().size();
    occamini::Array<double> q(device, n);
    solver.ComputeQCriterion({q.DevicePtr(), n});
    std::vector<double> x(n), y(n), z(n);
    solver.Mesh().FillCoordinates(solver.Rule(), x, y, z);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double cx = std::cos(x[i]), cy = std::cos(y[i]);
      const double sx = std::sin(x[i]), sy = std::sin(y[i]);
      const double exact = -cx * cx * cy * cy + sx * sx * sy * sy;
      max_err = std::max(max_err, std::abs(q.DevicePtr()[i] - exact));
    }
    EXPECT_LT(max_err, 1e-2);
  });
}

TEST(DerivedFieldTest, AdaptorServesVorticityAndQCriterion) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, SmallCase());
    NekDataAdaptor adaptor;
    adaptor.Initialize(&solver);
    auto mesh = adaptor.GetMesh(0);
    EXPECT_TRUE(adaptor.AddArray(*mesh, "vorticity", svtk::Centering::kPoint));
    EXPECT_TRUE(
        adaptor.AddArray(*mesh, "qcriterion", svtk::Centering::kPoint));
    EXPECT_EQ(mesh->PointArray("vorticity")->Components(), 3);
    EXPECT_EQ(mesh->PointArray("qcriterion")->Components(), 1);
    // Derived fields are not advertised (checkpoints stay raw-state only).
    auto md = adaptor.GetMeshMetadata(0);
    for (const auto& a : md.arrays) {
      EXPECT_NE(a.name, "vorticity");
      EXPECT_NE(a.name, "qcriterion");
    }
    // But can be disabled outright.
    adaptor.SetDerivedFieldsEnabled(false);
    adaptor.ReleaseData();
    auto mesh2 = adaptor.GetMesh(0);
    EXPECT_FALSE(
        adaptor.AddArray(*mesh2, "vorticity", svtk::Centering::kPoint));
  });
}


// ---- Full view-mode pipeline ------------------------------------------------

TEST(ViewModesTest, SurfaceThresholdIsoAndSliceAllRender) {
  // One in situ run exercising every Catalyst view mode through the XML
  // configuration: plain surface, threshold, isosurface (of a derived
  // field), and an axis-aligned slice.
  const std::string dir = TempSubdir("views");
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {3, 2, 2};
  rbc.order = 4;
  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = 4;
  options.sensei_xml =
      "<sensei><analysis type=\"catalyst\" frequency=\"4\" output=\"" +
      dir +
      "\" width=\"48\" height=\"32\">"
      "<render array=\"temperature\" name=\"surface\"/>"
      "<render array=\"temperature\" name=\"thresh\" "
      "threshold_min=\"0.0\"/>"
      "<render array=\"velocity\" magnitude=\"1\" name=\"iso\" "
      "isovalue=\"0.0\" iso_array=\"temperature\"/>"
      "<render array=\"qcriterion\" name=\"slice\" slice_axis=\"y\" "
      "slice_position=\"0.7\"/>"
      "</analysis></sensei>";
  auto metrics = nek_sensei::RunInSitu(2, options);
  EXPECT_EQ(metrics.images_written, 4u);
  for (const char* name : {"surface", "thresh", "iso", "slice"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/render_" + std::string(name) +
                                        "_000004.png"))
        << name;
  }
}

}  // namespace
