#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "instrument/tracer.hpp"
#include "mpimini/clock_sync.hpp"
#include "mpimini/comm.hpp"
#include "mpimini/runtime.hpp"

namespace {

using mpimini::Comm;
using mpimini::Op;
using mpimini::Runtime;

TEST(RuntimeTest, RunsBodyOnEveryRank) {
  std::atomic<int> count{0};
  Runtime::Run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.Size(), 4);
    EXPECT_GE(comm.Rank(), 0);
    EXPECT_LT(comm.Rank(), 4);
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(RuntimeTest, PropagatesExceptions) {
  EXPECT_THROW(Runtime::Run(3,
                            [](Comm& comm) {
                              if (comm.Rank() == 1) {
                                throw std::runtime_error("rank 1 died");
                              }
                            }),
               std::runtime_error);
}

TEST(RuntimeTest, CollectsPerRankMetrics) {
  auto result = Runtime::Run(3, [](Comm& comm) {
    mpimini::RankEnv* env = mpimini::CurrentEnv();
    ASSERT_NE(env, nullptr);
    EXPECT_EQ(env->rank, comm.Rank());
    instrument::TrackedBuffer<double> buf("field", 100);
    env->timings.Accumulate("work", 0.5);
  });
  ASSERT_EQ(result.ranks.size(), 3u);
  for (const auto& m : result.ranks) {
    EXPECT_EQ(m.peak_bytes, 100 * sizeof(double));
    EXPECT_DOUBLE_EQ(m.timings.Total("work"), 0.5);
  }
  EXPECT_EQ(result.MaxPeakBytes(), 100 * sizeof(double));
  EXPECT_EQ(result.TotalPeakBytes(), 3 * 100 * sizeof(double));
}

TEST(PointToPointTest, SendRecvRoundTrip) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      std::vector<int> data{1, 2, 3};
      comm.Send<int>(1, 7, data);
      auto back = comm.Recv<int>(1, 8);
      EXPECT_EQ(back, (std::vector<int>{4, 5, 6}));
    } else {
      auto data = comm.Recv<int>(0, 7);
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
      std::vector<int> reply{4, 5, 6};
      comm.Send<int>(0, 8, reply);
    }
  });
}

TEST(PointToPointTest, TagMatchingSkipsNonMatching) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      comm.SendValue<int>(1, 1, 10);
      comm.SendValue<int>(1, 2, 20);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(comm.RecvValue<int>(0, 2), 20);
      EXPECT_EQ(comm.RecvValue<int>(0, 1), 10);
    }
  });
}

TEST(PointToPointTest, FifoOrderPerChannel) {
  Runtime::Run(2, [](Comm& comm) {
    constexpr int kCount = 50;
    if (comm.Rank() == 0) {
      for (int i = 0; i < kCount; ++i) comm.SendValue<int>(1, 3, i);
    } else {
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(comm.RecvValue<int>(0, 3), i);
      }
    }
  });
}

TEST(PointToPointTest, AnySourceReceivesFromBoth) {
  Runtime::Run(3, [](Comm& comm) {
    if (comm.Rank() == 0) {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        auto m = comm.RecvBytes(mpimini::kAnySource, 5);
        int v;
        std::memcpy(&v, m.payload.data(), sizeof(v));
        sum += v;
      }
      EXPECT_EQ(sum, 30);
    } else {
      comm.SendValue<int>(0, 5, comm.Rank() * 10);
    }
  });
}

TEST(PointToPointTest, ProbeReturnsSizeWithoutConsuming) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      std::vector<double> data(17, 1.0);
      comm.Send<double>(1, 4, data);
    } else {
      EXPECT_EQ(comm.Probe(0, 4), 17 * sizeof(double));
      auto data = comm.Recv<double>(0, 4);
      EXPECT_EQ(data.size(), 17u);
    }
  });
}

TEST(PointToPointTest, HasMessageNonBlocking) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      EXPECT_FALSE(comm.HasMessage(1, 99));
      comm.SendValue<int>(1, 6, 1);
      comm.Barrier();
    } else {
      comm.Barrier();
      EXPECT_TRUE(comm.HasMessage(0, 6));
      comm.RecvValue<int>(0, 6);
    }
  });
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierSynchronizes) {
  const int nranks = GetParam();
  std::atomic<int> arrived{0};
  Runtime::Run(nranks, [&](Comm& comm) {
    ++arrived;
    comm.Barrier();
    EXPECT_EQ(arrived.load(), nranks);
    comm.Barrier();
  });
}

TEST_P(CollectiveTest, BcastDeliversRootData) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    std::vector<double> data(8, comm.Rank() == 2 % comm.Size() ? 3.5 : 0.0);
    comm.Bcast(std::span<double>(data), 2 % comm.Size());
    for (double v : data) EXPECT_DOUBLE_EQ(v, 3.5);
  });
}

TEST_P(CollectiveTest, AllReduceSumMinMaxProd) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    const double r = comm.Rank() + 1.0;
    EXPECT_DOUBLE_EQ(comm.AllReduceValue(r, Op::kSum),
                     nranks * (nranks + 1.0) / 2.0);
    EXPECT_DOUBLE_EQ(comm.AllReduceValue(r, Op::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.AllReduceValue(r, Op::kMax),
                     static_cast<double>(nranks));
    double prod = 1.0;
    for (int i = 1; i <= nranks; ++i) prod *= i;
    EXPECT_DOUBLE_EQ(comm.AllReduceValue(r, Op::kProd), prod);
  });
}

TEST_P(CollectiveTest, AllReduceElementwiseVector) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    std::vector<int> v{comm.Rank(), 2 * comm.Rank()};
    comm.AllReduce(std::span<int>(v), Op::kSum);
    const int s = nranks * (nranks - 1) / 2;
    EXPECT_EQ(v[0], s);
    EXPECT_EQ(v[1], 2 * s);
  });
}

TEST_P(CollectiveTest, GatherCollectsInRankOrder) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    std::vector<int> mine{comm.Rank(), comm.Rank() + 100};
    auto all = comm.Gather<int>(mine, 0);
    if (comm.Rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * nranks));
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r + 100);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, AllGatherOnEveryRank) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    std::vector<int> mine{comm.Rank()};
    auto all = comm.AllGather<int>(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
    }
  });
}

TEST_P(CollectiveTest, GatherBytesVariableSizes) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.Rank()),
                                std::byte{0xAB});
    auto all = comm.GatherBytes(mine, nranks - 1);
    if (comm.Rank() == nranks - 1) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r));
      }
    }
  });
}

TEST_P(CollectiveTest, AllToAllBytesExchangesBlobs) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [nranks](Comm& comm) {
    std::vector<std::vector<std::byte>> outgoing(
        static_cast<std::size_t>(nranks));
    for (int d = 0; d < nranks; ++d) {
      outgoing[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(comm.Rank() + 1),
          static_cast<std::byte>(d));
    }
    auto incoming = comm.AllToAllBytes(outgoing);
    for (int s = 0; s < nranks; ++s) {
      const auto& blob = incoming[static_cast<std::size_t>(s)];
      EXPECT_EQ(blob.size(), static_cast<std::size_t>(s + 1));
      for (std::byte b : blob) {
        EXPECT_EQ(b, static_cast<std::byte>(comm.Rank()));
      }
    }
  });
}

TEST_P(CollectiveTest, BackToBackCollectivesDoNotMix) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      const double v = comm.Rank() + round * 1000.0;
      const double expect_max = (comm.Size() - 1) + round * 1000.0;
      EXPECT_DOUBLE_EQ(comm.AllReduceValue(v, Op::kMax), expect_max);
    }
  });
}

TEST_P(CollectiveTest, AllReduceVectorsAgreeOnAllRanks) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    std::vector<int> v{comm.Rank(), comm.Rank() * 2, 1};
    comm.AllReduce(std::span<int>(v.data(), v.size()), Op::kSum);
    const int n = comm.Size();
    EXPECT_EQ(v[0], n * (n - 1) / 2);
    EXPECT_EQ(v[1], n * (n - 1));
    EXPECT_EQ(v[2], n);
  });
}

// Regression for the AllReduce satellite: AllReduce runs on its own internal
// tag, so interleaving it tightly with Barriers and other collectives must
// never mismatch messages, even when ranks run far ahead of each other.
TEST_P(CollectiveTest, AllReduceAndBarrierSequencesStayMatched) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) {
      const int sum =
          comm.AllReduceValue(comm.Rank() + round, Op::kSum);
      const int n = comm.Size();
      EXPECT_EQ(sum, n * (n - 1) / 2 + round * n);
      comm.Barrier();
      const int mx = comm.AllReduceValue(comm.Rank(), Op::kMax);
      EXPECT_EQ(mx, n - 1);
      const int mn = comm.AllReduceValue(comm.Rank() - round, Op::kMin);
      EXPECT_EQ(mn, -round);
      comm.Barrier();
    }
  });
}

TEST(PointToPointTest, SendBufferMovesOwnershipWithoutCopy) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      core::Buffer big("", 1 << 16);
      big.bytes()[123] = std::byte{0x7F};
      const std::byte* raw = big.data();
      core::ResetLocalBufferStats();
      comm.SendBuffer(1, 9, std::move(big));
      // The block moved into the mailbox: no bytes copied on the send side.
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
      EXPECT_GE(core::LocalBufferStats().moves, 1u);
      comm.SendValue<std::uintptr_t>(1, 10,
                                     reinterpret_cast<std::uintptr_t>(raw));
    } else {
      core::ResetLocalBufferStats();
      core::Buffer got = comm.RecvBuffer(0, 9);
      EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
      ASSERT_EQ(got.size(), std::size_t{1} << 16);
      EXPECT_EQ(got[123], std::byte{0x7F});
      // Same block end to end: the receiver sees the sender's allocation.
      const auto raw = comm.RecvValue<std::uintptr_t>(0, 10);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(got.data()), raw);
    }
  });
}

TEST(PointToPointTest, SendGatherPacksChainOnce) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      core::Buffer a("", 4096);
      core::Buffer b("", 4096);
      a.bytes()[0] = std::byte{1};
      b.bytes()[4095] = std::byte{2};
      core::BufferChain chain;
      chain.Append(core::BufferView(a));
      chain.Append(core::BufferView(b));
      core::ResetLocalBufferStats();
      comm.SendGather(1, 9, chain);
      // Exactly one full-field copy: the transport-boundary pack.
      EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);
    } else {
      core::Buffer got = comm.RecvBuffer(0, 9);
      ASSERT_EQ(got.size(), 8192u);
      EXPECT_EQ(got[0], std::byte{1});
      EXPECT_EQ(got[8191], std::byte{2});
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(SplitTest, PartitionsByColor) {
  Runtime::Run(6, [](Comm& comm) {
    const int color = comm.Rank() % 2;
    Comm sub = comm.Split(color, comm.Rank());
    ASSERT_TRUE(sub.Valid());
    EXPECT_EQ(sub.Size(), 3);
    // Even world ranks 0,2,4 -> sub ranks 0,1,2; same for odd.
    EXPECT_EQ(sub.Rank(), comm.Rank() / 2);
    // The sub-communicator works for collectives.
    const int sum = sub.AllReduceValue(comm.Rank(), Op::kSum);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(SplitTest, KeyControlsOrdering) {
  Runtime::Run(4, [](Comm& comm) {
    // Reverse ordering via descending keys.
    Comm sub = comm.Split(0, -comm.Rank());
    EXPECT_EQ(sub.Rank(), comm.Size() - 1 - comm.Rank());
  });
}

TEST(SplitTest, NegativeColorYieldsInvalidComm) {
  Runtime::Run(3, [](Comm& comm) {
    Comm sub = comm.Split(comm.Rank() == 0 ? -1 : 0, 0);
    if (comm.Rank() == 0) {
      EXPECT_FALSE(sub.Valid());
    } else {
      ASSERT_TRUE(sub.Valid());
      EXPECT_EQ(sub.Size(), 2);
    }
  });
}

TEST(SplitTest, SimEndpointPartitionFourToOne) {
  // The paper's in transit layout: 4 simulation ranks per endpoint rank.
  Runtime::Run(5, [](Comm& comm) {
    const bool endpoint = comm.Rank() >= 4;
    Comm group = comm.Split(endpoint ? 1 : 0, comm.Rank());
    EXPECT_EQ(group.Size(), endpoint ? 1 : 4);
  });
}

TEST(ErrorTest, SendToInvalidRankThrows) {
  Runtime::Run(2, [](Comm& comm) {
    if (comm.Rank() == 0) {
      int v = 0;
      EXPECT_THROW(comm.SendValue<int>(7, 0, v), std::runtime_error);
    }
  });
}

TEST(ErrorTest, InvalidCommThrows) {
  Comm comm;
  EXPECT_FALSE(comm.Valid());
  EXPECT_THROW(comm.Barrier(), std::runtime_error);
}


// ---- Stress / property ------------------------------------------------------

TEST(StressTest, RingPipelineWithVaryingSizes) {
  // Each rank forwards growing payloads around a ring for many rounds;
  // verifies ordering, integrity, and absence of deadlock under load.
  Runtime::Run(5, [](Comm& comm) {
    const int next = (comm.Rank() + 1) % comm.Size();
    const int prev = (comm.Rank() + comm.Size() - 1) % comm.Size();
    for (int round = 1; round <= 40; ++round) {
      std::vector<std::int64_t> payload(
          static_cast<std::size_t>(round * 7 + comm.Rank()));
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = round * 1000 + static_cast<std::int64_t>(i);
      }
      comm.Send<std::int64_t>(next, 11, payload);
      auto got = comm.Recv<std::int64_t>(prev, 11);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(round * 7 + prev));
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], round * 1000 + static_cast<std::int64_t>(i));
      }
    }
  });
}

TEST(StressTest, InterleavedCollectivesAndP2P) {
  // Collectives interleaved with point-to-point traffic on user tags must
  // not cross wires (internal tags are segregated).
  Runtime::Run(4, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) {
      if (comm.Rank() == 0) {
        comm.SendValue<int>(3, 77, round);
      }
      const double sum = comm.AllReduceValue(1.0, Op::kSum);
      EXPECT_DOUBLE_EQ(sum, 4.0);
      if (comm.Rank() == 3) {
        EXPECT_EQ(comm.RecvValue<int>(0, 77), round);
      }
      comm.Barrier();
    }
  });
}

TEST(StressTest, LargeMessageIntegrity) {
  Runtime::Run(2, [](Comm& comm) {
    constexpr std::size_t kCount = 1 << 20;  // 8 MiB of doubles
    if (comm.Rank() == 0) {
      std::vector<double> data(kCount);
      for (std::size_t i = 0; i < kCount; ++i) {
        data[i] = static_cast<double>(i) * 0.5;
      }
      comm.Send<double>(1, 1, data);
    } else {
      auto data = comm.Recv<double>(0, 1);
      ASSERT_EQ(data.size(), kCount);
      EXPECT_DOUBLE_EQ(data[0], 0.0);
      EXPECT_DOUBLE_EQ(data[kCount - 1], (kCount - 1) * 0.5);
      EXPECT_DOUBLE_EQ(data[kCount / 2], (kCount / 2) * 0.5);
    }
  });
}

TEST(StressTest, TracerRingDropCountersIsolatedAcrossConcurrentFeeders) {
  // Eight rank threads concurrently hammer their own per-rank tracer rings.
  // The rings are lock-free single-owner structures; this pins that the
  // drop bookkeeping stays exact per rank with no cross-thread bleed.
  constexpr std::size_t kRing = 8;
  constexpr int kSpans = 100;
  mpimini::RunSettings settings;
  settings.trace = true;
  settings.tracer.span_capacity = kRing;
  auto result = Runtime::Run(8, settings, [](Comm& comm) {
    for (int s = 0; s < kSpans + comm.Rank(); ++s) {
      instrument::Span span("solver.step");
    }
  });
  ASSERT_EQ(result.tracers.size(), 8u);
  for (int r = 0; r < 8; ++r) {
    const auto& tracer = *result.tracers[static_cast<std::size_t>(r)];
    const auto expected = static_cast<std::uint64_t>(kSpans + r);
    EXPECT_EQ(tracer.TotalSpans(), expected) << "rank " << r;
    EXPECT_EQ(tracer.DroppedSpans(), expected - kRing) << "rank " << r;
    EXPECT_EQ(tracer.RetainedSpans(), kRing) << "rank " << r;
  }
}

// ---- Clock-offset calibration (DESIGN.md §5d) -------------------------------

TEST(ClockSyncTest, ZeroSkewEstimateWithinHalfMinRtt) {
  // Ranks are threads sharing one steady_clock, so the true offset is 0 ns:
  // the returned estimate must itself sit inside the documented error bound
  // |error| <= min_rtt / 2 (+1 ns slack for the integer halving).
  Runtime::Run(4, [](Comm& comm) {
    const mpimini::ClockSync sync = mpimini::CalibrateClockOffset(comm);
    if (comm.Rank() == 0) {
      // The root defines the global timeline.
      EXPECT_EQ(sync.offset_ns, 0);
      EXPECT_EQ(sync.min_rtt_ns, 0);
    } else {
      EXPECT_GT(sync.min_rtt_ns, 0);
      EXPECT_EQ(sync.rounds, 8);
      EXPECT_LE(std::llabs(sync.offset_ns), sync.min_rtt_ns / 2 + 1);
    }
  });
}

TEST(ClockSyncTest, RecoversInjectedSkewWithinHalfMinRtt) {
  // A rank whose virtual clock runs 5 ms ahead must calibrate to an offset
  // of ~-5 ms, wrong by at most half its minimum round trip — Cristian's
  // bound, since only the RTT's split between directions is unknowable.
  constexpr std::int64_t kSkewNs = 5'000'000;
  Runtime::Run(2, [](Comm& comm) {
    const std::int64_t skew = comm.Rank() == 1 ? kSkewNs : 0;
    const mpimini::ClockSync sync =
        mpimini::CalibrateClockOffset(comm, /*root=*/0, /*rounds=*/8, skew);
    if (comm.Rank() == 1) {
      EXPECT_LE(std::llabs(sync.offset_ns + kSkewNs),
                sync.min_rtt_ns / 2 + 1);
    }
  });
}

TEST(ClockSyncTest, TwoGroupWorldCalibrationAlignsSkewedEndpointGroup) {
  // The in transit shape: the world splits into a sim group and an endpoint
  // group (separate jobs on separate nodes in a real deployment — their
  // unrelated clock epochs simulated by skewing every endpoint rank 3 ms
  // ahead).  Calibration runs over the WORLD communicator, so both groups
  // land on world rank 0's timeline, and each skewed rank's offset must
  // recover its skew within min_rtt / 2.  After calibration an endpoint
  // rank can place a sim-side timestamp on its own corrected timeline to
  // within the same bound.
  constexpr std::int64_t kEndpointSkewNs = 3'000'000;
  Runtime::Run(6, [](Comm& world) {
    const bool is_endpoint = world.Rank() >= 4;
    Comm group = world.Split(is_endpoint ? 1 : 0, world.Rank());
    ASSERT_EQ(group.Size(), is_endpoint ? 2 : 4);
    const std::int64_t skew = is_endpoint ? kEndpointSkewNs : 0;
    const mpimini::ClockSync sync =
        mpimini::CalibrateClockOffset(world, /*root=*/0, /*rounds=*/8, skew);
    if (world.Rank() == 0) {
      EXPECT_EQ(sync.offset_ns, 0);
    } else {
      EXPECT_LE(std::llabs(sync.offset_ns + skew), sync.min_rtt_ns / 2 + 1);
    }
  });
}

TEST(ClockSyncTest, RejectsBadArguments) {
  Runtime::Run(2, [](Comm& comm) {
    EXPECT_THROW(mpimini::CalibrateClockOffset(comm, /*root=*/2),
                 std::invalid_argument);
    EXPECT_THROW(
        mpimini::CalibrateClockOffset(comm, /*root=*/0, /*rounds=*/0),
        std::invalid_argument);
  });
}

TEST(StressTest, NestedSplitsFormConsistentSubgroups) {
  Runtime::Run(8, [](Comm& comm) {
    Comm half = comm.Split(comm.Rank() / 4, comm.Rank());
    ASSERT_EQ(half.Size(), 4);
    Comm quarter = half.Split(half.Rank() / 2, half.Rank());
    ASSERT_EQ(quarter.Size(), 2);
    // Each leaf group sums its two world ranks.
    const int sum = quarter.AllReduceValue(comm.Rank(), Op::kSum);
    const int base = (comm.Rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

}  // namespace
