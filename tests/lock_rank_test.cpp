// Lock-rank runtime assertion coverage: under -DNSM_LOCK_RANK=ON, acquiring
// two core::Mutex in the order the acquired-before graph forbids must abort
// naming BOTH locks; in default builds the spec constructor must cost
// nothing (sizeof(core::Mutex) == sizeof(std::mutex)).  The file compiles
// in both configurations; CI runs it in both (tier1 and the lock-rank
// sanitizer lane).
#include <gtest/gtest.h>

#include <mutex>

#include "core/lock_ranks.hpp"
#include "core/thread_annotations.hpp"

namespace {

using core::lock_rank::kCoreAsyncPipelineMutex;
using core::lock_rank::kMpiminiCommMutex;

#if defined(NSM_LOCK_RANK)

TEST(LockRankTest, Enabled) { EXPECT_TRUE(core::LockRankEnabled()); }

// The approved direction: ranks strictly increase, so holding the
// lower-ranked pipeline mutex while taking the higher-ranked comm mutex is
// exactly what the graph allows.
TEST(LockRankTest, ApprovedOrderSucceeds) {
  core::Mutex low{kCoreAsyncPipelineMutex};
  core::Mutex high{kMpiminiCommMutex};
  {
    core::MutexLock hold_low(low);
    core::MutexLock hold_high(high);
  }
  // Releasing restores the ledger: the same order works again.
  {
    core::MutexLock hold_low(low);
    core::MutexLock hold_high(high);
  }
}

// Release order is not acquisition order: after the high lock is gone,
// nothing blocks re-acquiring above the still-held low lock.
TEST(LockRankTest, ReleasePopsTheHeldStack) {
  core::Mutex low{kCoreAsyncPipelineMutex};
  core::Mutex high{kMpiminiCommMutex};
  core::MutexLock hold_low(low);
  {
    core::MutexLock hold_high(high);
  }
  core::MutexLock hold_high_again(high);
}

// The forbidden interleaving: acquiring a lower rank while holding a
// higher one.  The abort report must name BOTH locks (by analyzer lock id)
// so the hang is diagnosable from the one line.
TEST(LockRankDeathTest, ForbiddenOrderAbortsNamingBothLocks) {
  EXPECT_DEATH(
      {
        core::Mutex low{kCoreAsyncPipelineMutex};
        core::Mutex high{kMpiminiCommMutex};
        core::MutexLock hold_high(high);
        core::MutexLock hold_low(low);  // rank goes down: abort
      },
      "mpimini/comm::mutex.*core/async_pipeline::mutex_|"
      "core/async_pipeline::mutex_.*mpimini/comm::mutex");
}

// Unranked mutexes stay outside the scheme entirely — legacy or local
// locks do not have to be ranked to coexist with ranked ones.
TEST(LockRankTest, UnrankedMutexIsExempt) {
  core::Mutex ranked{kMpiminiCommMutex};
  core::Mutex unranked;
  core::MutexLock hold_ranked(ranked);
  core::MutexLock hold_unranked(unranked);
}

#else  // !NSM_LOCK_RANK

TEST(LockRankTest, Disabled) { EXPECT_FALSE(core::LockRankEnabled()); }

// Zero overhead when off: the spec constructor discards its argument and
// the mutex carries no extra state.
static_assert(sizeof(core::Mutex) == sizeof(std::mutex),
              "default-build core::Mutex must carry no lock-rank state");

TEST(LockRankTest, RankedConstructionIsFreeWhenOff) {
  core::Mutex ranked{kMpiminiCommMutex};
  core::MutexLock hold(ranked);
  EXPECT_EQ(sizeof(core::Mutex), sizeof(std::mutex));
}

#endif  // NSM_LOCK_RANK

}  // namespace
