#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "instrument/memory_tracker.hpp"
#include "instrument/timer.hpp"
#include "occamini/device.hpp"

namespace {

using occamini::Array;
using occamini::Backend;
using occamini::Device;
using occamini::Memory;

class DeviceBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(DeviceBackendTest, RoundTripCopies) {
  Device device(GetParam());
  Memory mem = device.Malloc(64 * sizeof(double));
  std::vector<double> host(64);
  std::iota(host.begin(), host.end(), 0.0);
  mem.CopyFrom(host.data(), host.size() * sizeof(double));
  std::vector<double> back(64, -1.0);
  mem.CopyTo(back.data(), back.size() * sizeof(double));
  EXPECT_EQ(host, back);
}

TEST_P(DeviceBackendTest, OffsetCopies) {
  Device device(GetParam());
  Memory mem = device.Malloc(8 * sizeof(int));
  std::vector<int> zero(8, 0);
  mem.CopyFrom(zero.data(), zero.size() * sizeof(int));
  const int v = 42;
  mem.CopyFrom(&v, sizeof(int), 3 * sizeof(int));
  std::vector<int> out(8);
  mem.CopyTo(out.data(), out.size() * sizeof(int));
  EXPECT_EQ(out[3], 42);
  EXPECT_EQ(out[0], 0);
}

TEST_P(DeviceBackendTest, TransferStatsCount) {
  Device device(GetParam());
  Memory mem = device.Malloc(1024);
  std::vector<std::byte> buf(512);
  mem.CopyFrom(buf.data(), buf.size());
  mem.CopyTo(buf.data(), buf.size());
  mem.CopyTo(buf.data(), 256);
  const auto& stats = device.Transfers();
  EXPECT_EQ(stats.h2d_count, 1u);
  EXPECT_EQ(stats.h2d_bytes, 512u);
  EXPECT_EQ(stats.d2h_count, 2u);
  EXPECT_EQ(stats.d2h_bytes, 768u);
}

TEST_P(DeviceBackendTest, OutOfRangeCopyThrows) {
  Device device(GetParam());
  Memory mem = device.Malloc(16);
  std::vector<std::byte> buf(32);
  EXPECT_THROW(mem.CopyFrom(buf.data(), 32), std::out_of_range);
  EXPECT_THROW(mem.CopyTo(buf.data(), 8, 12), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(Backends, DeviceBackendTest,
                         ::testing::Values(Backend::kSerial,
                                           Backend::kSimGpu));

TEST(DeviceTest, TracksAllocatedBytes) {
  Device device(Backend::kSimGpu);
  EXPECT_EQ(device.AllocatedBytes(), 0u);
  {
    Memory a = device.Malloc(100);
    Memory b = device.Malloc(50);
    EXPECT_EQ(device.AllocatedBytes(), 150u);
  }
  EXPECT_EQ(device.AllocatedBytes(), 0u);
}

TEST(DeviceTest, DeviceMemoryRegistersWithRankTracker) {
  instrument::MemoryTracker tracker;
  Device device(Backend::kSimGpu);
  {
    instrument::TrackerScope scope(&tracker);
    Memory mem = device.Malloc(4096);
    EXPECT_EQ(tracker.CurrentBytes("device"), 4096u);
  }
  EXPECT_EQ(tracker.CurrentBytes("device"), 0u);
  EXPECT_EQ(tracker.PeakBytes("device"), 4096u);
}

TEST(DeviceTest, KernelLaunchCountsAndTimes) {
  Device device(Backend::kSerial);
  int calls = 0;
  device.Launch("axpy", [&] { ++calls; });
  device.Launch("axpy", [&] { ++calls; });
  device.Launch("mass", [&] { ++calls; });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(device.Kernels().at("axpy").launches, 2u);
  EXPECT_EQ(device.Kernels().at("mass").launches, 1u);
  EXPECT_GE(device.Kernels().at("axpy").seconds, 0.0);
}

TEST(DeviceTest, TransferModelAddsSimulatedCost) {
  occamini::TransferModel model;
  model.latency_seconds = 1e-3;
  model.bytes_per_second = 1e9;
  Device device(Backend::kSimGpu, model);
  Memory mem = device.Malloc(1 << 20);
  std::vector<std::byte> buf(1 << 20);
  instrument::WallTimer timer;
  mem.CopyTo(buf.data(), buf.size());
  // latency 1 ms + ~1 MiB / 1 GB/s ~= 1 ms => at least 2 ms total.
  EXPECT_GE(timer.Elapsed(), 2e-3);
  EXPECT_GE(device.Transfers().d2h_seconds, 2e-3);
}

TEST(DeviceTest, TransferModelCostFormula) {
  occamini::TransferModel model{1e-3, 1e9};
  EXPECT_DOUBLE_EQ(model.Cost(0), 1e-3);
  EXPECT_DOUBLE_EQ(model.Cost(1000000000), 1e-3 + 1.0);
  occamini::TransferModel unthrottled;
  EXPECT_DOUBLE_EQ(unthrottled.Cost(1 << 30), 0.0);
}

TEST(DeviceTest, ResetStatsClearsCounters) {
  Device device(Backend::kSimGpu);
  Memory mem = device.Malloc(8);
  std::byte b{};
  mem.CopyTo(&b, 1);
  device.Launch("k", [] {});
  device.ResetStats();
  EXPECT_EQ(device.Transfers().d2h_count, 0u);
  EXPECT_TRUE(device.Kernels().empty());
}

TEST(ArrayTest, TypedCopies) {
  Device device(Backend::kSimGpu);
  Array<double> array(device, 32);
  EXPECT_EQ(array.size(), 32u);
  std::vector<double> host(32, 2.5);
  array.CopyFromHost(host);
  std::vector<double> back(32);
  array.CopyToHost(back);
  EXPECT_EQ(back, host);
}

TEST(ArrayTest, StageToHostLandsInTrackedBuffer) {
  Device device(Backend::kSimGpu);
  Array<double> array(device, 1024);
  std::vector<double> host(1024);
  for (std::size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<double>(i);
  }
  array.CopyFromHost(host);

  instrument::MemoryTracker tracker;
  instrument::TrackerScope scope(&tracker);
  core::ResetLocalBufferStats();
  const auto d2h_before = device.Transfers().d2h_count;
  core::Buffer staged = array.StageToHost("staging");

  // One D2H transfer; the host landing is a device stage, not a host copy.
  EXPECT_EQ(device.Transfers().d2h_count, d2h_before + 1);
  EXPECT_EQ(core::LocalBufferStats().device_stages, 1u);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
  EXPECT_EQ(tracker.CurrentBytes("staging"), 1024 * sizeof(double));
  auto values = staged.As<double>();
  ASSERT_EQ(values.size(), 1024u);
  EXPECT_DOUBLE_EQ(values[1023], 1023.0);
}

TEST(ArrayTest, ElementOffsetCopies) {
  Device device(Backend::kSerial);
  Array<int> array(device, 10);
  std::vector<int> zero(10, 0);
  array.CopyFromHost(zero);
  std::vector<int> two{7, 8};
  array.CopyFromHost(two, 4);
  std::vector<int> out(10);
  array.CopyToHost(out);
  EXPECT_EQ(out[4], 7);
  EXPECT_EQ(out[5], 8);
}

TEST(ArrayTest, StageToHostIntoReusesUniqueRightSizedBuffer) {
  // The async pipeline's double-buffered staging leans on this contract:
  // re-staging into last round's slot reuses the allocation in place, so
  // steady-state snapshots allocate nothing.
  Device device(Backend::kSimGpu);
  Array<double> array(device, 64);
  array.CopyFromHost(std::vector<double>(64, 1.0));
  core::Buffer staged = array.StageToHost("staging");
  const std::byte* block = staged.data();

  array.CopyFromHost(std::vector<double>(64, 2.0));
  core::ResetLocalBufferStats();
  array.StageToHostInto(staged, "staging");
  EXPECT_EQ(staged.data(), block);  // reused in place
  EXPECT_EQ(core::LocalBufferStats().allocations, 0u);
  EXPECT_EQ(core::LocalBufferStats().device_stages, 1u);
  EXPECT_DOUBLE_EQ(staged.As<double>()[0], 2.0);

  // A shared handle forbids reuse: a downstream holder of last round's
  // view must never see this round's bytes.
  core::Buffer held = staged;
  array.CopyFromHost(std::vector<double>(64, 3.0));
  array.StageToHostInto(staged, "staging");
  EXPECT_NE(staged.data(), held.data());
  EXPECT_DOUBLE_EQ(held.As<double>()[0], 2.0);
  EXPECT_DOUBLE_EQ(staged.As<double>()[0], 3.0);

  // A wrong-sized destination (including empty) falls back to a fresh
  // allocation of the full field.
  core::Buffer empty;
  array.StageToHostInto(empty, "staging");
  EXPECT_EQ(empty.size(), 64 * sizeof(double));
  EXPECT_DOUBLE_EQ(empty.As<double>()[63], 3.0);
}

TEST(MemoryTest, NullMemoryThrows) {
  Memory mem;
  EXPECT_FALSE(mem.Valid());
  EXPECT_EQ(mem.Bytes(), 0u);
  std::byte b{};
  EXPECT_THROW(mem.CopyTo(&b, 1), std::runtime_error);
}

}  // namespace
