// Unit tests for the nsm_analyze lexer and extractor (tools/nsm_analyze).
// The end-to-end behavior of the four checks is covered by the fixture
// ctests (tools/lint_fixtures/analyze/); these tests pin the parts a
// fixture cannot isolate: exact token streams for the lexer edge cases and
// the extractor's event/scope model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checks.hpp"
#include "lexer.hpp"
#include "model.hpp"

namespace {

using nsm_analyze::Event;
using nsm_analyze::EventKind;
using nsm_analyze::FileModel;
using nsm_analyze::Lex;
using nsm_analyze::Token;
using nsm_analyze::TokenKind;

std::vector<std::string> TextsOf(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

// ---- lexer -----------------------------------------------------------------

TEST(LexerTest, RawStringBodyIsOneOpaqueToken) {
  const auto tokens = Lex(R"src(auto s = R"json({ "k": "}v{" })json";)src");
  ASSERT_EQ(tokens.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, R"({ "k": "}v{" })");
  EXPECT_EQ(tokens[4].text, ";");
}

TEST(LexerTest, RawStringCustomDelimiterSurvivesEmbeddedCloser) {
  const auto tokens = Lex("auto s = R\"del(ends with )\" here)del\";");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].text, "ends with )\" here");
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  for (const char* prefix : {"u8", "L", "u", "U"}) {
    const std::string src = std::string(prefix) + "R\"(body)\";";
    const auto tokens = Lex(src);
    ASSERT_EQ(tokens.size(), 2u) << prefix;
    EXPECT_EQ(tokens[0].kind, TokenKind::kString) << prefix;
    EXPECT_EQ(tokens[0].text, "body") << prefix;
  }
}

TEST(LexerTest, LineContinuationMacroContributesNoTokens) {
  const auto tokens = Lex(
      "#define RECORD(m)            \\\n"
      "  (m)->Observe(\"x.y\", 1.0); \\\n"
      "  (void)0\n"
      "int after;");
  EXPECT_EQ(TextsOf(tokens), (std::vector<std::string>{"int", "after", ";"}));
  EXPECT_EQ(tokens[0].line, 4);  // continuation lines were counted
}

TEST(LexerTest, BlockCommentsDoNotNest) {
  const auto tokens = Lex("/* outer /* inner */ int x; /* tail */");
  EXPECT_EQ(TextsOf(tokens), (std::vector<std::string>{"int", "x", ";"}));
}

TEST(LexerTest, LineCommentWithContinuationSwallowsNextLine) {
  const auto tokens = Lex("// comment continues \\\nint hidden;\nint seen;");
  EXPECT_EQ(TextsOf(tokens), (std::vector<std::string>{"int", "seen", ";"}));
  EXPECT_EQ(tokens[0].line, 3);
}

TEST(LexerTest, StringEscapesAndCharLiterals) {
  const auto tokens = Lex(R"(f("a\"b", '\'', "{"))");
  ASSERT_EQ(tokens.size(), 8u);  // f ( "a\"b" , '\'' , "{" )
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "a\\\"b");
  EXPECT_EQ(tokens[4].kind, TokenKind::kChar);
  EXPECT_EQ(tokens[6].text, "{");  // a brace inside a literal is not a scope
}

TEST(LexerTest, MultiCharPunctuatorsAreUnits) {
  const auto tokens = Lex("a->b::c");
  EXPECT_EQ(TextsOf(tokens),
            (std::vector<std::string>{"a", "->", "b", "::", "c"}));
}

TEST(LexerTest, LineNumbersSpanMultilineTokens) {
  const auto tokens = Lex("R\"(one\ntwo)\"\nint x;");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 3);  // `int` after the two-line raw string
}

TEST(LexerTest, UnterminatedLiteralStopsAtNewline) {
  const auto tokens = Lex("auto s = \"oops\nint next;");
  // The unterminated literal must not eat the rest of the file.
  EXPECT_EQ(TextsOf(tokens),
            (std::vector<std::string>{"auto", "s", "=", "oops", "int", "next",
                                      ";"}));
}

// ---- extractor -------------------------------------------------------------

FileModel Extract(const std::string& source,
                  const std::string& path = "src/demo/demo.cpp") {
  return nsm_analyze::ExtractFile(path, Lex(source));
}

const nsm_analyze::Function* FindFunction(const FileModel& model,
                                          const std::string& name) {
  for (const auto& f : model.functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

TEST(ModelTest, GuardAcquisitionAndLockIdentity) {
  const FileModel model = Extract(
      "void F(State& s) {\n"
      "  core::MutexLock lock(s.state_->mutex);\n"
      "}\n");
  const auto* f = FindFunction(model, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_FALSE(f->events.empty());
  const Event& e = f->events.front();
  EXPECT_EQ(e.kind, EventKind::kGuardAcquire);
  EXPECT_EQ(e.name, "demo/demo::mutex");  // last identifier, file-qualified
  EXPECT_TRUE(e.core_guard);
  EXPECT_EQ(e.line, 2);
}

TEST(ModelTest, StdGuardIsNotRankable) {
  const FileModel model = Extract(
      "void F() { std::lock_guard<std::mutex> lock(AdoptMutex()); }\n");
  const auto* f = FindFunction(model, "F");
  ASSERT_NE(f, nullptr);
  const Event& e = f->events.front();
  EXPECT_EQ(e.kind, EventKind::kGuardAcquire);
  EXPECT_EQ(e.name, "demo/demo::AdoptMutex");
  EXPECT_FALSE(e.core_guard);
}

TEST(ModelTest, ScopeCloseEndsGuardLifetime) {
  // Sequential same-depth blocks must not look like nested acquisition:
  // the kScopeClose event between them is what the graph walk pops on.
  const FileModel model = Extract(
      "void F(S& s) {\n"
      "  { core::MutexLock a(s.m1); }\n"
      "  { core::MutexLock b(s.m2); }\n"
      "}\n");
  const auto* f = FindFunction(model, "F");
  ASSERT_NE(f, nullptr);
  std::vector<EventKind> kinds;
  for (const Event& e : f->events) kinds.push_back(e.kind);
  EXPECT_EQ(kinds,
            (std::vector<EventKind>{
                EventKind::kGuardAcquire, EventKind::kScopeClose,  // block one
                EventKind::kGuardAcquire, EventKind::kScopeClose,  // block two
                EventKind::kScopeClose}));                         // body close
  // Each guard lives at depth 2; the closes between the blocks report the
  // post-close depth 1, so the graph walk pops any guard deeper than 1.
  int acquires = 0;
  for (const Event& e : f->events) {
    if (e.kind == EventKind::kGuardAcquire) {
      EXPECT_EQ(e.depth, 2);
      ++acquires;
    }
  }
  EXPECT_EQ(acquires, 2);
  EXPECT_EQ(f->events[1].depth, 1);
  EXPECT_EQ(f->events[3].depth, 1);
}

TEST(ModelTest, MultiLineMetricCallIsExtracted) {
  const FileModel model = Extract(
      "void F(M* metrics, double s) {\n"
      "  metrics->Observe(\n"
      "      \"e2e.step_to_image_seconds\",\n"
      "      s);\n"
      "}\n");
  ASSERT_EQ(model.names.size(), 1u);
  EXPECT_EQ(model.names[0].name, "e2e.step_to_image_seconds");
  EXPECT_EQ(model.names[0].kind, nsm_analyze::NameKind::kMetric);
  EXPECT_EQ(model.names[0].line, 3);
}

TEST(ModelTest, SpanRequiresStringLiteralArgument) {
  // svtk's `void Span(std::span<const T>)` and other non-literal calls must
  // not reach the registry.
  const FileModel model = Extract(
      "void F(S& ser, std::vector<int>& v) { ser.Span(v); }\n"
      "void G() { instrument::Span span(\"demo.real\"); }\n");
  ASSERT_EQ(model.names.size(), 1u);
  EXPECT_EQ(model.names[0].name, "demo.real");
}

TEST(ModelTest, BlockingCallsAndCondWait) {
  const FileModel model = Extract(
      "void F(C& comm, core::CondVar& cv, core::Mutex& m) {\n"
      "  comm.Barrier();\n"
      "  comm.RecvValue<int>(0, 1);\n"
      "  cv.Wait(m);\n"
      "}\n");
  const auto* f = FindFunction(model, "F");
  ASSERT_NE(f, nullptr);
  int barriers = 0, recvs = 0, waits = 0;
  for (const Event& e : f->events) {
    if (e.kind == EventKind::kBlockingCall && e.name == "Barrier") {
      EXPECT_TRUE(e.collective);
      ++barriers;
    }
    if (e.kind == EventKind::kBlockingCall && e.name == "RecvValue") {
      EXPECT_FALSE(e.collective);  // p2p, not a collective
      ++recvs;
    }
    if (e.kind == EventKind::kCondWait) ++waits;
  }
  EXPECT_EQ(barriers, 1);
  EXPECT_EQ(recvs, 1);
  EXPECT_EQ(waits, 1);
}

TEST(ModelTest, RankConditionalBranchesAndPointToPointExemption) {
  const FileModel model = Extract(
      "void F(C& comm, int rank) {\n"
      "  if (rank == 0) {\n"
      "    comm.Barrier();\n"
      "  } else {\n"
      "    comm.Bcast(0, nullptr, 0);\n"
      "  }\n"
      "  if (comm.Rank() == 0) comm.RecvBytes(1, 0, nullptr, 0);\n"
      "}\n");
  // Only the first conditional contains collectives; RecvBytes is p2p.
  ASSERT_EQ(model.rank_conditionals.size(), 1u);
  const auto& rc = model.rank_conditionals[0];
  ASSERT_EQ(rc.then_branch.size(), 1u);
  EXPECT_EQ(rc.then_branch[0].name, "Barrier");
  ASSERT_TRUE(rc.has_else);
  ASSERT_EQ(rc.else_branch.size(), 1u);
  EXPECT_EQ(rc.else_branch[0].name, "Bcast");
}

TEST(ModelTest, ConstructorInitializerListBodyIsFound) {
  const FileModel model = Extract(
      "Pipeline::Pipeline(S& s, int depth)\n"
      "    : solver_(s), slots_(depth), flags_{} {\n"
      "  core::MutexLock lock(mutex_);\n"
      "}\n");
  const auto* f = FindFunction(model, "Pipeline");
  ASSERT_NE(f, nullptr);
  ASSERT_FALSE(f->events.empty());
  EXPECT_EQ(f->events.front().kind, EventKind::kGuardAcquire);
}

TEST(ModelTest, RankedDeclExtraction) {
  const FileModel model = Extract(
      "struct State {\n"
      "  core::Mutex mutex{core::lock_rank::kDemoDemoMutex};\n"
      "  core::Mutex bare;\n"
      "};\n");
  ASSERT_EQ(model.ranked_decls.size(), 2u);
  EXPECT_EQ(model.ranked_decls[0].member, "mutex");
  EXPECT_EQ(model.ranked_decls[0].spec_constant, "kDemoDemoMutex");
  EXPECT_EQ(model.ranked_decls[1].member, "bare");
  EXPECT_TRUE(model.ranked_decls[1].spec_constant.empty());
}

// ---- small check helpers ---------------------------------------------------

TEST(ChecksTest, RankConstantName) {
  EXPECT_EQ(nsm_analyze::RankConstantName("mpimini/comm::mutex"),
            "kMpiminiCommMutex");
  EXPECT_EQ(nsm_analyze::RankConstantName("core/async_pipeline::mutex_"),
            "kCoreAsyncPipelineMutex");
}

TEST(ChecksTest, NameTaxonomy) {
  EXPECT_TRUE(nsm_analyze::MatchesNameTaxonomy("layer.phase"));
  EXPECT_TRUE(nsm_analyze::MatchesNameTaxonomy("e2e.step_to_image_seconds"));
  EXPECT_FALSE(nsm_analyze::MatchesNameTaxonomy("noseparator"));
  EXPECT_FALSE(nsm_analyze::MatchesNameTaxonomy("CamelCase.Bad"));
  EXPECT_FALSE(nsm_analyze::MatchesNameTaxonomy("trailing."));
  EXPECT_FALSE(nsm_analyze::MatchesNameTaxonomy(".leading"));
  EXPECT_FALSE(nsm_analyze::MatchesNameTaxonomy("double..dot"));
}

}  // namespace
