#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "core/buffer.hpp"
#include "instrument/memory_tracker.hpp"

namespace {

using core::Buffer;
using core::BufferChain;
using core::BufferView;
using core::kFullFieldBytes;

TEST(BufferTest, AllocatesZeroInitialized) {
  Buffer b("", 64);
  ASSERT_EQ(b.size(), 64u);
  EXPECT_FALSE(b.empty());
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], std::byte{0});
  }
}

TEST(BufferTest, DefaultBufferIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.UseCount(), 0);
}

TEST(BufferTest, CopySharesBlockMoveTransfersIt) {
  Buffer a("", 128);
  a.bytes()[7] = std::byte{0x42};
  Buffer b = a;  // shares
  EXPECT_EQ(a.UseCount(), 2);
  EXPECT_EQ(b.data(), a.data());
  Buffer c = std::move(b);  // transfers
  EXPECT_EQ(a.UseCount(), 2);
  EXPECT_EQ(c[7], std::byte{0x42});
}

TEST(BufferTest, CopyOfCountsOneCopy) {
  std::vector<std::byte> src(kFullFieldBytes, std::byte{0xCD});
  core::ResetLocalBufferStats();
  Buffer b = Buffer::CopyOf("", src);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);
  EXPECT_EQ(core::LocalBufferStats().copied_bytes, src.size());
  EXPECT_EQ(b, std::span<const std::byte>(src));
}

TEST(BufferTest, SmallCopiesAreClassifiedSeparately) {
  std::vector<std::byte> small(8, std::byte{1});
  core::ResetLocalBufferStats();
  (void)Buffer::CopyOf("", small);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
  EXPECT_EQ(core::LocalBufferStats().small_copies, 1u);
}

TEST(BufferTest, TakeVectorDoesNotCopy) {
  std::vector<std::byte> v(1 << 12, std::byte{0xEE});
  const std::byte* raw = v.data();
  core::ResetLocalBufferStats();
  Buffer b = Buffer::TakeVector("", std::move(v));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 0u);
  EXPECT_EQ(core::LocalBufferStats().small_copies, 0u);
}

TEST(BufferTest, AdoptWrapsExternalStorage) {
  auto owner = std::make_shared<std::vector<std::byte>>(256, std::byte{9});
  core::ResetLocalBufferStats();
  Buffer b = Buffer::Adopt(owner, owner->data(), owner->size());
  EXPECT_EQ(b.data(), owner->data());
  EXPECT_GE(core::LocalBufferStats().adoptions, 1u);
  // The keepalive guards the bytes even if the original handle is dropped.
  std::weak_ptr<std::vector<std::byte>> weak = owner;
  owner.reset();
  EXPECT_FALSE(weak.expired());
  EXPECT_EQ(b[0], std::byte{9});
}

TEST(BufferTest, SliceSharesAndWindows) {
  Buffer b("", 100);
  b.bytes()[10] = std::byte{0xAA};
  Buffer s = b.Slice(10, 20);
  ASSERT_EQ(s.size(), 20u);
  EXPECT_EQ(s.data(), b.data() + 10);
  EXPECT_EQ(s[0], std::byte{0xAA});
  EXPECT_EQ(b.UseCount(), 2);
  EXPECT_THROW((void)b.Slice(90, 20), std::out_of_range);
}

TEST(BufferTest, AsChecksAlignmentAndDivisibility) {
  Buffer b("", 4 * sizeof(double));
  EXPECT_EQ(b.As<double>().size(), 4u);
  EXPECT_THROW((void)b.Slice(1, sizeof(double)).As<double>(),
               std::runtime_error);
  EXPECT_THROW((void)b.Slice(0, 7).As<double>(), std::runtime_error);
}

TEST(BufferTest, TracksMemoryByCategory) {
  instrument::MemoryTracker tracker;
  instrument::TrackerScope scope(&tracker);
  {
    Buffer b("staging", 512);
    EXPECT_EQ(tracker.CurrentBytes("staging"), 512u);
    Buffer shared = b;  // sharing does not double-count
    EXPECT_EQ(tracker.CurrentBytes("staging"), 512u);
  }
  EXPECT_EQ(tracker.CurrentBytes("staging"), 0u);
  EXPECT_EQ(tracker.PeakBytes("staging"), 512u);
}

TEST(BufferTest, DetachTrackingReleasesTheBooks) {
  instrument::MemoryTracker tracker;
  instrument::TrackerScope scope(&tracker);
  Buffer b("staging", 256);
  EXPECT_EQ(tracker.CurrentBytes("staging"), 256u);
  b.DetachTracking();
  EXPECT_EQ(tracker.CurrentBytes("staging"), 0u);
  // The bytes themselves remain usable after detach.
  b.bytes()[0] = std::byte{1};
  EXPECT_EQ(b[0], std::byte{1});
}

TEST(BufferTest, CloneIsADeepCountedCopy) {
  Buffer a("", kFullFieldBytes);
  a.bytes()[0] = std::byte{5};
  core::ResetLocalBufferStats();
  Buffer b = a.Clone("");
  EXPECT_NE(b.data(), a.data());
  EXPECT_EQ(b, a);
  EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);
}

TEST(BufferChainTest, AppendsAndTotals) {
  Buffer a("", 10);
  Buffer b("", 20);
  BufferChain chain;
  EXPECT_TRUE(chain.Empty());
  chain.Append(BufferView(a));
  chain.Append(BufferView(b));
  EXPECT_EQ(chain.TotalBytes(), 30u);
  EXPECT_EQ(chain.Segments().size(), 2u);
  EXPECT_FALSE(chain.Contiguous());
}

TEST(BufferChainTest, PackGathersInOrder) {
  std::vector<std::byte> first{std::byte{1}, std::byte{2}};
  std::vector<std::byte> second{std::byte{3}};
  BufferChain chain;
  chain.Append(BufferView(Buffer::TakeVector("", std::move(first))));
  chain.Append(BufferView(Buffer::TakeVector("", std::move(second))));
  Buffer packed = chain.Pack("");
  ASSERT_EQ(packed.size(), 3u);
  EXPECT_EQ(packed[0], std::byte{1});
  EXPECT_EQ(packed[1], std::byte{2});
  EXPECT_EQ(packed[2], std::byte{3});
}

TEST(BufferChainTest, PackCountsExactlyOneCopy) {
  BufferChain chain;
  chain.Append(BufferView(Buffer("", kFullFieldBytes)));
  chain.Append(BufferView(Buffer("", kFullFieldBytes)));
  core::ResetLocalBufferStats();
  (void)chain.Pack("");
  EXPECT_EQ(core::LocalBufferStats().full_copies, 1u);
  EXPECT_EQ(core::LocalBufferStats().copied_bytes, 2 * kFullFieldBytes);
}

TEST(BufferChainTest, PackIntoValidatesSize) {
  BufferChain chain(BufferView(Buffer("", 16)));
  std::vector<std::byte> small(8);
  EXPECT_THROW(chain.PackInto(small), std::runtime_error);
  std::vector<std::byte> right(16);
  chain.PackInto(right);
}

TEST(BufferChainTest, ContiguousBytesOnlyForSingleSegment) {
  BufferChain one(BufferView(Buffer("", 4)));
  EXPECT_TRUE(one.Contiguous());
  EXPECT_EQ(one.ContiguousBytes().size(), 4u);
  one.Append(BufferView(Buffer("", 4)));
  EXPECT_THROW((void)one.ContiguousBytes(), std::runtime_error);
}

TEST(BufferChainTest, NestedAppendFlattens) {
  BufferChain inner;
  inner.Append(BufferView(Buffer("", 5)));
  inner.Append(BufferView(Buffer("", 6)));
  BufferChain outer(BufferView(Buffer("", 1)));
  outer.Append(std::move(inner));
  EXPECT_EQ(outer.Segments().size(), 3u);
  EXPECT_EQ(outer.TotalBytes(), 12u);
}

}  // namespace
