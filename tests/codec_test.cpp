// Codec-plane correctness: exact round-trips for the lossless codec on
// random/adversarial inputs, the documented blockfloat error bound across
// rates, the NaN/Inf passthrough policy, and descriptive rejection of
// malformed streams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "codec/codec.hpp"
#include "instrument/flight_recorder.hpp"

namespace {

using codec::BlockFloatErrorBound;
using codec::Decode;
using codec::Encode;
using codec::Kind;
using codec::Spec;

std::vector<std::byte> ToBytes(std::span<const double> values) {
  std::vector<std::byte> out(values.size_bytes());
  std::memcpy(out.data(), values.data(), values.size_bytes());
  return out;
}

std::vector<double> ToDoubles(std::span<const std::byte> bytes) {
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

Spec ShuffleRle(bool delta = false) {
  Spec spec;
  spec.kind = Kind::kShuffleRle;
  spec.delta = delta;
  return spec;
}

Spec BlockFloat(int rate) {
  Spec spec;
  spec.kind = Kind::kBlockFloat;
  spec.rate = rate;
  return spec;
}

void ExpectLosslessRoundTrip(std::span<const std::byte> raw, bool delta) {
  const core::Buffer wire = Encode(ShuffleRle(delta), raw);
  const core::Buffer back = Decode(Kind::kShuffleRle, wire.bytes(), raw.size());
  ASSERT_EQ(back.size(), raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
}

// ---- lossless shuffle_rle ---------------------------------------------------

TEST(ShuffleRleTest, RoundTripsRandomBytes) {
  std::mt19937_64 rng(42);
  for (const std::size_t size : {0ul, 1ul, 7ul, 8ul, 63ul, 64ul, 1000ul,
                                 4096ul, 4097ul}) {
    std::vector<std::byte> raw(size);
    for (std::byte& b : raw) {
      b = static_cast<std::byte>(rng() & 0xFF);
    }
    ExpectLosslessRoundTrip(raw, /*delta=*/false);
    ExpectLosslessRoundTrip(raw, /*delta=*/true);
  }
}

TEST(ShuffleRleTest, RoundTripsAllEqualValues) {
  const std::vector<double> values(512, 3.141592653589793);
  const std::vector<std::byte> raw = ToBytes(values);
  ExpectLosslessRoundTrip(raw, false);
  ExpectLosslessRoundTrip(raw, true);
  // All-equal input must compress hard: 4 KiB of repeats fits well under a
  // tenth of the raw size even with the stream header.
  const core::Buffer wire = Encode(ShuffleRle(true), raw);
  EXPECT_LT(wire.size(), raw.size() / 10);
}

TEST(ShuffleRleTest, RoundTripsAlternatingSign) {
  std::vector<double> values(256);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(i);
  }
  const std::vector<std::byte> raw = ToBytes(values);
  ExpectLosslessRoundTrip(raw, false);
  ExpectLosslessRoundTrip(raw, true);
}

TEST(ShuffleRleTest, RoundTripsNanAndInfBitExact) {
  std::vector<double> values = {
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::signaling_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
  };
  const std::vector<std::byte> raw = ToBytes(values);
  ExpectLosslessRoundTrip(raw, false);
  ExpectLosslessRoundTrip(raw, true);
}

TEST(ShuffleRleTest, DeltaCompressesMonotoneInt64) {
  // Connectivity-shaped input: monotonically increasing int64 ids whose
  // deltas are tiny, so delta + shuffle turns the high planes into zeros.
  std::vector<std::int64_t> ids(1024);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(1'000'000 + 3 * i);
  }
  std::vector<std::byte> raw(ids.size() * sizeof(std::int64_t));
  std::memcpy(raw.data(), ids.data(), raw.size());
  ExpectLosslessRoundTrip(raw, true);
  const core::Buffer wire = Encode(ShuffleRle(true), raw);
  EXPECT_LT(wire.size() * 4, raw.size());  // >= 4x on this shape
}

TEST(ShuffleRleTest, IncompressibleInputFallsBackToRawStore) {
  // Random bytes have no runs: PackBits literals would cost ~1/128
  // overhead, so the encoder must degrade to a verbatim raw-store frame
  // bounded by raw + 8 header bytes — and still round-trip exactly.
  std::mt19937_64 rng(99);
  std::vector<std::byte> raw(4096);
  for (std::byte& b : raw) b = static_cast<std::byte>(rng() & 0xFF);
  for (const bool delta : {false, true}) {
    const core::Buffer wire = Encode(ShuffleRle(delta), raw);
    EXPECT_LE(wire.size(), raw.size() + 8);
    ExpectLosslessRoundTrip(raw, delta);
    // Raw-store streams must reject truncation and size mismatch like any
    // other frame: every proper prefix throws.
    for (std::size_t cut = 0; cut < wire.size(); cut += 37) {
      EXPECT_THROW(
          (void)Decode(Kind::kShuffleRle, wire.bytes().subspan(0, cut),
                       raw.size()),
          std::runtime_error)
          << "prefix " << cut;
    }
  }
}

TEST(ShuffleRleTest, RawStoreFallbackLandsInTheFlightRecorder) {
  // The raw-store degrade is a run-health event: with a flight recorder
  // installed, the encoder logs a codec_fallback naming the frame type and
  // the payload size, so a post-mortem explains why the wire stayed fat.
  instrument::FlightRecorder recorder(0, 32);
  instrument::FlightRecorderScope scope(&recorder);

  std::vector<double> smooth(512);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = static_cast<double>(i);
  }
  (void)Encode(ShuffleRle(true), ToBytes(smooth));
  EXPECT_EQ(recorder.TotalEvents(), 0u);  // compressible: no fallback

  std::mt19937_64 rng(99);
  std::vector<std::byte> raw(4096);
  for (std::byte& b : raw) b = static_cast<std::byte>(rng() & 0xFF);
  (void)Encode(ShuffleRle(false), raw);
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, instrument::FlightEventKind::kCodecFallback);
  EXPECT_EQ(events[0].detail, "codec.shuffle_rle_raw");
  EXPECT_DOUBLE_EQ(events[0].value, static_cast<double>(raw.size()));
}

TEST(ShuffleRleTest, EncodeIsDeterministic) {
  std::mt19937_64 rng(7);
  std::vector<std::byte> raw(777);
  for (std::byte& b : raw) b = static_cast<std::byte>(rng() & 0xFF);
  const core::Buffer a = Encode(ShuffleRle(true), raw);
  const core::Buffer b = Encode(ShuffleRle(true), raw);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

// ---- lossy blockfloat -------------------------------------------------------

TEST(BlockFloatTest, ErrorWithinDocumentedBoundAcrossRates) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> values(640);
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Mixed magnitudes so different blocks see different scales.
    values[i] = uniform(rng) * std::pow(10.0, static_cast<double>(i / 64) - 3);
  }
  const std::vector<std::byte> raw = ToBytes(values);
  for (const int rate : {2, 4, 6, 8, 12, 16, 24, 32}) {
    const core::Buffer wire = Encode(BlockFloat(rate), raw);
    const core::Buffer back = Decode(Kind::kBlockFloat, wire.bytes(),
                                     raw.size());
    const std::vector<double> decoded = ToDoubles(back.bytes());
    const double bound = BlockFloatErrorBound(values, rate);
    ASSERT_EQ(decoded.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_LE(std::fabs(values[i] - decoded[i]), bound)
          << "rate " << rate << " value " << i;
    }
  }
}

TEST(BlockFloatTest, PerBlockBoundIsTighterThanGlobal) {
  // Two blocks, magnitudes 1e6 apart: the small block's error must follow
  // its OWN scale, not the large block's.
  std::vector<double> values(128);
  for (std::size_t i = 0; i < 64; ++i) values[i] = 1e6 * (i % 7 ? 0.5 : -0.9);
  for (std::size_t i = 64; i < 128; ++i) values[i] = (i % 5 ? 0.25 : -0.75);
  const std::vector<std::byte> raw = ToBytes(values);
  const core::Buffer wire = Encode(BlockFloat(8), raw);
  const std::vector<double> decoded =
      ToDoubles(Decode(Kind::kBlockFloat, wire.bytes(), raw.size()).bytes());
  const double small_block_bound = 1.0 * std::ldexp(1.0, 1 - 8);  // m = 0.9...
  for (std::size_t i = 64; i < 128; ++i) {
    EXPECT_LE(std::fabs(values[i] - decoded[i]), small_block_bound);
  }
}

TEST(BlockFloatTest, NanInfBlocksPassThroughBitExact) {
  std::vector<double> values(128, 1.5);
  values[3] = std::numeric_limits<double>::quiet_NaN();
  values[70] = std::numeric_limits<double>::infinity();
  const std::vector<std::byte> raw = ToBytes(values);
  const core::Buffer wire = Encode(BlockFloat(8), raw);
  const core::Buffer back = Decode(Kind::kBlockFloat, wire.bytes(),
                                   raw.size());
  // Both 64-value blocks contain a non-finite value, so the whole payload
  // is verbatim: byte-exact including the NaN bit pattern.
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
}

TEST(BlockFloatTest, AllZeroBlocksDecodeExactAndTiny) {
  const std::vector<double> values(512, 0.0);
  const std::vector<std::byte> raw = ToBytes(values);
  const core::Buffer wire = Encode(BlockFloat(8), raw);
  EXPECT_LT(wire.size(), 32u);  // header + one mode byte per block
  const core::Buffer back = Decode(Kind::kBlockFloat, wire.bytes(),
                                   raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
}

TEST(BlockFloatTest, Rate8CompressesSmoothFieldOver4x) {
  std::vector<double> values(4096);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.01) * 300.0 + 273.0;
  }
  const std::vector<std::byte> raw = ToBytes(values);
  const core::Buffer wire = Encode(BlockFloat(8), raw);
  EXPECT_LT(wire.size() * 4, raw.size());
}

TEST(BlockFloatTest, RejectsBadRateAndSize) {
  const std::vector<std::byte> ok(64);
  EXPECT_THROW((void)Encode(BlockFloat(1), ok), std::invalid_argument);
  EXPECT_THROW((void)Encode(BlockFloat(33), ok), std::invalid_argument);
  EXPECT_THROW((void)BlockFloatErrorBound(std::vector<double>(8), 1),
               std::invalid_argument);
  const std::vector<std::byte> ragged(63);  // not a whole number of f64
  EXPECT_THROW((void)Encode(BlockFloat(8), ragged), std::invalid_argument);
}

// ---- malformed streams ------------------------------------------------------

TEST(CodecDecodeTest, RejectsTruncatedStreams) {
  std::vector<double> values(96, 1.25);
  values[10] = -3.0;
  const std::vector<std::byte> raw = ToBytes(values);
  for (const Kind kind : {Kind::kBlockFloat, Kind::kShuffleRle}) {
    const Spec spec =
        kind == Kind::kBlockFloat ? BlockFloat(8) : ShuffleRle(true);
    const core::Buffer wire = Encode(spec, raw);
    // Every proper prefix must throw, never crash or return partial data.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      EXPECT_THROW(
          (void)Decode(kind, wire.bytes().subspan(0, cut), raw.size()),
          std::runtime_error)
          << codec::KindName(kind) << " prefix " << cut;
    }
  }
}

TEST(CodecDecodeTest, RejectsTrailingBytes) {
  const std::vector<double> values(64, 2.0);
  const std::vector<std::byte> raw = ToBytes(values);
  for (const Kind kind : {Kind::kBlockFloat, Kind::kShuffleRle}) {
    const Spec spec =
        kind == Kind::kBlockFloat ? BlockFloat(8) : ShuffleRle(false);
    const core::Buffer wire = Encode(spec, raw);
    std::vector<std::byte> oversized(wire.bytes().begin(), wire.bytes().end());
    oversized.push_back(std::byte{0xAB});
    EXPECT_THROW((void)Decode(kind, oversized, raw.size()),
                 std::runtime_error)
        << codec::KindName(kind);
  }
}

TEST(CodecDecodeTest, RejectsWrongDeclaredRawSize) {
  const std::vector<double> values(64, 2.0);
  const std::vector<std::byte> raw = ToBytes(values);
  for (const Kind kind : {Kind::kBlockFloat, Kind::kShuffleRle}) {
    const Spec spec =
        kind == Kind::kBlockFloat ? BlockFloat(8) : ShuffleRle(false);
    const core::Buffer wire = Encode(spec, raw);
    EXPECT_THROW((void)Decode(kind, wire.bytes(), raw.size() + 8),
                 std::runtime_error);
    EXPECT_THROW((void)Decode(kind, wire.bytes(), raw.size() - 8),
                 std::runtime_error);
  }
}

TEST(CodecDecodeTest, RejectsOverflowingValueCount) {
  // `count * sizeof(double)` wraps mod 2^64: a hostile count of
  // raw_size/8 + 2^61 multiplies back to raw_size exactly, so a product
  // comparison would accept it and the decode loop would write far past
  // the raw_size-byte output buffer.  The count must be compared without
  // multiplication.
  const std::vector<double> values(64, 2.0);
  const std::vector<std::byte> raw = ToBytes(values);
  const core::Buffer encoded = Encode(BlockFloat(8), raw);
  std::vector<std::byte> wire(encoded.bytes().begin(), encoded.bytes().end());
  std::uint64_t count;
  std::memcpy(&count, wire.data() + 8, sizeof(count));  // after version+rate+reserved
  ASSERT_EQ(count, values.size());
  count += std::uint64_t{1} << 61;  // (count + 2^61) * 8 ≡ count * 8 (mod 2^64)
  std::memcpy(wire.data() + 8, &count, sizeof(count));
  EXPECT_THROW((void)Decode(Kind::kBlockFloat, wire, raw.size()),
               std::runtime_error);
}

TEST(CodecDecodeTest, RejectsImplausiblyLargeDeclaredRawSize) {
  // A corrupt frame header can declare raw_len ~2^60; Decode must throw a
  // descriptive error before that number ever becomes an allocation size.
  const std::vector<double> values(64, 2.0);
  const std::vector<std::byte> raw = ToBytes(values);
  for (const Kind kind : {Kind::kBlockFloat, Kind::kShuffleRle}) {
    const Spec spec =
        kind == Kind::kBlockFloat ? BlockFloat(8) : ShuffleRle(false);
    const core::Buffer wire = Encode(spec, raw);
    try {
      (void)Decode(kind, wire.bytes(), std::size_t{1} << 60);
      FAIL() << codec::KindName(kind) << ": huge raw size accepted";
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find("corrupt length field"),
                std::string::npos)
          << codec::KindName(kind) << " gave: " << err.what();
    }
  }
}

TEST(CodecDecodeTest, RejectsUnsupportedVersionAndFlags) {
  const std::vector<std::byte> raw(64);
  for (const Kind kind : {Kind::kBlockFloat, Kind::kShuffleRle}) {
    const Spec spec =
        kind == Kind::kBlockFloat ? BlockFloat(8) : ShuffleRle(false);
    const core::Buffer encoded = Encode(spec, raw);
    std::vector<std::byte> wire(encoded.bytes().begin(),
                                encoded.bytes().end());
    wire[0] = std::byte{99};  // version
    EXPECT_THROW((void)Decode(kind, wire, raw.size()), std::runtime_error);
    wire[0] = std::byte{1};
    wire[1] = std::byte{0xF0};  // blockfloat: rate 240; shuffle: bad flags
    EXPECT_THROW((void)Decode(kind, wire, raw.size()), std::runtime_error);
  }
}

// ---- identity ---------------------------------------------------------------

TEST(CodecIdentityTest, CopiesBytesAndValidatesSize) {
  const std::vector<std::byte> raw = {std::byte{1}, std::byte{2},
                                      std::byte{3}};
  const core::Buffer wire = Encode(Spec{}, raw);
  ASSERT_EQ(wire.size(), raw.size());
  EXPECT_EQ(std::memcmp(wire.data(), raw.data(), raw.size()), 0);
  const core::Buffer back = Decode(Kind::kIdentity, wire.bytes(), raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
  EXPECT_THROW((void)Decode(Kind::kIdentity, wire.bytes(), raw.size() + 1),
               std::runtime_error);
}

TEST(CodecKindTest, NamesAndKnownness) {
  EXPECT_TRUE(codec::KnownKind(0));
  EXPECT_TRUE(codec::KnownKind(1));
  EXPECT_TRUE(codec::KnownKind(2));
  EXPECT_FALSE(codec::KnownKind(3));
  EXPECT_FALSE(codec::KnownKind(~0ULL));
  EXPECT_EQ(codec::KindName(Kind::kIdentity), "identity");
  EXPECT_EQ(codec::KindName(Kind::kShuffleRle), "shuffle_rle");
  EXPECT_EQ(codec::KindName(Kind::kBlockFloat), "blockfloat");
}

}  // namespace
