#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mpimini/runtime.hpp"
#include "nekrs/cases.hpp"
#include "nekrs/flow_solver.hpp"
#include "nekrs/helmholtz.hpp"
#include "nekrs/multigrid.hpp"
#include "occamini/device.hpp"

namespace {

using mpimini::Comm;
using mpimini::Runtime;
using nekrs::FlowConfig;
using nekrs::FlowSolver;
using nekrs::HelmholtzSolver;

// ---- Helmholtz solver -----------------------------------------------------

class HelmholtzRankTest : public ::testing::TestWithParam<int> {};

TEST_P(HelmholtzRankTest, ManufacturedSolutionDirichlet) {
  // Solve (A + B) u = f with u = sin(pi x) sin(pi y) sin(pi z) on the unit
  // cube with homogeneous Dirichlet BCs; f = (3 pi^2 + 1) u.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 6;
    spec.elements = {2, 2, std::max(2, comm.Size())};
    sem::BoxMesh mesh(spec, comm.Rank(), comm.Size());
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), exact(n), rhs(n), mask(n), u(n, 0.0);
    mesh.FillCoordinates(rule, x, y, z);
    mesh.FillDirichletMask({true, true, true, true, true, true}, mask);
    auto massd = ops.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      exact[i] = std::sin(pi * x[i]) * std::sin(pi * y[i]) *
                 std::sin(pi * z[i]);
      rhs[i] = massd[i] * (3.0 * pi * pi + 1.0) * exact[i];
    }

    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-10;
    options.max_iterations = 2000;
    auto result = solver.Solve(options, rhs, u, mask);
    EXPECT_TRUE(result.converged);

    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(u[i] - exact[i]));
    }
    max_err = comm.AllReduceValue(max_err, mpimini::Op::kMax);
    // Spectral accuracy at order 6 with 2 elements/direction.
    EXPECT_LT(max_err, 2e-4);
  });
}

TEST_P(HelmholtzRankTest, PoissonPeriodicWithMeanRemoval) {
  // -lap(u) = f on the fully periodic cube [0,1]^3 with
  // u = cos(2 pi x), f = 4 pi^2 cos(2 pi x); singular system handled by
  // mean removal.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 6;
    spec.elements = {2, 2, std::max(2, comm.Size())};
    spec.periodic = {true, true, true};
    sem::BoxMesh mesh(spec, comm.Rank(), comm.Size());
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), rhs(n), mask(n, 1.0), u(n, 0.0);
    mesh.FillCoordinates(rule, x, y, z);
    auto massd = ops.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = massd[i] * 4.0 * pi * pi * std::cos(2.0 * pi * x[i]);
    }
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 0.0;
    options.tolerance = 1e-10;
    options.max_iterations = 2000;
    options.remove_mean = true;
    auto result = solver.Solve(options, rhs, u, mask);
    EXPECT_TRUE(result.converged);

    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(u[i] - std::cos(2.0 * pi * x[i])));
    }
    max_err = comm.AllReduceValue(max_err, mpimini::Op::kMax);
    EXPECT_LT(max_err, 5e-4);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, HelmholtzRankTest, ::testing::Values(1, 2));

TEST(HelmholtzTest, ZeroRhsConvergesImmediately) {
  Runtime::Run(1, [](Comm& comm) {
    sem::BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);
    std::vector<double> rhs(mesh.NumLocalDofs(), 0.0), mask(rhs.size(), 1.0),
        u(rhs.size(), 0.0);
    auto result = solver.Solve({.h1 = 1.0, .h0 = 1.0}, rhs, u, mask);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
  });
}

// ---- Taylor-Green verification ---------------------------------------------

class TaylorGreenRankTest : public ::testing::TestWithParam<int> {};

TEST_P(TaylorGreenRankTest, KineticEnergyDecaysAtAnalyticRate) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, std::max(2, comm.Size())};
    options.order = 5;
    options.viscosity = 2e-2;
    options.dt = 5e-3;
    FlowSolver solver(comm, device, nekrs::cases::TaylorGreenCase(options));

    const double ke0 = solver.KineticEnergy();
    EXPECT_NEAR(ke0, nekrs::cases::TaylorGreenKineticEnergy(options.viscosity,
                                                            0.0),
                ke0 * 1e-6);

    const int steps = 40;
    for (int s = 0; s < steps; ++s) solver.Step();
    const double t = solver.Time();
    const double ke = solver.KineticEnergy();
    const double exact =
        nekrs::cases::TaylorGreenKineticEnergy(options.viscosity, t);
    EXPECT_NEAR(ke, exact, exact * 0.02)
        << "t=" << t << " ke=" << ke << " exact=" << exact;
  });
}

TEST_P(TaylorGreenRankTest, StaysDivergenceFree) {
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, std::max(2, comm.Size())};
    FlowSolver solver(comm, device, nekrs::cases::TaylorGreenCase(options));
    for (int s = 0; s < 10; ++s) solver.Step();
    // The projected field's pointwise divergence stays small relative to the
    // velocity scale (~1) over the spacing (~0.3).
    EXPECT_LT(solver.MaxDivergence(), 0.5);
    EXPECT_GT(solver.KineticEnergy(), 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TaylorGreenRankTest, ::testing::Values(1, 2));

// ---- Rayleigh-Bénard physics ----------------------------------------------

TEST(RayleighBenardTest, SubcriticalStaysConductive) {
  // Below the critical Rayleigh number (~1708) the seeded convection roll
  // decays: kinetic energy drops and the Nusselt number stays near 1.
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::RayleighBenardOptions options;
    options.elements = {4, 2, 3};
    options.order = 4;
    options.rayleigh = 1000.0;
    options.dt = 5e-3;
    options.perturbation = 0.1;
    FlowSolver solver(comm, device, nekrs::cases::RayleighBenardCase(options));
    for (int s = 0; s < 20; ++s) solver.Step();
    const double ke_early = solver.KineticEnergy();
    for (int s = 0; s < 120; ++s) solver.Step();
    const double ke_late = solver.KineticEnergy();
    EXPECT_LT(ke_late, 0.8 * ke_early);
    EXPECT_NEAR(solver.NusseltNumber(), 1.0, 0.05);
  });
}

TEST(RayleighBenardTest, SupercriticalConvects) {
  // Well above critical Ra the seeded roll is sustained/amplified and
  // transports heat: kinetic energy does not collapse and Nu > 1.
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::RayleighBenardOptions options;
    options.elements = {4, 2, 3};
    options.order = 4;
    options.rayleigh = 1e5;
    options.dt = 5e-3;
    options.perturbation = 0.1;
    FlowSolver solver(comm, device, nekrs::cases::RayleighBenardCase(options));
    const double ke0 = solver.KineticEnergy();
    for (int s = 0; s < 200; ++s) solver.Step();
    EXPECT_GT(solver.KineticEnergy(), 0.5 * ke0);
    EXPECT_GT(solver.NusseltNumber(), 1.05);
  });
}

// ---- Pebble bed -----------------------------------------------------------

TEST(PebbleBedTest, LayoutIsDeterministicAndInsideDomain) {
  nekrs::cases::PebbleBedOptions options;
  options.pebble_count = 146;
  auto layout_a = nekrs::cases::MakePebbleLayout(options);
  auto layout_b = nekrs::cases::MakePebbleLayout(options);
  ASSERT_EQ(layout_a.centers.size(), 146u);
  EXPECT_GT(layout_a.radius, 0.0);
  for (std::size_t i = 0; i < layout_a.centers.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(layout_a.centers[i][static_cast<std::size_t>(d)],
                       layout_b.centers[i][static_cast<std::size_t>(d)]);
      EXPECT_GE(layout_a.centers[i][static_cast<std::size_t>(d)],
                layout_a.radius * 0.5);
      EXPECT_LE(layout_a.centers[i][static_cast<std::size_t>(d)],
                1.0 - layout_a.radius * 0.5);
    }
  }
}

TEST(PebbleBedTest, FlowDevelopsAndPebblesBlockIt) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::PebbleBedOptions options;
    options.elements = {3, 3, 3};
    options.order = 4;
    options.pebble_count = 8;
    options.dt = 1e-3;
    FlowSolver solver(comm, device, nekrs::cases::PebbleBedCase(options));
    for (int s = 0; s < 50; ++s) solver.Step();
    // The driving force produces through-flow...
    auto w = std::span<const double>(solver.VelocityZ().DevicePtr(),
                                     solver.VelocityZ().size());
    const double bulk = solver.VolumeIntegral(w);
    EXPECT_GT(bulk, 0.01);
    // ...and the heated pebbles deposit heat into the fluid.
    auto T = std::span<const double>(solver.Temperature().DevicePtr(),
                                     solver.Temperature().size());
    EXPECT_GT(solver.VolumeIntegral(T), 0.0);
  });
}

TEST(PebbleBedTest, DragReducesBulkVelocity) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::PebbleBedOptions options;
    options.elements = {3, 3, 3};
    options.order = 4;
    options.pebble_count = 8;
    options.dt = 1e-3;

    auto run_bulk = [&](double drag) {
      auto opts = options;
      opts.drag = drag;
      FlowSolver solver(comm, device, nekrs::cases::PebbleBedCase(opts));
      for (int s = 0; s < 40; ++s) solver.Step();
      auto w = std::span<const double>(solver.VelocityZ().DevicePtr(),
                                       solver.VelocityZ().size());
      return solver.VolumeIntegral(w);
    };
    EXPECT_LT(run_bulk(2e3), run_bulk(0.0));
  });
}

// ---- Restart --------------------------------------------------------------

TEST(RestartTest, LoadStateReproducesFields) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {2, 2, 2};
    options.order = 4;
    FlowSolver a(comm, device, nekrs::cases::TaylorGreenCase(options));
    for (int s = 0; s < 5; ++s) a.Step();

    const std::size_t n = a.VelocityX().size();
    std::vector<double> u(n), v(n), w(n), p(n), T(n);
    a.VelocityX().CopyToHost(u);
    a.VelocityY().CopyToHost(v);
    a.VelocityZ().CopyToHost(w);
    a.Pressure().CopyToHost(p);
    a.Temperature().CopyToHost(T);

    FlowSolver b(comm, device, nekrs::cases::TaylorGreenCase(options));
    b.LoadState(u, v, w, p, T, a.StepNumber());
    EXPECT_EQ(b.StepNumber(), 5);
    const double ke_a = a.KineticEnergy();
    const double ke_b = b.KineticEnergy();
    EXPECT_NEAR(ke_a, ke_b, 1e-12 * std::abs(ke_a));
  });
}

TEST(SolverDiagnosticsTest, CflPositiveAndStatsPopulated) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {2, 2, 2};
    options.order = 4;
    FlowSolver solver(comm, device, nekrs::cases::TaylorGreenCase(options));
    solver.Step();
    EXPECT_GT(solver.CflNumber(), 0.0);
    EXPECT_GT(solver.LastStats().velocity_iterations, 0);
    EXPECT_GT(solver.LastStats().pressure_iterations, 0);
    EXPECT_EQ(solver.StepNumber(), 1);
    EXPECT_DOUBLE_EQ(solver.Time(), options.dt);
    // Kernel launches were recorded through the device abstraction.
    EXPECT_GE(device.Kernels().at("pressure").launches, 1u);
  });
}


TEST(DealiasedSolverTest, TaylorGreenDecayWithOverIntegration) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 5;
    options.viscosity = 2e-2;
    options.dt = 5e-3;
    nekrs::FlowConfig config = nekrs::cases::TaylorGreenCase(options);
    config.dealias = true;
    FlowSolver solver(comm, device, config);
    for (int s = 0; s < 30; ++s) solver.Step();
    const double exact = nekrs::cases::TaylorGreenKineticEnergy(
        options.viscosity, solver.Time());
    EXPECT_NEAR(solver.KineticEnergy(), exact, exact * 0.02);
  });
}


// ---- Solution projection ----------------------------------------------------

TEST(ProjectionTest, RepeatedIdenticalSolveConvergesInstantly) {
  // After one recorded solve, an identical right-hand side must be solved
  // entirely by the projection (zero CG iterations).
  Runtime::Run(1, [](Comm& comm) {
    sem::BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 2};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);
    HelmholtzSolver::Projection projection(mesh.NumLocalDofs(), 4);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> rhs(n), mask(n), x(n, 0.0);
    mesh.FillDirichletMask({true, true, true, true, true, true}, mask);
    auto massd = ops.MassDiag();
    std::vector<double> xc(n), yc(n), zc(n);
    mesh.FillCoordinates(rule, xc, yc, zc);
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = massd[i] * xc[i] * (1.0 - xc[i]);
    }
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-9;
    auto first = solver.Solve(options, rhs, x, mask, &projection);
    EXPECT_TRUE(first.converged);
    EXPECT_GT(first.iterations, 0);
    EXPECT_EQ(projection.Size(), 1);

    std::vector<double> y(n, 0.0);
    auto second = solver.Solve(options, rhs, y, mask, &projection);
    EXPECT_TRUE(second.converged);
    EXPECT_EQ(second.iterations, 0);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], x[i], 1e-7);
  });
}

TEST(ProjectionTest, ReducesPressureIterationsInTimeStepping) {
  // Same RBC run with and without pressure projection: identical physics,
  // materially fewer pressure CG iterations.
  Runtime::Run(1, [](Comm& comm) {
    auto run = [&](int vectors) {
      occamini::Device device(occamini::Backend::kSimGpu);
      nekrs::cases::RayleighBenardOptions o;
      o.elements = {4, 2, 3};
      o.order = 4;
      o.rayleigh = 1e5;
      o.dt = 5e-3;
      nekrs::FlowConfig config = nekrs::cases::RayleighBenardCase(o);
      config.pressure_projection_vectors = vectors;
      FlowSolver solver(comm, device, config);
      int iterations = 0;
      for (int s = 0; s < 30; ++s) {
        solver.Step();
        iterations += solver.LastStats().pressure_iterations;
      }
      return std::pair<int, double>{iterations, solver.KineticEnergy()};
    };
    auto [with_proj, ke_with] = run(8);
    auto [without, ke_without] = run(0);
    EXPECT_LT(with_proj, 0.9 * without)
        << "projection " << with_proj << " vs plain " << without;
    EXPECT_NEAR(ke_with, ke_without, 1e-4 * std::abs(ke_without));
  });
}

TEST(ProjectionTest, BasisRestartsWhenFull) {
  Runtime::Run(1, [](Comm& comm) {
    sem::BoxMeshSpec spec;
    spec.order = 3;
    spec.elements = {2, 2, 2};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);
    HelmholtzSolver::Projection projection(mesh.NumLocalDofs(), 2);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> mask(n), xc(n), yc(n), zc(n);
    mesh.FillDirichletMask({true, true, true, true, true, true}, mask);
    mesh.FillCoordinates(rule, xc, yc, zc);
    auto massd = ops.MassDiag();
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-9;
    for (int k = 1; k <= 4; ++k) {
      std::vector<double> rhs(n), x(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = massd[i] * std::sin(k * xc[i]) * yc[i];
      }
      auto result = solver.Solve(options, rhs, x, mask, &projection);
      EXPECT_TRUE(result.converged);
      EXPECT_LE(projection.Size(), 2);
    }
    projection.Clear();
    EXPECT_EQ(projection.Size(), 0);
  });
}


// ---- CFL-adaptive time stepping ---------------------------------------------

TEST(AdaptiveDtTest, ConstantDtStillMatchesAnalyticDecay) {
  // Regression guard: the variable-step coefficient formulas must reduce to
  // the classic BDF2/EXT2 set at fixed dt (rho = 1).
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 5;
    options.viscosity = 2e-2;
    options.dt = 5e-3;
    FlowSolver solver(comm, device, nekrs::cases::TaylorGreenCase(options));
    for (int s = 0; s < 40; ++s) solver.Step();
    const double exact = nekrs::cases::TaylorGreenKineticEnergy(
        options.viscosity, solver.Time());
    EXPECT_NEAR(solver.KineticEnergy(), exact, exact * 0.02);
    EXPECT_NEAR(solver.Time(), 40 * options.dt, 1e-12);
  });
}

TEST(AdaptiveDtTest, DtGrowsTowardTargetCfl) {
  // TG velocities decay, so with a CFL target the step size must grow; the
  // realized CFL approaches the target and the decay stays accurate.
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 5;
    options.viscosity = 2e-2;
    options.dt = 2e-3;  // starts well below the target CFL
    nekrs::FlowConfig config = nekrs::cases::TaylorGreenCase(options);
    config.target_cfl = 0.2;
    config.max_dt = 0.05;
    FlowSolver solver(comm, device, config);
    const double dt0 = solver.Dt();
    for (int s = 0; s < 60; ++s) solver.Step();
    EXPECT_GT(solver.Dt(), 2.0 * dt0);
    EXPECT_NEAR(solver.CflNumber(), 0.2, 0.08);
    const double exact = nekrs::cases::TaylorGreenKineticEnergy(
        options.viscosity, solver.Time());
    EXPECT_NEAR(solver.KineticEnergy(), exact, exact * 0.05);
  });
}

TEST(AdaptiveDtTest, DtRespectsBounds) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {2, 2, 2};
    options.order = 3;
    options.dt = 1e-3;
    nekrs::FlowConfig config = nekrs::cases::TaylorGreenCase(options);
    config.target_cfl = 10.0;  // would push dt far up
    config.max_dt = 2e-3;      // but the cap wins
    FlowSolver solver(comm, device, config);
    for (int s = 0; s < 20; ++s) solver.Step();
    EXPECT_LE(solver.Dt(), 2e-3 + 1e-15);
  });
}


// ---- Two-level p-multigrid --------------------------------------------------

class MultigridRankTest : public ::testing::TestWithParam<int> {};

TEST_P(MultigridRankTest, PoissonSolutionMatchesJacobiAndCutsIterations) {
  // Elongated wall-bounded Poisson problem: the long-wavelength error mode
  // that plain Jacobi-CG resolves slowly lives on the coarse (vertex) grid,
  // which is exactly where the pMG coarse correction pays.
  const int nranks = GetParam();
  Runtime::Run(nranks, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 6 * std::max(1, comm.Size())};
    spec.length = {1.0, 1.0, 6.0 * comm.Size()};
    sem::BoxMesh mesh(spec, comm.Rank(), comm.Size());
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::array<bool, 6> dirichlet{true, true, true, true, true, true};
    nekrs::MultigridPreconditioner::Options mg_options;
    nekrs::MultigridPreconditioner mg(comm, spec, comm.Rank(), comm.Size(),
                                      ops, gs, dirichlet, mg_options);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), rhs(n), mask(n);
    mesh.FillCoordinates(rule, x, y, z);
    mesh.FillDirichletMask(dirichlet, mask);
    auto massd = ops.MassDiag();
    const double lz = spec.length[2];
    for (std::size_t i = 0; i < n; ++i) {
      // Lowest eigenmode of the box: maximally coarse-grid-shaped error.
      rhs[i] = massd[i] * std::sin(pi * x[i]) * std::sin(pi * y[i]) *
               std::sin(pi * z[i] / lz);
    }

    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 0.0;
    options.tolerance = 1e-9;
    options.max_iterations = 4000;

    std::vector<double> jac(n, 0.0);
    auto plain = solver.Solve(options, rhs, jac, mask);
    ASSERT_TRUE(plain.converged);

    std::vector<double> pmg(n, 0.0);
    options.preconditioner = &mg;
    auto accel = solver.Solve(options, rhs, pmg, mask);
    ASSERT_TRUE(accel.converged);

    // Same solution...
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::abs(jac[i] - pmg[i]));
    }
    max_diff = comm.AllReduceValue(max_diff, mpimini::Op::kMax);
    EXPECT_LT(max_diff, 1e-6);
    // ...in materially fewer CG iterations (the reduction deepens with
    // refinement; at RBC production settings it is ~2.5-3x).
    EXPECT_LT(accel.iterations, 0.8 * plain.iterations)
        << "pMG " << accel.iterations << " vs Jacobi " << plain.iterations;
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, MultigridRankTest, ::testing::Values(1, 2));

TEST(MultigridTest, DirichletHelmholtzAccelerated) {
  Runtime::Run(1, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 6;
    spec.elements = {3, 3, 3};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::array<bool, 6> all_dirichlet{true, true, true,
                                            true, true, true};
    nekrs::MultigridPreconditioner::Options mg_options;
    nekrs::MultigridPreconditioner mg(comm, spec, 0, 1, ops, gs,
                                      all_dirichlet, mg_options);

    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), rhs(n), mask(n), u(n, 0.0);
    mesh.FillCoordinates(rule, x, y, z);
    mesh.FillDirichletMask(all_dirichlet, mask);
    auto massd = ops.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      const double exact = std::sin(pi * x[i]) * std::sin(pi * y[i]) *
                           std::sin(pi * z[i]);
      rhs[i] = massd[i] * (3.0 * pi * pi + 1.0) * exact;
    }
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-9;
    options.preconditioner = &mg;
    auto result = solver.Solve(options, rhs, u, mask);
    EXPECT_TRUE(result.converged);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double exact = std::sin(pi * x[i]) * std::sin(pi * y[i]) *
                           std::sin(pi * z[i]);
      max_err = std::max(max_err, std::abs(u[i] - exact));
    }
    EXPECT_LT(max_err, 1e-4);
  });
}

TEST(MultigridTest, PrecisionAndSmootherSweepMatchesReference) {
  // Every (smoother, precision, ladder-depth) combination is a fixed linear
  // operation and therefore a valid CG preconditioner: each must converge
  // to the same solution as the legacy two-level Jacobi-double cycle, and
  // the pfloat cycle must not cost materially more iterations than its
  // double twin (the float cycle only has to be a good preconditioner, not
  // an accurate solve).
  Runtime::Run(1, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 6};
    spec.length = {1.0, 1.0, 6.0};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::array<bool, 6> dirichlet{true, true, true, true, true, true};
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), rhs(n), mask(n);
    mesh.FillCoordinates(rule, x, y, z);
    mesh.FillDirichletMask(dirichlet, mask);
    auto massd = ops.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = massd[i] * std::sin(pi * x[i]) * std::sin(pi * y[i]) *
               std::sin(pi * z[i] / spec.length[2]);
    }
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 0.0;
    options.tolerance = 1e-9;
    options.max_iterations = 4000;

    using MG = nekrs::MultigridPreconditioner;
    std::vector<double> reference;
    int reference_iterations = 0;
    {
      MG::Options legacy;  // Jacobi, double, 2 levels — the pre-ladder cycle
      MG mg(comm, spec, 0, 1, ops, gs, dirichlet, legacy);
      std::vector<double> u(n, 0.0);
      options.preconditioner = &mg;
      auto result = solver.Solve(options, rhs, u, mask);
      ASSERT_TRUE(result.converged);
      reference = u;
      reference_iterations = result.iterations;
    }

    struct Config {
      MG::Smoother smoother;
      MG::Precision precision;
      int levels;
    };
    const Config configs[] = {
        {MG::Smoother::kJacobi, MG::Precision::kFloat, 2},
        {MG::Smoother::kChebyshev, MG::Precision::kDouble, 2},
        {MG::Smoother::kChebyshev, MG::Precision::kFloat, 2},
        {MG::Smoother::kJacobi, MG::Precision::kDouble, 0},
        {MG::Smoother::kChebyshev, MG::Precision::kFloat, 0},
    };
    for (const Config& c : configs) {
      MG::Options mg_options;
      mg_options.smoother = c.smoother;
      mg_options.precision = c.precision;
      mg_options.max_levels = c.levels;
      MG mg(comm, spec, 0, 1, ops, gs, dirichlet, mg_options);
      std::vector<double> u(n, 0.0);
      options.preconditioner = &mg;
      auto result = solver.Solve(options, rhs, u, mask);
      ASSERT_TRUE(result.converged);
      double max_diff = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        max_diff = std::max(max_diff, std::abs(u[i] - reference[i]));
      }
      EXPECT_LT(max_diff, 1e-6);
      EXPECT_LT(result.iterations, 2 * reference_iterations + 5);
    }
  });
}

TEST(MultigridTest, ChebyshevBoundsCoverSpectrum) {
  // The Chebyshev polynomial AMPLIFIES modes above its upper eigenvalue
  // bound, so the power-iteration estimate must have converged: a
  // deliberately starved estimate (2 iterations) must come out strictly
  // below the default, and the default within a few percent of a
  // near-exact 200-iteration run.
  Runtime::Run(1, [](Comm& comm) {
    sem::BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 4};
    sem::BoxMesh mesh(spec, 0, 1);
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    const std::array<bool, 6> dirichlet{true, true, true, true, true, true};

    auto lambda_with = [&](int iterations) {
      nekrs::MultigridPreconditioner::Options mg_options;
      mg_options.smoother =
          nekrs::MultigridPreconditioner::Smoother::kChebyshev;
      mg_options.power_iterations = iterations;
      nekrs::MultigridPreconditioner mg(comm, spec, 0, 1, ops, gs, dirichlet,
                                        mg_options);
      const std::size_t n = mesh.NumLocalDofs();
      std::vector<double> r(n, 1.0), z(n, 0.0);
      mg.Apply(1.0, 0.0, r, z);  // triggers the bound estimation
      return mg.LevelLambdaMax(0);
    };
    const double starved = lambda_with(2);
    nekrs::MultigridPreconditioner::Options defaults;
    const double at_default = lambda_with(defaults.power_iterations);
    const double converged = lambda_with(200);
    EXPECT_GT(converged, 0.0);
    EXPECT_LT(starved, converged);
    // 1.1x safety margin must cover the true spectral radius.
    EXPECT_GT(1.1 * at_default, converged * 0.999);
  });
}

TEST(MultigridTest, DirectCoarseSolveMatchesIterative) {
  // CoarseMode::kDirect replaces the coarse CG with a redundant dense
  // Cholesky of the assembled vertex operator; the preconditioned solve
  // must land on the same solution without costing extra iterations.
  Runtime::Run(2, [](Comm& comm) {
    using std::numbers::pi;
    sem::BoxMeshSpec spec;
    spec.order = 4;
    spec.elements = {2, 2, 4 * comm.Size()};
    spec.length = {1.0, 1.0, 4.0 * comm.Size()};
    sem::BoxMesh mesh(spec, comm.Rank(), comm.Size());
    const sem::GllRule rule = sem::MakeGllRule(spec.order);
    sem::ElementOperators ops(rule, mesh);
    std::vector<std::int64_t> gids(mesh.NumLocalDofs());
    mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    HelmholtzSolver solver(comm, ops, gs);

    const std::array<bool, 6> dirichlet{true, true, true, true, true, true};
    const std::size_t n = mesh.NumLocalDofs();
    std::vector<double> x(n), y(n), z(n), rhs(n), mask(n);
    mesh.FillCoordinates(rule, x, y, z);
    mesh.FillDirichletMask(dirichlet, mask);
    auto massd = ops.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = massd[i] * std::sin(pi * x[i]) * std::sin(pi * y[i]) *
               std::sin(pi * z[i] / spec.length[2]);
    }
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 0.0;
    options.tolerance = 1e-9;
    options.max_iterations = 4000;

    using MG = nekrs::MultigridPreconditioner;
    auto solve_with = [&](MG::CoarseMode mode, int* iterations) {
      MG::Options mg_options;
      mg_options.coarse_mode = mode;
      MG mg(comm, spec, comm.Rank(), comm.Size(), ops, gs, dirichlet,
            mg_options);
      std::vector<double> u(n, 0.0);
      options.preconditioner = &mg;
      auto result = solver.Solve(options, rhs, u, mask);
      EXPECT_TRUE(result.converged);
      *iterations = result.iterations;
      return u;
    };
    int direct_iters = 0, iterative_iters = 0;
    auto direct = solve_with(MG::CoarseMode::kDirect, &direct_iters);
    auto iterative = solve_with(MG::CoarseMode::kIterative, &iterative_iters);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::abs(direct[i] - iterative[i]));
    }
    max_diff = comm.AllReduceValue(max_diff, mpimini::Op::kMax);
    EXPECT_LT(max_diff, 1e-6);
    // The exact coarse solve can only help the cycle.
    EXPECT_LE(direct_iters, iterative_iters + 2);
  });
}

TEST(MultigridTest, SolverRunsWithPressureMultigridEnabled) {
  Runtime::Run(2, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::TaylorGreenOptions options;
    options.elements = {3, 3, 2};
    options.order = 5;
    options.viscosity = 2e-2;
    options.dt = 5e-3;
    nekrs::FlowConfig config = nekrs::cases::TaylorGreenCase(options);
    config.pressure_multigrid = true;
    FlowSolver solver(comm, device, config);
    for (int s = 0; s < 20; ++s) solver.Step();
    const double exact = nekrs::cases::TaylorGreenKineticEnergy(
        options.viscosity, solver.Time());
    EXPECT_NEAR(solver.KineticEnergy(), exact, exact * 0.02);
  });
}


// ---- Kovasznay flow (exact steady Navier-Stokes solution) -------------------

TEST(KovasznayTest, ExactSolutionRemainsSteady) {
  // Initialized at the exact solution with exact inflow/outflow Dirichlet
  // values, the flow must stay (near-)steady: the advection, pressure, and
  // viscous terms must balance. A wrong sign or scaling in any of them
  // drifts or blows up instead.
  Runtime::Run(2, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::KovasznayOptions o;
    FlowSolver solver(comm, device, nekrs::cases::KovasznayCase(o));

    const std::size_t n = solver.VelocityX().size();
    std::vector<double> x(n), y(n), z(n);
    solver.Mesh().FillCoordinates(solver.Rule(), x, y, z);
    auto max_error = [&] {
      double m = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double ue, ve;
        nekrs::cases::KovasznayExact(o.reynolds, x[i], y[i], ue, ve);
        m = std::max(m, std::abs(solver.VelocityX().DevicePtr()[i] - ue));
        m = std::max(m, std::abs(solver.VelocityY().DevicePtr()[i] - ve));
      }
      return comm.AllReduceValue(m, mpimini::Op::kMax);
    };

    EXPECT_LT(max_error(), 1e-4);  // spectral accuracy of the IC
    for (int s = 0; s < 150; ++s) solver.Step();
    // Steady within the splitting scheme's O(dt) pressure-boundary error.
    EXPECT_LT(max_error(), 0.05);
  });
}

TEST(KovasznayTest, InhomogeneousBoundaryValuesAreHeld) {
  Runtime::Run(1, [](Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::KovasznayOptions o;
    o.elements = {4, 2, 1};
    o.order = 4;
    nekrs::FlowConfig config = nekrs::cases::KovasznayCase(o);
    config.filter_strength = 0.05;  // the filter must not erode BC values
    config.filter_modes = 1;
    FlowSolver solver(comm, device, config);

    const std::size_t n = solver.VelocityX().size();
    std::vector<double> x(n), y(n), z(n);
    solver.Mesh().FillCoordinates(solver.Rule(), x, y, z);
    for (int s = 0; s < 20; ++s) solver.Step();
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] != 0.0 && x[i] != 1.5) continue;
      double ue, ve;
      nekrs::cases::KovasznayExact(o.reynolds, x[i], y[i], ue, ve);
      ASSERT_NEAR(solver.VelocityX().DevicePtr()[i], ue, 1e-12);
      ASSERT_NEAR(solver.VelocityY().DevicePtr()[i], ve, 1e-12);
    }
  });
}

}  // namespace
