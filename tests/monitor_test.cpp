// Tests for the live run-health monitor (DESIGN.md §5c): the Prometheus
// and /status renderers as pure functions, the loopback HTTP server over
// real sockets (routes, port discovery, persist-on-stop, failed-bind
// degradation, concurrent scrapes), and the RunInSitu integration — a
// scraper thread hits the endpoint mid-run while an injected straggler
// makes its way into the served /status and the final metrics.json.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/workflows.hpp"
#include "instrument/metrics.hpp"
#include "instrument/monitor.hpp"
#include "nekrs/cases.hpp"

namespace {

using instrument::AnomalyRecord;
using instrument::MetricsReport;
using instrument::MetricStat;
using instrument::MonitorServer;
using instrument::MonitorStatus;
using instrument::RenderPrometheus;
using instrument::RenderStatusJson;

std::string TempSubdir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/monitor_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
// response (headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// ------------------------------------------------------ Prometheus renderer

TEST(RenderPrometheusTest, EmptyReportRendersCommentPlaceholder) {
  EXPECT_EQ(RenderPrometheus(MetricsReport{}),
            "# nsm: no metrics published yet\n");
}

TEST(RenderPrometheusTest, CountersExposeCrossRankSumWithTypeLine) {
  MetricsReport report;
  report.ranks = 4;
  MetricStat stat;
  stat.ranks = 4;
  stat.sum = 16.0;
  report.counters["solver.steps"] = stat;
  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("# nsm run-health metrics (4 ranks)\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nsm_solver_steps counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nnsm_solver_steps 16\n"), std::string::npos);
}

TEST(RenderPrometheusTest, GaugesExposeMinMeanMaxStatFamily) {
  MetricsReport report;
  report.ranks = 2;
  MetricStat stat;
  stat.min = 1.0;
  stat.mean = 2.5;
  stat.max = 4.0;
  report.gauges["sst.queue_depth"] = stat;
  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("# TYPE nsm_sst_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_sst_queue_depth{stat=\"min\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_sst_queue_depth{stat=\"mean\"} 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_sst_queue_depth{stat=\"max\"} 4\n"),
            std::string::npos);
}

TEST(RenderPrometheusTest, HistogramBucketsAreCumulativeAtAscendingBounds) {
  MetricsReport report;
  report.ranks = 1;
  instrument::HistogramData h({0.001, 0.01});
  h.Observe(0.0005);  // underflow bucket (-inf, 0.001)
  h.Observe(0.005);   // [0.001, 0.01)
  h.Observe(0.5);     // overflow [0.01, +inf)
  report.histograms["bridge.update_seconds"] = h;
  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("# TYPE nsm_bridge_update_seconds histogram\n"),
            std::string::npos);
  // Per-interval counts [1, 1, 1] become cumulative counts at the bounds.
  EXPECT_NE(text.find("nsm_bridge_update_seconds_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_bridge_update_seconds_bucket{le=\"0.01\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_bridge_update_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_bridge_update_seconds_sum 0.5055\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_bridge_update_seconds_count 3\n"),
            std::string::npos);
}

TEST(RenderPrometheusTest, CollidingFamiliesGetOneTypeDeclarationEach) {
  // solver.step_seconds is published as both a counter (total) and a
  // histogram (distribution); Prometheus allows one TYPE per family, so
  // the histogram must be renamed rather than redeclaring the counter.
  MetricsReport report;
  report.ranks = 1;
  MetricStat stat;
  stat.sum = 0.25;
  report.counters["solver.step_seconds"] = stat;
  instrument::HistogramData h({0.1});
  h.Observe(0.25);
  report.histograms["solver.step_seconds"] = h;
  report.gauges["solver.step_seconds"] = stat;
  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("# TYPE nsm_solver_step_seconds counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nsm_solver_step_seconds_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nsm_solver_step_seconds_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsm_solver_step_seconds_hist_count 1\n"),
            std::string::npos);
  // Exactly one TYPE line mentions the bare family name.
  const std::string bare = "# TYPE nsm_solver_step_seconds ";
  const std::size_t first = text.find(bare);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(bare, first + 1), std::string::npos);
}

TEST(RenderPrometheusTest, NamesAreSanitizedIntoThePrometheusAlphabet) {
  MetricsReport report;
  report.ranks = 1;
  report.counters["codec.wire-bytes/raw"] = MetricStat{};
  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("nsm_codec_wire_bytes_raw"), std::string::npos);
  // The raw dotted/dashed name must not leak into any sample line.
  EXPECT_EQ(text.find("wire-bytes"), std::string::npos);
  EXPECT_EQ(text.find("bytes/raw"), std::string::npos);
}

// ---------------------------------------------------------- /status renderer

TEST(RenderStatusJsonTest, UnknownEtaSerializesAsNull) {
  MonitorStatus status;
  status.step = 3;
  status.total_steps = 10;
  status.eta_seconds = -1.0;
  const std::string json = RenderStatusJson(status);
  EXPECT_NE(json.find("\"step\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_steps\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"eta_seconds\": null"), std::string::npos);

  status.eta_seconds = 12.5;
  EXPECT_NE(RenderStatusJson(status).find("\"eta_seconds\": 12.5"),
            std::string::npos);
}

TEST(RenderStatusJsonTest, SstQueueAndSharesAppearOnlyWhenKnown) {
  MonitorStatus status;
  std::string json = RenderStatusJson(status);
  EXPECT_EQ(json.find("sst_queue"), std::string::npos);
  EXPECT_EQ(json.find("insitu_percent"), std::string::npos);
  EXPECT_EQ(json.find("offload_percent"), std::string::npos);

  status.queue_depth = 1;
  status.queue_limit = 2;
  status.insitu_percent = 25.0;
  status.offload_percent = 10.0;
  json = RenderStatusJson(status);
  EXPECT_NE(json.find("\"sst_queue\": {\"depth\": 1, \"limit\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"insitu_percent\": 25"), std::string::npos);
  EXPECT_NE(json.find("\"offload_percent\": 10"), std::string::npos);
}

TEST(RenderStatusJsonTest, AnomaliesAndCounterTotalsAreRendered) {
  MonitorStatus status;
  AnomalyRecord anomaly;
  anomaly.rank = 2;
  anomaly.step = 7;
  anomaly.z = 5.5;
  anomaly.dominant_span = "transport";
  status.anomalies.push_back(anomaly);
  MetricStat stat;
  stat.sum = 42.0;
  status.metrics.counters["solver.steps"] = stat;
  const std::string json = RenderStatusJson(status);
  EXPECT_NE(json.find("\"anomalies\": [{"), std::string::npos);
  EXPECT_NE(json.find("\"dominant_span\": \"transport\""),
            std::string::npos);
  EXPECT_NE(json.find("\"solver.steps\": 42"), std::string::npos);
}

// ------------------------------------------------------------- HTTP server

TEST(MonitorServerTest, ServesHealthMetricsAndStatusOnEphemeralPort) {
  const std::string dir = TempSubdir("serve");
  MonitorServer::Options options;
  options.port = 0;
  options.port_file = dir + "/monitor.port";
  MonitorServer server(options);
  ASSERT_TRUE(server.Serving());
  ASSERT_GT(server.Port(), 0);
  // The discovery file holds exactly the bound port.
  EXPECT_EQ(Slurp(options.port_file),
            std::to_string(server.Port()) + "\n");

  const std::string health = HttpGet(server.Port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  // Before any publish, /metrics serves the placeholder with the
  // Prometheus exposition content type.
  const std::string empty_metrics = HttpGet(server.Port(), "/metrics");
  EXPECT_NE(empty_metrics.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(BodyOf(empty_metrics), "# nsm: no metrics published yet\n");

  MonitorStatus status;
  status.step = 5;
  status.total_steps = 20;
  MetricStat stat;
  stat.sum = 10.0;
  status.metrics.ranks = 2;
  status.metrics.counters["solver.steps"] = stat;
  server.Publish(std::move(status));

  const std::string metrics = HttpGet(server.Port(), "/metrics");
  EXPECT_NE(metrics.find("nsm_solver_steps 10"), std::string::npos);
  const std::string published = HttpGet(server.Port(), "/status");
  EXPECT_NE(published.find("application/json"), std::string::npos);
  EXPECT_NE(published.find("\"step\": 5"), std::string::npos);

  const std::string missing = HttpGet(server.Port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("routes: /metrics /healthz /status"),
            std::string::npos);
  EXPECT_GE(server.Requests(), 5u);
}

TEST(MonitorServerTest, StopPersistsFinalStatusAndIsIdempotent) {
  const std::string dir = TempSubdir("persist");
  MonitorServer::Options options;
  options.port = 0;
  options.persist_path = dir + "/status.json";
  MonitorServer server(options);
  ASSERT_TRUE(server.Serving());

  MonitorStatus status;
  status.step = 9;
  status.total_steps = 9;
  status.eta_seconds = 0.0;
  server.Publish(std::move(status));
  server.Stop();
  server.Stop();  // idempotent

  const std::string persisted = Slurp(options.persist_path);
  EXPECT_NE(persisted.find("\"step\": 9"), std::string::npos);
  EXPECT_NE(persisted.find("\"eta_seconds\": 0"), std::string::npos);
}

TEST(MonitorServerTest, UnpublishedServerPersistsNothingOnStop) {
  const std::string dir = TempSubdir("nopublish");
  MonitorServer::Options options;
  options.port = 0;
  options.persist_path = dir + "/status.json";
  {
    MonitorServer server(options);
    ASSERT_TRUE(server.Serving());
  }  // destructor stops; nothing was published
  EXPECT_FALSE(std::filesystem::exists(options.persist_path));
}

TEST(MonitorServerTest, FailedBindDegradesToNotServing) {
  MonitorServer::Options first_options;
  first_options.port = 0;
  MonitorServer first(first_options);
  ASSERT_TRUE(first.Serving());

  // Binding the same port again must fail — and the failure must degrade
  // (Serving() false) rather than throw: observability never kills a run.
  MonitorServer::Options clash;
  clash.port = first.Port();
  MonitorServer second(clash);
  EXPECT_FALSE(second.Serving());
  EXPECT_EQ(second.Port(), -1);
  MonitorStatus status;
  second.Publish(std::move(status));  // still safe to feed
  second.Stop();
}

TEST(MonitorServerTest, ConcurrentScrapesAndPublishesAreSafe) {
  // TSan-facing: four scraper threads hammer /metrics and /status while
  // the owner thread keeps publishing fresh snapshots.
  MonitorServer::Options options;
  options.port = 0;
  MonitorServer server(options);
  ASSERT_TRUE(server.Serving());
  const int port = server.Port();

  constexpr int kThreads = 4;
  constexpr int kGetsPerThread = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([port, t, &ok] {
      for (int i = 0; i < kGetsPerThread; ++i) {
        const std::string response =
            HttpGet(port, (t + i) % 2 == 0 ? "/metrics" : "/status");
        if (response.find("200 OK") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    MonitorStatus status;
    status.step = i;
    status.total_steps = 50;
    MetricStat stat;
    stat.sum = static_cast<double>(i);
    status.metrics.ranks = 1;
    status.metrics.counters["solver.steps"] = stat;
    server.Publish(std::move(status));
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(ok.load(), kThreads * kGetsPerThread);
  EXPECT_GE(server.Requests(),
            static_cast<std::uint64_t>(kThreads * kGetsPerThread));
}

// ------------------------------------------------------ workflow integration

TEST(MonitorWorkflowTest, InSituRunIsScrapableMidRunAndPersistsArtifacts) {
  const std::string dir = TempSubdir("wf");
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {2, 2, 4};  // z is the partition axis: one layer per rank
  tg.order = 3;

  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::TaylorGreenCase(tg);
  options.steps = 30;
  options.sensei_xml = "<sensei/>";
  options.telemetry.monitor_port = 0;  // ephemeral
  options.telemetry.metrics_path = dir + "/metrics.json";
  options.telemetry.status_path = dir + "/status.json";
  options.telemetry.monitor_port_file = dir + "/monitor.port";
  // Rank 0 busy-spins 20ms extra per step: keeps the run long enough for a
  // genuine mid-run scrape AND plants a solver-attributable straggler that
  // must surface in the served status and the final metrics.json.  The
  // spin is wall-clock-sized so it dominates the base step time even when
  // sanitizers inflate the compute.
  options.straggler_rank = 0;
  options.straggler_seconds = 0.02;

  // Scraper thread: discover the port from the port file, then poll the
  // live endpoint until the run finishes.
  std::atomic<bool> run_done{false};
  std::atomic<bool> healthz_ok{false};
  std::atomic<bool> metrics_wellformed{false};
  const std::string port_file = dir + "/monitor.port";
  std::thread scraper([&] {
    int port = -1;
    while (!run_done.load()) {
      if (port < 0 && std::filesystem::exists(port_file)) {
        port = std::atoi(Slurp(port_file).c_str());
      }
      if (port > 0) {
        if (BodyOf(HttpGet(port, "/healthz")) == "ok\n") {
          healthz_ok.store(true);
        }
        const std::string body = BodyOf(HttpGet(port, "/metrics"));
        // Either the pre-publish placeholder or real exposition — both
        // start with a comment line, never a torn document.
        if (!body.empty() && body[0] == '#') metrics_wellformed.store(true);
        if (healthz_ok.load() && metrics_wellformed.load()) return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto metrics = nek_sensei::RunInSitu(4, options);
  run_done.store(true);
  scraper.join();

  EXPECT_TRUE(healthz_ok.load());
  EXPECT_TRUE(metrics_wellformed.load());

  // The injected straggler was flagged and attributed to the solver span.
  ASSERT_FALSE(metrics.metrics_report.anomalies.empty());
  EXPECT_EQ(metrics.metrics_report.anomalies[0].rank, 0);
  EXPECT_EQ(metrics.metrics_report.anomalies[0].dominant_span, "solver");

  // Final artifacts: metrics.json carries the anomaly, status.json is the
  // last served snapshot (they agree), and the port file held the port.
  const std::string metrics_json = Slurp(dir + "/metrics.json");
  EXPECT_EQ(metrics_json.find("\"anomalies\": []"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"anomalies\": ["), std::string::npos);
  EXPECT_NE(metrics_json.find("\"dominant_span\": \"solver\""),
            std::string::npos);
  const std::string status_json = Slurp(dir + "/status.json");
  EXPECT_NE(status_json.find("\"total_steps\": 30"), std::string::npos);
  EXPECT_NE(status_json.find("\"dominant_span\": \"solver\""),
            std::string::npos);
  EXPECT_NE(status_json.find("\"solver.steps\": 120"), std::string::npos);
  EXPECT_GT(std::atoi(Slurp(port_file).c_str()), 0);
}

}  // namespace
