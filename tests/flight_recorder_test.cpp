// Tests for the always-on flight recorder: ring record/readback and wrap
// semantics, detail truncation, the thread-local install surface,
// concurrent writers and read-while-write torn-slot skipping, the JSON
// dump (including its AtomicFile no-partial-file guarantee), and the
// mpimini runtime integration (always-populated RunResult recorders plus
// the dump-on-rank-error path).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "instrument/flight_recorder.hpp"
#include "instrument/report.hpp"
#include "mpimini/runtime.hpp"

namespace {

using instrument::FlightEvent;
using instrument::FlightEventKind;
using instrument::FlightRecorder;
using instrument::FlightRecorderScope;
using instrument::RecordFlightEvent;

std::string TempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// ------------------------------------------------------------ ring basics

TEST(FlightRecorderTest, RecordAndReadBack) {
  FlightRecorder recorder(/*rank=*/3, /*capacity=*/16);
  recorder.Record(FlightEventKind::kStep, "solver.step", 0);
  recorder.Record(FlightEventKind::kStall, "pipeline.slot_wait", 1, 0.25);
  recorder.Record(FlightEventKind::kError, "boom");

  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kStep);
  EXPECT_EQ(events[0].detail, "solver.step");
  EXPECT_EQ(events[0].step, 0);
  EXPECT_EQ(events[1].kind, FlightEventKind::kStall);
  EXPECT_DOUBLE_EQ(events[1].value, 0.25);
  EXPECT_EQ(events[2].detail, "boom");
  EXPECT_EQ(events[2].step, -1);
  EXPECT_GT(events[1].ts_ns, 0);
  EXPECT_GE(events[2].ts_ns, events[0].ts_ns);  // oldest first
  EXPECT_EQ(recorder.TotalEvents(), 3u);
  EXPECT_EQ(recorder.Rank(), 3);
  EXPECT_EQ(recorder.Capacity(), 16u);
}

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kStep), "step");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kStall),
            "stall");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kQueueBlock),
            "queue_block");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kCodecFallback),
            "codec_fallback");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kCommWait),
            "comm_wait");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kError),
            "error");
  EXPECT_EQ(instrument::FlightEventKindName(FlightEventKind::kAnomaly),
            "anomaly");
}

TEST(FlightRecorderTest, WrapKeepsNewestTail) {
  FlightRecorder recorder(0, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventKind::kStep, "solver.step", i);
  }
  EXPECT_EQ(recorder.TotalEvents(), 10u);
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // The retained tail is the last capacity events, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].step, 6 + i);
  }
}

TEST(FlightRecorderTest, DetailTruncatesAtCapacity) {
  FlightRecorder recorder(0, 4);
  const std::string longdetail(100, 'x');
  recorder.Record(FlightEventKind::kError, longdetail);
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail,
            std::string(FlightRecorder::kDetailCapacity - 1, 'x'));
}

// ------------------------------------------------- thread-local surface

TEST(FlightRecorderTest, FreeFunctionWithoutRecorderIsNoop) {
  ASSERT_EQ(instrument::CurrentFlightRecorder(), nullptr);
  RecordFlightEvent(FlightEventKind::kError, "nobody listening");  // no crash
}

TEST(FlightRecorderTest, ScopeInstallsAndRestores) {
  FlightRecorder outer(0, 8);
  FlightRecorder inner(1, 8);
  {
    FlightRecorderScope outer_scope(&outer);
    EXPECT_EQ(instrument::CurrentFlightRecorder(), &outer);
    {
      FlightRecorderScope inner_scope(&inner);
      RecordFlightEvent(FlightEventKind::kStall, "pipeline.slot_wait", 2,
                        0.5);
    }
    EXPECT_EQ(instrument::CurrentFlightRecorder(), &outer);
  }
  EXPECT_EQ(instrument::CurrentFlightRecorder(), nullptr);
  EXPECT_EQ(outer.TotalEvents(), 0u);
  ASSERT_EQ(inner.Events().size(), 1u);
  EXPECT_EQ(inner.Events()[0].step, 2);
}

// ------------------------------------------------------------ concurrency

TEST(FlightRecorderTest, ConcurrentWritersLoseNothing) {
  FlightRecorder recorder(0, /*capacity=*/8192);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventKind::kStep, "solver.step",
                        t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.TotalEvents(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto events = recorder.Events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every thread's steps must appear exactly once.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const FlightEvent& e : events) {
    ASSERT_GE(e.step, 0);
    ASSERT_LT(e.step, kThreads * kPerThread);
    ++seen[static_cast<std::size_t>(e.step)];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(FlightRecorderTest, ReadWhileWriteYieldsOnlyWellFormedEvents) {
  FlightRecorder recorder(0, /*capacity=*/32);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.Record(FlightEventKind::kCommWait, "comm.recv.wait", i++,
                      0.125);
    }
  });
  for (int pass = 0; pass < 200; ++pass) {
    for (const FlightEvent& e : recorder.Events()) {
      // Torn slots are skipped, so every decoded event is fully published.
      EXPECT_EQ(e.kind, FlightEventKind::kCommWait);
      EXPECT_EQ(e.detail, "comm.recv.wait");
      EXPECT_DOUBLE_EQ(e.value, 0.125);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ------------------------------------------------------------- JSON dumps

TEST(FlightRecorderTest, WriteJsonDumpsRingWithDropCount) {
  const std::string dir = TempDir("nsm_flightrec_json");
  FlightRecorder recorder(2, 4);
  for (int i = 0; i < 6; ++i) {
    recorder.Record(FlightEventKind::kStep, "solver.step", i);
  }
  recorder.Record(FlightEventKind::kError, "injected \"quoted\" failure");
  const std::string path = dir + "/flightrec_rank2.json";
  ASSERT_TRUE(instrument::WriteFlightRecorderJson(path, recorder));
  const std::string json = Slurp(path);
  EXPECT_NE(json.find("\"rank\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"total_events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("injected \\\"quoted\\\" failure"), std::string::npos);
}

TEST(FlightRecorderTest, WriteJsonToBadPathFailsWithoutArtifacts) {
  const std::string dir = TempDir("nsm_flightrec_badpath");
  FlightRecorder recorder(0, 4);
  recorder.Record(FlightEventKind::kStep, "solver.step", 0);
  EXPECT_FALSE(instrument::WriteFlightRecorderJson(
      dir + "/no/such/dir/flightrec_rank0.json", recorder));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/no/such/dir/flightrec_rank0.json"));
}

TEST(FlightRecorderTest, AtomicFileLeavesNoPartialFileOnAbandonedWrite) {
  // Satellite guarantee shared by every dump path: a writer that dies
  // mid-write (simulated by destroying the AtomicFile without Commit)
  // leaves the previous destination intact and no temp debris behind.
  const std::string dir = TempDir("nsm_flightrec_atomic");
  const std::string path = dir + "/flightrec_rank0.json";
  {
    instrument::AtomicFile file(path);
    file.Stream() << "{\"complete\": true}\n";
    ASSERT_TRUE(file.Commit());
  }
  {
    instrument::AtomicFile file(path);
    file.Stream() << "{\"truncated";  // mid-write failure: never committed
  }
  EXPECT_EQ(Slurp(path), "{\"complete\": true}\n");
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no temp file left behind
}

TEST(FlightRecorderTest, DumpFlightRecordersWritesEveryLiveRing) {
  const std::string dir = TempDir("nsm_flightrec_dumpall");
  instrument::SetFlightRecorderDumpDir(dir);
  {
    FlightRecorder rank0(0, 8);
    FlightRecorder rank1(1, 8);
    rank0.Record(FlightEventKind::kStep, "solver.step", 5);
    rank1.Record(FlightEventKind::kQueueBlock, "sst.queue_full", 5, 0.5);
    ASSERT_TRUE(instrument::DumpFlightRecorders());
  }
  instrument::SetFlightRecorderDumpDir(".");
  EXPECT_NE(Slurp(dir + "/flightrec_rank0.json").find("solver.step"),
            std::string::npos);
  EXPECT_NE(Slurp(dir + "/flightrec_rank1.json").find("sst.queue_full"),
            std::string::npos);
}

// ------------------------------------------------------ runtime integration

TEST(FlightRecorderRuntimeTest, RunResultAlwaysCarriesRecorders) {
  // No telemetry opt-in at all: the recorders are still installed and
  // returned (the whole point — evidence for failures nobody opted into).
  auto result = mpimini::Runtime::Run(3, [](mpimini::Comm& comm) {
    RecordFlightEvent(FlightEventKind::kStep, "solver.step", comm.Rank());
  });
  ASSERT_EQ(result.flight_recorders.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const auto& recorder = result.flight_recorders[static_cast<std::size_t>(r)];
    ASSERT_NE(recorder, nullptr);
    EXPECT_EQ(recorder->Rank(), r);
    const auto events = recorder->Events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].step, r);
  }
}

TEST(FlightRecorderRuntimeTest, RankErrorDumpsRingsNamingTheFailure) {
  const std::string dir = TempDir("nsm_flightrec_crash");
  instrument::SetFlightRecorderDumpDir(dir);
  EXPECT_THROW(
      mpimini::Runtime::Run(2,
                            [](mpimini::Comm& comm) {
                              RecordFlightEvent(FlightEventKind::kStep,
                                                "solver.step", 4);
                              if (comm.Rank() == 1) {
                                throw std::runtime_error(
                                    "bridge exploded at step 4");
                              }
                            }),
      std::runtime_error);
  instrument::SetFlightRecorderDumpDir(".");
  // Every rank's ring landed, and the failing rank's tail names the step
  // entered and the error that killed it.
  EXPECT_TRUE(std::filesystem::exists(dir + "/flightrec_rank0.json"));
  const std::string rank1 = Slurp(dir + "/flightrec_rank1.json");
  EXPECT_NE(rank1.find("\"kind\": \"step\""), std::string::npos);
  EXPECT_NE(rank1.find("solver.step"), std::string::npos);
  EXPECT_NE(rank1.find("\"kind\": \"error\""), std::string::npos);
  EXPECT_NE(rank1.find("bridge exploded at step 4"), std::string::npos);
}

}  // namespace
