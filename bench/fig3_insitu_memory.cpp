// Figure 3: in situ pebble-bed CPU memory footprint.
//
// Paper: aggregate memory high-water-mark across ranks for the Catalyst and
// Checkpointing configurations; Catalyst ~25 % higher (GPU->CPU staging +
// Catalyst/VTK structures live on the host).
//
// Here: tracked host-allocation high-water (device memory excluded — the
// figure plots CPU memory), per rank and aggregated, for the same two
// configurations plus the Original baseline for reference.

#include <iostream>

#include "bench_common.hpp"

namespace {

// Larger than the Fig-2 timing mesh so per-rank field data dominates the
// fixed-size render framebuffer, the regime the paper's nodes are in.
nekrs::FlowConfig MemoryBenchCase() {
  nekrs::cases::PebbleBedOptions pb;
  pb.elements = {6, 6, 8};
  pb.order = 5;
  pb.pebble_count = 146;
  pb.dt = 1.5e-3;
  return nekrs::cases::PebbleBedCase(pb);
}

// Checkpointing saves the velocity and pressure fields (the fields §4.2
// names); Catalyst renders two views (temperature + velocity magnitude),
// staging those fields plus the rendering buffers.
std::string CheckpointXml(const std::string& out, int frequency) {
  return "<sensei><analysis type=\"checkpoint\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\" arrays=\"velocity,pressure\"/></sensei>";
}

std::string CatalystXml(const std::string& out, int frequency) {
  return "<sensei><analysis type=\"catalyst\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\" width=\"320\" height=\"240\">"
         "<render array=\"temperature\" colormap=\"plasma\"/>"
         "<render array=\"velocity\" magnitude=\"1\" azimuth=\"120\"/>"
         "</analysis></sensei>";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::string out_root = bench::MakeOutputDir("fig3");
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);
  constexpr int kSteps = 8;
  constexpr int kFrequency = 4;
  const int last_ranks = rank_counts.back();

  instrument::BenchReport bench_report;
  bench_report.bench = "fig3";
  // The "-async" suffix makes cross-mode comparisons a config mismatch in
  // compare_runs: async runs gate only against *_async baselines.
  bench_report.config = std::string(args.smoke ? "smoke" : "full") +
                        (args.async ? "-async" : "");

  instrument::Table table(
      "Figure 3: in situ CPU memory high-water (pb146 stand-in)");
  table.SetHeader({"ranks", "config", "max_rank_host", "aggregate_host",
                   "catalyst_vs_checkpoint"});

  for (int ranks : rank_counts) {
    std::size_t checkpoint_total = 0;
    for (const std::string config : {"original", "checkpointing", "catalyst"}) {
      const std::string out =
          out_root + "/" + config + "_" + std::to_string(ranks);
      std::filesystem::create_directories(out);

      nek_sensei::InSituOptions options;
      options.flow = MemoryBenchCase();
      options.steps = kSteps;
      if (config == "original") {
        options.use_sensei = false;
      } else if (config == "checkpointing") {
        options.sensei_xml =
            bench::WithPipeline(CheckpointXml(out, kFrequency), args.async);
      } else {
        options.sensei_xml =
            bench::WithPipeline(CatalystXml(out, kFrequency), args.async);
      }
      const bool headline = config == "catalyst" && ranks == last_ranks;
      options.telemetry = bench::RunTelemetry(args, out, headline);
      const auto metrics = nek_sensei::RunInSitu(ranks, options);

      const std::string key = "fig3." + config + ".r" + std::to_string(ranks);
      bench_report.metrics[key + ".max_rank_host_bytes"] =
          static_cast<double>(metrics.MaxSimHostPeakBytes());
      bench_report.metrics[key + ".aggregate_host_bytes"] =
          static_cast<double>(metrics.TotalSimHostPeakBytes());

      std::string delta = "-";
      if (config == "checkpointing") {
        checkpoint_total = metrics.TotalSimHostPeakBytes();
      } else if (config == "catalyst" && checkpoint_total) {
        char text[32];
        std::snprintf(text, sizeof(text), "%+.1f%%",
                      100.0 * (static_cast<double>(
                                   metrics.TotalSimHostPeakBytes()) /
                                   static_cast<double>(checkpoint_total) -
                               1.0));
        delta = text;
      }
      table.AddRow({std::to_string(ranks), config,
                    instrument::FormatBytes(metrics.MaxSimHostPeakBytes()),
                    instrument::FormatBytes(metrics.TotalSimHostPeakBytes()),
                    delta});
    }
  }

  table.Print(std::cout);
  bool ok = bench::WriteCsvOrWarn(table, out_root + "/fig3_memory.csv");
  ok = bench::WriteBenchReportOrWarn(args, bench_report) && ok;
  std::cout << "CSV written under " << out_root << "\n";
  return ok ? 0 : 1;
}
