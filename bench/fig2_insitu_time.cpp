// Figure 2 + §4.1 storage economy: in situ pebble-bed time-to-solution.
//
// Paper: pb146 on Polaris, 3000 steps, triggers every 100 steps, at
// 280/560/1120 ranks, configurations Original / Checkpointing / Catalyst.
// Expected shape: Original fastest; Catalyst a slight overhead over
// Checkpointing; Catalyst storage ~3 orders of magnitude below
// Checkpointing (6.5 MB vs 19 GB at paper scale).
//
// Here: the same three configurations at 2/4/8 threaded ranks, 30 steps,
// triggers every 10.  "total_busy_s" (sum of per-rank busy time in the
// stepping loop) is the time-to-solution proxy that stays meaningful when
// rank threads share one core; wall_s is also reported.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::string out_root = bench::MakeOutputDir("fig2");
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);
  const int kSteps = args.smoke ? 12 : 30;
  constexpr int kFrequency = 10;
  const int last_ranks = rank_counts.back();

  instrument::BenchReport bench_report;
  bench_report.bench = "fig2";
  // The "-async" suffix makes cross-mode comparisons a config mismatch in
  // compare_runs: async runs gate only against *_async baselines.
  bench_report.config = std::string(args.smoke ? "smoke" : "full") +
                        (args.async ? "-async" : "");

  instrument::Table time_table(
      "Figure 2: in situ time-to-solution (pb146 stand-in, 30 steps, "
      "trigger every 10)");
  time_table.SetHeader({"ranks", "config", "total_busy_s", "wall_s",
                        "per_step_ms", "storage", "images", "breakdown"});

  instrument::Table storage_table(
      "Section 4.1: storage economy per run (Catalyst vs Checkpointing)");
  storage_table.SetHeader(
      {"ranks", "checkpoint_bytes", "catalyst_bytes", "ratio"});

  for (int ranks : rank_counts) {
    std::size_t checkpoint_bytes = 0;
    std::size_t catalyst_bytes = 0;
    for (const std::string config : {"original", "checkpointing", "catalyst"}) {
      const std::string out =
          out_root + "/" + config + "_" + std::to_string(ranks);
      std::filesystem::create_directories(out);

      nek_sensei::InSituOptions options;
      options.flow = bench::PebbleBedBenchCase();
      options.steps = kSteps;
      if (config == "original") {
        options.use_sensei = false;
      } else if (config == "checkpointing") {
        options.sensei_xml = bench::WithPipeline(
            bench::InSituCheckpointXml(out, kFrequency), args.async);
      } else {
        options.sensei_xml = bench::WithPipeline(
            bench::InSituCatalystXml(out, kFrequency), args.async);
      }
      // The Catalyst run at the largest rank count is the headline trace:
      // with --trace, its Chrome trace lands at the requested path.
      const bool headline = config == "catalyst" && ranks == last_ranks;
      options.telemetry = bench::RunTelemetry(args, out, headline);

      const auto metrics = nek_sensei::RunInSitu(ranks, options);
      const std::string key = "fig2." + config + ".r" + std::to_string(ranks);
      bench_report.metrics[key + ".total_busy_seconds"] =
          metrics.TotalSimBusySeconds();
      bench_report.metrics[key + ".per_step_seconds"] =
          metrics.MeanSimStepSeconds();
      bench_report.metrics[key + ".bytes_written"] =
          static_cast<double>(metrics.bytes_written);
      bench_report.metrics[key + ".images"] =
          static_cast<double>(metrics.images_written);
      time_table.AddRow(
          {std::to_string(ranks), config,
           instrument::FormatSeconds(metrics.TotalSimBusySeconds()),
           instrument::FormatSeconds(metrics.wall_seconds),
           instrument::FormatSeconds(metrics.MeanSimStepSeconds() * 1e3),
           instrument::FormatBytes(metrics.bytes_written),
           std::to_string(metrics.images_written),
           bench::BreakdownCell(metrics.telemetry)});
      if (headline && args.trace) {
        instrument::TelemetryTable(
            metrics.telemetry,
            "Telemetry: catalyst @ " + std::to_string(ranks) + " ranks")
            .Print(std::cout);
      }
      if (config == "checkpointing") checkpoint_bytes = metrics.bytes_written;
      if (config == "catalyst") catalyst_bytes = metrics.bytes_written;
    }
    const double ratio =
        catalyst_bytes
            ? static_cast<double>(checkpoint_bytes) /
                  static_cast<double>(catalyst_bytes)
            : 0.0;
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof(ratio_text), "%.1fx", ratio);
    storage_table.AddRow({std::to_string(ranks),
                          instrument::FormatBytes(checkpoint_bytes),
                          instrument::FormatBytes(catalyst_bytes),
                          ratio_text});
  }

  time_table.Print(std::cout);
  storage_table.Print(std::cout);

  // The paper's three-orders-of-magnitude gap (6.5 MB vs 19 GB) comes from
  // checkpoints growing with the grid while images stay fixed-size; the
  // sweep below shows the ratio growing with resolution, extrapolating to
  // the paper's scale (EXPERIMENTS.md E2).
  instrument::Table scaling_table(
      "Section 4.1: storage ratio vs grid resolution (2 ranks, 1 trigger)");
  scaling_table.SetHeader({"gridpoints", "checkpoint_per_trigger",
                           "catalyst_per_trigger", "ratio"});
  std::vector<std::array<int, 3>> resolutions = {
      {2, 2, 2}, {4, 4, 4}, {6, 6, 6}, {8, 8, 8}};
  if (args.smoke) resolutions.resize(2);
  for (const std::array<int, 3> elements : resolutions) {
    nekrs::cases::PebbleBedOptions pb;
    pb.elements = elements;
    pb.order = 4;
    pb.pebble_count = 27;
    pb.dt = 1.5e-3;

    std::size_t bytes_by_config[2] = {0, 0};
    for (int c = 0; c < 2; ++c) {
      const std::string out = out_root + "/scale_" +
                              std::to_string(elements[0]) + "_" +
                              std::to_string(c);
      std::filesystem::create_directories(out);
      nek_sensei::InSituOptions options;
      options.flow = nekrs::cases::PebbleBedCase(pb);
      options.steps = 4;
      options.sensei_xml = c == 0 ? bench::InSituCheckpointXml(out, 4)
                                  : bench::InSituCatalystXml(out, 4);
      bytes_by_config[c] = nek_sensei::RunInSitu(2, options).bytes_written;
    }
    const long points = 125L * elements[0] * elements[1] * elements[2];
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof(ratio_text), "%.1fx",
                  static_cast<double>(bytes_by_config[0]) /
                      static_cast<double>(bytes_by_config[1]));
    scaling_table.AddRow({std::to_string(points),
                          instrument::FormatBytes(bytes_by_config[0]),
                          instrument::FormatBytes(bytes_by_config[1]),
                          ratio_text});
  }
  scaling_table.Print(std::cout);

  bool ok = bench::WriteCsvOrWarn(time_table, out_root + "/fig2_time.csv");
  ok = bench::WriteCsvOrWarn(storage_table, out_root + "/fig2_storage.csv") &&
       ok;
  ok = bench::WriteCsvOrWarn(scaling_table,
                             out_root + "/fig2_storage_scaling.csv") &&
       ok;
  ok = bench::WriteBenchReportOrWarn(args, bench_report) && ok;
  std::cout << "CSV written under " << out_root << "\n";
  if (args.trace) {
    std::cout << "Chrome trace written to " << args.trace_path
              << " (aggregate: " << args.SummaryPath() << ")\n";
  }
  return ok ? 0 : 1;
}
