// Solver-heavy smoke: pressure-solve wall time and CG iteration counts on
// the pebble-bed stand-in, with and without the p-multigrid preconditioner
// stack (Chebyshev pfloat V-cycle + direct coarse solve).
//
// fig2/fig5 route much of their time through I/O, staging, and rendering,
// so a regression in the elliptic hot path — the fused Laplacian kernels,
// the smoother, the coarse solve — can hide inside their headroom.  This
// bench isolates solver.pressure and solver.step and emits BENCH_solver.json
// for the compare_runs gate: iteration counts are deterministic counters,
// timings get the usual noisy-CI headroom.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mpimini/runtime.hpp"
#include "nekrs/flow_solver.hpp"

namespace {

struct SolveOutcome {
  double pressure_seconds = 0.0;  // solver.pressure span, summed over ranks
  double step_seconds = 0.0;      // solver.step span, summed over ranks
  long pressure_iterations = 0;   // summed over steps (rank-identical)
  long velocity_iterations = 0;
};

SolveOutcome RunCase(int nranks, int steps, bool multigrid) {
  SolveOutcome outcome;
  mpimini::RunSettings settings;
  settings.trace = true;
  const mpimini::RunResult result =
      mpimini::Runtime::Run(nranks, settings, [&](mpimini::Comm& comm) {
        occamini::Device device(occamini::Backend::kSimGpu);
        nekrs::FlowConfig config = bench::PebbleBedBenchCase();
        config.pressure_multigrid = multigrid;
        nekrs::FlowSolver solver(comm, device, config);
        long p_iters = 0, v_iters = 0;
        for (int s = 0; s < steps; ++s) {
          solver.Step();
          p_iters += solver.LastStats().pressure_iterations;
          v_iters += solver.LastStats().velocity_iterations;
        }
        if (comm.Rank() == 0) {
          outcome.pressure_iterations = p_iters;
          outcome.velocity_iterations = v_iters;
        }
      });
  const instrument::TelemetrySummary summary =
      instrument::Summarize(result.TracerPointers());
  outcome.pressure_seconds = summary.SpanTotalSeconds("solver.pressure");
  outcome.step_seconds = summary.SpanTotalSeconds("solver.step");
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const int kSteps = args.smoke ? 16 : 48;
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);

  instrument::BenchReport report;
  report.bench = "solver";
  report.config = args.smoke ? "smoke" : "full";

  instrument::Table table("Solver smoke: pressure hot path (pb146 stand-in, " +
                          std::to_string(kSteps) + " steps)");
  table.SetHeader({"ranks", "pmg", "p_iters", "v_iters", "pressure_s",
                   "step_s"});

  for (int ranks : rank_counts) {
    for (const bool multigrid : {false, true}) {
      const SolveOutcome r = RunCase(ranks, kSteps, multigrid);
      const std::string key = std::string("solver.") +
                              (multigrid ? "pmg" : "nomg") + ".r" +
                              std::to_string(ranks);
      report.metrics[key + ".pressure_iterations"] =
          static_cast<double>(r.pressure_iterations);
      report.metrics[key + ".velocity_iterations"] =
          static_cast<double>(r.velocity_iterations);
      report.metrics[key + ".pressure_seconds"] = r.pressure_seconds;
      report.metrics[key + ".step_seconds"] = r.step_seconds;
      table.AddRow({std::to_string(ranks), multigrid ? "on" : "off",
                    std::to_string(r.pressure_iterations),
                    std::to_string(r.velocity_iterations),
                    instrument::FormatSeconds(r.pressure_seconds),
                    instrument::FormatSeconds(r.step_seconds)});
    }
  }
  table.Print(std::cout);

  return bench::WriteBenchReportOrWarn(args, report) ? 0 : 1;
}
