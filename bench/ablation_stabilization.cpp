// Ablation A5: the solver stabilization choices DESIGN.md calls out.
//
//  * modal filter  — NekRS's explicit high-mode filter; without it the
//    under-resolved supercritical RBC run blows up (aliasing instability).
//  * dealiasing    — 3/2-rule over-integration of the convection term;
//    an alternative/additional stabilization with its own per-step cost.
//  * pressure projection — solution-projection initial guesses; pure
//    performance (iteration counts), no physics change.
//
// One table per knob: stability horizon and final diagnostics for the
// filter/dealias matrix, pressure iteration totals for projection.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "mpimini/runtime.hpp"

namespace {

struct RunOutcome {
  bool stable = true;
  int blowup_step = -1;
  double kinetic_energy = 0.0;
  double nusselt = 0.0;
  int pressure_iterations = 0;
  double step_seconds = 0.0;
};

struct MgChoice {
  bool enabled = false;
  nekrs::MultigridPreconditioner::Smoother smoother =
      nekrs::MultigridPreconditioner::Smoother::kChebyshev;
  nekrs::MultigridPreconditioner::Precision precision =
      nekrs::MultigridPreconditioner::Precision::kFloat;
  int levels = 0;  // 0 = full ladder
};

RunOutcome RunRbc(double filter_strength, bool dealias,
                  int projection_vectors, int steps,
                  const MgChoice& mg = {}) {
  RunOutcome outcome;
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::cases::RayleighBenardOptions o;
    o.elements = {4, 2, 3};
    o.order = 4;
    o.rayleigh = 1e5;
    o.dt = 5e-3;
    nekrs::FlowConfig config = nekrs::cases::RayleighBenardCase(o);
    config.filter_strength = filter_strength;
    config.dealias = dealias;
    config.pressure_projection_vectors = projection_vectors;
    config.pressure_multigrid = mg.enabled;
    config.pressure_mg_smoother = mg.smoother;
    config.pressure_mg_precision = mg.precision;
    config.pressure_mg_levels = mg.levels;
    nekrs::FlowSolver solver(comm, device, config);

    instrument::WallTimer timer;
    for (int s = 0; s < steps; ++s) {
      solver.Step();
      outcome.pressure_iterations += solver.LastStats().pressure_iterations;
      const double ke = solver.KineticEnergy();
      if (!std::isfinite(ke) || ke > 1e4) {
        outcome.stable = false;
        outcome.blowup_step = solver.StepNumber();
        break;
      }
    }
    outcome.step_seconds = timer.Elapsed() / steps;
    outcome.kinetic_energy = solver.KineticEnergy();
    outcome.nusselt = solver.NusseltNumber();
  });
  return outcome;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

int main() {
  constexpr int kSteps = 400;

  instrument::Table stability(
      "Ablation A5a: stabilization matrix (RBC Ra=1e5, order 4, 400 steps)");
  stability.SetHeader({"filter", "dealias", "outcome", "KE", "Nu",
                       "step_ms"});
  struct Case {
    double filter;
    bool dealias;
  };
  for (const Case c : {Case{0.0, false}, Case{0.1, false}, Case{0.0, true},
                       Case{0.1, true}}) {
    const RunOutcome r = RunRbc(c.filter, c.dealias, 8, kSteps);
    stability.AddRow(
        {c.filter > 0 ? "on" : "off", c.dealias ? "on" : "off",
         r.stable ? "stable"
                  : "blow-up@" + std::to_string(r.blowup_step),
         r.stable ? Fmt(r.kinetic_energy) : "-",
         r.stable ? Fmt(r.nusselt) : "-", Fmt(r.step_seconds * 1e3)});
  }
  stability.Print(std::cout);

  instrument::Table projection(
      "Ablation A5b: pressure solution projection (stable configuration, "
      "150 steps)");
  projection.SetHeader({"projection_vectors", "pressure_iters", "step_ms"});
  for (int vectors : {0, 2, 8}) {
    const RunOutcome r = RunRbc(0.1, false, vectors, 150);
    projection.AddRow({std::to_string(vectors),
                       std::to_string(r.pressure_iterations),
                       Fmt(r.step_seconds * 1e3)});
  }
  projection.Print(std::cout);

  // The pressure pMG precision/smoother matrix (mixed-precision Chebyshev
  // p-multigrid PR): iteration counts verify each configuration is an
  // equivalent preconditioner; step time shows what the float cycle and
  // the full ladder buy.
  instrument::Table precision(
      "Ablation A5c: pressure pMG precision/smoother (stable configuration, "
      "150 steps)");
  precision.SetHeader({"pmg", "pressure_iters", "step_ms"});
  struct MgCase {
    const char* name;
    MgChoice mg;
  };
  using MG = nekrs::MultigridPreconditioner;
  for (const MgCase c :
       {MgCase{"off", {}},
        MgCase{"jacobi-double-2lvl",
               {true, MG::Smoother::kJacobi, MG::Precision::kDouble, 2}},
        MgCase{"cheb-double-full",
               {true, MG::Smoother::kChebyshev, MG::Precision::kDouble, 0}},
        MgCase{"cheb-float-full",
               {true, MG::Smoother::kChebyshev, MG::Precision::kFloat, 0}}}) {
    const RunOutcome r = RunRbc(0.1, false, 8, 150, c.mg);
    precision.AddRow({c.name, std::to_string(r.pressure_iterations),
                      Fmt(r.step_seconds * 1e3)});
  }
  precision.Print(std::cout);
  return 0;
}
