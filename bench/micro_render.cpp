// Ablation A4 (DESIGN.md): the Catalyst-stand-in rendering pipeline —
// rasterization cost vs resolution and geometry, and depth compositing vs
// rank count (the IceT role).

#include <benchmark/benchmark.h>

#include <cmath>

#include "mpimini/runtime.hpp"
#include "render/compositor.hpp"
#include "render/rasterizer.hpp"

namespace {

// A block of n^3 hex cells with a smooth scalar.
svtk::UnstructuredGrid MakeBlock(int n) {
  const int np = n + 1;
  svtk::UnstructuredGrid grid(
      static_cast<std::size_t>(np) * np * np,
      static_cast<std::size_t>(n) * n * n);
  for (int k = 0; k < np; ++k) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        const std::size_t p =
            static_cast<std::size_t>(i + np * (j + np * k));
        grid.SetPoint(p, static_cast<double>(i) / n,
                      static_cast<double>(j) / n,
                      static_cast<double>(k) / n);
      }
    }
  }
  std::size_t c = 0;
  auto id = [np](int i, int j, int k) {
    return static_cast<std::int64_t>(i + np * (j + np * k));
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        grid.SetCell(c++, {id(i, j, k), id(i + 1, j, k), id(i + 1, j + 1, k),
                           id(i, j + 1, k), id(i, j, k + 1),
                           id(i + 1, j, k + 1), id(i + 1, j + 1, k + 1),
                           id(i, j + 1, k + 1)});
      }
    }
  }
  svtk::DataArray& s = grid.AddPointArray("f", 1);
  for (std::size_t t = 0; t < grid.NumPoints(); ++t) {
    auto p = grid.GetPoint(t);
    s.At(t) = std::sin(6.0 * p[0]) * std::cos(5.0 * p[1]) + p[2];
  }
  return grid;
}

void BM_RasterizeByResolution(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  svtk::UnstructuredGrid grid = MakeBlock(8);
  render::RenderSpec spec;
  spec.array = "f";
  render::Camera camera = render::FitCamera(grid.Bounds(), 40, 25,
                                            1.0, 1.0);
  render::Framebuffer fb(size, size);
  for (auto _ : state) {
    fb.Clear(spec.background);
    auto stats = render::RasterizeGrid(grid, spec, camera, fb);
    benchmark::DoNotOptimize(stats.pixels_shaded);
  }
  state.counters["pixels"] = static_cast<double>(size) * size;
}
BENCHMARK(BM_RasterizeByResolution)->RangeMultiplier(2)->Range(128, 1024);

void BM_RasterizeByGeometry(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  svtk::UnstructuredGrid grid = MakeBlock(n);
  render::RenderSpec spec;
  spec.array = "f";
  render::Camera camera = render::FitCamera(grid.Bounds(), 40, 25, 1.0, 1.0);
  render::Framebuffer fb(512, 512);
  for (auto _ : state) {
    fb.Clear(spec.background);
    auto stats = render::RasterizeGrid(grid, spec, camera, fb);
    benchmark::DoNotOptimize(stats.triangles_drawn);
  }
  state.counters["cells"] = static_cast<double>(n) * n * n;
}
BENCHMARK(BM_RasterizeByGeometry)->RangeMultiplier(2)->Range(4, 16);

void BM_CompositeByRanks(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpimini::Runtime::Run(nranks, [&](mpimini::Comm& comm) {
      render::Framebuffer fb(512, 512);
      fb.Clear({0, 0, 0});
      fb.SetPixel(comm.Rank(), 0, {255, 255, 255},
                  static_cast<float>(comm.Rank()));
      render::CompositeToRoot(comm, fb, 0);
    });
  }
  state.counters["ranks"] = nranks;
}
BENCHMARK(BM_CompositeByRanks)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
