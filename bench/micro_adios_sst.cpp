// Ablation A3 (DESIGN.md): BP marshaling and SST streaming throughput —
// the transport layer of the in transit workflow (§4.2's UCX data plane +
// BP marshaling option, scaled to the mpimini fabric).

#include <benchmark/benchmark.h>

#include <cstring>

#include "adios/marshal.hpp"
#include "adios/sst.hpp"
#include "mpimini/runtime.hpp"

namespace {

adios::StepPayload MakePayload(std::size_t bytes) {
  adios::StepPayload payload;
  payload.step = 1;
  payload.writer_rank = 0;
  payload.variables["mesh"] = core::Buffer::TakeVector(
      "", std::vector<std::byte>(bytes, std::byte{0x5A}));
  return payload;
}

void BM_MarshalStep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const adios::StepPayload payload = MakePayload(bytes);
  for (auto _ : state) {
    auto buffer = adios::MarshalStep(payload);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MarshalStep)->Range(1 << 10, 1 << 22);

void BM_UnmarshalStep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto buffer = adios::MarshalStep(MakePayload(bytes));
  for (auto _ : state) {
    auto payload = adios::UnmarshalStep(buffer);
    benchmark::DoNotOptimize(&payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UnmarshalStep)->Range(1 << 10, 1 << 22);

// One iteration = a full 16-step stream between a writer and a reader rank
// (queue_limit 1, so this measures the synchronous handoff path including
// acks).  Includes the rank-thread spawn, amortized over the 16 steps.
void BM_SstStream16Steps(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kSteps = 16;
  const std::vector<std::byte> block(bytes, std::byte{0x42});
  for (auto _ : state) {
    mpimini::Runtime::Run(2, [&](mpimini::Comm& comm) {
      if (comm.Rank() == 0) {
        adios::SstWriter writer(comm, 1);
        for (int i = 0; i < kSteps; ++i) {
          writer.BeginStep(i);
          writer.Put("mesh", block);
          writer.EndStep();
        }
        writer.Close();
      } else {
        adios::SstReader reader(comm, {0});
        while (reader.NextStep()) {
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SstStream16Steps)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
