// Ablation A3 (DESIGN.md): BP marshaling and SST streaming throughput —
// the transport layer of the in transit workflow (§4.2's UCX data plane +
// BP marshaling option, scaled to the mpimini fabric).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>

#include "adios/marshal.hpp"
#include "adios/sst.hpp"
#include "codec/codec.hpp"
#include "mpimini/runtime.hpp"

namespace {

adios::StepPayload MakePayload(std::size_t bytes) {
  adios::StepPayload payload;
  payload.step = 1;
  payload.writer_rank = 0;
  payload.variables["mesh"] = core::Buffer::TakeVector(
      "", std::vector<std::byte>(bytes, std::byte{0x5A}));
  return payload;
}

void BM_MarshalStep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const adios::StepPayload payload = MakePayload(bytes);
  for (auto _ : state) {
    auto buffer = adios::MarshalStep(payload);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MarshalStep)->Range(1 << 10, 1 << 22);

void BM_UnmarshalStep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto buffer = adios::MarshalStep(MakePayload(bytes));
  for (auto _ : state) {
    auto payload = adios::UnmarshalStep(buffer);
    benchmark::DoNotOptimize(&payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UnmarshalStep)->Range(1 << 10, 1 << 22);

// One iteration = a full 16-step stream between a writer and a reader rank
// (queue_limit 1, so this measures the synchronous handoff path including
// acks).  Includes the rank-thread spawn, amortized over the 16 steps.
void BM_SstStream16Steps(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kSteps = 16;
  const std::vector<std::byte> block(bytes, std::byte{0x42});
  for (auto _ : state) {
    mpimini::Runtime::Run(2, [&](mpimini::Comm& comm) {
      if (comm.Rank() == 0) {
        adios::SstWriter writer(comm, 1);
        for (int i = 0; i < kSteps; ++i) {
          writer.BeginStep(i);
          writer.Put("mesh", block);
          writer.EndStep();
        }
        writer.Close();
      } else {
        adios::SstReader reader(comm, {0});
        while (reader.NextStep()) {
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SstStream16Steps)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

// ---- codec plane ------------------------------------------------------------

std::vector<std::byte> SmoothFieldBytes(std::size_t bytes) {
  std::vector<double> values(bytes / sizeof(double));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.01) * 300.0 + 273.0;
  }
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

codec::Spec BlockFloat8() {
  codec::Spec spec;
  spec.kind = codec::Kind::kBlockFloat;
  spec.rate = 8;
  return spec;
}

void BM_CodecEncodeBlockFloat(benchmark::State& state) {
  const auto raw = SmoothFieldBytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Buffer wire = codec::Encode(BlockFloat8(), raw);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_CodecEncodeBlockFloat)->Range(1 << 10, 1 << 22);

void BM_CodecDecodeBlockFloat(benchmark::State& state) {
  const auto raw = SmoothFieldBytes(static_cast<std::size_t>(state.range(0)));
  const core::Buffer wire = codec::Encode(BlockFloat8(), raw);
  for (auto _ : state) {
    core::Buffer back =
        codec::Decode(codec::Kind::kBlockFloat, wire.bytes(), raw.size());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_CodecDecodeBlockFloat)->Range(1 << 10, 1 << 22);

// The compressed twin of BM_SstStream16Steps: same stream shape, blockfloat
// rate 8 on the field.  Comparing the two rows shows whether the encode
// cost is paid back by the smaller wire payload.
void BM_SstStream16StepsCompressed(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kSteps = 16;
  const std::vector<std::byte> block = SmoothFieldBytes(bytes);
  for (auto _ : state) {
    mpimini::Runtime::Run(2, [&](mpimini::Comm& comm) {
      if (comm.Rank() == 0) {
        core::Buffer staged =
            core::Buffer::TakeVector("", std::vector<std::byte>(block));
        adios::SstWriter writer(comm, 1);
        for (int i = 0; i < kSteps; ++i) {
          writer.BeginStep(i);
          writer.PutChain("mesh",
                          core::BufferChain(core::BufferView(staged)),
                          BlockFloat8());
          writer.EndStep();
        }
        writer.Close();
      } else {
        adios::SstReader reader(comm, {0});
        while (reader.NextStep()) {
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SstStream16StepsCompressed)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
