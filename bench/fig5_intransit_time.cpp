// Figure 5: in transit RBC — mean time per timestep on the simulation
// ranks, weak scaling.
//
// Paper: JUWELS Booster, NekRS-SENSEI + ADIOS2 SST, sim:endpoint 4:1,
// measurement points No Transport / Checkpointing / Catalyst.  Expected
// shape: the three curves nearly coincide (in transit overhead is small)
// and stay flat as ranks grow (weak scaling works).
//
// Here: the same three measurement points at 2/4/8 sim ranks (+1/1/2
// endpoint ranks), constant per-rank load, 30 steps, streaming every 10.
// Each rank is one "GPU" as in the paper's figure.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::string out_root = bench::MakeOutputDir("fig5");
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);
  const int kSteps = args.smoke ? 12 : 30;
  constexpr int kFrequency = 10;
  const int last_ranks = rank_counts.back();

  instrument::BenchReport bench_report;
  bench_report.bench = "fig5";
  // "-async" / "-compress" suffixes: such runs gate only against the
  // matching baselines (byte counters shift under compression).
  bench_report.config = std::string(args.smoke ? "smoke" : "full") +
                        (args.async ? "-async" : "") +
                        (args.compress ? "-compress" : "");

  instrument::Table table(
      "Figure 5: in transit mean time per timestep on sim ranks (RBC weak "
      "scaling, 4:1 sim:endpoint)");
  table.SetHeader({"sim_ranks", "endpoint_ranks", "mode", "per_step_ms",
                   "stream_bytes", "images", "e2e_ms", "breakdown"});

  for (int sim_ranks : rank_counts) {
    for (const std::string mode : {"no-transport", "checkpointing",
                                   "catalyst"}) {
      const std::string out =
          out_root + "/" + mode + "_" + std::to_string(sim_ranks);
      std::filesystem::create_directories(out);

      nek_sensei::InTransitOptions options;
      options.flow = bench::RayleighBenardBenchCase(sim_ranks);
      options.steps = kSteps;
      options.sim_per_endpoint = 4;
      if (mode == "no-transport") {
        // SENSEI is still in the loop, but no analysis adaptor is enabled
        // in the runtime XML (the paper's reference measurement).
        options.sim_xml = "<sensei/>";
        options.endpoint_xml = "<sensei/>";
      } else {
        // --async offloads the sim-side SST sender to the per-rank worker;
        // the endpoint stays a plain consumer loop either way.
        options.sim_xml = bench::WithPipeline(
            bench::InTransitAdiosXml(kFrequency, args.compress), args.async);
        options.endpoint_xml = mode == "checkpointing"
                                   ? bench::EndpointCheckpointXml(out)
                                   : bench::EndpointCatalystXml(out);
      }

      // Headline trace: the full pipeline (Catalyst endpoint) at the
      // largest sim-rank count.
      const bool headline = mode == "catalyst" && sim_ranks == last_ranks;
      options.telemetry = bench::RunTelemetry(args, out, headline);
      // Async runs gate end-to-end step->analysis latency (against the
      // *_async baseline), which needs the metrics plane — and with it the
      // provenance stamping — on for every measurement point.
      if (args.async) options.telemetry.metrics = true;

      const auto metrics = nek_sensei::RunInTransit(sim_ranks, options);
      const int endpoint_ranks =
          static_cast<int>(metrics.ranks.size()) - sim_ranks;
      const std::string key =
          "fig5." + mode + ".r" + std::to_string(sim_ranks);
      bench_report.metrics[key + ".per_step_seconds"] =
          metrics.MeanSimStepSeconds();
      bench_report.metrics[key + ".stream_bytes"] =
          static_cast<double>(metrics.bytes_written);
      bench_report.metrics[key + ".images"] =
          static_cast<double>(metrics.images_written);
      const std::string e2e_name = mode == "checkpointing"
                                       ? "e2e.step_to_checkpoint_seconds"
                                       : "e2e.step_to_image_seconds";
      const auto e2e = metrics.metrics_report.histograms.find(e2e_name);
      std::string e2e_cell = "-";
      if (e2e != metrics.metrics_report.histograms.end() &&
          e2e->second.count > 0) {
        const std::string tag = mode == "checkpointing"
                                    ? ".e2e_step_to_checkpoint_"
                                    : ".e2e_step_to_image_";
        bench_report.metrics[key + tag + "mean_seconds"] = e2e->second.Mean();
        bench_report.metrics[key + tag + "max_seconds"] = e2e->second.max;
        bench_report.metrics[key + ".e2e_samples"] =
            static_cast<double>(e2e->second.count);
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.1f (max %.1f)",
                      e2e->second.Mean() * 1e3, e2e->second.max * 1e3);
        e2e_cell = cell;
      }
      table.AddRow(
          {std::to_string(sim_ranks), std::to_string(endpoint_ranks), mode,
           instrument::FormatSeconds(metrics.MeanSimStepSeconds() * 1e3),
           instrument::FormatBytes(metrics.bytes_written),
           std::to_string(metrics.images_written), e2e_cell,
           bench::BreakdownCell(metrics.telemetry)});
      if (headline && args.trace) {
        instrument::TelemetryTable(metrics.telemetry,
                                   "Telemetry: catalyst endpoint @ " +
                                       std::to_string(sim_ranks) +
                                       " sim ranks")
            .Print(std::cout);
      }
    }
  }

  table.Print(std::cout);
  bool ok = bench::WriteCsvOrWarn(table, out_root + "/fig5_time.csv");
  ok = bench::WriteBenchReportOrWarn(args, bench_report) && ok;
  std::cout << "CSV written under " << out_root << "\n";
  if (args.trace) {
    std::cout << "Chrome trace written to " << args.trace_path
              << " (aggregate: " << args.SummaryPath() << ")\n";
  }
  return ok ? 0 : 1;
}
