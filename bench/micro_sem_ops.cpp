// Ablation A2 (DESIGN.md): spectral-element operator throughput — the
// solver's flop core, standing in for NekRS's libParanumal kernels.
//
// Sweeps the polynomial order: the 3-D tensor-product operators cost
// O(N^4) per element, and the Helmholtz CG iteration is dominated by them.

#include <benchmark/benchmark.h>

#include <cmath>

#include "mpimini/runtime.hpp"
#include "nekrs/helmholtz.hpp"
#include "sem/box_mesh.hpp"
#include "sem/filter.hpp"
#include "sem/operators.hpp"

namespace {

struct Setup {
  sem::GllRule rule;
  sem::BoxMesh mesh;
  sem::ElementOperators ops;
  std::vector<double> u, out, ux, uy, uz;

  explicit Setup(int order)
      : rule(sem::MakeGllRule(order)),
        mesh(sem::BoxMeshSpec{order, {4, 4, 4}, {1, 1, 1},
                              {false, false, false}},
             0, 1),
        ops(rule, mesh),
        u(mesh.NumLocalDofs(), 1.0),
        out(u.size()),
        ux(u.size()),
        uy(u.size()),
        uz(u.size()) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = std::sin(0.001 * static_cast<double>(i));
    }
  }
};

void BM_Laplacian(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    s.ops.Laplacian(s.u, s.out);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_Laplacian)->DenseRange(2, 8, 2);

void BM_Gradient(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    s.ops.Gradient(s.u, s.ux, s.uy, s.uz);
    benchmark::DoNotOptimize(s.ux.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_Gradient)->DenseRange(2, 8, 2);

void BM_ModalFilter(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  sem::ModalFilter filter(s.rule, 0.1, 2);
  for (auto _ : state) {
    filter.Apply(s.u);
    benchmark::DoNotOptimize(s.u.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_ModalFilter)->DenseRange(2, 8, 2);

void BM_GatherScatterSum(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    Setup s(order);
    std::vector<std::int64_t> gids(s.mesh.NumLocalDofs());
    s.mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    for (auto _ : state) {
      gs.Sum(s.u);
      benchmark::DoNotOptimize(s.u.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(s.u.size()));
  });
}
BENCHMARK(BM_GatherScatterSum)->DenseRange(2, 8, 2);

void BM_HelmholtzSolve(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    Setup s(order);
    std::vector<std::int64_t> gids(s.mesh.NumLocalDofs());
    s.mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    nekrs::HelmholtzSolver solver(comm, s.ops, gs);
    std::vector<double> mask(s.u.size());
    s.mesh.FillDirichletMask({true, true, true, true, true, true}, mask);
    std::vector<double> rhs(s.u.size());
    auto mass = s.ops.MassDiag();
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = mass[i];
    nekrs::HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-8;
    int iterations = 0;
    for (auto _ : state) {
      std::vector<double> x(s.u.size(), 0.0);
      auto result = solver.Solve(options, rhs, x, mask);
      iterations = result.iterations;
      benchmark::DoNotOptimize(x.data());
    }
    state.counters["cg_iters"] = iterations;
  });
}
BENCHMARK(BM_HelmholtzSolve)->DenseRange(2, 6, 2);

}  // namespace

BENCHMARK_MAIN();
