// Ablation A2 (DESIGN.md): spectral-element operator throughput — the
// solver's flop core, standing in for NekRS's libParanumal kernels.
//
// Sweeps the polynomial order: the 3-D tensor-product operators cost
// O(N^4) per element, and the Helmholtz CG iteration is dominated by them.

#include <benchmark/benchmark.h>

#include <cmath>

#include "mpimini/runtime.hpp"
#include "nekrs/helmholtz.hpp"
#include "sem/box_mesh.hpp"
#include "sem/filter.hpp"
#include "sem/operators.hpp"

namespace {

struct Setup {
  sem::GllRule rule;
  sem::BoxMesh mesh;
  sem::ElementOperators ops;
  std::vector<double> u, out, ux, uy, uz;

  explicit Setup(int order)
      : rule(sem::MakeGllRule(order)),
        mesh(sem::BoxMeshSpec{order, {4, 4, 4}, {1, 1, 1},
                              {false, false, false}},
             0, 1),
        ops(rule, mesh),
        u(mesh.NumLocalDofs(), 1.0),
        out(u.size()),
        ux(u.size()),
        uy(u.size()),
        uz(u.size()) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = std::sin(0.001 * static_cast<double>(i));
    }
  }
};

void BM_Laplacian(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    s.ops.Laplacian(s.u, s.out);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_Laplacian)->DenseRange(2, 8, 2);

// The fused-vs-separate ablation behind the PR that collapsed the weak
// Laplacian's six matrix sweeps into one kernel, and the dfloat/pfloat
// comparison behind the multigrid smoother's float path.

template <typename T>
struct FusedSetup {
  int np = 0;
  int nel = 0;
  std::vector<T> deriv, deriv_t;
  std::vector<T> g11, g12, g13, g22, g23, g33;
  std::vector<T> u, out, scratch;

  explicit FusedSetup(int order) {
    const Setup s(order);
    np = s.rule.NumPoints();
    nel = s.mesh.NumLocalElements();
    auto narrow = [](std::span<const double> v) {
      std::vector<T> w(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        w[i] = static_cast<T>(v[i]);
      }
      return w;
    };
    deriv = narrow(s.rule.deriv);
    deriv_t = narrow(s.rule.deriv_t);
    const sem::LaplacianGeo<double> geo = s.ops.Geo();
    g11 = narrow(geo.g11);
    g12 = narrow(geo.g12);
    g13 = narrow(geo.g13);
    g22 = narrow(geo.g22);
    g23 = narrow(geo.g23);
    g33 = narrow(geo.g33);
    u = narrow(s.u);
    out.resize(u.size());
    scratch.resize(6 * static_cast<std::size_t>(np) * np * np);
  }

  [[nodiscard]] sem::LaplacianGeo<T> Geo() const {
    return {g11, g12, g13, g22, g23, g33};
  }
};

template <typename T>
void RunLaplacianFused(benchmark::State& state) {
  FusedSetup<T> s(static_cast<int>(state.range(0)));
  const sem::LaplacianGeo<T> geo = s.Geo();
  for (auto _ : state) {
    sem::LaplacianFused<T>(s.deriv, s.deriv_t, s.np, s.nel, geo, s.u, s.out,
                           s.scratch);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}

void BM_LaplacianFusedDouble(benchmark::State& state) {
  RunLaplacianFused<double>(state);
}
BENCHMARK(BM_LaplacianFusedDouble)->DenseRange(2, 8, 2);

void BM_LaplacianFusedFloat(benchmark::State& state) {
  RunLaplacianFused<float>(state);
}
BENCHMARK(BM_LaplacianFusedFloat)->DenseRange(2, 8, 2);

// The pre-fusion composition: six separate ApplyDim sweeps per element with
// three full-size temporaries between them — what ElementOperators did
// before the fused kernel landed.
void BM_LaplacianSeparateSweeps(benchmark::State& state) {
  FusedSetup<double> s(static_cast<int>(state.range(0)));
  const sem::LaplacianGeo<double> geo = s.Geo();
  const std::size_t per_el = static_cast<std::size_t>(s.np) * s.np * s.np;
  std::vector<double> ur(per_el), us(per_el), ut(per_el);
  std::vector<double> wr(per_el), ws(per_el), wt(per_el);
  std::vector<double> ar(per_el), as(per_el), at(per_el);
  for (auto _ : state) {
    for (int e = 0; e < s.nel; ++e) {
      const std::size_t base = static_cast<std::size_t>(e) * per_el;
      const std::span<const double> ue{s.u.data() + base, per_el};
      sem::ApplyDim0T<double>(s.deriv, s.np, s.np, ue, ur);
      sem::ApplyDim1T<double>(s.deriv, s.np, s.np, ue, us);
      sem::ApplyDim2T<double>(s.deriv, s.np, s.np, ue, ut);
      for (std::size_t q = 0; q < per_el; ++q) {
        const std::size_t g = base + q;
        wr[q] = geo.g11[g] * ur[q] + geo.g12[g] * us[q] + geo.g13[g] * ut[q];
        ws[q] = geo.g12[g] * ur[q] + geo.g22[g] * us[q] + geo.g23[g] * ut[q];
        wt[q] = geo.g13[g] * ur[q] + geo.g23[g] * us[q] + geo.g33[g] * ut[q];
      }
      sem::ApplyDim0T<double>(s.deriv_t, s.np, s.np, wr, ar);
      sem::ApplyDim1T<double>(s.deriv_t, s.np, s.np, ws, as);
      sem::ApplyDim2T<double>(s.deriv_t, s.np, s.np, wt, at);
      for (std::size_t q = 0; q < per_el; ++q) {
        s.out[base + q] = (ar[q] + as[q]) + at[q];
      }
    }
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_LaplacianSeparateSweeps)->DenseRange(2, 8, 2);

void BM_Gradient(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    s.ops.Gradient(s.u, s.ux, s.uy, s.uz);
    benchmark::DoNotOptimize(s.ux.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_Gradient)->DenseRange(2, 8, 2);

void BM_ModalFilter(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  sem::ModalFilter filter(s.rule, 0.1, 2);
  for (auto _ : state) {
    filter.Apply(s.u);
    benchmark::DoNotOptimize(s.u.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.u.size()));
}
BENCHMARK(BM_ModalFilter)->DenseRange(2, 8, 2);

void BM_GatherScatterSum(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    Setup s(order);
    std::vector<std::int64_t> gids(s.mesh.NumLocalDofs());
    s.mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    for (auto _ : state) {
      gs.Sum(s.u);
      benchmark::DoNotOptimize(s.u.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(s.u.size()));
  });
}
BENCHMARK(BM_GatherScatterSum)->DenseRange(2, 8, 2);

void BM_HelmholtzSolve(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    Setup s(order);
    std::vector<std::int64_t> gids(s.mesh.NumLocalDofs());
    s.mesh.FillGlobalIds(gids);
    sem::GatherScatter gs(comm, gids);
    nekrs::HelmholtzSolver solver(comm, s.ops, gs);
    std::vector<double> mask(s.u.size());
    s.mesh.FillDirichletMask({true, true, true, true, true, true}, mask);
    std::vector<double> rhs(s.u.size());
    auto mass = s.ops.MassDiag();
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = mass[i];
    nekrs::HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 1.0;
    options.tolerance = 1e-8;
    int iterations = 0;
    for (auto _ : state) {
      std::vector<double> x(s.u.size(), 0.0);
      auto result = solver.Solve(options, rhs, x, mask);
      iterations = result.iterations;
      benchmark::DoNotOptimize(x.data());
    }
    state.counters["cg_iters"] = iterations;
  });
}
BENCHMARK(BM_HelmholtzSolve)->DenseRange(2, 6, 2);

}  // namespace

BENCHMARK_MAIN();
