// Figure 6: in transit RBC — main-memory footprint per simulation rank.
//
// Paper: sim-node memory for No Transport / Checkpointing / Catalyst under
// weak scaling.  Expected shape: Catalyst ~= No Transport (the endpoint
// does the rendering, sim nodes only marshal); Checkpointing (endpoint
// writing VTU) visible but not large; flat across rank counts; and — key
// point — sim-node memory independent of the number of visualization ranks.
//
// Here: tracked host-allocation high-water per sim rank for the same three
// measurement points, plus an endpoint-count sweep at fixed sim ranks to
// demonstrate the independence claim directly.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::string out_root = bench::MakeOutputDir("fig6");
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);
  constexpr int kSteps = 12;
  constexpr int kFrequency = 6;
  const int last_ranks = rank_counts.back();

  instrument::Table table(
      "Figure 6: in transit sim-rank CPU memory high-water (RBC weak "
      "scaling, 4:1 sim:endpoint)");
  table.SetHeader({"sim_ranks", "mode", "max_sim_host", "mean_sim_host"});

  auto run_mode = [&](int sim_ranks, const std::string& mode,
                      int sim_per_endpoint, bool headline) {
    const std::string out = out_root + "/" + mode + "_" +
                            std::to_string(sim_ranks) + "_r" +
                            std::to_string(sim_per_endpoint);
    std::filesystem::create_directories(out);
    nek_sensei::InTransitOptions options;
    options.flow = bench::RayleighBenardBenchCase(sim_ranks);
    options.steps = kSteps;
    options.sim_per_endpoint = sim_per_endpoint;
    if (mode == "no-transport") {
      options.sim_xml = "<sensei/>";
      options.endpoint_xml = "<sensei/>";
    } else {
      options.sim_xml = bench::WithPipeline(
          bench::InTransitAdiosXml(kFrequency, args.compress), args.async);
      options.endpoint_xml = mode == "checkpointing"
                                 ? bench::EndpointCheckpointXml(out)
                                 : bench::EndpointCatalystXml(out);
    }
    options.telemetry = bench::RunTelemetry(args, out, headline);
    return nek_sensei::RunInTransit(sim_ranks, options);
  };

  for (int sim_ranks : rank_counts) {
    for (const std::string mode : {"no-transport", "checkpointing",
                                   "catalyst"}) {
      const auto metrics = run_mode(
          sim_ranks, mode, 4,
          /*headline=*/mode == "catalyst" && sim_ranks == last_ranks);
      double mean = 0.0;
      int count = 0;
      for (const auto& r : metrics.ranks) {
        if (!r.is_sim) continue;
        mean += static_cast<double>(r.host_peak_bytes);
        ++count;
      }
      mean = count ? mean / count : 0.0;
      table.AddRow({std::to_string(sim_ranks), mode,
                    instrument::FormatBytes(metrics.MaxSimHostPeakBytes()),
                    instrument::FormatBytes(
                        static_cast<std::size_t>(mean))});
    }
  }
  table.Print(std::cout);
  bool ok = bench::WriteCsvOrWarn(table, out_root + "/fig6_memory.csv");

  // Independence of the visualizer count (§4.2's highlighted property):
  // fixed sim ranks, varying endpoints — sim memory must not change.
  instrument::Table indep(
      "Section 4.2: sim-rank memory vs number of endpoint ranks (4 sim "
      "ranks, catalyst endpoint)");
  indep.SetHeader({"sim_ranks", "endpoint_ranks", "max_sim_host"});
  for (int ratio : {4, 2, 1}) {  // 1, 2, 4 endpoint ranks
    const auto metrics = run_mode(4, "catalyst", ratio, /*headline=*/false);
    const int endpoint_ranks = static_cast<int>(metrics.ranks.size()) - 4;
    indep.AddRow({"4", std::to_string(endpoint_ranks),
                  instrument::FormatBytes(metrics.MaxSimHostPeakBytes())});
  }
  indep.Print(std::cout);
  ok = bench::WriteCsvOrWarn(indep, out_root + "/fig6_independence.csv") && ok;
  std::cout << "CSV written under " << out_root << "\n";
  return ok ? 0 : 1;
}
