// Figure 6: in transit RBC — main-memory footprint per simulation rank.
//
// Paper: sim-node memory for No Transport / Checkpointing / Catalyst under
// weak scaling.  Expected shape: Catalyst ~= No Transport (the endpoint
// does the rendering, sim nodes only marshal); Checkpointing (endpoint
// writing VTU) visible but not large; flat across rank counts; and — key
// point — sim-node memory independent of the number of visualization ranks.
//
// Here: tracked host-allocation high-water per sim rank for the same three
// measurement points, plus an endpoint-count sweep at fixed sim ranks to
// demonstrate the independence claim directly.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::string out_root = bench::MakeOutputDir("fig6");
  const std::vector<int> rank_counts = bench::SweepRankCounts(args);
  constexpr int kSteps = 12;
  constexpr int kFrequency = 6;
  const int last_ranks = rank_counts.back();

  instrument::BenchReport bench_report;
  bench_report.bench = "fig6";
  // The "-async" suffix makes cross-mode comparisons a config mismatch in
  // compare_runs: async runs gate only against *_async baselines.
  bench_report.config = std::string(args.smoke ? "smoke" : "full") +
                        (args.async ? "-async" : "") +
                        (args.compress ? "-compress" : "");

  instrument::Table table(
      "Figure 6: in transit sim-rank CPU memory high-water (RBC weak "
      "scaling, 4:1 sim:endpoint)");
  table.SetHeader(
      {"sim_ranks", "mode", "max_sim_host", "mean_sim_host", "e2e_ms"});

  auto run_mode = [&](int sim_ranks, const std::string& mode,
                      int sim_per_endpoint, bool headline) {
    const std::string out = out_root + "/" + mode + "_" +
                            std::to_string(sim_ranks) + "_r" +
                            std::to_string(sim_per_endpoint);
    std::filesystem::create_directories(out);
    nek_sensei::InTransitOptions options;
    options.flow = bench::RayleighBenardBenchCase(sim_ranks);
    options.steps = kSteps;
    options.sim_per_endpoint = sim_per_endpoint;
    if (mode == "no-transport") {
      options.sim_xml = "<sensei/>";
      options.endpoint_xml = "<sensei/>";
    } else {
      options.sim_xml = bench::WithPipeline(
          bench::InTransitAdiosXml(kFrequency, args.compress), args.async);
      options.endpoint_xml = mode == "checkpointing"
                                 ? bench::EndpointCheckpointXml(out)
                                 : bench::EndpointCatalystXml(out);
    }
    options.telemetry = bench::RunTelemetry(args, out, headline);
    // Async runs additionally report the end-to-end step->analysis latency
    // distribution, which needs the metrics plane (and with it the
    // provenance stamping) on for every measurement point.
    if (args.async) options.telemetry.metrics = true;
    return nek_sensei::RunInTransit(sim_ranks, options);
  };

  for (int sim_ranks : rank_counts) {
    for (const std::string mode : {"no-transport", "checkpointing",
                                   "catalyst"}) {
      const auto metrics = run_mode(
          sim_ranks, mode, 4,
          /*headline=*/mode == "catalyst" && sim_ranks == last_ranks);
      double mean = 0.0;
      int count = 0;
      for (const auto& r : metrics.ranks) {
        if (!r.is_sim) continue;
        mean += static_cast<double>(r.host_peak_bytes);
        ++count;
      }
      mean = count ? mean / count : 0.0;
      const std::string key =
          "fig6." + mode + ".r" + std::to_string(sim_ranks);
      bench_report.metrics[key + ".max_sim_host_bytes"] =
          static_cast<double>(metrics.MaxSimHostPeakBytes());
      bench_report.metrics[key + ".mean_sim_host_bytes"] = mean;
      const std::string e2e_name = mode == "checkpointing"
                                       ? "e2e.step_to_checkpoint_seconds"
                                       : "e2e.step_to_image_seconds";
      const auto e2e = metrics.metrics_report.histograms.find(e2e_name);
      std::string e2e_cell = "-";
      if (e2e != metrics.metrics_report.histograms.end() &&
          e2e->second.count > 0) {
        const std::string tag = mode == "checkpointing"
                                    ? ".e2e_step_to_checkpoint_"
                                    : ".e2e_step_to_image_";
        bench_report.metrics[key + tag + "mean_seconds"] = e2e->second.Mean();
        bench_report.metrics[key + tag + "max_seconds"] = e2e->second.max;
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.1f (max %.1f)",
                      e2e->second.Mean() * 1e3, e2e->second.max * 1e3);
        e2e_cell = cell;
      }
      table.AddRow({std::to_string(sim_ranks), mode,
                    instrument::FormatBytes(metrics.MaxSimHostPeakBytes()),
                    instrument::FormatBytes(static_cast<std::size_t>(mean)),
                    e2e_cell});
    }
  }
  table.Print(std::cout);
  bool ok = bench::WriteCsvOrWarn(table, out_root + "/fig6_memory.csv");
  ok = bench::WriteBenchReportOrWarn(args, bench_report) && ok;

  // Independence of the visualizer count (§4.2's highlighted property):
  // fixed sim ranks, varying endpoints — sim memory must not change.
  instrument::Table indep(
      "Section 4.2: sim-rank memory vs number of endpoint ranks (4 sim "
      "ranks, catalyst endpoint)");
  indep.SetHeader({"sim_ranks", "endpoint_ranks", "max_sim_host"});
  for (int ratio : {4, 2, 1}) {  // 1, 2, 4 endpoint ranks
    const auto metrics = run_mode(4, "catalyst", ratio, /*headline=*/false);
    const int endpoint_ranks = static_cast<int>(metrics.ranks.size()) - 4;
    indep.AddRow({"4", std::to_string(endpoint_ranks),
                  instrument::FormatBytes(metrics.MaxSimHostPeakBytes())});
  }
  indep.Print(std::cout);
  ok = bench::WriteCsvOrWarn(indep, out_root + "/fig6_independence.csv") && ok;
  std::cout << "CSV written under " << out_root << "\n";
  return ok ? 0 : 1;
}
