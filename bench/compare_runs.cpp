// Perf-regression gate: compare a fresh BENCH_*.json against a committed
// baseline (bench/baselines/).  Exit 0 when nothing regressed; exit 1 on a
// regression, a metric missing from the current run, or a smoke/full
// configuration mismatch; exit 2 on usage errors or a missing report file
// (e.g. a baseline not yet committed); exit 3 when a report file exists but
// cannot be parsed (truncated write, bad merge) — CI treats 2 as "baseline
// needs to be added" and 3 as "artifact corruption, investigate".
//
//   $ bench/compare_runs --baseline bench/baselines/BENCH_fig2.json \
//                        --current BENCH_fig2.json [--time-threshold 0.10] \
//                        [--counter-threshold 0.0]
//
// Timing metrics (names containing "seconds" or "_ms") are judged with the
// time threshold (relative headroom; the default 0.10 fails a 20 %
// regression).  Everything else — copy counts, byte counts, image counts —
// is deterministic and judged with the counter threshold (default 0.0: any
// increase fails).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "instrument/bench_compare.hpp"
#include "instrument/report.hpp"

namespace {

void PrintUsage(const char* binary) {
  std::printf(
      "usage: %s --baseline <BENCH_*.json> --current <BENCH_*.json>\n"
      "          [--time-threshold <frac>] [--counter-threshold <frac>]\n"
      "          [--e2e-threshold <frac>]\n"
      "  --baseline <path>          committed reference report\n"
      "  --current <path>           report from the run under test\n"
      "  --time-threshold <frac>    relative headroom for timing metrics\n"
      "                             (default 0.10)\n"
      "  --counter-threshold <frac> relative headroom for everything else\n"
      "                             (default 0.0: any increase fails)\n"
      "  --e2e-threshold <frac>     relative headroom for end-to-end latency\n"
      "                             metrics (names containing \"e2e_\");\n"
      "                             defaults to the time threshold\n",
      binary);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  instrument::CompareOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--current") {
      current_path = value();
    } else if (arg == "--time-threshold") {
      options.time_threshold = std::strtod(value(), nullptr);
    } else if (arg == "--counter-threshold") {
      options.counter_threshold = std::strtod(value(), nullptr);
    } else if (arg == "--e2e-threshold") {
      options.e2e_threshold = std::strtod(value(), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto read_report = [](const std::string& path) {
    instrument::BenchReadStatus status = instrument::BenchReadStatus::kOk;
    auto report = instrument::ReadBenchJson(path, status);
    if (status == instrument::BenchReadStatus::kMissingFile) {
      std::fprintf(stderr, "error: bench report %s does not exist\n",
                   path.c_str());
      std::exit(2);
    }
    if (status == instrument::BenchReadStatus::kUnparseable) {
      std::fprintf(stderr,
                   "error: bench report %s exists but is not parseable "
                   "(truncated or corrupt)\n",
                   path.c_str());
      std::exit(3);
    }
    return *report;
  };
  const auto baseline = read_report(baseline_path);
  const auto current = read_report(current_path);

  const instrument::CompareResult result =
      instrument::CompareBenchReports(current, baseline, options);

  if (result.config_mismatch) {
    std::fprintf(stderr,
                 "FAIL: reports not comparable (baseline %s/%s vs current "
                 "%s/%s)\n",
                 baseline.bench.c_str(), baseline.config.c_str(),
                 current.bench.c_str(), current.config.c_str());
    return 1;
  }

  instrument::Table table("compare_runs: " + current.bench + " (" +
                          current.config + ") vs " + baseline_path);
  table.SetHeader(
      {"metric", "baseline", "current", "ratio", "threshold", "verdict"});
  for (const instrument::CompareRow& row : result.rows) {
    char baseline_text[32], current_text[32], ratio_text[32], limit_text[32];
    std::snprintf(baseline_text, sizeof(baseline_text), "%.6g", row.baseline);
    std::snprintf(current_text, sizeof(current_text), "%.6g",
                  row.missing ? 0.0 : row.current);
    std::snprintf(ratio_text, sizeof(ratio_text), "%.3f", row.ratio);
    std::snprintf(limit_text, sizeof(limit_text), "+%.0f%%",
                  100.0 * row.threshold);
    table.AddRow({row.name, baseline_text,
                  row.missing ? "(missing)" : current_text,
                  row.missing ? "-" : ratio_text, limit_text,
                  row.missing ? "MISSING"
                  : row.regressed ? "REGRESSED"
                                  : "ok"});
  }
  table.Print(std::cout);
  for (const std::string& name : result.added) {
    std::printf("note: metric %s is new (not in the baseline)\n",
                name.c_str());
  }

  if (!result.ok) {
    std::fprintf(stderr, "FAIL: %d metric(s) regressed or missing\n",
                 result.Regressions());
    return 1;
  }
  std::printf("OK: %zu metric(s) within thresholds\n", result.rows.size());
  return 0;
}
