// Shared configuration for the figure-reproduction benches.
//
// The paper's runs used 280/560/1120 ranks of Polaris and up to 3000
// timesteps; this reproduction scales ranks and steps down (DESIGN.md §5)
// while keeping the experimental structure: the same three configurations,
// the same trigger cadence relationship, the same 4:1 in transit ratio.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/workflows.hpp"
#include "instrument/bench_compare.hpp"
#include "instrument/report.hpp"
#include "instrument/telemetry.hpp"
#include "nekrs/cases.hpp"

namespace bench {

/// Command-line surface shared by every figure binary:
///   --trace <out.json>   span tracing for every run; the headline run's
///                        Chrome trace lands at the given path (aggregate:
///                        sibling telemetry.json)
///   --heartbeat <steps>  rank-0 progress line every N steps of every run
///   --metrics-out <path> rank-aggregated run-health metrics.json from the
///                        headline run
///   --bench-out <path>   canonical BENCH_*.json for bench/compare_runs
///   --smoke              CI-sized sweep (fewer rank counts / steps)
///   --async              run the SENSEI configurations through the async
///                        pipeline (<pipeline mode="async" depth="2"/>);
///                        baseline configurations stay untouched
///   --compress           select transport codecs on the SST stream
///                        (blockfloat rate 8 on points + data arrays,
///                        delta shuffle_rle on connectivity); stamps a
///                        "-compress" config suffix so the regression gate
///                        compares against the matching baseline
///   --monitor [port]     serve /metrics, /healthz, and /status on rank 0's
///                        loopback during every run (port 0 = ephemeral;
///                        discover it via --monitor-port-file)
///   --status-out <path>  persist the final /status JSON when the monitor
///                        shuts down
///   --monitor-port-file <path>  write the bound monitor port here at start
struct BenchArgs {
  bool trace = false;
  std::string trace_path;
  int heartbeat_steps = 0;
  std::string metrics_path;
  std::string bench_path;
  bool smoke = false;
  bool async = false;
  bool compress = false;
  int monitor_port = -1;  ///< -1 = monitor off, 0 = ephemeral port
  std::string status_path;
  std::string monitor_port_file;

  /// telemetry.json next to the requested trace file.
  [[nodiscard]] std::string SummaryPath() const {
    const std::filesystem::path p(trace_path);
    return (p.parent_path() / "telemetry.json").string();
  }
};

inline void PrintBenchUsage(const char* binary) {
  std::printf(
      "usage: %s [options]\n"
      "  --trace <out.json>    enable span tracing; the headline run's\n"
      "                        Chrome trace lands here (cross-rank\n"
      "                        aggregate: sibling telemetry.json)\n"
      "  --heartbeat <steps>   print a rank-0 progress heartbeat (step\n"
      "                        rate, ETA, memory, SST queue) every N steps\n"
      "  --metrics-out <path>  write the headline run's rank-aggregated\n"
      "                        run-health metrics.json (min/mean/max/p95 +\n"
      "                        imbalance per metric)\n"
      "  --bench-out <path>    write canonical BENCH_*.json for the\n"
      "                        bench/compare_runs regression gate\n"
      "  --smoke               CI-sized sweep (fewer rank counts / steps)\n"
      "  --async               offload in situ updates to the per-rank\n"
      "                        async pipeline (depth 2 double buffering)\n"
      "  --compress            compress the SST stream (blockfloat rate 8\n"
      "                        fields, delta shuffle_rle connectivity)\n"
      "  --monitor [port]      serve live /metrics, /healthz, /status on\n"
      "                        rank 0's loopback during every run (omit the\n"
      "                        port for an ephemeral one)\n"
      "  --status-out <path>   persist the final /status JSON at shutdown\n"
      "  --monitor-port-file <path>  write the bound monitor port here\n"
      "  --help                show this help\n",
      binary);
}

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "error: " << flag << " needs an argument\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      args.trace = true;
      args.trace_path = value(i, "--trace");
    } else if (arg == "--heartbeat") {
      args.heartbeat_steps = std::atoi(value(i, "--heartbeat").c_str());
      if (args.heartbeat_steps < 1) {
        std::cerr << "error: --heartbeat needs a positive step count\n";
        std::exit(2);
      }
    } else if (arg == "--metrics-out") {
      args.metrics_path = value(i, "--metrics-out");
    } else if (arg == "--bench-out") {
      args.bench_path = value(i, "--bench-out");
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--async") {
      args.async = true;
    } else if (arg == "--compress") {
      args.compress = true;
    } else if (arg == "--monitor") {
      // The port is optional: a following all-digit token is consumed as
      // the port, anything else leaves port 0 (ephemeral).
      args.monitor_port = 0;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (!next.empty() &&
            next.find_first_not_of("0123456789") == std::string::npos) {
          args.monitor_port = std::atoi(argv[++i]);
          if (args.monitor_port > 65535) {
            std::cerr << "error: --monitor port must be in [0, 65535]\n";
            std::exit(2);
          }
        }
      }
    } else if (arg == "--status-out") {
      args.status_path = value(i, "--status-out");
    } else if (arg == "--monitor-port-file") {
      args.monitor_port_file = value(i, "--monitor-port-file");
    } else if (arg == "--help" || arg == "-h") {
      PrintBenchUsage(argv[0]);
      std::exit(0);
    } else {
      std::cerr << "error: unknown option '" << arg << "' (--help lists "
                << "the supported flags)\n";
      std::exit(2);
    }
  }
  return args;
}

/// Telemetry configuration for one bench run: trace + summary under `dir`,
/// unless this is the designated headline run, which writes to the --trace
/// destination instead.  The heartbeat applies to every run; the
/// rank-aggregated metrics.json is emitted from the headline run only (one
/// file per bench invocation).
inline instrument::TelemetryConfig RunTelemetry(const BenchArgs& args,
                                                const std::string& dir,
                                                bool headline) {
  instrument::TelemetryConfig config;
  if (args.trace) {
    config.enabled = true;
    config.trace_path = headline ? args.trace_path : dir + "/trace.json";
    config.summary_path =
        headline ? args.SummaryPath() : dir + "/telemetry.json";
  }
  config.heartbeat_steps = args.heartbeat_steps;
  if (headline && !args.metrics_path.empty()) {
    config.metrics = true;
    config.metrics_path = args.metrics_path;
  }
  // The monitor applies to every run in the sweep: runs are serial, so a
  // fixed port simply rebinds per run and a mid-sweep scrape always finds
  // whichever run is live.
  if (args.monitor_port >= 0) {
    config.monitor_port = args.monitor_port;
    config.status_path = args.status_path;
    config.monitor_port_file = args.monitor_port_file;
  }
  return config;
}

/// Write the canonical BENCH_*.json when --bench-out was given.  Returns
/// false (after warning) on I/O failure so main() can exit nonzero.
inline bool WriteBenchReportOrWarn(const BenchArgs& args,
                                   const instrument::BenchReport& report) {
  if (args.bench_path.empty()) return true;
  if (!instrument::WriteBenchJson(args.bench_path, report)) {
    std::cerr << "error: failed to write bench report " << args.bench_path
              << "\n";
    return false;
  }
  std::cout << "Bench report written to " << args.bench_path << "\n";
  return true;
}

/// "Where did the time go" cell: the share of traced time spent inside the
/// solver vs the in situ/in transit pipeline ("-" when tracing is off).
inline std::string BreakdownCell(const instrument::TelemetrySummary& t) {
  const double solver = t.SpanTotalSeconds("solver.step");
  const double insitu = t.SpanTotalSeconds("bridge.update");
  const double total = solver + insitu;
  if (t.Empty() || total <= 0.0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "solver %.0f%% / insitu %.0f%%",
                100.0 * solver / total, 100.0 * insitu / total);
  return buf;
}

/// WriteCsv wrapper that reports failures (satellite: CSV loss must never
/// be silent). Returns false on failure so main() can exit nonzero.
inline bool WriteCsvOrWarn(const instrument::Table& table,
                           const std::string& path) {
  if (!table.WriteCsv(path)) {
    std::cerr << "error: failed to write CSV " << path << "\n";
    return false;
  }
  return true;
}

/// Scaled-down stand-ins for the paper's 280/560/1120-rank runs.
inline constexpr int kInSituRankCounts[] = {2, 4, 8};
/// Weak-scaling sim-rank counts for the in transit case.
inline constexpr int kInTransitSimRanks[] = {2, 4, 8};
/// CI smoke sweep: the two smallest rank counts.
inline constexpr int kSmokeRankCounts[] = {2, 4};

/// The rank counts a run sweeps: full sweep, or the smoke subset.
inline std::vector<int> SweepRankCounts(const BenchArgs& args) {
  if (args.smoke) {
    return {std::begin(kSmokeRankCounts), std::end(kSmokeRankCounts)};
  }
  return {std::begin(kInSituRankCounts), std::end(kInSituRankCounts)};
}

/// Fresh output directory under the system temp dir.
inline std::string MakeOutputDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("nsm_bench_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The pb146 stand-in used by the Fig 2/3 benches: fixed global size
/// (strong-scaling layout like the paper's fixed pebble-bed case).
inline nekrs::FlowConfig PebbleBedBenchCase() {
  nekrs::cases::PebbleBedOptions pb;
  pb.elements = {4, 4, 8};
  pb.order = 4;
  pb.pebble_count = 146;
  pb.dt = 1.5e-3;
  // pMG stays off in the figure benches: the float V-cycle perturbs the
  // pressure solution at rounding level, which would shift the
  // byte-exact counters (compressed sizes, checkpoint bytes) the
  // compare_runs gate pins.  bench/solver_smoke.cpp carries the pMG
  // configuration and its own baseline; EXPERIMENTS.md A5 quantifies the
  // trade-off.
  return nekrs::cases::PebbleBedCase(pb);
}

/// The RBC case used by the Fig 5/6 benches: weak scaling grows the slab
/// horizontally (wider aspect ratio, constant element size and per-rank
/// load) — the mesoscale-convection setup of §4.2.  The mesh is
/// partitioned along the growing axis.
inline nekrs::FlowConfig RayleighBenardBenchCase(int sim_ranks) {
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2 * sim_ranks, 2, 4};
  rbc.order = 4;
  rbc.aspect = 0.75 * sim_ranks;  // keeps element size constant
  rbc.rayleigh = 1e5;
  rbc.dt = 5e-3;
  nekrs::FlowConfig config = nekrs::cases::RayleighBenardCase(rbc);
  config.mesh.partition_axis = 0;
  return config;
}

/// Insert <pipeline mode="async" depth="2"/> right after the <sensei> root
/// when `async` is set; the sync XML comes back untouched, so baseline
/// configurations cannot drift.
inline std::string WithPipeline(std::string xml, bool async) {
  if (!async) return xml;
  const std::string root = "<sensei>";
  const std::size_t at = xml.find(root);
  if (at == std::string::npos) {
    throw std::runtime_error("bench: XML has no <sensei> root to extend");
  }
  xml.insert(at + root.size(), "<pipeline mode=\"async\" depth=\"2\"/>");
  return xml;
}

/// SENSEI XML for the in situ Catalyst configuration (renders one image per
/// trigger from the temperature field, as Fig 1 visualizes).
inline std::string InSituCatalystXml(const std::string& out, int frequency) {
  return "<sensei><analysis type=\"catalyst\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\" width=\"640\" height=\"480\">"
         "<render array=\"temperature\" colormap=\"plasma\" azimuth=\"35\" "
         "elevation=\"25\"/></analysis></sensei>";
}

/// SENSEI XML for the in situ Checkpointing configuration (raw fields to
/// disk every `frequency` steps).
inline std::string InSituCheckpointXml(const std::string& out,
                                       int frequency) {
  return "<sensei><analysis type=\"checkpoint\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\"/></sensei>";
}

/// Sim-side XML activating the SST stream every `frequency` steps.  With
/// `compress`, the analysis element carries the per-plane codec selection:
/// blockfloat rate 8 on points and every data array, delta shuffle_rle on
/// the int64 connectivity (DESIGN.md §3c).
inline std::string InTransitAdiosXml(int frequency, bool compress = false) {
  std::string xml = "<sensei><analysis type=\"adios\" frequency=\"" +
                    std::to_string(frequency) + "\"";
  if (!compress) return xml + "/></sensei>";
  return xml +
         ">"
         "<points><codec type=\"blockfloat\" rate=\"8\"/></points>"
         "<connectivity><codec type=\"shuffle_rle\" delta=\"1\"/>"
         "</connectivity>"
         "<array name=\"*\"><codec type=\"blockfloat\" rate=\"8\"/></array>"
         "</analysis></sensei>";
}

/// Endpoint XML for the in transit Checkpointing measurement point.
inline std::string EndpointCheckpointXml(const std::string& out) {
  return "<sensei><analysis type=\"checkpoint\" output=\"" + out +
         "\"/></sensei>";
}

/// Endpoint XML for the in transit Catalyst measurement point: the paper's
/// two images per trigger.
inline std::string EndpointCatalystXml(const std::string& out) {
  return "<sensei><analysis type=\"catalyst\" output=\"" + out +
         "\" width=\"640\" height=\"240\">"
         "<render array=\"temperature\" name=\"side\" colormap=\"coolwarm\" "
         "azimuth=\"270\" elevation=\"0\" min=\"-0.5\" max=\"0.5\"/>"
         "<render array=\"velocity\" magnitude=\"1\" name=\"speed\" "
         "colormap=\"viridis\" azimuth=\"250\" elevation=\"20\"/>"
         "</analysis></sensei>";
}

}  // namespace bench
