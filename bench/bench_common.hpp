// Shared configuration for the figure-reproduction benches.
//
// The paper's runs used 280/560/1120 ranks of Polaris and up to 3000
// timesteps; this reproduction scales ranks and steps down (DESIGN.md §5)
// while keeping the experimental structure: the same three configurations,
// the same trigger cadence relationship, the same 4:1 in transit ratio.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/workflows.hpp"
#include "instrument/report.hpp"
#include "instrument/telemetry.hpp"
#include "nekrs/cases.hpp"

namespace bench {

/// `--trace <out.json>` flag shared by the figure binaries: enables the
/// tracer for every run and designates where the headline run's Chrome
/// trace lands (the per-run aggregate goes to a sibling telemetry.json).
struct TraceArgs {
  bool enabled = false;
  std::string trace_path;

  /// telemetry.json next to the requested trace file.
  [[nodiscard]] std::string SummaryPath() const {
    const std::filesystem::path p(trace_path);
    return (p.parent_path() / "telemetry.json").string();
  }
};

inline TraceArgs ParseTraceArgs(int argc, char** argv) {
  TraceArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "error: --trace needs a file argument\n";
        std::exit(2);
      }
      args.enabled = true;
      args.trace_path = argv[++i];
    }
  }
  return args;
}

/// Telemetry configuration for one bench run: trace + summary under `dir`,
/// unless this is the designated headline run, which writes to the --trace
/// destination instead.
inline instrument::TelemetryConfig RunTelemetry(const TraceArgs& args,
                                                const std::string& dir,
                                                bool headline) {
  instrument::TelemetryConfig config;
  if (!args.enabled) return config;
  config.enabled = true;
  config.trace_path = headline ? args.trace_path : dir + "/trace.json";
  config.summary_path =
      headline ? args.SummaryPath() : dir + "/telemetry.json";
  return config;
}

/// "Where did the time go" cell: the share of traced time spent inside the
/// solver vs the in situ/in transit pipeline ("-" when tracing is off).
inline std::string BreakdownCell(const instrument::TelemetrySummary& t) {
  const double solver = t.SpanTotalSeconds("solver.step");
  const double insitu = t.SpanTotalSeconds("bridge.update");
  const double total = solver + insitu;
  if (t.Empty() || total <= 0.0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "solver %.0f%% / insitu %.0f%%",
                100.0 * solver / total, 100.0 * insitu / total);
  return buf;
}

/// WriteCsv wrapper that reports failures (satellite: CSV loss must never
/// be silent). Returns false on failure so main() can exit nonzero.
inline bool WriteCsvOrWarn(const instrument::Table& table,
                           const std::string& path) {
  if (!table.WriteCsv(path)) {
    std::cerr << "error: failed to write CSV " << path << "\n";
    return false;
  }
  return true;
}

/// Scaled-down stand-ins for the paper's 280/560/1120-rank runs.
inline constexpr int kInSituRankCounts[] = {2, 4, 8};
/// Weak-scaling sim-rank counts for the in transit case.
inline constexpr int kInTransitSimRanks[] = {2, 4, 8};

/// Fresh output directory under the system temp dir.
inline std::string MakeOutputDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("nsm_bench_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The pb146 stand-in used by the Fig 2/3 benches: fixed global size
/// (strong-scaling layout like the paper's fixed pebble-bed case).
inline nekrs::FlowConfig PebbleBedBenchCase() {
  nekrs::cases::PebbleBedOptions pb;
  pb.elements = {4, 4, 8};
  pb.order = 4;
  pb.pebble_count = 146;
  pb.dt = 1.5e-3;
  return nekrs::cases::PebbleBedCase(pb);
}

/// The RBC case used by the Fig 5/6 benches: weak scaling grows the slab
/// horizontally (wider aspect ratio, constant element size and per-rank
/// load) — the mesoscale-convection setup of §4.2.  The mesh is
/// partitioned along the growing axis.
inline nekrs::FlowConfig RayleighBenardBenchCase(int sim_ranks) {
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {2 * sim_ranks, 2, 4};
  rbc.order = 4;
  rbc.aspect = 0.75 * sim_ranks;  // keeps element size constant
  rbc.rayleigh = 1e5;
  rbc.dt = 5e-3;
  nekrs::FlowConfig config = nekrs::cases::RayleighBenardCase(rbc);
  config.mesh.partition_axis = 0;
  return config;
}

/// SENSEI XML for the in situ Catalyst configuration (renders one image per
/// trigger from the temperature field, as Fig 1 visualizes).
inline std::string InSituCatalystXml(const std::string& out, int frequency) {
  return "<sensei><analysis type=\"catalyst\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\" width=\"640\" height=\"480\">"
         "<render array=\"temperature\" colormap=\"plasma\" azimuth=\"35\" "
         "elevation=\"25\"/></analysis></sensei>";
}

/// SENSEI XML for the in situ Checkpointing configuration (raw fields to
/// disk every `frequency` steps).
inline std::string InSituCheckpointXml(const std::string& out,
                                       int frequency) {
  return "<sensei><analysis type=\"checkpoint\" frequency=\"" +
         std::to_string(frequency) + "\" output=\"" + out +
         "\"/></sensei>";
}

/// Sim-side XML activating the SST stream every `frequency` steps.
inline std::string InTransitAdiosXml(int frequency) {
  return "<sensei><analysis type=\"adios\" frequency=\"" +
         std::to_string(frequency) + "\"/></sensei>";
}

/// Endpoint XML for the in transit Checkpointing measurement point.
inline std::string EndpointCheckpointXml(const std::string& out) {
  return "<sensei><analysis type=\"checkpoint\" output=\"" + out +
         "\"/></sensei>";
}

/// Endpoint XML for the in transit Catalyst measurement point: the paper's
/// two images per trigger.
inline std::string EndpointCatalystXml(const std::string& out) {
  return "<sensei><analysis type=\"catalyst\" output=\"" + out +
         "\" width=\"640\" height=\"240\">"
         "<render array=\"temperature\" name=\"side\" colormap=\"coolwarm\" "
         "azimuth=\"270\" elevation=\"0\" min=\"-0.5\" max=\"0.5\"/>"
         "<render array=\"velocity\" magnitude=\"1\" name=\"speed\" "
         "colormap=\"viridis\" azimuth=\"250\" elevation=\"20\"/>"
         "</analysis></sensei>";
}

}  // namespace bench
