// Ablation A1 (DESIGN.md): the GPU->CPU staging copy the paper identifies
// as the price of Catalyst-style in situ ("simulation data residing on GPU
// device memory must be transferred to the CPU ... due to VTK data model's
// current lack of GPU device memory support", §3.2).
//
// Sweeps the field size: copy time must grow linearly in bytes and the
// host staging allocation must equal the field size.

#include <benchmark/benchmark.h>

#include "instrument/memory_tracker.hpp"
#include "occamini/device.hpp"

namespace {

void BM_DeviceToHostCopy(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  occamini::Device device(occamini::Backend::kSimGpu);
  occamini::Array<double> field(device, count);
  std::vector<double> init(count, 1.5);
  field.CopyFromHost(init);

  std::vector<double> staging(count);
  for (auto _ : state) {
    field.CopyToHost(staging);
    benchmark::DoNotOptimize(staging.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_DeviceToHostCopy)->Range(1 << 10, 1 << 20);

void BM_HostToDeviceCopy(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  occamini::Device device(occamini::Backend::kSimGpu);
  occamini::Array<double> field(device, count);
  std::vector<double> host(count, 2.0);
  for (auto _ : state) {
    field.CopyFromHost(host);
    benchmark::DoNotOptimize(field.DevicePtr());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_HostToDeviceCopy)->Range(1 << 10, 1 << 20);

// The same copy under a PCIe-like transfer model: the simulated interconnect
// dominates, which is the regime the paper's A100 nodes live in.
void BM_DeviceToHostCopyThrottled(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  occamini::TransferModel model;
  model.latency_seconds = 5e-6;
  model.bytes_per_second = 16e9;  // ~PCIe gen4 x16
  occamini::Device device(occamini::Backend::kSimGpu, model);
  occamini::Array<double> field(device, count);
  std::vector<double> staging(count);
  for (auto _ : state) {
    field.CopyToHost(staging);
    benchmark::DoNotOptimize(staging.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_DeviceToHostCopyThrottled)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
