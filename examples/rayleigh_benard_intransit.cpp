// Rayleigh-Bénard in transit demo — the paper's §4.2 mesoscale case
// (Fig 4's side view).
//
// Simulation ranks run RBC with NekRS-SENSEI; the SENSEI configuration
// activates the ADIOS/SST sender, which streams each trigger's fields to
// dedicated endpoint ranks (sim:endpoint = 4:1).  The endpoint — itself a
// SENSEI consumer — renders two images per received step (a temperature
// side view and a velocity-magnitude view), so the simulation never blocks
// on rendering.
//
//   $ ./rayleigh_benard_intransit [output_dir] [sim_ranks] [steps]

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/workflows.hpp"
#include "nekrs/cases.hpp"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "rbc_out";
  const int sim_ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 120;
  std::filesystem::create_directories(out);

  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {6, 2, std::max(2, sim_ranks)};
  rbc.order = 4;
  rbc.rayleigh = 1e5;
  rbc.dt = 5e-3;

  nek_sensei::InTransitOptions options;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = steps;
  options.sim_per_endpoint = 4;
  options.sim_xml =
      "<sensei><analysis type=\"adios\" frequency=\"30\"/></sensei>";
  // The endpoint renders the paper's two images per trigger; elevation 0 is
  // the Fig-4 side view.
  options.endpoint_xml =
      "<sensei>"
      "  <analysis type=\"catalyst\" output=\"" + out + "\" width=\"800\""
      "            height=\"300\" prefix=\"rbc\">"
      "    <render array=\"temperature\" name=\"side\" colormap=\"coolwarm\""
      "            azimuth=\"270\" elevation=\"0\" zoom=\"1.3\""
      "            slice_axis=\"y\" slice_position=\"0.4\""
      "            min=\"-0.5\" max=\"0.5\"/>"
      "    <render array=\"velocity\" magnitude=\"1\" name=\"speed\""
      "            colormap=\"viridis\" azimuth=\"250\" elevation=\"20\"/>"
      "  </analysis>"
      "</sensei>";

  std::cout << "RBC in transit: " << sim_ranks << " sim ranks + "
            << (sim_ranks + 3) / 4 << " endpoint ranks, " << steps
            << " steps, streaming every 30...\n";
  const auto metrics = nek_sensei::RunInTransit(sim_ranks, options);

  std::cout << "  images rendered on endpoint: " << metrics.images_written
            << "\n"
            << "  mean busy time per step per sim rank: "
            << metrics.MeanSimStepSeconds() * 1e3 << " ms\n"
            << "  sim-rank host memory high water: "
            << metrics.MaxSimHostPeakBytes() << " B\n"
            << "outputs in " << out << "/\n";
  return 0;
}
