// Post-hoc analysis: the traditional workflow the paper's in situ approach
// replaces — and the reason it replaces it.
//
// Phase 1 (simulate): an RBC run streams every trigger's fields into
// rank-local BP files through the SENSEI "bpfile" analysis (full-fidelity
// raw data on disk, like classic checkpoint-for-analysis output).
//
// Phase 2 (analyze offline): a consumer re-opens the BP files step by step,
// reconstructs the SENSEI data model, and runs the *same* Catalyst-style
// rendering that the in situ configuration runs — producing identical
// images, but having paid the full raw-data storage bill in between.  The
// printed comparison (BP bytes vs image bytes) is the storage-economy
// argument of §4.1 in one program.
//
//   $ ./posthoc_analysis [output_dir]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>

#include "adios/bp_file.hpp"
#include "core/workflows.hpp"
#include "mpimini/runtime.hpp"
#include "nekrs/cases.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"
#include "sensei/intransit_data_adaptor.hpp"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "posthoc_out";
  std::filesystem::create_directories(out);
  constexpr int kRanks = 2;
  constexpr int kSteps = 60;

  // ---- Phase 1: simulate, streaming raw fields to BP files ------------
  nekrs::cases::RayleighBenardOptions rbc;
  rbc.elements = {4, 2, 2};
  rbc.order = 4;
  rbc.rayleigh = 1e5;
  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::RayleighBenardCase(rbc);
  options.steps = kSteps;
  options.sensei_xml =
      "<sensei><analysis type=\"bpfile\" frequency=\"20\" output=\"" + out +
      "\" arrays=\"temperature,velocity\"/></sensei>";
  const auto sim = nek_sensei::RunInSitu(kRanks, options);
  std::cout << "simulation wrote " << sim.bytes_written
            << " B of raw BP stream data\n";

  // ---- Phase 2: offline consumer renders from the files ---------------
  std::size_t image_bytes = 0;
  std::size_t images = 0;
  mpimini::Runtime::Run(1, [&](mpimini::Comm& comm) {
    std::vector<adios::BpFileReader> readers;
    for (int r = 0; r < kRanks; ++r) {
      char path[512];
      std::snprintf(path, sizeof(path), "%s/stream_rank%04d.bp", out.c_str(),
                    r);
      readers.emplace_back(path);
    }

    sensei::InTransitDataAdaptor data(comm);
    sensei::ConfigurableAnalysis analysis(comm);
    analysis.Initialize(
        xmlcfg::Parse("<sensei><analysis type=\"catalyst\" output=\"" + out +
                      "\" width=\"640\" height=\"300\" prefix=\"posthoc\">"
                      "<render array=\"temperature\" name=\"side\" "
                      "colormap=\"coolwarm\" azimuth=\"270\" elevation=\"0\" "
                      "min=\"-0.5\" max=\"0.5\"/>"
                      "</analysis></sensei>")
            .root);

    for (;;) {
      std::map<int, adios::StepPayload> payloads;
      bool done = false;
      for (int r = 0; r < kRanks; ++r) {
        auto step = readers[static_cast<std::size_t>(r)].NextStep();
        if (!step) {
          done = true;
          break;
        }
        step->writer_rank = r;
        payloads[r] = std::move(*step);
      }
      if (done) break;
      data.SetStep(payloads.begin()->second.step, 0.0, payloads);
      analysis.Execute(data);
    }
    analysis.Finalize();
    image_bytes = analysis.TotalBytesWritten();
    if (auto catalyst =
            std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
                analysis.Find("catalyst"))) {
      images = catalyst->ImagesWritten();
    }
  });

  std::cout << "post-hoc consumer rendered " << images << " images ("
            << image_bytes << " B)\n"
            << "storage ratio raw-data : images = "
            << (image_bytes ? static_cast<double>(sim.bytes_written) /
                                  static_cast<double>(image_bytes)
                            : 0.0)
            << "x — the bill in situ processing avoids\n"
            << "outputs in " << out << "/\n";
  return 0;
}
