// Quickstart: the smallest complete NekRS-SENSEI pipeline.
//
// Runs a Taylor-Green vortex on 2 (threaded) MPI ranks, instruments it with
// the nek_sensei bridge, and lets an XML configuration — not code — decide
// what happens in situ: a stats reduction every 5 steps and one rendered
// image every 10 steps.
//
//   $ ./quickstart [output_dir]
//
// Produces quickstart_out/render_speed_*.png plus a stats log, and prints
// the run metrics the paper's figures are built from.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/workflows.hpp"
#include "nekrs/cases.hpp"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "quickstart_out";
  std::filesystem::create_directories(out);

  // 1. A small flow problem (see nekrs/cases.hpp for the catalogue).
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {3, 3, 2};
  tg.order = 5;
  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::TaylorGreenCase(tg);
  options.steps = 20;

  // 2. The SENSEI runtime configuration (Listing 1 of the paper): swap
  //    analyses by editing XML, not by recompiling.
  options.sensei_xml =
      "<sensei>"
      "  <analysis type=\"stats\" frequency=\"5\" arrays=\"velocity\""
      "            log=\"" + out + "/stats.log\"/>"
      "  <analysis type=\"catalyst\" frequency=\"10\" output=\"" + out + "\""
      "            width=\"640\" height=\"480\" prefix=\"render\">"
      "    <render array=\"velocity\" magnitude=\"1\" name=\"speed\""
      "            colormap=\"viridis\" azimuth=\"40\" elevation=\"30\"/>"
      "  </analysis>"
      "</sensei>";

  // 3. Run on 2 ranks (threads standing in for MPI processes).
  const auto metrics = nek_sensei::RunInSitu(2, options);

  std::cout << "quickstart: " << metrics.steps << " steps on "
            << metrics.ranks.size() << " ranks\n"
            << "  mean busy time per step per rank: "
            << metrics.MeanSimStepSeconds() * 1e3 << " ms\n"
            << "  images rendered: " << metrics.images_written << "\n"
            << "  bytes written:   " << metrics.bytes_written << "\n"
            << "  peak host memory per rank: " << metrics.MaxSimHostPeakBytes()
            << " B\n"
            << "  peak device memory per rank: "
            << metrics.MaxSimDevicePeakBytes() << " B\n"
            << "outputs in " << out << "/\n";
  return 0;
}
