// Quickstart: the smallest complete NekRS-SENSEI pipeline.
//
// Runs a Taylor-Green vortex on 2 (threaded) MPI ranks, instruments it with
// the nek_sensei bridge, and lets an XML configuration — not code — decide
// what happens in situ: a stats reduction every 5 steps and one rendered
// image every 10 steps.
//
//   $ ./quickstart [output_dir] [--trace trace.json]
//                  [--heartbeat <steps>] [--metrics-out metrics.json]
//                  [--async] [--monitor [port]] [--status-out status.json]
//                  [--monitor-port-file port.txt]
//
// Produces quickstart_out/render_speed_*.png plus a stats log, and prints
// the run metrics the paper's figures are built from.  With --trace, also
// writes a Chrome-trace JSON (open in Perfetto / chrome://tracing) and a
// telemetry.json aggregate next to it.  With --heartbeat N, rank 0 prints
// a progress line (step rate, ETA, memory) every N steps; with
// --metrics-out, the run writes one rank-aggregated run-health
// metrics.json (min/mean/max/p95 + imbalance per metric).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/workflows.hpp"
#include "nekrs/cases.hpp"

int main(int argc, char** argv) {
  std::string out = "quickstart_out";
  std::string trace_path;
  std::string metrics_path;
  int heartbeat_steps = 0;
  bool async = false;
  int monitor_port = -1;
  std::string status_path;
  std::string monitor_port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "error: --trace needs a file argument\n";
        return 2;
      }
      trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::cerr << "error: --metrics-out needs a file argument\n";
        return 2;
      }
      metrics_path = argv[++i];
    } else if (arg == "--heartbeat") {
      if (i + 1 >= argc || (heartbeat_steps = std::atoi(argv[i + 1])) < 1) {
        std::cerr << "error: --heartbeat needs a positive step count\n";
        return 2;
      }
      ++i;
    } else if (arg == "--async") {
      async = true;
    } else if (arg == "--monitor") {
      // Optional all-digit port; anything else leaves port 0 (ephemeral).
      monitor_port = 0;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (!next.empty() &&
            next.find_first_not_of("0123456789") == std::string::npos) {
          monitor_port = std::atoi(argv[++i]);
        }
      }
    } else if (arg == "--status-out") {
      if (i + 1 >= argc) {
        std::cerr << "error: --status-out needs a file argument\n";
        return 2;
      }
      status_path = argv[++i];
    } else if (arg == "--monitor-port-file") {
      if (i + 1 >= argc) {
        std::cerr << "error: --monitor-port-file needs a file argument\n";
        return 2;
      }
      monitor_port_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [output_dir] [options]\n"
          "  --trace <out.json>    enable span tracing; Chrome trace lands\n"
          "                        here (cross-rank aggregate: sibling\n"
          "                        telemetry.json)\n"
          "  --heartbeat <steps>   print a rank-0 progress heartbeat (step\n"
          "                        rate, ETA, memory) every N steps\n"
          "  --metrics-out <path>  write the run's rank-aggregated\n"
          "                        run-health metrics.json (min/mean/max/\n"
          "                        p95 + imbalance per metric)\n"
          "  --async               run the analyses on a per-rank worker\n"
          "                        thread (double-buffered staging) instead\n"
          "                        of inline after each step\n"
          "  --monitor [port]      serve live /metrics, /healthz, /status\n"
          "                        on rank 0's loopback during the run\n"
          "                        (omit the port for an ephemeral one)\n"
          "  --status-out <path>   persist the final /status JSON at\n"
          "                        shutdown\n"
          "  --monitor-port-file <path>  write the bound monitor port here\n"
          "  --help                show this help\n",
          argv[0]);
      return 0;
    } else {
      out = arg;
    }
  }
  std::filesystem::create_directories(out);

  // 1. A small flow problem (see nekrs/cases.hpp for the catalogue).
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {3, 3, 2};
  tg.order = 5;
  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::TaylorGreenCase(tg);
  options.steps = 20;

  // 2. The SENSEI runtime configuration (Listing 1 of the paper): swap
  //    analyses by editing XML, not by recompiling.
  //    The optional <pipeline> element picks the execution mode: async
  //    offloads every update to a per-rank worker thread over
  //    double-buffered snapshots; outputs are byte-identical either way.
  const std::string pipeline =
      async ? "  <pipeline mode=\"async\" depth=\"2\"/>" : "";
  options.sensei_xml =
      "<sensei>" + pipeline +
      "  <analysis type=\"stats\" frequency=\"5\" arrays=\"velocity\""
      "            log=\"" + out + "/stats.log\"/>"
      "  <analysis type=\"catalyst\" frequency=\"10\" output=\"" + out + "\""
      "            width=\"640\" height=\"480\" prefix=\"render\">"
      "    <render array=\"velocity\" magnitude=\"1\" name=\"speed\""
      "            colormap=\"viridis\" azimuth=\"40\" elevation=\"30\"/>"
      "  </analysis>"
      "</sensei>";

  // 3. Optional tracing: one Chrome-trace track per rank, nested
  //    solver/bridge/analysis spans (could equally come from a
  //    <telemetry trace="..."/> element in the XML above).
  if (!trace_path.empty()) {
    options.telemetry.enabled = true;
    options.telemetry.trace_path = trace_path;
    options.telemetry.summary_path =
        (std::filesystem::path(trace_path).parent_path() / "telemetry.json")
            .string();
  }
  // Metrics plane (could equally come from <telemetry metrics="..."
  // heartbeat="N"/> in the XML): rank-aggregated run health + progress.
  options.telemetry.heartbeat_steps = heartbeat_steps;
  if (!metrics_path.empty()) {
    options.telemetry.metrics = true;
    options.telemetry.metrics_path = metrics_path;
  }
  // Live monitor (XML equivalent: <telemetry monitor="PORT"/>): scrape
  // http://127.0.0.1:<port>/metrics while the run is stepping.
  if (monitor_port >= 0) {
    options.telemetry.monitor_port = monitor_port;
    options.telemetry.status_path = status_path;
    options.telemetry.monitor_port_file = monitor_port_file;
  }

  // 4. Run on 2 ranks (threads standing in for MPI processes).
  const auto metrics = nek_sensei::RunInSitu(2, options);

  std::cout << "quickstart: " << metrics.steps << " steps on "
            << metrics.ranks.size() << " ranks\n"
            << "  mean busy time per step per rank: "
            << metrics.MeanSimStepSeconds() * 1e3 << " ms\n"
            << "  images rendered: " << metrics.images_written << "\n"
            << "  bytes written:   " << metrics.bytes_written << "\n"
            << "  peak host memory per rank: " << metrics.MaxSimHostPeakBytes()
            << " B\n"
            << "  peak device memory per rank: "
            << metrics.MaxSimDevicePeakBytes() << " B\n"
            << "outputs in " << out << "/\n";
  if (!trace_path.empty()) {
    std::cout << "trace written to " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::cout << "run-health metrics written to " << metrics_path << "\n";
  }
  return 0;
}
