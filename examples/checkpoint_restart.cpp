// Checkpoint/restart round trip through the SENSEI checkpointing path.
//
// Demonstrates that the VTU checkpoints the Checkpointing configuration
// writes are genuine restart files: run A checkpoints at step 10 and
// continues to step 20; run B restores the step-10 checkpoint, advances the
// same 10 steps, and lands on (approximately) the same state.  The restart
// is first-order for one step, exactly like NekRS after reading a
// checkpoint, so the comparison uses a physical tolerance.
//
//   $ ./checkpoint_restart [output_dir]

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/bridge.hpp"
#include "mpimini/runtime.hpp"
#include "nekrs/cases.hpp"
#include "sensei/checkpoint_adaptor.hpp"
#include "svtk/vtu_writer.hpp"

namespace {

nekrs::FlowConfig Case() {
  nekrs::cases::TaylorGreenOptions tg;
  tg.elements = {3, 3, 2};
  tg.order = 4;
  return nekrs::cases::TaylorGreenCase(tg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "restart_out";
  std::filesystem::create_directories(out);
  constexpr int kRanks = 2;
  constexpr int kCheckpointStep = 10;
  constexpr int kFinalStep = 20;

  // Run A: checkpoint at step 10 via the SENSEI bridge, then continue.
  std::vector<double> ke_a(2, 0.0);
  mpimini::Runtime::Run(kRanks, [&](mpimini::Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, Case());
    nek_sensei::Bridge bridge(
        solver, "<sensei><analysis type=\"checkpoint\" frequency=\"10\" "
                "output=\"" + out + "\"/></sensei>");
    for (int s = 0; s < kFinalStep; ++s) {
      solver.Step();
      bridge.Update();
      if (solver.StepNumber() == kCheckpointStep) {
        const double ke = solver.KineticEnergy();  // collective
        if (comm.Rank() == 0) ke_a[0] = ke;
      }
    }
    bridge.Finalize();
    const double ke = solver.KineticEnergy();
    if (comm.Rank() == 0) ke_a[1] = ke;
  });

  // Run B: restore the step-10 checkpoint and advance the remaining steps.
  std::vector<double> ke_b(1, 0.0);
  mpimini::Runtime::Run(kRanks, [&](mpimini::Comm& comm) {
    occamini::Device device(occamini::Backend::kSimGpu);
    nekrs::FlowSolver solver(comm, device, Case());

    char path[512];
    std::snprintf(path, sizeof(path), "%s/chk_step%06d_rank%04d.vtu",
                  out.c_str(), kCheckpointStep, comm.Rank());
    svtk::UnstructuredGrid grid = svtk::ReadVtu(path);
    const svtk::DataArray* vel = grid.PointArray("velocity");
    const svtk::DataArray* pr = grid.PointArray("pressure");
    const std::size_t n = grid.NumPoints();
    std::vector<double> u(n), v(n), w(n), p(n), T(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = vel->At(i, 0);
      v[i] = vel->At(i, 1);
      w[i] = vel->At(i, 2);
      p[i] = pr->At(i);
    }
    solver.LoadState(u, v, w, p, T, kCheckpointStep);
    for (int s = kCheckpointStep; s < kFinalStep; ++s) solver.Step();
    const double ke = solver.KineticEnergy();
    if (comm.Rank() == 0) ke_b[0] = ke;
  });

  const double rel = std::abs(ke_b[0] - ke_a[1]) / ke_a[1];
  std::cout << "checkpoint/restart round trip:\n"
            << "  KE at checkpoint (step " << kCheckpointStep
            << "): " << ke_a[0] << "\n"
            << "  KE at step " << kFinalStep << ", run A: " << ke_a[1] << "\n"
            << "  KE at step " << kFinalStep << ", run B: " << ke_b[0] << "\n"
            << "  relative difference: " << rel << "\n"
            << (rel < 1e-3 ? "restart MATCHES original run\n"
                           : "restart DIVERGED\n");
  return rel < 1e-3 ? 0 : 1;
}
