// Pebble-bed reactor in situ demo — the paper's §4.1 use case (Fig 1).
//
// A pb146-style pebble bed (spherical pebbles via Brinkman penalization,
// heated pebbles, streamwise driving force) runs with the SENSEI bridge in
// Catalyst mode: every `frequency` steps, temperature and velocity fields
// are copied from (simulated) GPU memory to the host, handed to SENSEI, and
// rendered to images — including a thresholded view that exposes the hot
// pebble wakes, the Fig-1 style visualization.
//
//   $ ./pebble_bed_insitu [output_dir] [pebbles] [steps]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/workflows.hpp"
#include "nekrs/cases.hpp"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "pebble_bed_out";
  const int pebbles = argc > 2 ? std::atoi(argv[2]) : 27;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 60;
  std::filesystem::create_directories(out);

  nekrs::cases::PebbleBedOptions pb;
  pb.elements = {4, 4, 4};
  pb.order = 4;
  pb.pebble_count = pebbles;
  pb.dt = 1.5e-3;

  nek_sensei::InSituOptions options;
  options.flow = nekrs::cases::PebbleBedCase(pb);
  options.steps = steps;
  options.sensei_xml =
      "<sensei>"
      "  <analysis type=\"catalyst\" frequency=\"20\" output=\"" + out + "\""
      "            width=\"800\" height=\"600\" prefix=\"pb\">"
      "    <render array=\"temperature\" name=\"temp\" colormap=\"plasma\""
      "            azimuth=\"35\" elevation=\"25\"/>"
      "    <render array=\"temperature\" name=\"hot\" colormap=\"plasma\""
      "            threshold_min=\"0.05\" azimuth=\"35\" elevation=\"25\"/>"
      "    <render array=\"velocity\" magnitude=\"1\" name=\"speed\""
      "            colormap=\"viridis\" azimuth=\"120\" elevation=\"15\"/>"
      "    <render array=\"velocity\" magnitude=\"1\" name=\"iso\""
      "            colormap=\"viridis\" isovalue=\"0.05\""
      "            iso_array=\"temperature\" azimuth=\"35\" elevation=\"25\"/>"
      "  </analysis>"
      "  <analysis type=\"histogram\" frequency=\"20\" array=\"temperature\""
      "            bins=\"24\" output=\"" + out + "\"/>"
      "</sensei>";

  std::cout << "pebble bed: " << pebbles << " pebbles, " << steps
            << " steps, rendering every 20 steps...\n";
  const auto metrics = nek_sensei::RunInSitu(4, options);

  std::cout << "  images: " << metrics.images_written << ", storage: "
            << metrics.bytes_written << " B\n"
            << "  mean busy time per step per rank: "
            << metrics.MeanSimStepSeconds() * 1e3 << " ms\n"
            << "outputs in " << out << "/\n";
  return 0;
}
