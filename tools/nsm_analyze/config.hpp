// Shared rule configuration for the repo's two concurrency linters.
//
// tools/nsm_rules.cfg is the single source of truth for per-file allowlists
// and name-prefix rules; tools/nsm_lint.py (the fast regex pre-check) and
// nsm_analyze (this tool) both parse it, so an exemption added for one is
// seen by the other.  Line-oriented format, `#` comments:
//
//   raw-new-allowed <path>              file may use raw new/delete
//   blocking-under-lock-allowed <path>  file may block while holding a guard
//                                       (the condvar-under-own-mutex pattern)
//   divergence-allowed <path>           file exempt from collective-divergence
//   lock-rank-last <lock-id>            force this lock to the highest rank
//                                       (crash-dump paths must be acquirable
//                                       while anything else is held)
//   prefix <dir> <tags|*> <prefixes>    span/metric names in files under
//                                       <dir> whose basename contains one of
//                                       the comma-separated <tags> must start
//                                       with one of the comma-separated
//                                       <prefixes>
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

namespace nsm_analyze {

struct PrefixRule {
  std::string dir;                     // path fragment, e.g. "src/codec/"
  std::vector<std::string> tags;       // basename substrings; empty = any
  std::vector<std::string> prefixes;   // allowed name prefixes, e.g. "codec."
};

struct Config {
  std::unordered_set<std::string> raw_new_allowed;
  std::unordered_set<std::string> blocking_under_lock_allowed;
  std::unordered_set<std::string> divergence_allowed;
  std::vector<std::string> lock_rank_last;  // lock ids, in forced order
  std::vector<PrefixRule> prefix_rules;
};

/// Parse `path`.  Returns false (with *error set) on I/O failure or a
/// malformed directive — a config typo must fail the gate, not silently
/// drop an allowlist entry.
bool LoadConfig(const std::string& path, Config* config, std::string* error);

}  // namespace nsm_analyze
