#include "config.hpp"

#include <fstream>
#include <sstream>

namespace nsm_analyze {

namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace

bool LoadConfig(const std::string& path, Config* config, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line

    auto fail = [&](const std::string& what) {
      *error = path + ":" + std::to_string(lineno) + ": " + what;
      return false;
    };

    if (directive == "raw-new-allowed" ||
        directive == "blocking-under-lock-allowed" ||
        directive == "divergence-allowed" || directive == "lock-rank-last") {
      std::string value;
      if (!(fields >> value)) return fail(directive + ": missing operand");
      std::string extra;
      if (fields >> extra) return fail(directive + ": trailing junk");
      if (directive == "raw-new-allowed") {
        config->raw_new_allowed.insert(value);
      } else if (directive == "blocking-under-lock-allowed") {
        config->blocking_under_lock_allowed.insert(value);
      } else if (directive == "divergence-allowed") {
        config->divergence_allowed.insert(value);
      } else {
        config->lock_rank_last.push_back(value);
      }
      continue;
    }
    if (directive == "prefix") {
      PrefixRule rule;
      std::string tags;
      std::string prefixes;
      if (!(fields >> rule.dir >> tags >> prefixes)) {
        return fail("prefix: expected <dir> <tags|*> <prefixes>");
      }
      if (tags != "*") rule.tags = SplitCommas(tags);
      rule.prefixes = SplitCommas(prefixes);
      if (rule.prefixes.empty()) return fail("prefix: empty prefix list");
      config->prefix_rules.push_back(std::move(rule));
      continue;
    }
    return fail("unknown directive: " + directive);
  }
  return true;
}

}  // namespace nsm_analyze
