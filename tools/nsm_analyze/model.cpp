#include "model.hpp"

#include <array>
#include <cstddef>
#include <unordered_set>

namespace nsm_analyze {

namespace {

const std::unordered_set<std::string>& BlockingNames() {
  // The mpimini calls that block until a peer rank (or a notification)
  // makes progress.  Mirrors tools/nsm_lint.py's BLOCKING_CALL vocabulary.
  static const std::unordered_set<std::string> kNames = {
      "Barrier",   "Bcast",       "Reduce",     "AllReduce", "AllReduceValue",
      "Gather",    "GatherBytes", "AllGather",  "AllToAllBytes",
      "Split",     "RecvBytes",   "RecvBuffer", "Recv",      "RecvValue",
      "Probe"};
  return kNames;
}

const std::unordered_set<std::string>& CollectiveNames() {
  // The subset every rank of the communicator must call in the same order.
  // Point-to-point receives are deliberately absent: `if (rank == root)
  // Recv else Send` is how collectives are *implemented*, not a divergence.
  static const std::unordered_set<std::string> kNames = {
      "Barrier", "Bcast",     "Reduce",        "AllReduce", "AllReduceValue",
      "Gather",  "GatherBytes", "AllGather",   "AllToAllBytes", "Split"};
  return kNames;
}

const std::unordered_set<std::string>& StatementKeywords() {
  static const std::unordered_set<std::string> kNames = {
      "if",     "for",      "while",   "switch",        "catch",
      "return", "sizeof",   "alignof", "decltype",      "static_assert",
      "new",    "delete",   "throw",   "else",          "do",
      "case",   "default",  "goto",    "co_return",     "co_await",
      "static_cast",        "dynamic_cast", "const_cast",
      "reinterpret_cast",   "alignas",      "noexcept"};
  return kNames;
}

const std::unordered_set<std::string>& MetricMethods() {
  static const std::unordered_set<std::string> kNames = {
      "Set",      "Add",           "SetTotal",      "Observe",
      "DefineHistogram", "SampleCounter", "AddCounter"};
  return kNames;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Index just past the region balanced in (), [], {} and — when the region
/// opens with '<' — template angle brackets.  `begin` must index the
/// opening token.  Returns tokens.size() when unbalanced (end of file).
std::size_t SkipBalanced(const std::vector<Token>& tokens, std::size_t begin) {
  struct Pair { const char* open; const char* close; };
  static constexpr std::array<Pair, 4> kPairs = {
      Pair{"(", ")"}, Pair{"[", "]"}, Pair{"{", "}"}, Pair{"<", ">"}};
  const Token& first = tokens[begin];
  const char* open = nullptr;
  const char* close = nullptr;
  for (const Pair& p : kPairs) {
    if (IsPunct(first, p.open)) {
      open = p.open;
      close = p.close;
    }
  }
  if (open == nullptr) return begin + 1;
  int depth = 0;
  for (std::size_t i = begin; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open)) ++depth;
    else if (IsPunct(tokens[i], close) && --depth == 0) return i + 1;
  }
  return tokens.size();
}

/// Matches `core::MutexLock` / `std::lock_guard|unique_lock|scoped_lock`
/// starting at `i`.  On match returns the index just past the class name
/// (before any template arguments); otherwise returns 0.
std::size_t MatchGuardClass(const std::vector<Token>& tokens, std::size_t i) {
  if (i + 2 >= tokens.size()) return 0;
  if (!IsPunct(tokens[i + 1], "::")) return 0;
  const std::string& ns = tokens[i].text;
  const std::string& cls = tokens[i + 2].text;
  if (tokens[i].kind != TokenKind::kIdentifier ||
      tokens[i + 2].kind != TokenKind::kIdentifier) {
    return 0;
  }
  const bool core_guard = ns == "core" && cls == "MutexLock";
  const bool std_guard =
      ns == "std" && (cls == "lock_guard" || cls == "unique_lock" ||
                      cls == "scoped_lock");
  return core_guard || std_guard ? i + 3 : 0;
}

/// Last identifier of a token range — the member name of a lock expression
/// (`state_->mutex` -> "mutex", `AdoptMutex()` -> "AdoptMutex").
std::string LastIdentifier(const std::vector<Token>& tokens, std::size_t begin,
                           std::size_t end) {
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier) last = tokens[i].text;
  }
  return last;
}

/// End of the first constructor argument: the top-level ',' or the close of
/// the region opened at `open` (which indexes '(' or '{').
std::size_t FirstArgEnd(const std::vector<Token>& tokens, std::size_t open) {
  const std::size_t region_end = SkipBalanced(tokens, open);
  int depth = 0;
  for (std::size_t i = open; i < region_end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    else if (t.text == "," && depth == 1) return i;
  }
  return region_end > open ? region_end - 1 : open;
}

bool ConditionTestsRank(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "rank" || t.text == "rank_" || t.text == "world_rank") {
      return true;
    }
    if (t.text == "Rank" && i + 1 < end && IsPunct(tokens[i + 1], "(")) {
      return true;
    }
  }
  return false;
}

/// Collect collective call names inside [begin, end).
void CollectCollectives(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t end, std::vector<BranchCollective>* out) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier || !IsCollectiveCall(t.text)) {
      continue;
    }
    if (i + 1 >= tokens.size()) continue;
    const bool method =
        i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"));
    const bool qualified = i > 0 && IsPunct(tokens[i - 1], "::");
    if (qualified) continue;  // out-of-line definition header, not a call
    const bool called = IsPunct(tokens[i + 1], "(") ||
                        (method && IsPunct(tokens[i + 1], "<"));
    if (called) out->push_back({t.text, t.line});
  }
}

/// Extent of the statement starting at `i` (used for braceless if/else
/// branches): a balanced `{...}` block, a nested if-statement, or a simple
/// statement up to its ';'.
std::size_t StatementEnd(const std::vector<Token>& tokens, std::size_t i) {
  if (i >= tokens.size()) return i;
  if (IsPunct(tokens[i], "{")) return SkipBalanced(tokens, i);
  if (IsIdent(tokens[i], "if")) {
    std::size_t j = i + 1;
    if (j < tokens.size() && IsPunct(tokens[j], "(")) {
      j = SkipBalanced(tokens, j);           // condition
      j = StatementEnd(tokens, j);           // then-branch
      if (j < tokens.size() && IsIdent(tokens[j], "else")) {
        j = StatementEnd(tokens, j + 1);     // else-branch
      }
      return j;
    }
  }
  int depth = 0;
  for (std::size_t j = i; j < tokens.size(); ++j) {
    const Token& t = tokens[j];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    else if (t.text == ";" && depth == 0) return j + 1;
  }
  return tokens.size();
}

/// Parse a qualified name at `i`: ident (:: ident)*.  Returns the index
/// just past it and fills the components; returns `i` when not a name.
std::size_t MatchQualifiedName(const std::vector<Token>& tokens, std::size_t i,
                               std::vector<std::string>* components) {
  if (i >= tokens.size() || tokens[i].kind != TokenKind::kIdentifier) return i;
  components->push_back(tokens[i].text);
  std::size_t j = i + 1;
  while (j + 1 < tokens.size() && IsPunct(tokens[j], "::") &&
         tokens[j + 1].kind == TokenKind::kIdentifier) {
    components->push_back(tokens[j + 1].text);
    j += 2;
  }
  return j;
}

/// Try to match a function definition whose name starts at token `i`.
/// On success returns the index of the body's '{' and fills name/qualified;
/// on failure returns 0.
std::size_t MatchFunctionDefinition(const std::vector<Token>& tokens,
                                    std::size_t i, std::string* name,
                                    std::string* qualified) {
  std::vector<std::string> components;
  const std::size_t after_name = MatchQualifiedName(tokens, i, &components);
  if (after_name == i) return 0;
  if (StatementKeywords().count(components.back()) != 0) return 0;
  if (components.back() == "operator") return 0;  // operator overloads: skip
  if (after_name >= tokens.size() || !IsPunct(tokens[after_name], "(")) {
    return 0;
  }
  std::size_t j = SkipBalanced(tokens, after_name);  // parameter list

  // Trailer: cv-qualifiers, ref-qualifiers, noexcept(...), annotation
  // macros, trailing return type, constructor initializer list — anything
  // legal between the parameter list and the body.
  while (j < tokens.size()) {
    const Token& t = tokens[j];
    if (IsPunct(t, "{")) break;        // the body
    if (IsPunct(t, ";")) return 0;     // declaration only
    if (IsPunct(t, "=")) return 0;     // `= default` / `= delete` / init
    if (t.kind == TokenKind::kIdentifier) {
      // const / noexcept / override / final / NSM_REQUIRES(...) / try ...
      ++j;
      if (j < tokens.size() && IsPunct(tokens[j], "(")) {
        j = SkipBalanced(tokens, j);
      }
      continue;
    }
    if (IsPunct(t, "&") || IsPunct(t, "&&")) {
      ++j;
      continue;
    }
    if (IsPunct(t, "->")) {  // trailing return type: scan to '{' or ';'
      ++j;
      while (j < tokens.size() && !IsPunct(tokens[j], "{") &&
             !IsPunct(tokens[j], ";") && !IsPunct(tokens[j], "=")) {
        j = IsPunct(tokens[j], "(") || IsPunct(tokens[j], "<")
                ? SkipBalanced(tokens, j)
                : j + 1;
      }
      continue;
    }
    if (IsPunct(t, ":")) {  // constructor initializer list
      ++j;
      while (j < tokens.size() && !IsPunct(tokens[j], "{")) {
        if (IsPunct(tokens[j], "(") || IsPunct(tokens[j], "<")) {
          j = SkipBalanced(tokens, j);
          // A braced member init `member{...}` is part of the list; the
          // body '{' follows a ')' or '}' of the previous initializer, a
          // ',' continues the list.
          continue;
        }
        if (IsPunct(tokens[j], "{")) break;
        ++j;
      }
      // Distinguish `member{...}` (followed by ',' or another init) from
      // the body: a '{' directly after an identifier/'>' is a braced init.
      while (j < tokens.size() && IsPunct(tokens[j], "{") && j > 0 &&
             (tokens[j - 1].kind == TokenKind::kIdentifier ||
              IsPunct(tokens[j - 1], ">"))) {
        j = SkipBalanced(tokens, j);
        while (j < tokens.size() && IsPunct(tokens[j], ",")) {
          ++j;
          while (j < tokens.size() && !IsPunct(tokens[j], "{") &&
                 !IsPunct(tokens[j], "(")) {
            ++j;
          }
          if (j < tokens.size() && IsPunct(tokens[j], "(")) {
            j = SkipBalanced(tokens, j);
          }
        }
      }
      continue;
    }
    return 0;  // anything else: not a definition
  }
  if (j >= tokens.size() || !IsPunct(tokens[j], "{")) return 0;

  *name = components.back();
  std::string full;
  for (const std::string& c : components) {
    if (!full.empty()) full += "::";
    full += c;
  }
  *qualified = full;
  return j;
}

/// Scan a function body [body_open, close) producing the ordered events.
void ScanBody(const std::vector<Token>& tokens, std::size_t body_open,
              std::size_t body_end, const std::string& file,
              Function* function, std::vector<RankConditional>* conditionals) {
  int depth = 0;
  for (std::size_t i = body_open; i < body_end; ++i) {
    const Token& t = tokens[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      Event e;
      e.kind = EventKind::kScopeClose;
      e.line = t.line;
      e.depth = depth;
      function->events.push_back(e);
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    // Guard acquisition.
    if (std::size_t after = MatchGuardClass(tokens, i); after != 0) {
      const bool core_guard = tokens[i].text == "core";
      std::size_t j = after;
      if (j < tokens.size() && IsPunct(tokens[j], "<")) {
        j = SkipBalanced(tokens, j);  // template arguments
      }
      // Named guard `MutexLock lock(expr)` or guard temporary
      // `MutexLock(expr)` (the latter is a bug — it guards nothing — but
      // the lock-order facts are identical).
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) ++j;
      if (j < tokens.size() &&
          (IsPunct(tokens[j], "(") || IsPunct(tokens[j], "{"))) {
        const std::size_t arg_end = FirstArgEnd(tokens, j);
        const std::string member = LastIdentifier(tokens, j + 1, arg_end);
        if (!member.empty()) {
          Event e;
          e.kind = EventKind::kGuardAcquire;
          e.line = t.line;
          e.depth = depth;
          e.name = LockId(file, member);
          e.core_guard = core_guard;
          function->events.push_back(e);
        }
        i = j;  // resume inside the argument list
        continue;
      }
    }

    const bool method_recv =
        i > body_open &&
        (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"));
    const bool qualified_prev = i > body_open && IsPunct(tokens[i - 1], "::");
    const Token* next = i + 1 < body_end ? &tokens[i + 1] : nullptr;

    // Condition-variable wait.
    if (method_recv && t.text == "Wait" && next != nullptr &&
        IsPunct(*next, "(")) {
      Event e;
      e.kind = EventKind::kCondWait;
      e.line = t.line;
      e.depth = depth;
      e.name = "Wait";
      function->events.push_back(e);
      continue;
    }

    // Blocking mpimini call: method form `comm.Barrier(` / `comm.Recv<T>(`,
    // or bare member form `AllReduce(...)` inside Comm's own methods.
    if (IsBlockingCall(t.text) && !qualified_prev && next != nullptr &&
        (IsPunct(*next, "(") || (method_recv && IsPunct(*next, "<")))) {
      Event e;
      e.kind = EventKind::kBlockingCall;
      e.line = t.line;
      e.depth = depth;
      e.name = t.text;
      e.collective = IsCollectiveCall(t.text);
      function->events.push_back(e);
      continue;
    }

    // Rank-divergent collective scan: `if`/`switch` whose condition tests
    // the rank.  Lookahead only — the main scan still visits the branches.
    if ((t.text == "if" || t.text == "switch") && next != nullptr &&
        IsPunct(*next, "(")) {
      const std::size_t cond_begin = i + 1;
      const std::size_t cond_end = SkipBalanced(tokens, cond_begin);
      if (ConditionTestsRank(tokens, cond_begin + 1, cond_end - 1)) {
        RankConditional rc;
        rc.file = file;
        rc.line = t.line;
        rc.is_switch = t.text == "switch";
        const std::size_t then_end = StatementEnd(tokens, cond_end);
        CollectCollectives(tokens, cond_end, then_end, &rc.then_branch);
        if (!rc.is_switch && then_end < body_end &&
            IsIdent(tokens[then_end], "else")) {
          rc.has_else = true;
          const std::size_t else_end = StatementEnd(tokens, then_end + 1);
          CollectCollectives(tokens, then_end + 1, else_end, &rc.else_branch);
        }
        if (!rc.then_branch.empty() || !rc.else_branch.empty()) {
          conditionals->push_back(std::move(rc));
        }
      }
      continue;
    }

    // Plain call, a candidate for one-level callee propagation.
    if (next != nullptr && IsPunct(*next, "(") &&
        StatementKeywords().count(t.text) == 0) {
      Event e;
      e.kind = EventKind::kCall;
      e.line = t.line;
      e.depth = depth;
      e.name = t.text;
      function->events.push_back(e);
      continue;
    }
  }
}

/// Whole-file pass for span/metric name literals and ranked-mutex
/// declarations — both can live outside function bodies (member
/// initializers, class-scope declarations), so they get their own scan.
void ScanNamesAndDecls(const std::vector<Token>& tokens,
                       const std::string& file, FileModel* model) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool method_recv =
        i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"));

    // Span / IdleScope: `Span span("name"...)` or `Span("name"...)`.
    if (t.text == "Span" || t.text == "IdleScope" || t.text == "Instant") {
      std::size_t j = i + 1;
      if (t.text != "Instant" && j < tokens.size() &&
          tokens[j].kind == TokenKind::kIdentifier) {
        ++j;  // variable name
      }
      if (j + 1 < tokens.size() && IsPunct(tokens[j], "(") &&
          tokens[j + 1].kind == TokenKind::kString) {
        model->names.push_back(
            {NameKind::kSpan, tokens[j + 1].text, file, tokens[j + 1].line});
      }
      continue;
    }

    // Metric calls: `metrics->Set("plane.metric", ...)` and friends.  The
    // bare form (no receiver) is accepted too, mirroring nsm_lint.
    if (MetricMethods().count(t.text) != 0 && i + 2 < tokens.size() &&
        IsPunct(tokens[i + 1], "(") &&
        tokens[i + 2].kind == TokenKind::kString) {
      (void)method_recv;
      model->names.push_back(
          {NameKind::kMetric, tokens[i + 2].text, file, tokens[i + 2].line});
      continue;
    }

    // `core::Mutex member{core::lock_rank::kConstant};` — or an unranked
    // declaration `core::Mutex member;`, recorded with an empty constant so
    // the lock-rank gate can demand a spec for every acquired mutex.
    if (t.text == "core" && i + 2 < tokens.size() &&
        IsPunct(tokens[i + 1], "::") && IsIdent(tokens[i + 2], "Mutex")) {
      std::size_t j = i + 3;
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
        const std::string member = tokens[j].text;
        const int decl_line = tokens[j].line;
        ++j;
        if (j < tokens.size() &&
            (IsPunct(tokens[j], "{") || IsPunct(tokens[j], "("))) {
          const std::size_t init_end = SkipBalanced(tokens, j);
          std::string constant;
          for (std::size_t k = j + 1; k + 2 < init_end; ++k) {
            if (IsIdent(tokens[k], "lock_rank") &&
                IsPunct(tokens[k + 1], "::") &&
                tokens[k + 2].kind == TokenKind::kIdentifier) {
              constant = tokens[k + 2].text;
              break;
            }
          }
          model->ranked_decls.push_back({file, decl_line, member, constant});
        } else if (j < tokens.size() && IsPunct(tokens[j], ";")) {
          model->ranked_decls.push_back({file, decl_line, member, ""});
        }
      }
      continue;
    }
  }
}

}  // namespace

bool IsBlockingCall(const std::string& name) {
  return BlockingNames().count(name) != 0;
}

bool IsCollectiveCall(const std::string& name) {
  return CollectiveNames().count(name) != 0;
}

std::string LockId(const std::string& display_path,
                   const std::string& member) {
  std::string stem = display_path;
  if (stem.rfind("src/", 0) == 0) stem = stem.substr(4);
  const std::size_t dot = stem.rfind('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return stem + "::" + member;
}

FileModel ExtractFile(const std::string& display_path,
                      const std::vector<Token>& tokens) {
  FileModel model;
  model.file = display_path;
  ScanNamesAndDecls(tokens, display_path, &model);

  // Function definitions, at any nesting level outside other bodies (free
  // functions, out-of-line members, in-class inline members).
  std::size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i].kind != TokenKind::kIdentifier) {
      ++i;
      continue;
    }
    std::string name;
    std::string qualified;
    const std::size_t body_open =
        MatchFunctionDefinition(tokens, i, &name, &qualified);
    if (body_open == 0) {
      ++i;
      continue;
    }
    const std::size_t body_end = SkipBalanced(tokens, body_open);
    Function function;
    function.name = name;
    function.qualified = qualified;
    function.file = display_path;
    function.line = tokens[i].line;
    ScanBody(tokens, body_open, body_end, display_path, &function,
             &model.rank_conditionals);
    model.functions.push_back(std::move(function));
    i = body_end;
  }
  return model;
}

}  // namespace nsm_analyze
