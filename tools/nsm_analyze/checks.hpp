// The four analyzer checks over the extracted file models, plus the
// generators for the artifacts the checks gate against:
//
//   lock-order             global acquired-before graph from per-function
//                          guard scopes + one-level callee propagation;
//                          fails on cycles, printing every edge's witness
//   blocking-under-lock    blocking mpimini call / condvar wait reachable
//                          while any guard is live, including guards held
//                          in callers (the regex lint's false negative)
//   collective-divergence  collective called on one branch of a
//                          rank-conditional without a match on the other
//   registry               span/metric taxonomy + prefix rules + the
//                          docs/REGISTRY.md membership gate
//   lock-rank              generated src/core/lock_ranks.hpp is current,
//                          every core::Mutex carries the right spec
//
// Generators: REGISTRY.md, lock_ranks.hpp, and the DOT acquired-before
// graph CI uploads as an artifact.
#pragma once

#include <string>
#include <vector>

#include "config.hpp"
#include "model.hpp"

namespace nsm_analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One acquired-before edge with the evidence that created it.
struct LockEdge {
  std::string from;
  std::string to;
  std::string witness;  // "file:line (Function)" or "... via callee ..."
};

class Analysis {
 public:
  Analysis(std::vector<FileModel> files, Config config);

  /// Builds the acquired-before graph and runs lock-order +
  /// blocking-under-lock (one walk produces both).
  void CheckLockOrderAndBlocking(bool lock_order, bool blocking,
                                 std::vector<Finding>* findings);
  void CheckCollectiveDivergence(std::vector<Finding>* findings);

  /// Taxonomy + prefix rules, and (when `registry_text` is non-null) the
  /// membership gate against the committed docs/REGISTRY.md.
  void CheckRegistry(const std::string* registry_text,
                     std::vector<Finding>* findings);

  /// Rank-spec validation: the committed lock_ranks.hpp matches what the
  /// analyzer would emit, every acquired core::Mutex has a ranked
  /// declaration, and each declaration names its own lock's constant.
  void CheckLockRanks(const std::string* committed_ranks,
                      std::vector<Finding>* findings);

  std::string GenerateRegistry();
  std::string GenerateRanks(std::vector<Finding>* findings);
  std::string GenerateDot();

 private:
  struct Summary;
  void BuildIndex();
  void BuildGraph();  // idempotent
  const Function* Resolve(const std::string& callee,
                          const std::string& caller_file) const;

  std::vector<FileModel> files_;
  Config config_;

  bool graph_built_ = false;
  std::vector<LockEdge> edges_;               // deduped (from, to) pairs
  std::vector<std::string> locks_;            // every lock id seen, sorted
  std::vector<std::string> core_locks_;       // rankable subset, sorted
  std::vector<Finding> blocking_findings_;    // produced with the graph
};

/// "mpimini/comm::mutex" -> "kMpiminiCommMutex".
std::string RankConstantName(const std::string& lock_id);

/// True iff `name` matches the dotted lowercase `layer.phase` taxonomy.
bool MatchesNameTaxonomy(const std::string& name);

}  // namespace nsm_analyze
