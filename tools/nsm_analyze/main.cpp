// nsm_analyze: concurrency invariant analyzer and registry gate.
//
//   nsm_analyze [options] [paths...]
//
//     --root DIR         repository root (default: current directory);
//                        display paths and defaults are relative to it
//     --config FILE      shared rule config (default: ROOT/tools/nsm_rules.cfg)
//     --registry FILE    committed registry (default: ROOT/docs/REGISTRY.md)
//     --ranks FILE       committed rank header
//                        (default: ROOT/src/core/lock_ranks.hpp)
//     --check NAME       run one check (repeatable): lock-order,
//                        blocking-under-lock, collective-divergence,
//                        registry, lock-rank.  Default: all of them.
//     --no-gate          skip the committed-artifact comparisons (fixture
//                        runs analyze files that are not the real tree)
//     --dot FILE         write the acquired-before graph as Graphviz DOT
//     --write-registry   regenerate the registry file and exit
//     --write-ranks      regenerate the rank header and exit
//
//   paths: files or directories to analyze (default: ROOT/src)
//
// Exit codes (same contract as tools/nsm_lint.py, see EXPERIMENTS.md):
//   0  clean
//   1  findings
//   2  usage or I/O error
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "config.hpp"
#include "lexer.hpp"
#include "model.hpp"

namespace fs = std::filesystem;

namespace {

using nsm_analyze::Analysis;
using nsm_analyze::Config;
using nsm_analyze::FileModel;
using nsm_analyze::Finding;

std::optional<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool WriteFile(const fs::path& path, const std::string& content) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Display path: relative to the root when possible, forward slashes.
std::string DisplayPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path abs_file = fs::weakly_canonical(file, ec);
  const fs::path abs_root = fs::weakly_canonical(root, ec);
  fs::path rel = abs_file.lexically_relative(abs_root);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) rel = file;
  return rel.generic_string();
}

void CollectSources(const fs::path& path, std::vector<fs::path>* out) {
  if (fs::is_directory(path)) {
    std::vector<fs::path> found;
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") found.push_back(entry.path());
    }
    std::sort(found.begin(), found.end());
    out->insert(out->end(), found.begin(), found.end());
  } else {
    out->push_back(path);
  }
}

int Usage(const std::string& error) {
  std::cerr << "nsm_analyze: " << error << " (see the header of main.cpp)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string config_path;
  std::string registry_path;
  std::string ranks_path;
  std::string dot_path;
  bool write_registry = false;
  bool write_ranks = false;
  bool no_gate = false;
  std::set<std::string> checks;
  std::vector<fs::path> targets;

  const std::set<std::string> known_checks = {
      "lock-order", "blocking-under-lock", "collective-divergence",
      "registry", "lock-rank"};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return Usage("--root needs a directory");
      root = v;
    } else if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return Usage("--config needs a file");
      config_path = v;
    } else if (arg == "--registry") {
      const char* v = value();
      if (v == nullptr) return Usage("--registry needs a file");
      registry_path = v;
    } else if (arg == "--ranks") {
      const char* v = value();
      if (v == nullptr) return Usage("--ranks needs a file");
      ranks_path = v;
    } else if (arg == "--dot") {
      const char* v = value();
      if (v == nullptr) return Usage("--dot needs a file");
      dot_path = v;
    } else if (arg == "--check") {
      const char* v = value();
      if (v == nullptr || known_checks.count(v) == 0) {
        return Usage("--check needs one of lock-order, blocking-under-lock, "
                     "collective-divergence, registry, lock-rank");
      }
      checks.insert(v);
    } else if (arg == "--write-registry") {
      write_registry = true;
    } else if (arg == "--write-ranks") {
      write_ranks = true;
    } else if (arg == "--no-gate") {
      no_gate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage("unknown option: " + arg);
    } else {
      targets.emplace_back(arg);
    }
  }
  if (checks.empty()) checks = known_checks;
  if (config_path.empty()) {
    config_path = (root / "tools" / "nsm_rules.cfg").string();
  }
  if (registry_path.empty()) {
    registry_path = (root / "docs" / "REGISTRY.md").string();
  }
  if (ranks_path.empty()) {
    ranks_path = (root / "src" / "core" / "lock_ranks.hpp").string();
  }
  if (targets.empty()) targets.push_back(root / "src");

  Config config;
  std::string config_error;
  if (!nsm_analyze::LoadConfig(config_path, &config, &config_error)) {
    std::cerr << "nsm_analyze: " << config_error << "\n";
    return 2;
  }

  std::vector<fs::path> sources;
  for (const fs::path& target : targets) {
    if (!fs::exists(target)) {
      std::cerr << "nsm_analyze: no such path: " << target.string() << "\n";
      return 2;
    }
    CollectSources(target, &sources);
  }

  std::vector<FileModel> models;
  models.reserve(sources.size());
  for (const fs::path& source : sources) {
    const std::optional<std::string> text = ReadFile(source);
    if (!text) {
      std::cerr << "nsm_analyze: cannot read: " << source.string() << "\n";
      return 2;
    }
    models.push_back(nsm_analyze::ExtractFile(DisplayPath(source, root),
                                              nsm_analyze::Lex(*text)));
  }

  Analysis analysis(std::move(models), std::move(config));
  std::vector<Finding> findings;

  if (write_registry) {
    if (!WriteFile(registry_path, analysis.GenerateRegistry())) {
      std::cerr << "nsm_analyze: cannot write: " << registry_path << "\n";
      return 2;
    }
    std::cout << "nsm_analyze: wrote " << registry_path << "\n";
  }
  if (write_ranks) {
    const std::string content = analysis.GenerateRanks(&findings);
    if (findings.empty()) {
      if (!WriteFile(ranks_path, content)) {
        std::cerr << "nsm_analyze: cannot write: " << ranks_path << "\n";
        return 2;
      }
      std::cout << "nsm_analyze: wrote " << ranks_path << "\n";
    }
  }
  if (write_registry || write_ranks) {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    return findings.empty() ? 0 : 1;
  }

  analysis.CheckLockOrderAndBlocking(checks.count("lock-order") != 0,
                                     checks.count("blocking-under-lock") != 0,
                                     &findings);
  if (checks.count("collective-divergence") != 0) {
    analysis.CheckCollectiveDivergence(&findings);
  }
  if (checks.count("registry") != 0) {
    std::optional<std::string> registry_text;
    if (!no_gate) {
      registry_text = ReadFile(registry_path);
      if (!registry_text) registry_text = std::string();  // -> all missing
    }
    analysis.CheckRegistry(registry_text ? &*registry_text : nullptr,
                           &findings);
  }
  if (checks.count("lock-rank") != 0) {
    std::optional<std::string> ranks_text;
    if (!no_gate) {
      ranks_text = ReadFile(ranks_path);
      if (!ranks_text) ranks_text = std::string();  // -> stale
    }
    analysis.CheckLockRanks(ranks_text ? &*ranks_text : nullptr, &findings);
  }

  if (!dot_path.empty() && !WriteFile(dot_path, analysis.GenerateDot())) {
    std::cerr << "nsm_analyze: cannot write: " << dot_path << "\n";
    return 2;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "nsm_analyze: " << sources.size() << " files, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
