#include "lexer.hpp"

namespace nsm_analyze {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  // True until the first token (or non-whitespace) on the current physical
  // line: a `#` here starts a preprocessor directive.
  bool at_line_start = true;

  auto peek = [&](std::size_t offset) -> char {
    return i + offset < n ? source[i + offset] : '\0';
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the logical line, honoring backslash
    // continuations (phase-2 splicing).  Contributes no tokens — a macro
    // definition is not code the analyzer should attribute to a function.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (source[i] == '\\' &&
            (i + 1 >= n || source[i + 1] == '\n' ||
             (source[i + 1] == '\r' && peek(2) == '\n'))) {
          // Continuation: swallow the backslash and the newline, keep going.
          i += source[i + 1] == '\r' ? 3 : 2;
          ++line;
          continue;
        }
        if (source[i] == '\n') break;  // the newline itself ends the line
        ++i;
      }
      continue;
    }
    at_line_start = false;

    // Line comment.  A trailing backslash continues it onto the next
    // physical line (same splicing rule as directives).
    if (c == '/' && peek(1) == '/') {
      i += 2;
      while (i < n) {
        if (source[i] == '\\' &&
            (i + 1 >= n || source[i + 1] == '\n' ||
             (source[i + 1] == '\r' && peek(2) == '\n'))) {
          i += source[i + 1] == '\r' ? 3 : 2;
          ++line;
          continue;
        }
        if (source[i] == '\n') break;
        ++i;
      }
      continue;
    }

    // Block comment: ends at the FIRST `*/` — C++ block comments do not
    // nest, so `/* outer /* inner */ code` resumes lexing at `code`.
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n) {
        if (source[i] == '*' && peek(1) == '/') {
          i += 2;
          break;
        }
        if (source[i] == '\n') ++line;
        ++i;
      }
      continue;
    }

    // Raw string literal, with optional encoding prefix: R"d(...)d".
    // The body is opaque — braces, quotes, and code-shaped text inside it
    // must not reach the analyzer.
    {
      std::size_t p = i;
      if (source[p] == 'u' && p + 1 < n && source[p + 1] == '8') p += 2;
      else if (source[p] == 'L' || source[p] == 'u' || source[p] == 'U') p += 1;
      if (p < n && source[p] == 'R' && p + 1 < n && source[p + 1] == '"') {
        std::size_t q = p + 2;
        std::string delim;
        while (q < n && source[q] != '(') delim.push_back(source[q++]);
        const std::string closer = ")" + delim + "\"";
        const int start_line = line;
        std::size_t body_begin = q < n ? q + 1 : n;
        std::size_t end = source.find(closer, body_begin);
        std::string body;
        if (end == std::string::npos) {
          body = source.substr(body_begin);
          i = n;
        } else {
          body = source.substr(body_begin, end - body_begin);
          i = end + closer.size();
        }
        for (char bc : body) {
          if (bc == '\n') ++line;
        }
        tokens.push_back({TokenKind::kString, std::move(body), start_line});
        continue;
      }
    }

    // Ordinary string / char literal, with optional encoding prefix.
    {
      std::size_t p = i;
      if (source[p] == 'u' && p + 1 < n && source[p + 1] == '8' &&
          p + 2 < n && (source[p + 2] == '"' || source[p + 2] == '\'')) {
        p += 2;
      } else if ((source[p] == 'L' || source[p] == 'u' || source[p] == 'U') &&
                 p + 1 < n && (source[p + 1] == '"' || source[p + 1] == '\'')) {
        p += 1;
      }
      if (p < n && (source[p] == '"' || source[p] == '\'')) {
        const char quote = source[p];
        const int start_line = line;
        std::size_t q = p + 1;
        std::string body;
        while (q < n && source[q] != quote) {
          if (source[q] == '\\' && q + 1 < n) {
            body.push_back(source[q]);
            body.push_back(source[q + 1]);
            if (source[q + 1] == '\n') ++line;
            q += 2;
            continue;
          }
          if (source[q] == '\n') {
            // Unterminated literal: stop at the newline so the rest of the
            // file still lexes (keeps findings' line numbers intact).
            break;
          }
          body.push_back(source[q]);
          ++q;
        }
        i = q < n && source[q] == quote ? q + 1 : q;
        tokens.push_back({quote == '"' ? TokenKind::kString : TokenKind::kChar,
                          std::move(body), start_line});
        continue;
      }
    }

    // Identifier.
    if (IsIdentStart(c)) {
      std::size_t q = i;
      while (q < n && IsIdentChar(source[q])) ++q;
      tokens.push_back({TokenKind::kIdentifier, source.substr(i, q - i), line});
      i = q;
      continue;
    }

    // Number (including 0x..., digit separators, suffixes, and the
    // pp-number continuation for exponents like 1e-9).
    if (IsDigit(c) || (c == '.' && IsDigit(peek(1)))) {
      std::size_t q = i;
      while (q < n) {
        const char d = source[q];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++q;
          continue;
        }
        if ((d == '+' || d == '-') && q > i &&
            (source[q - 1] == 'e' || source[q - 1] == 'E' ||
             source[q - 1] == 'p' || source[q - 1] == 'P')) {
          ++q;
          continue;
        }
        break;
      }
      tokens.push_back({TokenKind::kNumber, source.substr(i, q - i), line});
      i = q;
      continue;
    }

    // Punctuators the analyzer matches as units.
    if (c == ':' && peek(1) == ':') {
      tokens.push_back({TokenKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      tokens.push_back({TokenKind::kPunct, "->", line});
      i += 2;
      continue;
    }

    tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }

  return tokens;
}

}  // namespace nsm_analyze
