#include "checks.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace nsm_analyze {

namespace {

std::string Location(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

/// Basename of a display path.
std::string Basename(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Directory component of a lock id or decl file used to disambiguate
/// same-named members: "mpimini/comm::mutex" -> "mpimini",
/// "src/mpimini/comm_state.hpp" -> "mpimini".
std::string DirComponent(const std::string& path_or_id) {
  std::string s = path_or_id;
  if (s.rfind("src/", 0) == 0) s = s.substr(4);
  const std::size_t cut = s.find_first_of("/:");
  return cut == std::string::npos ? s : s.substr(0, cut);
}

std::string MemberOf(const std::string& lock_id) {
  const std::size_t sep = lock_id.rfind("::");
  return sep == std::string::npos ? lock_id : lock_id.substr(sep + 2);
}

}  // namespace

std::string RankConstantName(const std::string& lock_id) {
  std::string name = "k";
  bool upper_next = true;
  for (std::size_t i = 0; i < lock_id.size(); ++i) {
    const char c = lock_id[i];
    if (c == '/' || c == ':' || c == '_' || c == '.' || c == '-') {
      upper_next = true;
      continue;
    }
    if (upper_next && c >= 'a' && c <= 'z') {
      name.push_back(static_cast<char>(c - 'a' + 'A'));
    } else {
      name.push_back(c);
    }
    upper_next = false;
  }
  return name;
}

bool MatchesNameTaxonomy(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool saw_dot = false;
  char prev = '\0';
  for (char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
    if (c == '.') {
      if (prev == '.' || prev == '\0') return false;
      saw_dot = true;
    } else if (!word) {
      return false;
    }
    prev = c;
  }
  return saw_dot;
}

// ---- index / graph ---------------------------------------------------------

struct Analysis::Summary {
  struct Acquire {
    std::string lock;
    int line;
    bool core;
  };
  struct Blocker {
    std::string name;
    int line;
  };
  std::vector<Acquire> acquires;
  std::vector<Blocker> blockers;  // blocking mpimini calls and condvar waits
};

Analysis::Analysis(std::vector<FileModel> files, Config config)
    : files_(std::move(files)), config_(std::move(config)) {}

const Function* Analysis::Resolve(const std::string& callee,
                                  const std::string& caller_file) const {
  const Function* same_file = nullptr;
  const Function* unique = nullptr;
  int count = 0;
  for (const FileModel& fm : files_) {
    for (const Function& f : fm.functions) {
      if (f.name != callee) continue;
      if (fm.file == caller_file) {
        if (same_file != nullptr) return nullptr;  // ambiguous in-file
        same_file = &f;
      }
      unique = &f;
      ++count;
    }
  }
  if (same_file != nullptr) return same_file;
  return count == 1 ? unique : nullptr;  // ambiguous across files: skip
}

void Analysis::BuildGraph() {
  if (graph_built_) return;
  graph_built_ = true;

  // Pass 1: per-function summaries (what each function acquires / where it
  // blocks), the facts one-level callee propagation consumes.
  std::unordered_map<const Function*, Summary> summaries;
  for (const FileModel& fm : files_) {
    for (const Function& f : fm.functions) {
      Summary s;
      for (const Event& e : f.events) {
        if (e.kind == EventKind::kGuardAcquire) {
          s.acquires.push_back({e.name, e.line, e.core_guard});
        } else if (e.kind == EventKind::kBlockingCall) {
          s.blockers.push_back({e.name, e.line});
        } else if (e.kind == EventKind::kCondWait) {
          s.blockers.push_back({"CondVar::Wait", e.line});
        }
      }
      summaries.emplace(&f, std::move(s));
    }
  }

  std::map<std::pair<std::string, std::string>, std::string> edge_witness;
  std::set<std::string> locks;
  std::set<std::string> core_locks;

  struct Live {
    std::string lock;
    int depth;
    int line;
  };

  for (const FileModel& fm : files_) {
    const bool blocking_allowed =
        config_.blocking_under_lock_allowed.count(fm.file) != 0;
    for (const Function& f : fm.functions) {
      std::vector<Live> live;
      for (const Event& e : f.events) {
        switch (e.kind) {
          case EventKind::kScopeClose:
            while (!live.empty() && live.back().depth > e.depth) {
              live.pop_back();
            }
            break;
          case EventKind::kGuardAcquire: {
            locks.insert(e.name);
            if (e.core_guard) core_locks.insert(e.name);
            for (const Live& held : live) {
              if (held.lock == e.name) continue;
              edge_witness.emplace(
                  std::make_pair(held.lock, e.name),
                  Location(fm.file, e.line) + " (" + f.qualified + "): `" +
                      e.name + "` acquired while `" + held.lock +
                      "` held since line " + std::to_string(held.line));
            }
            live.push_back({e.name, e.depth, e.line});
            break;
          }
          case EventKind::kCondWait:
          case EventKind::kBlockingCall: {
            if (live.empty() || blocking_allowed) break;
            const char* what = e.kind == EventKind::kCondWait
                                   ? "condition-variable wait"
                                   : (e.collective ? "collective"
                                                   : "blocking mpimini call");
            Finding fi;
            fi.file = fm.file;
            fi.line = e.line;
            fi.rule = "blocking-under-lock";
            fi.message = std::string(what) + " `" + e.name + "` in " +
                         f.qualified + " while guard on `" +
                         live.back().lock + "` (acquired line " +
                         std::to_string(live.back().line) +
                         ") is live: a peer rank needing the mutex "
                         "deadlocks the call";
            blocking_findings_.push_back(std::move(fi));
            break;
          }
          case EventKind::kCall: {
            const Function* callee = Resolve(e.name, fm.file);
            if (callee == nullptr || callee == &f || live.empty()) break;
            const Summary& cs = summaries.at(callee);
            for (const Summary::Acquire& a : cs.acquires) {
              locks.insert(a.lock);
              if (a.core) core_locks.insert(a.lock);
              for (const Live& held : live) {
                if (held.lock == a.lock) continue;
                edge_witness.emplace(
                    std::make_pair(held.lock, a.lock),
                    Location(fm.file, e.line) + " (" + f.qualified +
                        ") holds `" + held.lock + "` and calls " +
                        callee->qualified + ", which acquires `" + a.lock +
                        "` at " + Location(callee->file, a.line));
              }
            }
            if (!blocking_allowed) {
              for (const Summary::Blocker& b : cs.blockers) {
                Finding fi;
                fi.file = fm.file;
                fi.line = e.line;
                fi.rule = "blocking-under-lock";
                fi.message =
                    f.qualified + " holds guard on `" + live.back().lock +
                    "` (acquired line " +
                    std::to_string(live.back().line) + ") across a call to " +
                    callee->qualified + ", which reaches blocking `" +
                    b.name + "` at " + Location(callee->file, b.line) +
                    " (cross-scope: invisible to the regex lint)";
                blocking_findings_.push_back(std::move(fi));
              }
            }
            break;
          }
        }
      }
    }
  }

  locks_.assign(locks.begin(), locks.end());
  core_locks_.assign(core_locks.begin(), core_locks.end());
  for (const auto& [edge, witness] : edge_witness) {
    edges_.push_back({edge.first, edge.second, witness});
  }
}

// ---- check 1 + 2 -----------------------------------------------------------

void Analysis::CheckLockOrderAndBlocking(bool lock_order, bool blocking,
                                         std::vector<Finding>* findings) {
  BuildGraph();
  if (blocking) {
    findings->insert(findings->end(), blocking_findings_.begin(),
                     blocking_findings_.end());
  }
  if (!lock_order) return;

  // Cycle detection over the acquired-before graph.  Any cycle is a
  // deadlock schedule; for the classic ABBA two-cycle the two witnesses
  // are exactly the "two paths" the finding must print.
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : edges_) adj[e.from].push_back(&e);

  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<const LockEdge*> path;
  std::set<std::string> reported;  // canonical cycle keys

  struct Dfs {
    std::map<std::string, std::vector<const LockEdge*>>& adj;
    std::map<std::string, int>& color;
    std::vector<const LockEdge*>& path;
    std::set<std::string>& reported;
    std::vector<Finding>* findings;

    void Visit(const std::string& u) {
      color[u] = 1;
      for (const LockEdge* e : adj[u]) {
        if (color[e->to] == 1) {
          Report(e);
        } else if (color[e->to] == 0) {
          path.push_back(e);
          Visit(e->to);
          path.pop_back();
        }
      }
      color[u] = 2;
    }

    void Report(const LockEdge* back) {
      // The cycle: the suffix of `path` starting where `back->to` was
      // entered, plus the back edge itself.
      std::vector<const LockEdge*> cycle;
      bool in_cycle = path.empty();
      for (const LockEdge* e : path) {
        if (e->from == back->to) in_cycle = true;
        if (in_cycle) cycle.push_back(e);
      }
      cycle.push_back(back);

      std::set<std::string> members;
      for (const LockEdge* e : cycle) members.insert(e->from);
      std::string key;
      for (const std::string& m : members) key += m + "|";
      if (!reported.insert(key).second) return;

      std::ostringstream msg;
      msg << "lock-order cycle (" << cycle.size()
          << " witness path(s) — a schedule interleaving them deadlocks):";
      for (const LockEdge* e : cycle) {
        msg << "\n    `" << e->from << "` -> `" << e->to << "`  "
            << e->witness;
      }
      Finding fi;
      const std::string& loc = cycle.front()->witness;
      const std::size_t colon = loc.find(':');
      fi.file = colon == std::string::npos ? "" : loc.substr(0, colon);
      fi.line = 0;
      fi.rule = "lock-order";
      fi.message = msg.str();
      findings->push_back(std::move(fi));
    }
  } dfs{adj, color, path, reported, findings};

  for (const std::string& lock : locks_) {
    if (color[lock] == 0) dfs.Visit(lock);
  }
}

// ---- check 3 ---------------------------------------------------------------

void Analysis::CheckCollectiveDivergence(std::vector<Finding>* findings) {
  for (const FileModel& fm : files_) {
    if (config_.divergence_allowed.count(fm.file) != 0) continue;
    for (const RankConditional& rc : fm.rank_conditionals) {
      // Compare the multisets of collective names on the two branches.
      std::multiset<std::string> then_names;
      std::multiset<std::string> else_names;
      for (const BranchCollective& c : rc.then_branch) {
        then_names.insert(c.name);
      }
      for (const BranchCollective& c : rc.else_branch) {
        else_names.insert(c.name);
      }
      if (then_names == else_names) continue;

      auto describe = [](const std::vector<BranchCollective>& branch) {
        if (branch.empty()) return std::string("nothing");
        std::string out;
        for (const BranchCollective& c : branch) {
          if (!out.empty()) out += ", ";
          out += "`" + c.name + "` (line " + std::to_string(c.line) + ")";
        }
        return out;
      };

      Finding fi;
      fi.file = fm.file;
      fi.line = rc.line;
      fi.rule = "collective-divergence";
      if (rc.is_switch) {
        fi.message =
            "collective call inside a switch on the rank: " +
            describe(rc.then_branch) +
            " runs on some ranks only — every rank must make the same "
            "collective calls in the same order or the others hang";
      } else {
        fi.message =
            "rank-conditional collective: then-branch calls " +
            describe(rc.then_branch) + ", " +
            (rc.has_else ? "else-branch calls " + describe(rc.else_branch)
                         : std::string("and there is no else branch")) +
            " — ranks taking the other path never enter the collective and "
            "the callers hang";
      }
      findings->push_back(std::move(fi));
    }
  }
}

// ---- check 4: registry -----------------------------------------------------

namespace {

struct NameInfo {
  std::set<std::string> kinds;  // "span" / "metric"
  std::set<std::string> files;
  std::string first_file;
  int first_line = 0;
};

std::map<std::string, NameInfo> CollectNames(
    const std::vector<FileModel>& files) {
  std::map<std::string, NameInfo> names;
  for (const FileModel& fm : files) {
    for (const NameUse& use : fm.names) {
      NameInfo& info = names[use.name];
      info.kinds.insert(use.kind == NameKind::kSpan ? "span" : "metric");
      info.files.insert(use.file);
      if (info.first_line == 0) {
        info.first_file = use.file;
        info.first_line = use.line;
      }
    }
  }
  return names;
}

/// Names registered in a REGISTRY.md: the first backticked cell of each
/// table row.
std::set<std::string> ParseRegistry(const std::string& text) {
  std::set<std::string> names;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '|') continue;
    const std::size_t open = line.find('`', i);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    names.insert(line.substr(open + 1, close - open - 1));
  }
  return names;
}

}  // namespace

void Analysis::CheckRegistry(const std::string* registry_text,
                             std::vector<Finding>* findings) {
  const std::map<std::string, NameInfo> names = CollectNames(files_);

  for (const auto& [name, info] : names) {
    if (!MatchesNameTaxonomy(name)) {
      Finding fi;
      fi.file = info.first_file;
      fi.line = info.first_line;
      fi.rule = "registry";
      fi.message = "\"" + name +
                   "\" does not match the dotted lowercase layer.phase "
                   "taxonomy (DESIGN.md §5)";
      findings->push_back(std::move(fi));
      continue;
    }
    // Per-directory prefix rules (shared with nsm_lint via nsm_rules.cfg).
    for (const std::string& file : info.files) {
      const std::string base = Basename(file);
      for (const PrefixRule& rule : config_.prefix_rules) {
        if (file.find(rule.dir) == std::string::npos) continue;
        if (!rule.tags.empty()) {
          bool tagged = false;
          for (const std::string& tag : rule.tags) {
            if (base.find(tag) != std::string::npos) tagged = true;
          }
          if (!tagged) continue;
        }
        bool ok = false;
        for (const std::string& prefix : rule.prefixes) {
          if (name.rfind(prefix, 0) == 0) ok = true;
        }
        if (!ok) {
          std::string allowed;
          for (const std::string& prefix : rule.prefixes) {
            if (!allowed.empty()) allowed += " or ";
            allowed += "`" + prefix + "`";
          }
          Finding fi;
          fi.file = file;
          fi.line = info.first_line;
          fi.rule = "registry";
          fi.message = "name \"" + name + "\" recorded under " + rule.dir +
                       " must carry the " + allowed + " prefix";
          findings->push_back(std::move(fi));
        }
      }
    }
  }

  if (registry_text == nullptr) return;
  const std::set<std::string> registered = ParseRegistry(*registry_text);
  for (const auto& [name, info] : names) {
    if (registered.count(name) == 0) {
      Finding fi;
      fi.file = info.first_file;
      fi.line = info.first_line;
      fi.rule = "registry";
      fi.message = "name \"" + name +
                   "\" is not in docs/REGISTRY.md — regenerate with "
                   "`nsm_analyze --write-registry`";
      findings->push_back(std::move(fi));
    }
  }
  for (const std::string& name : registered) {
    if (names.count(name) == 0) {
      Finding fi;
      fi.file = "docs/REGISTRY.md";
      fi.line = 0;
      fi.rule = "registry";
      fi.message = "registry entry \"" + name +
                   "\" is no longer recorded anywhere in the scanned tree — "
                   "regenerate with `nsm_analyze --write-registry`";
      findings->push_back(std::move(fi));
    }
  }
}

std::string Analysis::GenerateRegistry() {
  const std::map<std::string, NameInfo> names = CollectNames(files_);
  std::ostringstream out;
  out << "# Span & metric name registry\n"
      << "\n"
      << "Generated by `nsm_analyze --write-registry` from every span, "
         "instant-event,\n"
      << "and metric name literal in `src/`.  CI fails when a recorded name "
         "is absent\n"
      << "here or an entry below is no longer recorded anywhere "
         "(`nsm_analyze`'s\n"
      << "registry check) — regenerate after adding or retiring "
         "instrumentation:\n"
      << "\n"
      << "    ./build/tools/nsm_analyze/nsm_analyze --write-registry\n"
      << "\n"
      << "| Name | Kind | Recorded in |\n"
      << "|------|------|-------------|\n";
  for (const auto& [name, info] : names) {
    out << "| `" << name << "` | ";
    std::string kinds;
    for (const std::string& k : info.kinds) {
      if (!kinds.empty()) kinds += ", ";
      kinds += k;
    }
    out << kinds << " | ";
    std::string files;
    for (const std::string& f : info.files) {
      if (!files.empty()) files += ", ";
      files += f;
    }
    out << files << " |\n";
  }
  return out.str();
}

// ---- lock ranks ------------------------------------------------------------

std::string Analysis::GenerateRanks(std::vector<Finding>* findings) {
  BuildGraph();

  // Kahn's algorithm over the rankable (core::Mutex) locks, alphabetical
  // tie-break so emission is deterministic; `lock-rank-last` locks are held
  // back until everything else is ranked (crash-dump mutexes must be
  // acquirable while anything is held).
  std::set<std::string> last(config_.lock_rank_last.begin(),
                             config_.lock_rank_last.end());
  std::map<std::string, std::set<std::string>> out_edges;
  std::map<std::string, int> in_degree;
  std::set<std::string> core(core_locks_.begin(), core_locks_.end());
  for (const std::string& lock : core_locks_) in_degree[lock] = 0;
  for (const LockEdge& e : edges_) {
    if (core.count(e.from) == 0 || core.count(e.to) == 0) continue;
    if (out_edges[e.from].insert(e.to).second) ++in_degree[e.to];
  }
  for (const std::string& lock : config_.lock_rank_last) {
    if (core.count(lock) != 0 && !out_edges[lock].empty()) {
      Finding fi;
      fi.file = "tools/nsm_rules.cfg";
      fi.rule = "lock-rank";
      fi.message = "lock-rank-last lock `" + lock +
                   "` has outgoing acquired-before edges — it cannot be "
                   "ranked last";
      findings->push_back(std::move(fi));
    }
  }

  std::vector<std::string> order;
  std::set<std::string> pending(core_locks_.begin(), core_locks_.end());
  while (!pending.empty()) {
    std::string next;
    for (const std::string& lock : pending) {  // alphabetical (set order)
      if (in_degree[lock] == 0 && last.count(lock) == 0) {
        next = lock;
        break;
      }
    }
    if (next.empty()) {
      for (const std::string& lock : config_.lock_rank_last) {
        if (pending.count(lock) != 0 && in_degree[lock] == 0) {
          next = lock;
          break;
        }
      }
    }
    if (next.empty()) {
      Finding fi;
      fi.rule = "lock-rank";
      fi.message =
          "cannot assign lock ranks: the acquired-before graph has a cycle "
          "(see the lock-order findings)";
      findings->push_back(std::move(fi));
      break;
    }
    order.push_back(next);
    pending.erase(next);
    for (const std::string& to : out_edges[next]) {
      if (pending.count(to) != 0) --in_degree[to];
    }
  }

  std::set<std::string> constants;
  std::ostringstream out;
  out << "// Generated by `nsm_analyze --write-ranks` - DO NOT EDIT.\n"
      << "//\n"
      << "// Lock-rank constants for the compile-time-gated "
         "(-DNSM_LOCK_RANK=ON)\n"
      << "// acquisition-order assertion in core::Mutex.  Rank order is the\n"
      << "// topological order of the analyzer's acquired-before graph\n"
      << "// (DESIGN.md §6): a thread may only acquire a mutex whose rank "
         "is\n"
      << "// strictly greater than that of every ranked mutex it already "
         "holds,\n"
      << "// so any interleaving the graph does not approve aborts naming "
         "both\n"
      << "// locks.  CI fails when this file drifts from what the analyzer\n"
      << "// would emit.\n"
      << "#pragma once\n"
      << "\n"
      << "#include \"core/thread_annotations.hpp\"\n"
      << "\n"
      << "namespace core::lock_rank {\n"
      << "\n";
  int rank = 10;
  for (const std::string& lock : order) {
    const std::string constant = RankConstantName(lock);
    if (!constants.insert(constant).second) {
      Finding fi;
      fi.rule = "lock-rank";
      fi.message = "rank constant name collision: two locks map to `" +
                   constant + "`";
      findings->push_back(std::move(fi));
    }
    out << "inline constexpr LockRankSpec " << constant << "{" << rank
        << ", \"" << lock << "\"};\n";
    rank += 10;
  }
  out << "\n"
      << "}  // namespace core::lock_rank\n";
  return out.str();
}

void Analysis::CheckLockRanks(const std::string* committed_ranks,
                              std::vector<Finding>* findings) {
  BuildGraph();

  if (committed_ranks != nullptr) {
    std::vector<Finding> generation;
    const std::string expected = GenerateRanks(&generation);
    findings->insert(findings->end(), generation.begin(), generation.end());
    if (*committed_ranks != expected) {
      Finding fi;
      fi.file = "src/core/lock_ranks.hpp";
      fi.rule = "lock-rank";
      fi.message =
          "src/core/lock_ranks.hpp is stale — regenerate with "
          "`nsm_analyze --write-ranks`";
      findings->push_back(std::move(fi));
    }
  }

  // Every acquired core::Mutex must have exactly one declaration carrying
  // its own constant.  A declaration is matched to a lock id by member name
  // plus directory (the declaring header and the acquiring .cpp share a
  // directory in this repo's layout).
  std::vector<const RankedMutexDecl*> decls;
  for (const FileModel& fm : files_) {
    for (const RankedMutexDecl& d : fm.ranked_decls) decls.push_back(&d);
  }
  for (const std::string& lock : core_locks_) {
    const std::string member = MemberOf(lock);
    const std::string dir = DirComponent(lock);
    std::vector<const RankedMutexDecl*> matches;
    for (const RankedMutexDecl* d : decls) {
      if (d->member == member && DirComponent(d->file) == dir) {
        matches.push_back(d);
      }
    }
    if (matches.empty()) {
      Finding fi;
      fi.rule = "lock-rank";
      fi.message = "no core::Mutex declaration found for acquired lock `" +
                   lock + "` (member `" + member +
                   "` in directory `" + dir + "`)";
      findings->push_back(std::move(fi));
      continue;
    }
    if (matches.size() > 1) {
      Finding fi;
      fi.file = matches[1]->file;
      fi.line = matches[1]->line;
      fi.rule = "lock-rank";
      fi.message = "ambiguous declarations for lock `" + lock +
                   "`: two `core::Mutex " + member +
                   "` members in directory `" + dir +
                   "` — rename one (DESIGN.md §6 lock-identity rule)";
      findings->push_back(std::move(fi));
      continue;
    }
    const RankedMutexDecl* d = matches.front();
    const std::string expected = RankConstantName(lock);
    if (d->spec_constant.empty()) {
      Finding fi;
      fi.file = d->file;
      fi.line = d->line;
      fi.rule = "lock-rank";
      fi.message = "`core::Mutex " + member +
                   "` is acquired but carries no lock-rank spec — declare "
                   "it as `core::Mutex " + member +
                   "{core::lock_rank::" + expected + "};`";
      findings->push_back(std::move(fi));
    } else if (d->spec_constant != expected) {
      Finding fi;
      fi.file = d->file;
      fi.line = d->line;
      fi.rule = "lock-rank";
      fi.message = "`core::Mutex " + member + "` is bound to `" +
                   d->spec_constant + "` but its lock id `" + lock +
                   "` maps to `" + expected + "`";
      findings->push_back(std::move(fi));
    }
  }
}

std::string Analysis::GenerateDot() {
  BuildGraph();
  std::ostringstream out;
  out << "// Acquired-before graph emitted by `nsm_analyze --dot`.\n"
      << "// Nodes: every lock acquired in the scanned tree; an edge A -> B\n"
      << "// means some thread acquires B while holding A.  A cycle here is\n"
      << "// a deadlock schedule.\n"
      << "digraph lock_order {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const std::string& lock : locks_) {
    out << "  \"" << lock << "\";\n";
  }
  for (const LockEdge& e : edges_) {
    std::string label = e.witness;
    const std::size_t paren = label.find(" (");
    if (paren != std::string::npos) label.resize(paren);  // file:line only
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"" << label
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace nsm_analyze
