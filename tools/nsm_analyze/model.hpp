// nsm_analyze model: per-file extraction of the facts the checks consume.
//
// From each translation unit's token stream the extractor produces:
//
//   - every function *definition* (free function, member function defined
//     in-class or out-of-line), with its ordered event list:
//       guard acquisitions  (core::MutexLock / std::lock_guard /
//                            std::unique_lock / std::scoped_lock), with the
//                            brace depth at which the guard lives;
//       condvar waits       (.Wait(...) — the CondVar vocabulary);
//       blocking mpimini    (collectives, receives, probes — method calls
//                            and, inside comm's own implementation, bare
//                            member calls);
//       plain calls         (for one-level call-graph propagation);
//   - every span/metric name literal (registry extraction, multi-line safe);
//   - every rank-conditional (`if`/`switch` testing rank/Rank()) with the
//     collective call names on each branch (collective-divergence check);
//   - every `core::Mutex` declaration carrying a lock-rank spec constant
//     (rank-binding validation).
//
// Lock identity: a guard names its mutex by the *member* it locks (the last
// identifier of the first constructor argument), qualified by the acquiring
// file — "mpimini/comm::mutex", "core/async_pipeline::mutex_".  Two members
// with the same name locked from the same file would alias; the repo's
// convention of one mutex-bearing structure per translation unit keeps the
// identity exact, and DESIGN.md §6 documents the rule.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace nsm_analyze {

enum class EventKind {
  kGuardAcquire,  // a scoped guard came alive
  kCondWait,      // .Wait(mutex) — blocks until notified
  kBlockingCall,  // blocking mpimini call (collective / receive / probe)
  kCall,          // plain call, candidate for callee propagation
  kScopeClose,    // a '}' closed a scope; guards declared deeper die here
};

struct Event {
  EventKind kind;
  int line = 0;
  int depth = 0;          // brace depth inside the function body (body = 1);
                          // kScopeClose: the depth AFTER the close — guards
                          // with depth > this are dead
  std::string name;       // guard: lock id; calls: callee name
  bool collective = false;  // kBlockingCall: one of the true collectives
  bool core_guard = false;  // kGuardAcquire: core::MutexLock (rankable) vs
                            // std:: guard over a plain std::mutex
};

struct Function {
  std::string name;        // unqualified name (last component)
  std::string qualified;   // as written, e.g. "Comm::Barrier"
  std::string file;        // display path, e.g. "src/mpimini/comm.cpp"
  int line = 0;
  std::vector<Event> events;  // in source order
};

enum class NameKind { kSpan, kMetric };

struct NameUse {
  NameKind kind;
  std::string name;
  std::string file;
  int line = 0;
};

/// One collective call site inside a rank-conditional branch.
struct BranchCollective {
  std::string name;
  int line = 0;
};

struct RankConditional {
  std::string file;
  int line = 0;
  bool is_switch = false;
  bool has_else = false;
  std::vector<BranchCollective> then_branch;
  std::vector<BranchCollective> else_branch;
};

/// A `core::Mutex` declaration.  `spec_constant` is the referenced
/// `core::lock_rank::k...` constant, or empty for an unranked declaration
/// (`core::Mutex m;`) — the lock-rank gate requires a spec on every mutex
/// the code actually acquires.
struct RankedMutexDecl {
  std::string file;
  int line = 0;
  std::string member;         // declared member name
  std::string spec_constant;  // e.g. "kMpiminiCommMutex"; empty = unranked
};

struct FileModel {
  std::string file;  // display path
  std::vector<Function> functions;
  std::vector<NameUse> names;
  std::vector<RankConditional> rank_conditionals;
  std::vector<RankedMutexDecl> ranked_decls;
};

/// True for the mpimini calls that block until a peer rank acts.
bool IsBlockingCall(const std::string& name);
/// True for the subset that are collectives (every rank must call them).
bool IsCollectiveCall(const std::string& name);

/// Extract the model from one file's tokens.  `display_path` is the
/// repo-relative path used for findings and lock identities.
FileModel ExtractFile(const std::string& display_path,
                      const std::vector<Token>& tokens);

/// Lock identity for a guard in `display_path` locking `member`:
/// "<dir>/<stem>::<member>" (e.g. "mpimini/comm::mutex").
std::string LockId(const std::string& display_path, const std::string& member);

}  // namespace nsm_analyze
