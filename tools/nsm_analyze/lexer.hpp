// nsm_analyze lexer: a real C++ tokenizer for the concurrency analyzer.
//
// The regex lint (tools/nsm_lint.py) works line by line, so it cannot see a
// guard declared in a caller, a call split across lines, or the difference
// between code and the inside of a raw string.  This lexer produces the
// token stream the analyzer's scope/guard tracker and call-graph extractor
// operate on, handling everything that defeats line regexes:
//
//   - line and block comments (C++ block comments do not nest: the first
//     `*/` ends the comment, and the analyzer must resume lexing there);
//   - string/char literals with escape sequences, and encoding prefixes
//     (L, u8, u, U);
//   - raw string literals R"delim(...)delim" whose bodies may contain
//     braces, quotes, and code-shaped text;
//   - preprocessor directives, including backslash line continuations
//     (a macro body spanning ten continued lines is one logical directive
//     and contributes no tokens);
//   - multi-character punctuators the analyzer matches on (`::`, `->`).
//
// Tokens keep their 1-based source line so findings are clickable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nsm_analyze {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords (the parser distinguishes)
  kNumber,       // numeric literals, including separators and suffixes
  kString,       // string literal; `text` holds the *contents* (no quotes)
  kChar,         // character literal; `text` holds the contents
  kPunct,        // punctuator; `text` is "::", "->", or a single character
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

/// Tokenize one translation unit.  Never throws on malformed input: an
/// unterminated literal or comment simply ends at end-of-file (the analyzer
/// reports per-file findings, not parse errors, and must make progress on
/// any text a repository can contain).
std::vector<Token> Lex(const std::string& source);

}  // namespace nsm_analyze
