#!/usr/bin/env python3
"""Repo linter: concurrency and artifact-hygiene rules the compilers can't see.

Rules (see DESIGN.md §6 "Correctness tooling"):

  raw-new               All data-plane storage goes through core::Buffer;
                        `new` / `delete` expressions are allowed only in
                        the files the shared config allowlists (the single
                        allocation site, src/core/buffer.cpp).
  collective-under-lock Blocking mpimini calls (collectives, receives,
                        probes) while a lock guard is live deadlock as soon
                        as a peer rank needs the same mutex to make
                        progress.  This regex pass only sees a guard in the
                        *same* brace scope as the call — it is the fast
                        pre-check; tools/nsm_analyze owns the rule and also
                        catches guards held in callers (cross-scope) and
                        condvar waits.  Allowlisted files (the
                        condvar-under-own-mutex pattern) come from the
                        shared config.
  span-name             Span / instant-event names are the dotted lowercase
                        `layer.phase` taxonomy (DESIGN.md §5a).
  metric-name           Metric names follow the same `plane.metric` form
                        (DESIGN.md §5b).
  name-prefix           Per-directory span/metric prefix rules from the
                        shared config (`prefix` directives): src/codec/
                        names carry `codec.` (DESIGN.md §3c), run-health
                        sources carry `monitor.` or `flightrec.`
                        (DESIGN.md §5c).
  json-atomic-write     JSON artifacts are written via instrument::AtomicFile
                        (temp + rename), never a plain std::ofstream — a
                        killed run must not leave a truncated file.
  include-hygiene       No duplicate includes; concurrency headers
                        (<mutex>, <thread>, ...) only where their types are
                        actually used.

Per-file allowlists and prefix rules are read from tools/nsm_rules.cfg,
shared with tools/nsm_analyze so an exemption added for one tool is seen by
the other.

Usage: nsm_lint.py [paths...]    (default: the repository's src/ tree)
Exit:  0 clean, 1 findings, 2 usage/config error.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

NAME_PATTERN = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

# Call sites whose first argument names a span or event on the trace
# timeline.
SPAN_CALL = re.compile(
    r"\b(?:Span|IdleScope)\s*(?:[a-z_][a-z0-9_]*\s*)?\(\s*\"([^\"]*)\""
    r"|\b(?:Instant)\s*\(\s*\"([^\"]*)\"")

# Call sites whose first argument names a metric or counter.
METRIC_CALL = re.compile(
    r"\b(?:SampleCounter|AddCounter|Set|Add|SetTotal|Observe|"
    r"DefineHistogram)\s*\(\s*\"([^\"]*)\"")

# A `new` that allocates (excludes `= delete`-style declarations, which the
# DELETE_EXPR pattern also skips by requiring an operand).
NEW_EXPR = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:][\w:]*|\[)")
DELETE_EXPR = re.compile(r"\bdelete\b\s*(?:\[\s*\]\s*)?(?=[A-Za-z_(*])")

LOCK_GUARD = re.compile(
    r"\b(?:core::MutexLock|std::lock_guard|std::unique_lock|"
    r"std::scoped_lock)\b(?!\s*[;>)])")

BLOCKING_CALL = re.compile(
    r"[.>](?:Barrier|Bcast|Reduce|AllReduce|AllReduceValue|Gather|"
    r"GatherBytes|AllGather|AllToAllBytes|Split|RecvBytes|RecvBuffer|"
    r"Recv|RecvValue|Probe)\s*[(<]")

# Headers that should only appear where their vocabulary is used.
HEADER_USE = {
    "mutex": re.compile(
        r"std::(?:mutex|lock_guard|unique_lock|scoped_lock|timed_mutex|"
        r"recursive_mutex|call_once|once_flag)"),
    "condition_variable": re.compile(r"std::condition_variable"),
    "atomic": re.compile(r"std::(?:atomic|memory_order)"),
    "thread": re.compile(r"std::(?:thread|this_thread)"),
    "deque": re.compile(r"std::deque"),
}

# Shared configuration (tools/nsm_rules.cfg): allowlists and prefix rules,
# de-duplicated with nsm_analyze.  Directives this linter does not consume
# (lock-rank-last, divergence-allowed) belong to the analyzer and are
# skipped here.
RULES_CFG = REPO_ROOT / "tools" / "nsm_rules.cfg"
KNOWN_DIRECTIVES = {
    "raw-new-allowed", "blocking-under-lock-allowed", "divergence-allowed",
    "lock-rank-last", "prefix",
}


class RulesConfig:
    def __init__(self):
        self.raw_new_allowed = set()
        self.blocking_under_lock_allowed = set()
        # (dir fragment, basename tags or None, allowed prefixes)
        self.prefix_rules = []


def load_rules_config(path=RULES_CFG):
    config = RulesConfig()
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"nsm_lint: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        directive = fields[0]
        if directive not in KNOWN_DIRECTIVES:
            print(f"nsm_lint: {path}:{lineno}: unknown directive "
                  f"{directive}", file=sys.stderr)
            sys.exit(2)
        if directive == "raw-new-allowed" and len(fields) == 2:
            config.raw_new_allowed.add(fields[1])
        elif directive == "blocking-under-lock-allowed" and len(fields) == 2:
            config.blocking_under_lock_allowed.add(fields[1])
        elif directive == "prefix":
            if len(fields) != 4:
                print(f"nsm_lint: {path}:{lineno}: prefix needs "
                      f"<dir> <tags|*> <prefixes>", file=sys.stderr)
                sys.exit(2)
            tags = None if fields[2] == "*" else tuple(fields[2].split(","))
            config.prefix_rules.append(
                (fields[1], tags, tuple(fields[3].split(","))))
        # lock-rank-last / divergence-allowed: analyzer-only, ignored.
    return config


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Return text with comments removed and literal contents blanked,
    preserving line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


def prefix_findings(config, posix, kind, name, rel, lineno, findings):
    """Apply the shared per-directory prefix rules to one recorded name."""
    basename = posix.rsplit("/", 1)[-1]
    for dir_fragment, tags, prefixes in config.prefix_rules:
        if dir_fragment not in posix:
            continue
        if tags is not None and not any(tag in basename for tag in tags):
            continue
        if not name.startswith(tuple(prefixes)):
            allowed = " or ".join(prefixes)
            findings.append(Finding(
                rel, lineno, "name-prefix",
                f'{kind} "{name}" recorded under {dir_fragment} must carry '
                f"the {allowed} prefix (DESIGN.md §3c/§5c)"))


def lint_names(rel, raw_lines, config, findings):
    posix = rel.replace("\\", "/")
    for lineno, line in enumerate(raw_lines, 1):
        stripped = line.lstrip()
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        for match in SPAN_CALL.finditer(line):
            name = match.group(1) or match.group(2)
            if not name:
                continue
            if not NAME_PATTERN.match(name):
                findings.append(Finding(
                    rel, lineno, "span-name",
                    f'"{name}" does not match the dotted lowercase '
                    f"layer.phase taxonomy (DESIGN.md §5a)"))
            else:
                prefix_findings(config, posix, "span", name, rel, lineno,
                                findings)
        for match in METRIC_CALL.finditer(line):
            name = match.group(1)
            if not name:
                continue
            if not NAME_PATTERN.match(name):
                findings.append(Finding(
                    rel, lineno, "metric-name",
                    f'"{name}" does not match the dotted lowercase '
                    f"plane.metric taxonomy (DESIGN.md §5b)"))
            else:
                prefix_findings(config, posix, "metric", name, rel, lineno,
                                findings)


def lint_code(rel, code_lines, raw_lines, config, findings):
    allow_raw_new = rel in config.raw_new_allowed
    allow_lock_call = rel in config.blocking_under_lock_allowed

    depth = 0
    lock_depths = []  # brace depth at which each live guard was declared
    includes_seen = {}
    joined = "\n".join(code_lines)

    for lineno, line in enumerate(code_lines, 1):
        inc = re.match(r'\s*#\s*include\s*[<"]([^>"]+)[>"]', line)
        if inc:
            header = inc.group(1)
            if header in includes_seen:
                findings.append(Finding(
                    rel, lineno, "include-hygiene",
                    f"duplicate include of <{header}> "
                    f"(first at line {includes_seen[header]})"))
            else:
                includes_seen[header] = lineno
            use = HEADER_USE.get(header)
            if use and not use.search(joined):
                findings.append(Finding(
                    rel, lineno, "include-hygiene",
                    f"<{header}> included but none of its types are used"))

        if not allow_raw_new:
            if NEW_EXPR.search(line):
                findings.append(Finding(
                    rel, lineno, "raw-new",
                    "raw `new`: allocate through core::Buffer / standard "
                    "containers (only src/core/buffer.cpp may)"))
            if DELETE_EXPR.search(line):
                findings.append(Finding(
                    rel, lineno, "raw-new",
                    "raw `delete`: ownership belongs to core::Buffer / "
                    "smart pointers (only src/core/buffer.cpp may)"))

        # The .json literal lives in the (blanked) string, so match it on the
        # raw line with any trailing line comment cut off.
        if "ofstream" in line:
            raw = raw_lines[lineno - 1].split("//")[0]
            if re.search(r"json", raw, re.IGNORECASE):
                findings.append(Finding(
                    rel, lineno, "json-atomic-write",
                    "JSON artifacts must go through instrument::AtomicFile "
                    "(temp + rename), not a plain ofstream"))

        # Brace-scope lock tracking: a guard dies when its scope closes.
        # Same-scope only — the fast pre-check.  Cross-scope reachability
        # (guard held in a caller, condvar waits) is nsm_analyze's job;
        # this rule defers to it rather than half-reimplementing it.
        if LOCK_GUARD.search(line):
            lock_depths.append(depth)
        elif lock_depths and BLOCKING_CALL.search(line) and not allow_lock_call:
            findings.append(Finding(
                rel, lineno, "collective-under-lock",
                "blocking mpimini call while a lock guard is live: a peer "
                "rank needing the mutex deadlocks the collective "
                "(same-scope pre-check; nsm_analyze covers cross-scope)"))
        for c in line:
            if c == "{":
                depth += 1
            elif c == "}":
                depth = max(0, depth - 1)
                while lock_depths and lock_depths[-1] >= depth:
                    lock_depths.pop()


def lint_file(path, config, findings):
    rel = str(path.relative_to(REPO_ROOT)) if path.is_relative_to(
        REPO_ROOT) else str(path)
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    lint_names(rel, raw_lines, config, findings)
    lint_code(rel, code_lines, raw_lines, config, findings)


def collect(paths):
    files = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.cpp")) + sorted(p.rglob("*.hpp")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"nsm_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    targets = [pathlib.Path(a) for a in argv[1:]]
    if not targets:
        targets = [REPO_ROOT / "src"]
    config = load_rules_config()
    findings = []
    files = collect(targets)
    for f in files:
        lint_file(f, config, findings)
    for finding in findings:
        print(finding)
    print(f"nsm_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
