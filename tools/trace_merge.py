#!/usr/bin/env python3
"""Fuse per-group Chrome traces into one causally aligned timeline.

The workflow exports one trace file per communicator group (the simulation
group's ``trace.json`` and the endpoint group's ``trace_endpoint.json``),
each already clock-aligned: every timestamp carries the emitting rank's
calibrated offset to rank 0, and both files share one ``nsm.base_ns``
anchor when exported by the same run.  This tool

  * merges N such files into a single trace (open in Perfetto), shifting
    files whose ``base_ns`` anchors differ onto the earliest one;
  * pairs SST flow events (``ph:"s"`` on the sending sim worker with
    ``ph:"f"`` on the receiving endpoint rank, matched by id) and reports
    the per-step wire latency;
  * extracts the per-step critical path across the boundary — send ->
    wire/queue -> decode (sst.recv) -> analysis -> write — from the merged
    span timeline;
  * surfaces each lane's tracer-ring drop counts (``nsm_rank_digest``
    metadata), so a truncated timeline is never mistaken for a quiet one.

Exit codes: 0 = merged and valid; 1 = validation failure (an unpaired flow
event, a requested step whose spans were dropped, or --check finding a
delivered step without a send->recv link or a finite end-to-end latency);
2 = usage or unreadable input.

Usage:
  tools/trace_merge.py --out merged.json trace.json trace_endpoint.json
  tools/trace_merge.py --check --step 10 --out merged.json a.json b.json
"""

import argparse
import json
import math
import sys
from collections import defaultdict

# Endpoint-side span families that make up the post-wire critical path.
DECODE_SPANS = ("sst.recv",)
ANALYSIS_PREFIXES = ("analysis.",)
WRITE_SPANS = ("catalyst.write", "checkpoint.write")


def load_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {path} is not valid JSON: {err}")
    if "traceEvents" not in doc:
        sys.exit(f"error: {path} has no traceEvents array")
    return doc


def merge_traces(docs):
    """Shift every file onto the earliest base_ns anchor and concatenate."""
    bases = [doc.get("nsm", {}).get("base_ns", 0) for doc in docs]
    base = min(bases) if bases else 0
    events = []
    for doc, file_base in zip(docs, bases):
        shift_us = (file_base - base) / 1e3
        for event in doc["traceEvents"]:
            if shift_us and "ts" in event:
                event = dict(event)
                event["ts"] = event["ts"] + shift_us
            events.append(event)
    # Metadata first, then time order: Perfetto names lanes before drawing.
    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "nsm": {"base_ns": base}}


def digest_rows(events):
    """One row per (pid, tid) lane carrying an nsm_rank_digest."""
    rows = []
    names = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        key = (event.get("pid"), event.get("tid"))
        if event.get("name") == "thread_name":
            names[key] = event["args"]["name"]
        elif event.get("name") == "nsm_rank_digest":
            rows.append((key, event["args"]))
    return [(key, names.get(key, "?"), args) for key, args in rows]


def pair_flows(events):
    """Match s/f flow events by id -> {step: [link...]}, plus leftovers."""
    sends = {}
    recvs = {}
    for event in events:
        if event.get("ph") == "s":
            sends[event["id"]] = event
        elif event.get("ph") == "f":
            recvs[event["id"]] = event
    steps = defaultdict(list)
    for flow_id, send in sends.items():
        recv = recvs.get(flow_id)
        if recv is not None:
            steps[send["args"]["step"]].append((send, recv))
    unpaired_sends = [s for i, s in sends.items() if i not in recvs]
    unpaired_recvs = [r for i, r in recvs.items() if i not in sends]
    return steps, unpaired_sends, unpaired_recvs


def critical_path(events, steps):
    """Per-step segment durations (ms) from the merged span timeline.

    Steps are processed in delivery order; each step's endpoint window runs
    from its first send to the next step's first send (or the end of the
    trace), which is exact for the sequential endpoint consumer loop.
    """
    endpoint_pids = set()
    for links in steps.values():
        for _, recv in links:
            endpoint_pids.add(recv.get("pid"))
    spans = [
        e
        for e in events
        if e.get("ph") == "X" and e.get("pid") in endpoint_pids
    ]
    ordered = sorted(steps.items(), key=lambda kv: min(s["ts"] for s, _ in kv[1]))
    report = []
    for index, (step, links) in enumerate(ordered):
        first_send = min(send["ts"] for send, _ in links)
        last_recv = max(recv["ts"] for _, recv in links)
        window_end = math.inf
        if index + 1 < len(ordered):
            window_end = min(s["ts"] for s, _ in ordered[index + 1][1])
        in_window = [
            s for s in spans if first_send <= s["ts"] < window_end
        ]
        decode = sum(
            s.get("dur", 0.0) for s in in_window if s["name"] in DECODE_SPANS
        )
        analysis = sum(
            s.get("dur", 0.0)
            for s in in_window
            if s["name"].startswith(ANALYSIS_PREFIXES)
        )
        write = sum(
            s.get("dur", 0.0) for s in in_window if s["name"] in WRITE_SPANS
        )
        work_end = max(
            (s["ts"] + s.get("dur", 0.0) for s in in_window),
            default=last_recv,
        )
        report.append(
            {
                "step": step,
                "links": len(links),
                "wire_ms": (last_recv - first_send) / 1e3,
                "decode_ms": decode / 1e3,
                "analysis_ms": analysis / 1e3,
                "write_ms": write / 1e3,
                "e2e_ms": (work_end - first_send) / 1e3,
            }
        )
    return report


def main():
    parser = argparse.ArgumentParser(
        description="merge per-group Chrome traces into one aligned timeline"
    )
    parser.add_argument("inputs", nargs="+", help="per-group trace files")
    parser.add_argument("--out", help="write the merged trace here")
    parser.add_argument(
        "--step",
        type=int,
        help="require this step's spans and flow links to be present "
        "(exit 1 when its lane dropped records)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: every delivered step must have a paired send->recv "
        "flow link and a finite end-to-end latency",
    )
    args = parser.parse_args()

    merged = merge_traces([load_trace(path) for path in args.inputs])
    events = merged["traceEvents"]
    steps, unpaired_sends, unpaired_recvs = pair_flows(events)
    digests = digest_rows(events)

    failures = []
    total_dropped = 0
    for (pid, tid), name, digest in digests:
        dropped = digest.get("dropped_spans", 0) + digest.get(
            "dropped_events", 0
        )
        total_dropped += dropped
        if dropped:
            print(
                f"warning: lane pid={pid} tid={tid} ({name}) dropped "
                f"{digest.get('dropped_spans', 0)} spans and "
                f"{digest.get('dropped_events', 0)} events "
                "(ring capacity; raise the tracer ring size)",
                file=sys.stderr,
            )

    if args.step is not None:
        if args.step not in steps:
            detail = (
                "its spans were dropped from a full tracer ring"
                if total_dropped
                else "no flow events reference it"
            )
            failures.append(f"step {args.step} is absent from the merge: {detail}")
        elif total_dropped:
            failures.append(
                f"step {args.step} is present but {total_dropped} records "
                "were dropped; the timeline is not trustworthy"
            )

    report = critical_path(events, steps)
    if args.check:
        if not steps:
            failures.append("no send->recv flow links in the merged trace")
        for send in unpaired_sends:
            failures.append(
                f"send flow id {send['id']} (step {send['args']['step']}) "
                "has no matching recv"
            )
        for recv in unpaired_recvs:
            failures.append(
                f"recv flow id {recv['id']} (step {recv['args']['step']}) "
                "has no matching send"
            )
        for row in report:
            if not math.isfinite(row["e2e_ms"]) or row["e2e_ms"] < 0.0:
                failures.append(
                    f"step {row['step']} has no finite end-to-end latency"
                )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(merged, f)
        print(f"merged {len(args.inputs)} trace(s) -> {args.out} "
              f"({len(events)} events)")

    if report:
        print("step  links  wire_ms  decode_ms  analysis_ms  write_ms  e2e_ms")
        for row in report:
            print(
                f"{row['step']:>4}  {row['links']:>5}  {row['wire_ms']:>7.3f}"
                f"  {row['decode_ms']:>9.3f}  {row['analysis_ms']:>11.3f}"
                f"  {row['write_ms']:>8.3f}  {row['e2e_ms']:>6.3f}"
            )
    else:
        print("no paired flow events (nothing streamed, or tracing was off)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print(f"check ok: {len(report)} step(s) with paired flow links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
