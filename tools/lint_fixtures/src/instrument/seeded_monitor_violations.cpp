// Seeded monitor-prefix violations: this file lives under a src/instrument/
// path with "monitor" in its name on purpose, so the monitor-prefix rule
// must fire on every span/metric below that lacks the "monitor." or
// "flightrec." prefix.  tests/CMakeLists.txt registers a WILL_FAIL ctest
// invocation over this file; if the linter ever stops flagging it, that
// test fails and the rule is known to be broken.
//
// Expected findings:
//   monitor-prefix  x2 (span "http.serve", metric "sst.scrapes")
//
// The correctly-prefixed pairs at the bottom must NOT be flagged.

#include <string_view>

namespace monitor_fixture {

struct Span {
  explicit Span(std::string_view) {}
};

struct Metrics {
  void Add(std::string_view, double) {}
};

void SeededViolations(Metrics& metrics) {
  Span bad_span("http.serve");     // wrong plane prefix -> finding
  metrics.Add("sst.scrapes", 1.0);  // wrong plane prefix -> finding

  Span good_span("flightrec.dump");      // correct -> no finding
  metrics.Add("monitor.requests", 1.0);  // correct -> no finding
}

}  // namespace monitor_fixture
