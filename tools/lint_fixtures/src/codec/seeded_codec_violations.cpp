// Seeded codec-prefix violations: this file lives under a src/codec/ path
// on purpose, so the codec-prefix rule must fire on every span/metric below
// that lacks the "codec." prefix.  tests/CMakeLists.txt registers a
// WILL_FAIL ctest invocation over this file; if the linter ever stops
// flagging it, that test fails and the rule is known to be broken.
//
// Expected findings:
//   codec-prefix  x2 (span "transport.encode", metric "sst.encode_bytes")
//
// The correctly-prefixed pair at the bottom must NOT be flagged.

#include <string_view>

namespace codec_fixture {

struct Span {
  explicit Span(std::string_view) {}
};

struct Metrics {
  void Add(std::string_view, double) {}
};

void SeededViolations(Metrics& metrics) {
  Span bad_span("transport.encode");   // wrong plane prefix -> finding
  metrics.Add("sst.encode_bytes", 1.0);  // wrong plane prefix -> finding

  Span good_span("codec.encode");        // correct -> no finding
  metrics.Add("codec.encode_bytes", 1.0);  // correct -> no finding
}

}  // namespace codec_fixture
