// Seeded cross-scope blocking-under-lock for the nsm_analyze
// `blocking-under-lock` check — an exact reproduction of the regex lint's
// known false negative: the blocking mpimini call sits in a helper, so no
// single brace scope contains both the guard and the call, and the
// line-oriented lint passes this file clean (asserted by the
// nsm_lint_cross_scope_negative ctest).  The analyzer must fail it
// (inverted nsm_analyze_cross_scope_fixture ctest).  Analyzer input only.
#include "core/thread_annotations.hpp"
#include "mpimini/comm.hpp"

namespace fixture {

struct Shared {
  core::Mutex mutex;
  int epoch = 0;
};

void WaitForPeers(mpimini::Comm& comm) {
  comm.Barrier();  // no guard in sight — this scope looks innocent
}

void PublishEpoch(Shared& shared, mpimini::Comm& comm) {
  core::MutexLock lock(shared.mutex);
  shared.epoch++;
  WaitForPeers(comm);  // blocks under shared.mutex, one call away
}

}  // namespace fixture
