// Lexer torture fixture: every shape that defeats a line regex, in one
// file.  The nsm_analyze_lexer_fixture ctest runs the registry check over
// this file against lexer_torture_registry.md and expects EXACTLY the
// names listed there — proving the lexer skips raw strings, comments, and
// continued macros, and that the extractor sees through multi-line calls.
// Analyzer input only, never compiled.
#include "instrument/tracer.hpp"

namespace fixture {

// A raw string whose body contains braces, quotes, and code-shaped text:
// everything inside must be invisible to the analyzer.
const char* kTemplate = R"json({
  "span": "raw.decoy_span",
  "call": "metrics->Observe(\"raw.decoy_metric\", 1.0);",
  "brace_soup": "}}}{{{"
})json";

// Custom-delimiter raw string containing the )" sequence itself.
const char* kTricky = R"del(ends with )" but not here)del";

// A line-continuation macro: one logical preprocessor line, zero tokens.
// The name inside must NOT reach the registry.
#define FIXTURE_RECORD(metrics)                       \
  do {                                                \
    (metrics)->Observe("macro.decoy_metric", 0.0);    \
  } while (0)

/* C++ block comments do not nest: this outer comment ends at the first
   close sequence. /* The lexer must resume right after it. */
inline const char* kAfterComment = "code again";

// Decoys in comments: Span span("comment.decoy_span");
// metrics->Observe("comment.decoy_metric", 1.0);

void Record(instrument::Tracer& tracer, instrument::MetricsRegistry* metrics,
            double seconds) {
  instrument::Span span("torture.real_span");
  metrics->Observe(
      "torture.multiline_metric",  // literal on its own line: a line regex
      seconds);                    // anchored on Observe( never sees it
  tracer.Instant("torture.real_instant");
}

}  // namespace fixture
