// Seeded ABBA lock-order inversion for the nsm_analyze `lock-order` check.
// Wired as an inverted ctest (nsm_analyze_lock_order_fixture): the analyzer
// MUST fail here, proving the acquired-before graph and its cycle detection
// are live.  Never compiled — analyzer input only.
//
// TransferIn acquires table::mutex_ then journal::mutex_ (via the helper,
// one level down the call graph); TransferOut acquires them in the opposite
// order directly.  A schedule interleaving the two deadlocks.
#include "core/thread_annotations.hpp"

namespace fixture {

struct State {
  core::Mutex table_mutex;
  core::Mutex journal_mutex;
};

State& TheState();

void AppendJournal() {
  core::MutexLock lock(TheState().journal_mutex);
}

void TransferIn() {
  core::MutexLock lock(TheState().table_mutex);
  AppendJournal();  // table -> journal, one level down the call graph
}

void TransferOut() {
  core::MutexLock journal(TheState().journal_mutex);
  core::MutexLock table(TheState().table_mutex);  // journal -> table: cycle
}

}  // namespace fixture
