// Seeded rank-divergent collectives for the nsm_analyze
// `collective-divergence` check (inverted nsm_analyze_divergence_fixture
// ctest).  Both shapes of the classic hang: a collective on one branch of
// a rank conditional with nothing on the other, and mismatched collectives
// across the two branches.  The rank-conditional Send/Recv pair is the
// legitimate point-to-point pattern collectives are *implemented* with and
// must NOT be flagged.  Analyzer input only.
#include "mpimini/comm.hpp"

namespace fixture {

void RootOnlyBarrier(mpimini::Comm& comm) {
  if (comm.Rank() == 0) {
    comm.Barrier();  // ranks != 0 never arrive: everyone hangs
  }
}

void MismatchedBranches(mpimini::Comm& comm, int rank) {
  if (rank == 0) {
    comm.Bcast(0, nullptr, 0);
  } else {
    comm.Barrier();  // different collective: both sides hang
  }
}

void LegitimatePointToPoint(mpimini::Comm& comm, int rank, char* buf,
                            int bytes) {
  // How collectives are implemented: rank-conditional p2p, not divergence.
  if (rank == 0) {
    comm.RecvBytes(1, 0, buf, bytes);
  } else {
    comm.SendBytes(0, 0, buf, bytes);
  }
}

}  // namespace fixture
