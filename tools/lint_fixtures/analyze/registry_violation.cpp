// Seeded registry violations for the nsm_analyze `registry` check
// (inverted nsm_analyze_registry_fixture ctest, gated against
// registry_fixture.md rather than the real docs/REGISTRY.md):
//
//   - "ghost.unregistered_span" / "ghost.unregistered_metric" are recorded
//     here but absent from the fixture registry  -> missing-entry findings
//   - "CamelCase.Bad" breaks the dotted lowercase taxonomy
//   - the fixture registry's "stale.retired_metric" is recorded nowhere
//     -> stale-entry finding
//
// Analyzer input only, never compiled.
#include "instrument/tracer.hpp"

namespace fixture {

void Record(instrument::Tracer& tracer, instrument::MetricsRegistry* metrics,
            double seconds) {
  instrument::Span span("ghost.unregistered_span");
  metrics->Observe(
      "ghost.unregistered_metric",  // split across lines: invisible to a
      seconds);                     // line regex, visible to the lexer
  tracer.Instant("CamelCase.Bad");
  metrics->Observe("fixture.registered_metric", seconds);
}

}  // namespace fixture
