// Seeded lint fixture: one deliberate violation per rule.  Never compiled —
// the nsm_lint_fixture ctest runs the linter over this file and requires a
// nonzero exit with every rule represented.
#include <mutex>
#include <mutex>   // include-hygiene: duplicate include
#include <thread>  // include-hygiene: <thread> without std::thread usage
#include <fstream>

#include "core/thread_annotations.hpp"
#include "mpimini/comm.hpp"

void RawNewViolation() {
  int* leak = new int[16];  // raw-new: allocation outside core/buffer.cpp
  delete[] leak;            // raw-new: matching raw delete
}

void CollectiveUnderLockViolation(core::Mutex& mutex, mpimini::Comm& comm) {
  core::MutexLock lock(mutex);
  comm.Barrier();  // collective-under-lock: peer ranks deadlock on `mutex`
}

void BadSpanName() {
  instrument::Span span("BadName.NoCaps");  // span-name: uppercase
  instrument::Span flat("nodots");          // span-name: missing layer prefix
}

void BadMetricName(instrument::MetricsRegistry* metrics) {
  metrics->Set("sst queue depth", 1.0);  // metric-name: spaces, no dots
}

void UnsafeJsonWrite() {
  std::ofstream out("metrics.json");  // json-atomic-write: not AtomicFile
  out << "{}";
}
