#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format 0.0.4) scraped from the
live run-health monitor, and optionally cross-check the persisted /status
JSON against the final metrics.json (DESIGN.md §5c).

Usage:
  check_prometheus.py EXPOSITION.txt
  check_prometheus.py --status-json STATUS.json --metrics-json METRICS.json

Both modes may be combined in one invocation.

Exposition checks:
  * every non-comment, non-blank line is `name[{labels}] value` with a
    legal metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value
  * every sample family was declared by a preceding `# TYPE` line
  * histogram families are internally consistent: `le` buckets are
    cumulative (non-decreasing in ascending bound order), the `+Inf`
    bucket equals `_count`, and `_sum`/`_count` are present

Agreement checks (--status-json + --metrics-json):
  * the status document's "counters" object and metrics.json's "counters"
    map hold the same names with the same global sums — the live endpoint
    and the end-of-run artifact must tell one story

Exit: 0 clean, 1 findings, 2 usage error.
"""

import json
import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$")
TYPE_LINE = re.compile(
    r"^#\s+TYPE\s+([a-zA-Z_:][a-zA-Z0-9_:]*)\s+(counter|gauge|histogram|"
    r"summary|untyped)$")
LE_LABEL = re.compile(r'le="([^"]*)"')


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def family_of(name):
    """The TYPE-declared family a sample belongs to (histograms expose
    `<family>_bucket` / `_sum` / `_count` samples)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check_exposition(path, findings):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        findings.append(f"{path}: unreadable: {err}")
        return

    types = {}
    histograms = {}  # family -> {"buckets": [(le, v)], "sum": v, "count": v}
    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = TYPE_LINE.match(line)
            if match:
                name, kind = match.groups()
                if name in types:
                    findings.append(
                        f"{path}:{lineno}: duplicate TYPE for {name}")
                types[name] = kind
            continue
        match = SAMPLE_LINE.match(line)
        if not match:
            findings.append(f"{path}:{lineno}: unparseable sample: {line!r}")
            continue
        name, labels, raw_value = match.groups()
        try:
            value = parse_value(raw_value)
        except ValueError:
            findings.append(
                f"{path}:{lineno}: bad sample value {raw_value!r}")
            continue
        samples += 1
        family, suffix = family_of(name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            findings.append(
                f"{path}:{lineno}: sample {name} has no preceding # TYPE")
            continue
        if declared == "histogram":
            h = histograms.setdefault(family,
                                      {"buckets": [], "sum": None,
                                       "count": None})
            if suffix == "_bucket":
                le = LE_LABEL.search(labels or "")
                if not le:
                    findings.append(
                        f"{path}:{lineno}: histogram bucket without an "
                        f"le label")
                    continue
                h["buckets"].append((parse_value(le.group(1)), value,
                                     lineno))
            elif suffix == "_sum":
                h["sum"] = value
            elif suffix == "_count":
                h["count"] = value

    for family, h in histograms.items():
        if h["sum"] is None or h["count"] is None:
            findings.append(
                f"{path}: histogram {family} is missing _sum or _count")
            continue
        if not h["buckets"]:
            findings.append(f"{path}: histogram {family} has no buckets")
            continue
        previous = None
        for le, value, lineno in h["buckets"]:
            if previous is not None and value < previous:
                findings.append(
                    f"{path}:{lineno}: histogram {family} buckets are not "
                    f"cumulative (le={le} count {value} < {previous})")
            previous = value
        last_le, last_value, _ = h["buckets"][-1]
        if last_le != float("inf"):
            findings.append(
                f"{path}: histogram {family} has no +Inf bucket")
        elif last_value != h["count"]:
            findings.append(
                f"{path}: histogram {family} +Inf bucket {last_value} != "
                f"_count {h['count']}")

    if samples == 0 and not any(
            line.startswith("#") for line in lines if line.strip()):
        findings.append(f"{path}: empty exposition (not even a comment)")
    print(f"check_prometheus: {path}: {samples} sample(s), "
          f"{len(types)} TYPE declaration(s)")


def check_agreement(status_path, metrics_path, findings):
    try:
        with open(status_path, encoding="utf-8") as handle:
            status = json.load(handle)
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        findings.append(f"agreement: cannot load documents: {err}")
        return

    status_counters = status.get("counters", {})
    metrics_counters = {
        name: stat.get("sum") for name, stat in
        metrics.get("counters", {}).items()
    }
    for name, value in sorted(status_counters.items()):
        if name not in metrics_counters:
            findings.append(
                f"agreement: counter {name} served by /status is absent "
                f"from {metrics_path}")
        elif abs(metrics_counters[name] - value) > 1e-9 * max(
                1.0, abs(value)):
            findings.append(
                f"agreement: counter {name}: /status says {value}, "
                f"{metrics_path} says {metrics_counters[name]}")
    for name in sorted(set(metrics_counters) - set(status_counters)):
        findings.append(
            f"agreement: counter {name} in {metrics_path} never reached "
            f"the /status endpoint")
    print(f"check_prometheus: agreement: {len(status_counters)} counter(s) "
          f"cross-checked")


def main(argv):
    exposition_paths = []
    status_path = metrics_path = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--status-json":
            i += 1
            status_path = argv[i] if i < len(argv) else None
        elif arg == "--metrics-json":
            i += 1
            metrics_path = argv[i] if i < len(argv) else None
        elif arg.startswith("-"):
            print(f"check_prometheus: unknown option {arg}", file=sys.stderr)
            return 2
        else:
            exposition_paths.append(arg)
        i += 1
    if (status_path is None) != (metrics_path is None):
        print("check_prometheus: --status-json and --metrics-json must be "
              "given together", file=sys.stderr)
        return 2
    if not exposition_paths and status_path is None:
        print(__doc__, file=sys.stderr)
        return 2

    findings = []
    for path in exposition_paths:
        check_exposition(path, findings)
    if status_path is not None:
        check_agreement(status_path, metrics_path, findings)
    for finding in findings:
        print(finding)
    print(f"check_prometheus: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
