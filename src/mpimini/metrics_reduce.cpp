#include "mpimini/metrics_reduce.hpp"

#include <span>
#include <vector>

namespace mpimini {

instrument::MetricsReport ReduceMetrics(Comm& comm,
                                        const instrument::MetricsSnapshot& mine,
                                        int root) {
  const std::vector<std::byte> blob = mine.Serialize();
  std::vector<core::Buffer> blobs =
      comm.GatherBytes(std::span<const std::byte>(blob), root);
  if (comm.Rank() != root) return {};
  std::vector<instrument::MetricsSnapshot> snapshots;
  snapshots.reserve(blobs.size());
  for (const core::Buffer& b : blobs) {
    snapshots.push_back(instrument::MetricsSnapshot::Deserialize(
        std::span<const std::byte>(b.data(), b.size())));
  }
  return instrument::ReduceSnapshots(snapshots);
}

}  // namespace mpimini
