// The mpimini runtime: spawns N rank threads, installs per-rank
// instrumentation (busy clock, memory tracker, timing registry), runs the
// user's rank body, and collects per-rank metrics afterwards.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "instrument/memory_tracker.hpp"
#include "instrument/timer.hpp"
#include "mpimini/comm.hpp"

namespace mpimini {

/// Per-rank instrumentation owned by the runtime for the lifetime of a run.
///
/// Rank code reaches it through CurrentEnv(); blocking mpimini operations
/// pause `busy` so it accumulates only active time.
struct RankEnv {
  int rank = -1;
  instrument::BusyClock busy;
  instrument::MemoryTracker memory;
  instrument::TimingRegistry timings;
};

/// The calling thread's RankEnv, or nullptr outside a rank.
RankEnv* CurrentEnv();

/// Metrics harvested from one rank after the run completes.
struct RankMetrics {
  int rank = -1;
  double busy_seconds = 0.0;
  std::size_t peak_bytes = 0;
  std::map<std::string, std::size_t> peak_by_category;
  instrument::TimingRegistry timings;
};

/// Result of Runtime::Run: wall time of the whole run plus per-rank metrics.
struct RunResult {
  double wall_seconds = 0.0;
  std::vector<RankMetrics> ranks;

  /// Mean of per-rank busy seconds.
  [[nodiscard]] double MeanBusySeconds() const;
  /// Maximum per-rank peak tracked bytes.
  [[nodiscard]] std::size_t MaxPeakBytes() const;
  /// Sum of per-rank peak tracked bytes (aggregate footprint, as the paper's
  /// "aggregate memory high water mark across all MPI ranks").
  [[nodiscard]] std::size_t TotalPeakBytes() const;
};

/// Launches message-passing programs.
class Runtime {
 public:
  /// Run `body(comm)` on `nranks` rank threads sharing a fresh world
  /// communicator. Blocks until every rank returns. If any rank throws, the
  /// remaining ranks are still joined and the first exception is rethrown.
  static RunResult Run(int nranks, const std::function<void(Comm&)>& body);
};

}  // namespace mpimini
