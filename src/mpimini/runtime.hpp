// The mpimini runtime: spawns N rank threads, installs per-rank
// instrumentation (busy clock, memory tracker, timing registry), runs the
// user's rank body, and collects per-rank metrics afterwards.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/flight_recorder.hpp"
#include "instrument/memory_tracker.hpp"
#include "instrument/metrics.hpp"
#include "instrument/timer.hpp"
#include "instrument/tracer.hpp"
#include "mpimini/comm.hpp"

namespace mpimini {

/// Per-rank instrumentation owned by the runtime for the lifetime of a run.
///
/// Rank code reaches it through CurrentEnv(); blocking mpimini operations
/// pause `busy` so it accumulates only active time.
struct RankEnv {
  int rank = -1;
  instrument::BusyClock busy;
  instrument::MemoryTracker memory;
  instrument::TimingRegistry timings;
  /// Span/counter recorder, allocated only when the run opted into tracing
  /// (RunSettings::trace); rank code reaches it via instrument::CurrentTracer.
  /// shared_ptr so RunResult can keep the recordings alive after the envs
  /// are gone.
  std::shared_ptr<instrument::Tracer> tracer;
  /// Typed gauge/counter/histogram registry, allocated only when the run
  /// opted into the metrics plane (RunSettings::metrics); rank code reaches
  /// it via instrument::CurrentMetrics.
  std::shared_ptr<instrument::MetricsRegistry> metrics;
  /// Always-on flight recorder (last-K-events forensic ring, ~22 KB);
  /// unlike the tracer/metrics it is shared with the rank's async worker
  /// (the ring is multi-writer safe) and dumped on crash.
  std::shared_ptr<instrument::FlightRecorder> flightrec;
  /// Additional single-owner tracers registered by rank code for helper
  /// threads it spawned (the async pipeline's worker records its spans and
  /// flow events here).  Appended after the helper thread has joined; the
  /// runtime folds them into RunResult::tracers so the trace export sees
  /// worker lanes without sharing a ring across threads.
  std::vector<std::shared_ptr<instrument::Tracer>> extra_tracers;
};

/// The calling thread's RankEnv, or nullptr outside a rank.
RankEnv* CurrentEnv();

/// RAII installation of a caller-owned RankEnv on the calling thread —
/// the per-rank-helper-thread counterpart of what Runtime::Run does for
/// rank threads.  The async in situ pipeline uses this so its worker
/// thread keeps per-rank attribution: blocking mpimini calls pause the
/// env's BusyClock, allocations land in the env's MemoryTracker, and
/// metric/span feeds reach the env's registries.  The env must outlive the
/// scope and must not be installed on two threads at once (the per-rank
/// structures inside it are single-owner).
class WorkerEnvScope {
 public:
  explicit WorkerEnvScope(RankEnv* env);
  ~WorkerEnvScope();

  WorkerEnvScope(const WorkerEnvScope&) = delete;
  WorkerEnvScope& operator=(const WorkerEnvScope&) = delete;

 private:
  RankEnv* env_;
  RankEnv* previous_env_;
  instrument::MemoryTracker* previous_tracker_;
  instrument::Tracer* previous_tracer_;
  instrument::MetricsRegistry* previous_metrics_;
  instrument::FlightRecorder* previous_flightrec_;
};

/// Metrics harvested from one rank after the run completes.
struct RankMetrics {
  int rank = -1;
  double busy_seconds = 0.0;
  std::size_t peak_bytes = 0;
  std::map<std::string, std::size_t> peak_by_category;
  instrument::TimingRegistry timings;
};

/// Result of Runtime::Run: wall time of the whole run plus per-rank metrics.
struct RunResult {
  double wall_seconds = 0.0;
  std::vector<RankMetrics> ranks;
  /// Per-rank trace recordings; empty unless RunSettings::trace was set.
  std::vector<std::shared_ptr<instrument::Tracer>> tracers;
  /// Per-rank metric registries; empty unless RunSettings::metrics was set.
  std::vector<std::shared_ptr<instrument::MetricsRegistry>> metrics;
  /// Per-rank flight recorders; always populated (the recorder is on by
  /// default — its cost is one ring allocation per rank and nothing on the
  /// step hot path until an event actually fires).
  std::vector<std::shared_ptr<instrument::FlightRecorder>> flight_recorders;

  /// Mean of per-rank busy seconds.
  [[nodiscard]] double MeanBusySeconds() const;
  /// Maximum per-rank peak tracked bytes.
  [[nodiscard]] std::size_t MaxPeakBytes() const;
  /// Sum of per-rank peak tracked bytes (aggregate footprint, as the paper's
  /// "aggregate memory high water mark across all MPI ranks").
  [[nodiscard]] std::size_t TotalPeakBytes() const;
  /// Non-owning view of the tracers, as the telemetry exporters take it.
  [[nodiscard]] std::vector<const instrument::Tracer*> TracerPointers() const;
};

/// Per-run knobs beyond the rank count.
struct RunSettings {
  /// Allocate and install an instrument::Tracer per rank thread.  Off by
  /// default: untraced runs keep the pre-tracer hot path (every Span
  /// degenerates to one thread-local null read).
  bool trace = false;
  instrument::Tracer::Options tracer;
  /// Allocate and install an instrument::MetricsRegistry per rank thread.
  /// Off by default for the same reason as `trace`: a disabled metrics
  /// plane costs rank threads exactly one thread-local null read per
  /// Metric call and allocates nothing.
  bool metrics = false;
  /// Flight-recorder ring slots per rank (always allocated; events are
  /// rare — step boundaries, stalls, errors — so a few hundred slots hold
  /// minutes of history).
  std::size_t flight_capacity = instrument::FlightRecorder::kDefaultCapacity;
};

/// Launches message-passing programs.
class Runtime {
 public:
  /// Run `body(comm)` on `nranks` rank threads sharing a fresh world
  /// communicator. Blocks until every rank returns. If any rank throws, the
  /// remaining ranks are still joined and the first exception is rethrown.
  static RunResult Run(int nranks, const std::function<void(Comm&)>& body);

  /// As above, honoring per-run settings (tracing).
  static RunResult Run(int nranks, const RunSettings& settings,
                       const std::function<void(Comm&)>& body);
};

}  // namespace mpimini
