// Cross-rank metrics reduction over mpimini: the missing aggregation half
// of the observability stack.
//
// Each rank's MetricsRegistry is strictly per-rank (no locks, no sharing);
// this collective gathers every rank's snapshot to `root` and reduces them
// into one MetricsReport (min/mean/max/p95 + imbalance per metric, counter
// sums, gauge watermarks, merged histograms) — so a run emits a single
// rank-aggregated metrics.json instead of N per-rank files.
#pragma once

#include "instrument/metrics.hpp"
#include "mpimini/comm.hpp"

namespace mpimini {

/// Collective: every rank of `comm` must call it with its own snapshot (an
/// empty snapshot is fine).  Returns the reduced report on `root`; other
/// ranks receive an empty report.
instrument::MetricsReport ReduceMetrics(Comm& comm,
                                        const instrument::MetricsSnapshot& mine,
                                        int root = 0);

}  // namespace mpimini
