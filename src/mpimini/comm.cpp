#include "mpimini/comm.hpp"

#include <algorithm>

#include "core/thread_annotations.hpp"
#include "instrument/flight_recorder.hpp"
#include "instrument/tracer.hpp"
#include "mpimini/comm_state.hpp"
#include "mpimini/runtime.hpp"

namespace mpimini {

namespace detail {

namespace {

// Pause the calling rank's busy clock for the duration of a condition wait,
// and record the wait as a threshold-mode span (sub-100us waits are only
// tallied — see instrument::Tracer::Options::wait_min_ns — so per-iteration
// collectives don't flood the span ring).
class IdleScope {
 public:
  explicit IdleScope(std::string_view name)
      : env_(CurrentEnv()),
        name_(name),
        begin_ns_(instrument::Tracer::NowNs()),
        span_(name, instrument::Span::Mode::kThreshold) {
    if (env_) env_->busy.Pause();
  }
  ~IdleScope() {
    if (env_) env_->busy.Resume();
    // Long waits are straggler evidence: a rank stuck 10ms+ on a peer is
    // exactly what a crash dump needs to show.  Short waits stay out of
    // the flight ring (the threshold span already tallies them).
    const double waited =
        static_cast<double>(instrument::Tracer::NowNs() - begin_ns_) * 1e-9;
    if (waited >= instrument::kFlightCommWaitMinSeconds) {
      instrument::RecordFlightEvent(instrument::FlightEventKind::kCommWait,
                                    name_, /*step=*/-1, waited);
    }
  }
  IdleScope(const IdleScope&) = delete;
  IdleScope& operator=(const IdleScope&) = delete;

 private:
  RankEnv* env_;
  std::string_view name_;
  std::int64_t begin_ns_;
  instrument::Span span_;
};

bool Matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}

// First matching message in the deque, or end().
std::deque<Message>::iterator FindMatch(std::deque<Message>& box, int source,
                                        int tag) {
  return std::find_if(box.begin(), box.end(), [&](const Message& m) {
    return Matches(m, source, tag);
  });
}

}  // namespace
}  // namespace detail

int Comm::Size() const { return state_ ? state_->size : 0; }

void Comm::SendBytes(int dest, int tag, const void* data, std::size_t bytes) {
  if (!state_) throw std::runtime_error("mpimini: send on invalid comm");
  if (dest < 0 || dest >= state_->size) {
    throw std::runtime_error("mpimini: send to invalid rank " +
                             std::to_string(dest));
  }
  Message m;
  m.source = rank_;
  m.tag = tag;
  // Mailbox buffers are untracked (empty category): the bytes will be freed
  // on the receiving rank's thread, and memory trackers are per-rank.
  m.payload = core::Buffer::CopyOf(
      "", std::span<const std::byte>(static_cast<const std::byte*>(data),
                                     bytes));
  {
    core::MutexLock lock(state_->mutex);
    state_->boxes[static_cast<std::size_t>(dest)].push_back(std::move(m));
  }
  state_->cv.NotifyAll();
}

void Comm::SendBuffer(int dest, int tag, core::Buffer buffer) {
  if (!state_) throw std::runtime_error("mpimini: send on invalid comm");
  if (dest < 0 || dest >= state_->size) {
    throw std::runtime_error("mpimini: send to invalid rank " +
                             std::to_string(dest));
  }
  buffer.DetachTracking();
  core::CountMove();
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload = std::move(buffer);
  {
    core::MutexLock lock(state_->mutex);
    state_->boxes[static_cast<std::size_t>(dest)].push_back(std::move(m));
  }
  state_->cv.NotifyAll();
}

void Comm::SendGather(int dest, int tag, const core::BufferChain& chain) {
  // The one contiguous pack of the zero-copy data plane happens here, at
  // the transport boundary.  Packed untracked: see SendBytes.
  SendBuffer(dest, tag, chain.Pack(""));
}

Message Comm::RecvBytes(int source, int tag) {
  if (!state_) throw std::runtime_error("mpimini: recv on invalid comm");
  core::MutexLock lock(state_->mutex);
  auto& box = state_->boxes[static_cast<std::size_t>(rank_)];
  auto it = detail::FindMatch(box, source, tag);
  if (it == box.end()) {
    detail::IdleScope idle("comm.recv.wait");
    // Explicit wait loop (not a predicate lambda): the match condition
    // reads guarded state, which the analysis can only follow in the
    // capability-holding function body.
    while (it == box.end()) {
      state_->cv.Wait(state_->mutex);
      it = detail::FindMatch(box, source, tag);
    }
  }
  Message m = std::move(*it);
  box.erase(it);
  return m;
}

core::Buffer Comm::RecvBuffer(int source, int tag) {
  Message m = RecvBytes(source, tag);
  core::CountMove();
  return std::move(m.payload);
}

std::size_t Comm::Probe(int source, int tag) {
  if (!state_) throw std::runtime_error("mpimini: probe on invalid comm");
  core::MutexLock lock(state_->mutex);
  auto& box = state_->boxes[static_cast<std::size_t>(rank_)];
  auto it = detail::FindMatch(box, source, tag);
  if (it == box.end()) {
    detail::IdleScope idle("comm.probe.wait");
    while (it == box.end()) {
      state_->cv.Wait(state_->mutex);
      it = detail::FindMatch(box, source, tag);
    }
  }
  return it->payload.size();
}

bool Comm::HasMessage(int source, int tag) {
  if (!state_) throw std::runtime_error("mpimini: probe on invalid comm");
  core::MutexLock lock(state_->mutex);
  auto& box = state_->boxes[static_cast<std::size_t>(rank_)];
  return detail::FindMatch(box, source, tag) != box.end();
}

void Comm::Barrier() {
  if (!state_) throw std::runtime_error("mpimini: barrier on invalid comm");
  core::MutexLock lock(state_->mutex);
  const std::uint64_t generation = state_->barrier_generation;
  if (++state_->barrier_count == state_->size) {
    state_->barrier_count = 0;
    ++state_->barrier_generation;
    state_->cv.NotifyAll();
    return;
  }
  detail::IdleScope idle("comm.barrier.wait");
  while (state_->barrier_generation == generation) {
    state_->cv.Wait(state_->mutex);
  }
}

std::vector<core::Buffer> Comm::GatherBytes(std::span<const std::byte> mine,
                                            int root) {
  if (Rank() == root) {
    std::vector<core::Buffer> all(static_cast<std::size_t>(Size()));
    all[static_cast<std::size_t>(root)] = core::Buffer::CopyOf("", mine);
    for (int src = 0; src < Size(); ++src) {
      if (src == root) continue;
      Message m = RecvBytes(src, detail::kTagGather);
      all[static_cast<std::size_t>(src)] = std::move(m.payload);
    }
    return all;
  }
  SendBytes(root, detail::kTagGather, mine.data(), mine.size_bytes());
  return {};
}

std::vector<std::vector<std::byte>> Comm::AllToAllBytes(
    const std::vector<std::vector<std::byte>>& outgoing) {
  if (static_cast<int>(outgoing.size()) != Size()) {
    throw std::runtime_error("mpimini: AllToAllBytes needs Size() blobs");
  }
  std::vector<std::vector<std::byte>> incoming(
      static_cast<std::size_t>(Size()));
  for (int dest = 0; dest < Size(); ++dest) {
    if (dest == rank_) {
      incoming[static_cast<std::size_t>(dest)] =
          outgoing[static_cast<std::size_t>(dest)];
      continue;
    }
    const auto& blob = outgoing[static_cast<std::size_t>(dest)];
    SendBytes(dest, detail::kTagAllToAll, blob.data(), blob.size());
  }
  for (int src = 0; src < Size(); ++src) {
    if (src == rank_) continue;
    const Message m = RecvBytes(src, detail::kTagAllToAll);
    if (!m.payload.empty()) {
      incoming[static_cast<std::size_t>(src)].assign(
          m.payload.data(), m.payload.data() + m.payload.size());
    }
  }
  return incoming;
}

Comm Comm::Split(int color, int key) {
  if (!state_) throw std::runtime_error("mpimini: split on invalid comm");
  core::MutexLock lock(state_->mutex);
  const std::uint64_t seq = state_->split_seq[static_cast<std::size_t>(rank_)]++;
  detail::CommState::SplitOp& op = state_->splits[seq];
  op.entries[rank_] = {color, key};

  if (static_cast<int>(op.entries.size()) == state_->size) {
    // Last rank to arrive builds the child communicators.
    std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> (key, rank)
    for (const auto& [r, ck] : op.entries) {
      if (ck.first >= 0) groups[ck.first].push_back({ck.second, r});
    }
    for (auto& [c, members] : groups) {
      std::sort(members.begin(), members.end());
      auto child = std::make_shared<detail::CommState>(
          static_cast<int>(members.size()));
      for (std::size_t i = 0; i < members.size(); ++i) {
        op.result[members[i].second] = {child, static_cast<int>(i)};
      }
    }
    op.ready = true;
    state_->cv.NotifyAll();
  } else {
    detail::IdleScope idle("comm.split.wait");
    while (!op.ready) {
      state_->cv.Wait(state_->mutex);
    }
  }

  Comm child;
  auto it = op.result.find(rank_);
  if (it != op.result.end()) {
    child = Comm(it->second.first, it->second.second);
  }
  if (++op.taken == state_->size) state_->splits.erase(seq);
  return child;
}

}  // namespace mpimini
