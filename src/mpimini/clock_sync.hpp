// Clock-offset calibration: the mpimini collective behind the aligned
// global timeline (DESIGN.md §5d).
//
// Real deployments run sim and endpoint groups as separate aprun jobs on
// different nodes, so their monotonic clocks share no epoch.  Before two
// trace files can merge into one timeline — or an endpoint can subtract a
// sim-side origin timestamp — every rank needs its offset to a common
// reference.  The classic remedy (Cristian's algorithm / NTP's symmetric
// assumption) is a ping-pong against the reference: of K round trips keep
// the one with the minimum RTT; the offset estimate derived from it is
// wrong by at most min_rtt/2, because the only unknowable quantity is how
// the RTT splits between the two directions.
//
// In this stand-in, ranks are threads of one process and genuinely share
// steady_clock, so true offsets are ~0 — the collective still runs the
// real protocol (and `injected_skew_ns` lets tests give a rank a skewed
// virtual clock and assert the estimator recovers it within the bound).
#pragma once

#include <cstdint>

#include "mpimini/comm.hpp"

namespace mpimini {

/// One rank's calibration result.
struct ClockSync {
  /// Add to this rank's monotonic clock to land on the root's timeline.
  std::int64_t offset_ns = 0;
  /// Smallest round trip observed; |estimate error| <= min_rtt_ns / 2.
  std::int64_t min_rtt_ns = 0;
  int rounds = 0;  ///< ping-pong rounds actually used
};

/// Collective over `comm`: every rank must call it, in the same program
/// order as other collectives.  Non-root ranks run `rounds` ping-pongs
/// against `root` (served one rank at a time, in rank order) and keep the
/// min-RTT offset sample; root returns the identity calibration.
///
/// `injected_skew_ns` is a test hook: the calling rank behaves as if its
/// clock ran that many ns ahead, so the returned offset should recover
/// -injected_skew_ns to within min_rtt_ns/2.
ClockSync CalibrateClockOffset(Comm& comm, int root = 0, int rounds = 8,
                               std::int64_t injected_skew_ns = 0);

}  // namespace mpimini
