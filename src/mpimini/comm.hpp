// mpimini: a message-passing runtime with MPI semantics, where ranks are
// threads of one process.
//
// The paper's runs use MPI across hundreds of GPU nodes; this machine has a
// single core and no MPI.  mpimini reproduces the *programming model* (see
// DESIGN.md §2): each rank owns its own heap allocations, all data exchange
// goes through explicit typed messages with (source, tag) matching, and
// collectives (barrier, bcast, reduce, allreduce, gather, allgatherv,
// alltoall) plus communicator Split are built on the same mailbox machinery.
//
// Blocking waits pause the calling rank's BusyClock, so per-rank busy time
// measures compute + copy work and excludes synchronization idling — the
// per-node quantity the paper's figures plot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/buffer.hpp"

namespace mpimini {

/// Matches any source rank in Recv/Probe.
inline constexpr int kAnySource = -1;
/// Matches any tag in Recv/Probe.
inline constexpr int kAnyTag = -1;

/// Reduction operator for Reduce/AllReduce.
enum class Op { kSum, kMin, kMax, kProd };

/// A received message: payload bytes plus envelope.  The payload is a
/// data-plane buffer that moved through the mailbox by ownership transfer —
/// receiving it never copies.
struct Message {
  core::Buffer payload;
  int source = kAnySource;
  int tag = kAnyTag;
};

namespace detail {
struct CommState;  // shared mailbox/barrier state, defined in comm.cpp
}  // namespace detail

/// One rank's handle onto a communicator.
///
/// Comm is a lightweight value: copying it aliases the same communicator.
/// All collective calls must be made by every rank of the communicator in
/// the same order (MPI semantics).
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] int Rank() const { return rank_; }
  [[nodiscard]] int Size() const;
  [[nodiscard]] bool Valid() const { return state_ != nullptr; }

  // ---- Point-to-point ----------------------------------------------------

  /// Buffered send: copies `bytes` into the destination mailbox and returns.
  /// Buffered sends cannot deadlock; ordering per (source,dest,tag) is FIFO.
  void SendBytes(int dest, int tag, const void* data, std::size_t bytes);

  /// Zero-copy send: moves an owned data-plane buffer into the destination
  /// mailbox.  Tracking is detached first (the bytes leave this rank's
  /// books; trackers are per-rank and the block may now be freed by the
  /// receiving rank's thread).
  void SendBuffer(int dest, int tag, core::Buffer buffer);

  /// Scatter-gather send: packs the chain's segments into one contiguous
  /// mailbox buffer — THE single transport-boundary copy of the zero-copy
  /// data plane.
  void SendGather(int dest, int tag, const core::BufferChain& chain);

  /// Blocking receive of a message matching (source, tag); either may be the
  /// kAny* wildcard. Returns payload + envelope (ownership moves; no copy).
  Message RecvBytes(int source = kAnySource, int tag = kAnyTag);

  /// Blocking receive returning just the payload buffer (zero-copy).
  core::Buffer RecvBuffer(int source = kAnySource, int tag = kAnyTag);

  /// Blocks until a matching message is available; returns its byte count
  /// without consuming it.
  std::size_t Probe(int source = kAnySource, int tag = kAnyTag);

  /// True if a matching message is already waiting (non-blocking).
  bool HasMessage(int source = kAnySource, int tag = kAnyTag);

  /// Typed send of trivially copyable elements.
  template <typename T>
  void Send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendBytes(dest, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void SendValue(int dest, int tag, const T& value) {
    Send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  /// Typed receive; message size must be a multiple of sizeof(T).
  template <typename T>
  std::vector<T> Recv(int source = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = RecvBytes(source, tag);
    if (m.payload.size() % sizeof(T) != 0) {
      throw std::runtime_error("mpimini::Recv: size mismatch");
    }
    std::vector<T> out(m.payload.size() / sizeof(T));
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
    return out;
  }

  template <typename T>
  T RecvValue(int source = kAnySource, int tag = kAnyTag) {
    auto v = Recv<T>(source, tag);
    if (v.size() != 1) throw std::runtime_error("mpimini::RecvValue: count");
    return v[0];
  }

  // ---- Collectives -------------------------------------------------------

  /// Synchronize all ranks of this communicator.
  void Barrier();

  /// Broadcast `data` (same length everywhere) from `root` to all ranks.
  template <typename T>
  void Bcast(std::span<T> data, int root);

  /// Elementwise reduction onto `root`; other ranks' `inout` is unchanged.
  template <typename T>
  void Reduce(std::span<T> inout, Op op, int root);

  /// Elementwise reduction, result available on all ranks.
  template <typename T>
  void AllReduce(std::span<T> inout, Op op);

  /// Scalar AllReduce convenience.
  template <typename T>
  T AllReduceValue(T value, Op op) {
    AllReduce(std::span<T>(&value, 1), op);
    return value;
  }

  /// Gather equal-size contributions to `root` (rank order). Non-root ranks
  /// receive an empty vector.
  template <typename T>
  std::vector<T> Gather(std::span<const T> mine, int root);

  /// Gather variable-size byte blobs to `root` (rank order, zero-copy for
  /// remote contributions). Non-root ranks receive an empty vector.
  std::vector<core::Buffer> GatherBytes(std::span<const std::byte> mine,
                                        int root);

  /// Variable-size all-to-all: element d of `outgoing` is delivered to rank
  /// d; returns the blobs received, indexed by source rank. Every rank must
  /// call it (empty blobs are fine).
  std::vector<std::vector<std::byte>> AllToAllBytes(
      const std::vector<std::vector<std::byte>>& outgoing);

  /// Equal-size allgather (rank order, available on all ranks).
  template <typename T>
  std::vector<T> AllGather(std::span<const T> mine);

  /// Split into disjoint sub-communicators: ranks with equal `color` end up
  /// in the same child communicator, ordered by (key, parent rank).
  Comm Split(int color, int key);

 private:
  friend class Runtime;
  friend struct detail::CommState;
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  void CollectiveBytes(const std::function<void()>& root_work);

  std::shared_ptr<detail::CommState> state_;
  int rank_ = -1;
};

// ---- templated collective implementations (tree-free, mailbox based) -----

namespace detail {
/// Internal tags live below kUserTagFloor; user code must use tags >= 0.
inline constexpr int kTagBcast = -2;
inline constexpr int kTagReduce = -3;
inline constexpr int kTagGather = -4;
inline constexpr int kTagAllGather = -5;
inline constexpr int kTagSplit = -6;
inline constexpr int kTagAllToAll = -7;
inline constexpr int kTagAllReduce = -8;
inline constexpr int kTagClockSync = -9;

template <typename T>
void ApplyOp(Op op, std::span<T> acc, std::span<const T> in) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case Op::kSum: acc[i] += in[i]; break;
      case Op::kProd: acc[i] *= in[i]; break;
      case Op::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
      case Op::kMax: acc[i] = in[i] > acc[i] ? in[i] : acc[i]; break;
    }
  }
}
}  // namespace detail

template <typename T>
void Comm::Bcast(std::span<T> data, int root) {
  if (Rank() == root) {
    for (int r = 0; r < Size(); ++r) {
      if (r == root) continue;
      Send<T>(r, detail::kTagBcast, data);
    }
  } else {
    auto recv = Recv<T>(root, detail::kTagBcast);
    if (recv.size() != data.size()) {
      throw std::runtime_error("mpimini::Bcast: length mismatch");
    }
    std::memcpy(data.data(), recv.data(), data.size_bytes());
  }
}

// Collectives receive from each source explicitly (never a wildcard): FIFO
// ordering per (source, tag) channel then guarantees that back-to-back
// collectives cannot consume each other's messages even when ranks run far
// ahead of one another.
template <typename T>
void Comm::Reduce(std::span<T> inout, Op op, int root) {
  if (Rank() == root) {
    for (int src = 0; src < Size(); ++src) {
      if (src == root) continue;
      Message m = RecvBytes(src, detail::kTagReduce);
      std::vector<T> in(m.payload.size() / sizeof(T));
      std::memcpy(in.data(), m.payload.data(), m.payload.size());
      if (in.size() != inout.size()) {
        throw std::runtime_error("mpimini::Reduce: length mismatch");
      }
      detail::ApplyOp<T>(op, inout, in);
    }
  } else {
    Send<T>(root, detail::kTagReduce, std::span<const T>(inout.data(),
                                                         inout.size()));
  }
}

// AllReduce is its own collective on a dedicated tag, not Reduce+Bcast
// composed: composing the two interleaves kTagReduce/kTagBcast traffic of
// back-to-back collectives and doubles the number of mailbox round trips on
// the scalar hot path (flow-solver residual norms call AllReduceValue every
// iteration).  Root accumulates from every rank and sends the result back.
template <typename T>
void Comm::AllReduce(std::span<T> inout, Op op) {
  constexpr int kRoot = 0;
  if (Rank() == kRoot) {
    for (int src = 0; src < Size(); ++src) {
      if (src == kRoot) continue;
      Message m = RecvBytes(src, detail::kTagAllReduce);
      if (m.payload.size() != inout.size_bytes()) {
        throw std::runtime_error("mpimini::AllReduce: length mismatch");
      }
      std::vector<T> in(inout.size());
      std::memcpy(in.data(), m.payload.data(), m.payload.size());
      detail::ApplyOp<T>(op, inout,
                         std::span<const T>(in.data(), in.size()));
    }
    for (int dest = 0; dest < Size(); ++dest) {
      if (dest == kRoot) continue;
      Send<T>(dest, detail::kTagAllReduce,
              std::span<const T>(inout.data(), inout.size()));
    }
  } else {
    Send<T>(kRoot, detail::kTagAllReduce,
            std::span<const T>(inout.data(), inout.size()));
    Message m = RecvBytes(kRoot, detail::kTagAllReduce);
    if (m.payload.size() != inout.size_bytes()) {
      throw std::runtime_error("mpimini::AllReduce: length mismatch");
    }
    std::memcpy(inout.data(), m.payload.data(), m.payload.size());
  }
}

template <typename T>
std::vector<T> Comm::Gather(std::span<const T> mine, int root) {
  if (Rank() == root) {
    std::vector<T> all(mine.size() * static_cast<std::size_t>(Size()));
    std::memcpy(all.data() + mine.size() * static_cast<std::size_t>(root),
                mine.data(), mine.size_bytes());
    for (int src = 0; src < Size(); ++src) {
      if (src == root) continue;
      Message m = RecvBytes(src, detail::kTagGather);
      if (m.payload.size() != mine.size_bytes()) {
        throw std::runtime_error("mpimini::Gather: length mismatch");
      }
      std::memcpy(all.data() + mine.size() * static_cast<std::size_t>(src),
                  m.payload.data(), m.payload.size());
    }
    return all;
  }
  Send<T>(root, detail::kTagGather, mine);
  return {};
}

template <typename T>
std::vector<T> Comm::AllGather(std::span<const T> mine) {
  std::vector<T> all = Gather(mine, /*root=*/0);
  if (Rank() != 0) all.resize(mine.size() * static_cast<std::size_t>(Size()));
  Bcast(std::span<T>(all.data(), all.size()), /*root=*/0);
  return all;
}

}  // namespace mpimini
