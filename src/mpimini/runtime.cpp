#include "mpimini/runtime.hpp"

#include <cstdlib>
#include <exception>
#include <thread>

#include "mpimini/comm_state.hpp"

namespace mpimini {

namespace {
thread_local RankEnv* g_env = nullptr;

class EnvScope {
 public:
  explicit EnvScope(RankEnv* env) : previous_(g_env) { g_env = env; }
  ~EnvScope() { g_env = previous_; }
  EnvScope(const EnvScope&) = delete;
  EnvScope& operator=(const EnvScope&) = delete;

 private:
  RankEnv* previous_;
};
}  // namespace

RankEnv* CurrentEnv() { return g_env; }

WorkerEnvScope::WorkerEnvScope(RankEnv* env)
    : env_(env),
      previous_env_(g_env),
      previous_tracker_(instrument::SetCurrentTracker(env ? &env->memory
                                                          : nullptr)),
      previous_tracer_(
          instrument::SetCurrentTracer(env ? env->tracer.get() : nullptr)),
      previous_metrics_(instrument::SetCurrentMetrics(
          env ? env->metrics.get() : nullptr)),
      previous_flightrec_(instrument::SetCurrentFlightRecorder(
          env ? env->flightrec.get() : nullptr)) {
  g_env = env_;
  if (env_) env_->busy.Resume();
}

WorkerEnvScope::~WorkerEnvScope() {
  if (env_) env_->busy.Pause();
  g_env = previous_env_;
  instrument::SetCurrentFlightRecorder(previous_flightrec_);
  instrument::SetCurrentMetrics(previous_metrics_);
  instrument::SetCurrentTracer(previous_tracer_);
  instrument::SetCurrentTracker(previous_tracker_);
}

double RunResult::MeanBusySeconds() const {
  if (ranks.empty()) return 0.0;
  double sum = 0.0;
  for (const RankMetrics& r : ranks) sum += r.busy_seconds;
  return sum / static_cast<double>(ranks.size());
}

std::size_t RunResult::MaxPeakBytes() const {
  std::size_t peak = 0;
  for (const RankMetrics& r : ranks) peak = std::max(peak, r.peak_bytes);
  return peak;
}

std::size_t RunResult::TotalPeakBytes() const {
  std::size_t total = 0;
  for (const RankMetrics& r : ranks) total += r.peak_bytes;
  return total;
}

std::vector<const instrument::Tracer*> RunResult::TracerPointers() const {
  std::vector<const instrument::Tracer*> out;
  out.reserve(tracers.size());
  for (const auto& t : tracers) out.push_back(t.get());
  return out;
}

RunResult Runtime::Run(int nranks, const std::function<void(Comm&)>& body) {
  return Run(nranks, RunSettings{}, body);
}

RunResult Runtime::Run(int nranks, const RunSettings& settings,
                       const std::function<void(Comm&)>& body) {
  if (nranks < 1) throw std::invalid_argument("mpimini: nranks must be >= 1");

  // Crash forensics: from the first run on, an abort or uncaught exception
  // dumps every live flight-recorder ring (hook install is idempotent).
  instrument::InstallFlightRecorderCrashDump();
  if (const char* dir = std::getenv("NSM_FLIGHTREC_DIR")) {
    instrument::SetFlightRecorderDumpDir(dir);
  }

  // Build the world communicator via a size-preserving Split of a fresh
  // single-purpose state: we reuse Comm's private constructor through a
  // friend-free trick — construct the shared state here.
  struct WorldMaker : Comm {
    WorldMaker(std::shared_ptr<detail::CommState> s, int r) : Comm(s, r) {}
  };

  auto world_state = std::make_shared<detail::CommState>(nranks);

  std::vector<std::unique_ptr<RankEnv>> envs;
  envs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto env = std::make_unique<RankEnv>();
    env->rank = r;
    if (settings.trace) {
      // Allocated on the launching thread, deliberately outside any rank's
      // MemoryTracker: trace storage must not pollute the paper's per-rank
      // memory figures.
      env->tracer = std::make_shared<instrument::Tracer>(r, settings.tracer);
    }
    if (settings.metrics) {
      // Same rationale as the tracer: allocated outside rank threads so
      // the metric plane never shows up in per-rank memory figures.
      env->metrics = std::make_shared<instrument::MetricsRegistry>();
    }
    // Always-on (unlike tracer/metrics): the whole point of the flight
    // recorder is to have evidence for failures nobody opted into.
    env->flightrec = std::make_shared<instrument::FlightRecorder>(
        r, settings.flight_capacity);
    envs.push_back(std::move(env));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  instrument::WallTimer wall;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankEnv* env = envs[static_cast<std::size_t>(r)].get();
      EnvScope env_scope(env);
      instrument::TrackerScope tracker_scope(&env->memory);
      instrument::TracerScope tracer_scope(env->tracer.get());
      instrument::MetricsScope metrics_scope(env->metrics.get());
      instrument::FlightRecorderScope flightrec_scope(env->flightrec.get());
      Comm comm = WorldMaker(world_state, r);
      env->busy.Resume();
      try {
        body(comm);
      } catch (const std::exception& e) {
        instrument::RecordFlightEvent(instrument::FlightEventKind::kError,
                                      e.what());
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      } catch (...) {
        instrument::RecordFlightEvent(instrument::FlightEventKind::kError,
                                      "non-std exception");
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      env->busy.Pause();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds = wall.Elapsed();

  // Dump the forensic rings *before* the rethrow unwinds this frame: the
  // envs (and their recorders) die with it, so the terminate hook alone
  // would arrive too late to see a caught-and-rethrown rank error.
  for (const std::exception_ptr& e : errors) {
    if (e) {
      instrument::DumpFlightRecorders();
      break;
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  RunResult result;
  result.wall_seconds = wall_seconds;
  for (int r = 0; r < nranks; ++r) {
    const RankEnv& env = *envs[static_cast<std::size_t>(r)];
    RankMetrics m;
    m.rank = r;
    m.busy_seconds = env.busy.Seconds();
    m.peak_bytes = env.memory.PeakBytes();
    for (const auto& [name, bytes] : env.memory.ByCategory()) {
      m.peak_by_category[name] = env.memory.PeakBytes(name);
    }
    m.timings = env.timings;
    result.ranks.push_back(std::move(m));
    if (env.tracer) {
      result.tracers.push_back(envs[static_cast<std::size_t>(r)]->tracer);
    }
    for (const auto& extra : env.extra_tracers) {
      if (extra) result.tracers.push_back(extra);
    }
    if (env.metrics) {
      result.metrics.push_back(envs[static_cast<std::size_t>(r)]->metrics);
    }
    result.flight_recorders.push_back(
        envs[static_cast<std::size_t>(r)]->flightrec);
  }
  return result;
}

}  // namespace mpimini
