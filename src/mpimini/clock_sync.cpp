#include "mpimini/clock_sync.hpp"

#include <stdexcept>

#include "instrument/tracer.hpp"

namespace mpimini {

ClockSync CalibrateClockOffset(Comm& comm, int root, int rounds,
                               std::int64_t injected_skew_ns) {
  if (root < 0 || root >= comm.Size()) {
    throw std::invalid_argument("mpimini: clock-sync root out of range");
  }
  if (rounds < 1) {
    throw std::invalid_argument("mpimini: clock-sync rounds must be >= 1");
  }
  instrument::Span span("clock.sync");

  // The calling rank's (possibly virtually skewed) local clock.
  auto local_now = [injected_skew_ns] {
    return instrument::Tracer::NowNs() + injected_skew_ns;
  };

  ClockSync sync;
  sync.rounds = rounds;
  if (comm.Rank() == root) {
    // Serve one rank at a time, in rank order: while rank r ping-pongs,
    // later ranks' first pings queue in the mailbox — their inflated RTT
    // for that round is discarded by the min-RTT filter.
    for (int r = 0; r < comm.Size(); ++r) {
      if (r == root) continue;
      for (int k = 0; k < rounds; ++k) {
        (void)comm.RecvValue<std::int64_t>(r, detail::kTagClockSync);
        comm.SendValue<std::int64_t>(r, detail::kTagClockSync, local_now());
      }
    }
    return sync;  // the root defines the global timeline: offset 0
  }

  std::int64_t best_rtt = 0;
  std::int64_t best_offset = 0;
  for (int k = 0; k < rounds; ++k) {
    const std::int64_t t0 = local_now();
    comm.SendValue<std::int64_t>(root, detail::kTagClockSync, t0);
    const auto t_root =
        comm.RecvValue<std::int64_t>(root, detail::kTagClockSync);
    const std::int64_t t1 = local_now();
    const std::int64_t rtt = t1 - t0;
    // Symmetric-path assumption: the root read its clock halfway through
    // the round trip.  The error of this sample is bounded by rtt/2.
    const std::int64_t offset = t_root - (t0 + rtt / 2);
    if (k == 0 || rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = offset;
    }
  }
  sync.offset_ns = best_offset;
  sync.min_rtt_ns = best_rtt;
  return sync;
}

}  // namespace mpimini
