// Internal: shared communicator state. Included only by mpimini .cpp files.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mpimini/comm.hpp"

namespace mpimini::detail {

// Shared state of one communicator: one mailbox per destination rank plus a
// central barrier and split rendezvous, all guarded by a single mutex (ranks
// are threads on one core; a finer-grained design would buy nothing here).
struct CommState {
  explicit CommState(int n)
      : size(n),
        boxes(static_cast<std::size_t>(n)),
        split_seq(static_cast<std::size_t>(n), 0) {}

  struct SplitOp {
    // rank -> (color, key)
    std::map<int, std::pair<int, int>> entries;
    bool ready = false;
    // rank -> (child state, child rank); absent for color < 0.
    std::map<int, std::pair<std::shared_ptr<CommState>, int>> result;
    int taken = 0;
  };

  const int size;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::deque<Message>> boxes;

  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;

  std::vector<std::uint64_t> split_seq;
  std::map<std::uint64_t, SplitOp> splits;
};

}  // namespace mpimini::detail
