// Internal: shared communicator state. Included only by mpimini .cpp files.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/lock_ranks.hpp"
#include "core/thread_annotations.hpp"
#include "mpimini/comm.hpp"

namespace mpimini::detail {

// Shared state of one communicator: one mailbox per destination rank plus a
// central barrier and split rendezvous, all guarded by a single annotated
// mutex (ranks are threads on one core; a finer-grained design would buy
// nothing here).  Every field below the mutex is NSM_GUARDED_BY it, so the
// Clang thread-safety analysis proves each access in comm.cpp holds the
// lock — the mailbox is the highest-traffic shared structure in the system.
struct CommState {
  explicit CommState(int n)
      : size(n),
        boxes(static_cast<std::size_t>(n)),
        split_seq(static_cast<std::size_t>(n), 0) {}

  struct SplitOp {
    // rank -> (color, key)
    std::map<int, std::pair<int, int>> entries;
    bool ready = false;
    // rank -> (child state, child rank); absent for color < 0.
    std::map<int, std::pair<std::shared_ptr<CommState>, int>> result;
    int taken = 0;
  };

  const int size;
  core::Mutex mutex{core::lock_rank::kMpiminiCommMutex};
  core::CondVar cv;
  std::vector<std::deque<Message>> boxes NSM_GUARDED_BY(mutex);

  int barrier_count NSM_GUARDED_BY(mutex) = 0;
  std::uint64_t barrier_generation NSM_GUARDED_BY(mutex) = 0;

  std::vector<std::uint64_t> split_seq NSM_GUARDED_BY(mutex);
  std::map<std::uint64_t, SplitOp> splits NSM_GUARDED_BY(mutex);
};

}  // namespace mpimini::detail
