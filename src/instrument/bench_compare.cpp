#include "instrument/bench_compare.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "instrument/report.hpp"

namespace instrument {

namespace {

// Minimal parser for the exact JSON shape WriteBenchJson emits: an object
// with string values for "bench"/"config" and one flat string->number
// object under "metrics".  Anything else is rejected (nullopt), which is
// the right failure mode for a CI gate reading its own artifacts.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<BenchReport> Parse() {
    BenchReport report;
    if (!Expect('{')) return std::nullopt;
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++at_;
        break;
      }
      if (!first && !Expect(',')) return std::nullopt;
      first = false;
      std::string key;
      if (!ParseString(key)) return std::nullopt;
      if (!Expect(':')) return std::nullopt;
      if (key == "bench" || key == "config") {
        std::string value;
        if (!ParseString(value)) return std::nullopt;
        (key == "bench" ? report.bench : report.config) = std::move(value);
      } else if (key == "metrics") {
        if (!ParseMetrics(report.metrics)) return std::nullopt;
      } else {
        return std::nullopt;  // unknown key: not one of our files
      }
    }
    SkipSpace();
    if (at_ != text_.size()) return std::nullopt;
    return report;
  }

 private:
  void SkipSpace() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  char Peek() {
    return at_ < text_.size() ? text_[at_] : '\0';
  }

  bool Expect(char c) {
    SkipSpace();
    if (Peek() != c) return false;
    ++at_;
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Expect('"')) return false;
    out.clear();
    while (at_ < text_.size() && text_[at_] != '"') {
      char c = text_[at_++];
      if (c == '\\' && at_ < text_.size()) {
        const char esc = text_[at_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;  // \" and \\ (and tolerated others)
        }
      }
      out += c;
    }
    if (at_ >= text_.size()) return false;
    ++at_;  // closing quote
    return true;
  }

  bool ParseNumber(double& out) {
    SkipSpace();
    const char* begin = text_.c_str() + at_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    at_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool ParseMetrics(std::map<std::string, double>& out) {
    if (!Expect('{')) return false;
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++at_;
        return true;
      }
      if (!first && !Expect(',')) return false;
      first = false;
      std::string name;
      double value = 0.0;
      if (!ParseString(name) || !Expect(':') || !ParseNumber(value)) {
        return false;
      }
      out[std::move(name)] = value;
    }
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

bool WriteBenchJson(const std::string& path, const BenchReport& report) {
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  out << "{\n  \"bench\": \"" << JsonEscape(report.bench) << "\",\n";
  out << "  \"config\": \"" << JsonEscape(report.config) << "\",\n";
  out << "  \"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : report.metrics) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << JsonEscape(name) << "\": " << JsonNumber(value);
  }
  out << "\n  }\n}\n";
  return file.Commit();
}

std::optional<BenchReport> ReadBenchJson(const std::string& path) {
  BenchReadStatus status = BenchReadStatus::kOk;
  return ReadBenchJson(path, status);
}

std::optional<BenchReport> ReadBenchJson(const std::string& path,
                                         BenchReadStatus& status) {
  std::ifstream in(path);
  if (!in) {
    status = BenchReadStatus::kMissingFile;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::optional<BenchReport> report = Parser(text).Parse();
  status = report ? BenchReadStatus::kOk : BenchReadStatus::kUnparseable;
  return report;
}

bool IsTimeMetric(const std::string& name) {
  return name.find("seconds") != std::string::npos ||
         name.find("_ms") != std::string::npos;
}

bool IsE2eMetric(const std::string& name) {
  return IsTimeMetric(name) && name.find("e2e_") != std::string::npos;
}

int CompareResult::Regressions() const {
  int n = 0;
  for (const CompareRow& row : rows) {
    if (row.regressed || row.missing) ++n;
  }
  return n;
}

CompareResult CompareBenchReports(const BenchReport& current,
                                  const BenchReport& baseline,
                                  const CompareOptions& options) {
  CompareResult result;
  if (current.config != baseline.config || current.bench != baseline.bench) {
    result.config_mismatch = true;
    result.ok = false;
  }
  for (const auto& [name, base_value] : baseline.metrics) {
    CompareRow row;
    row.name = name;
    row.baseline = base_value;
    if (IsE2eMetric(name) && options.e2e_threshold >= 0.0) {
      row.threshold = options.e2e_threshold;
    } else {
      row.threshold = IsTimeMetric(name) ? options.time_threshold
                                         : options.counter_threshold;
    }
    auto it = current.metrics.find(name);
    if (it == current.metrics.end()) {
      row.missing = true;
      result.ok = false;
    } else {
      row.current = it->second;
      row.ratio = base_value != 0.0 ? row.current / base_value : 0.0;
      // Small absolute epsilon so a zero baseline tolerates an exact zero
      // and counter rounding (doubles carrying integers) never trips.
      const double limit = base_value * (1.0 + row.threshold) + 1e-9;
      row.regressed = row.current > limit;
      if (row.regressed) result.ok = false;
    }
    result.rows.push_back(std::move(row));
  }
  for (const auto& [name, value] : current.metrics) {
    (void)value;
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      result.added.push_back(name);
    }
  }
  return result;
}

}  // namespace instrument
