#include "instrument/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "instrument/report.hpp"
#include "instrument/timer.hpp"

namespace instrument {

namespace {

std::string Micros(std::int64_t ns, std::int64_t base) {
  return JsonNumber(static_cast<double>(ns - base) * 1e-3);
}

}  // namespace

std::int64_t TraceBaseTimestamp(const std::vector<const Tracer*>& tracers) {
  // Earliest *aligned* timestamp across all recorded data, so exported
  // traces start near t=0 instead of at steady_clock's epoch offset.  The
  // per-tracer clock offset participates here: the base must be the global
  // minimum or an offset lane could export negative timestamps.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    const std::int64_t offset = tracer->ClockOffsetNs();
    for (const Tracer::SpanRecord& s : tracer->Spans()) {
      base = std::min(base, s.start_ns + offset);
    }
    for (const Tracer::EventRecord& e : tracer->Events()) {
      base = std::min(base, e.ts_ns + offset);
    }
    for (const Tracer::CounterSample& c : tracer->CounterSamples()) {
      base = std::min(base, c.ts_ns + offset);
    }
    for (const Tracer::FlowRecord& f : tracer->Flows()) {
      base = std::min(base, f.ts_ns + offset);
    }
  }
  return base == std::numeric_limits<std::int64_t>::max() ? 0 : base;
}

double TelemetrySummary::SpanTotalSeconds(const std::string& name) const {
  auto it = spans.find(name);
  return it == spans.end() ? 0.0 : it->second.total_seconds;
}

std::uint64_t TelemetrySummary::SpanCount(const std::string& name) const {
  auto it = spans.find(name);
  return it == spans.end() ? 0 : it->second.count;
}

double TelemetrySummary::Counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second;
}

TelemetrySummary Summarize(const std::vector<const Tracer*>& tracers) {
  TelemetrySummary summary;
  std::map<std::string, RunningStats> stats;
  std::map<std::string, std::vector<double>> durations;
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    ++summary.ranks;
    summary.total_spans += tracer->TotalSpans();
    summary.dropped_spans += tracer->DroppedSpans();
    summary.skipped_waits += tracer->SkippedWaits();
    summary.skipped_wait_seconds += tracer->SkippedWaitSeconds();
    summary.wait_min_seconds =
        static_cast<double>(tracer->Opts().wait_min_ns) * 1e-9;
    RankDigest digest;
    digest.rank = tracer->Rank();
    digest.group = tracer->GroupName();
    digest.total_spans = tracer->TotalSpans();
    digest.dropped_spans = tracer->DroppedSpans();
    digest.dropped_events = tracer->DroppedEvents();
    digest.skipped_waits = tracer->SkippedWaits();
    digest.skipped_wait_seconds = tracer->SkippedWaitSeconds();
    digest.clock_offset_ns = tracer->ClockOffsetNs();
    digest.clock_min_rtt_ns = tracer->ClockMinRttNs();
    digest.clock_drift_ns = tracer->ClockDriftNs();
    summary.per_rank.push_back(digest);
    // Per-rank moments first, merged across ranks below — exercises the
    // same Merge path a sharded (multi-process) collector would use.
    std::map<std::string, RunningStats> rank_stats;
    for (const Tracer::SpanRecord& span : tracer->Spans()) {
      const double seconds = static_cast<double>(span.duration_ns) * 1e-9;
      const std::string name(span.Name());
      rank_stats[name].Add(seconds);
      durations[name].push_back(seconds);
    }
    for (const auto& [name, rs] : rank_stats) stats[name].Merge(rs);
    for (const auto& [name, value] : tracer->CounterTotals()) {
      summary.counters[name] += value;
    }
  }
  for (auto& [name, rs] : stats) {
    SpanAggregate agg;
    agg.count = rs.Count();
    agg.mean_seconds = rs.Mean();
    agg.max_seconds = rs.Max();
    agg.total_seconds = rs.Mean() * static_cast<double>(rs.Count());
    std::vector<double>& pool = durations[name];
    std::sort(pool.begin(), pool.end());
    agg.p50_seconds = Percentile(pool, 0.50);
    agg.p95_seconds = Percentile(pool, 0.95);
    summary.spans[name] = agg;
  }
  return summary;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<const Tracer*>& tracers,
                      std::int64_t base_ns) {
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  const std::int64_t base = base_ns >= 0 ? base_ns : TraceBaseTimestamp(tracers);
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out << ",";
    first = false;
    out << "\n" << event;
  };
  // One process lane per comm group, named once (Perfetto keys process
  // metadata by pid; repeating it per tracer would be redundant but legal —
  // emitting once keeps diffs of smoke traces stable).
  std::map<int, std::string> groups;
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    groups.emplace(tracer->Group(), tracer->GroupName());
  }
  for (const auto& [group, name] : groups) {
    const std::string pid = std::to_string(group);
    emit("{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         JsonEscape(name) + "\"}}");
    emit("{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" +
         pid + "}}");
  }
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    const std::string pid = std::to_string(tracer->Group());
    const std::string tid = std::to_string(tracer->Tid());
    const std::string at = "\"pid\":" + pid + ",\"tid\":" + tid;
    // Calibrated skew for this lane: every exported timestamp is shifted
    // onto the global timeline before subtracting the shared base.
    const std::int64_t offset = tracer->ClockOffsetNs();
    emit("{\"ph\":\"M\"," + at +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         JsonEscape(tracer->ThreadLabel()) + "\"}}");
    // Machine-readable per-lane digest: trace_merge.py reads drop counts
    // (completeness gate) and clock calibration (alignment audit) from here
    // instead of re-deriving them from the event stream.
    emit("{\"ph\":\"M\"," + at +
         ",\"name\":\"nsm_rank_digest\",\"args\":{\"rank\":" +
         std::to_string(tracer->Rank()) +
         ",\"total_spans\":" + std::to_string(tracer->TotalSpans()) +
         ",\"dropped_spans\":" + std::to_string(tracer->DroppedSpans()) +
         ",\"dropped_events\":" + std::to_string(tracer->DroppedEvents()) +
         ",\"clock_offset_ns\":" + std::to_string(offset) +
         ",\"clock_min_rtt_ns\":" + std::to_string(tracer->ClockMinRttNs()) +
         ",\"clock_drift_ns\":" + std::to_string(tracer->ClockDriftNs()) +
         "}}");
    for (const Tracer::SpanRecord& span : tracer->Spans()) {
      emit("{\"ph\":\"X\"," + at + ",\"name\":\"" + JsonEscape(span.Name()) +
           "\",\"ts\":" + Micros(span.start_ns + offset, base) + ",\"dur\":" +
           JsonNumber(static_cast<double>(span.duration_ns) * 1e-3) + "}");
    }
    for (const Tracer::EventRecord& event : tracer->Events()) {
      emit("{\"ph\":\"i\"," + at + ",\"name\":\"" + JsonEscape(event.Name()) +
           "\",\"ts\":" + Micros(event.ts_ns + offset, base) + ",\"s\":\"t\"}");
    }
    // Causal step links: "s" fires inside sst.send on the producing lane,
    // "f" inside sst.recv on the consuming lane; both ends derive the same
    // id (provenance StepSpanId) so no coordination crosses the wire.  The
    // id is emitted as a string — it is a 64-bit hash and JSON numbers
    // only carry 53 bits faithfully.
    for (const Tracer::FlowRecord& flow : tracer->Flows()) {
      std::string event = "{\"ph\":\"" + std::string(flow.start ? "s" : "f") +
                          "\",";
      if (!flow.start) event += "\"bp\":\"e\",";
      event += "\"cat\":\"sst\",\"name\":\"sst.step\",\"id\":\"" +
               std::to_string(flow.id) + "\"," + at +
               ",\"ts\":" + Micros(flow.ts_ns + offset, base) +
               ",\"args\":{\"step\":" + std::to_string(flow.step) + "}}";
      emit(event);
    }
    // Chrome counter tracks are keyed by (pid, name): prefix the rank so
    // each rank gets its own track.
    for (const Tracer::CounterSample& sample : tracer->CounterSamples()) {
      emit("{\"ph\":\"C\"," + at + ",\"name\":\"rank" + tid + "/" +
           JsonEscape(sample.Name()) +
           "\",\"ts\":" + Micros(sample.ts_ns + offset, base) +
           ",\"args\":{\"value\":" + JsonNumber(sample.value) + "}}");
    }
  }
  // Alignment anchor for tools fusing several files from one run
  // (tools/trace_merge.py): identical base_ns means timestamps are
  // directly comparable with no re-shifting.
  out << "\n],\"nsm\":{\"base_ns\":" << base << "}}\n";
  return file.Commit();
}

bool WriteTelemetryJson(const std::string& path,
                        const TelemetrySummary& summary) {
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  out << "{\n";
  out << "  \"ranks\": " << summary.ranks << ",\n";
  out << "  \"total_spans\": " << summary.total_spans << ",\n";
  out << "  \"dropped_spans\": " << summary.dropped_spans << ",\n";
  out << "  \"skipped_waits\": " << summary.skipped_waits << ",\n";
  out << "  \"skipped_wait_seconds\": "
      << JsonNumber(summary.skipped_wait_seconds) << ",\n";
  out << "  \"wait_min_seconds\": " << JsonNumber(summary.wait_min_seconds)
      << ",\n";
  out << "  \"per_rank\": [";
  bool first_rank = true;
  for (const RankDigest& d : summary.per_rank) {
    if (!first_rank) out << ",";
    first_rank = false;
    out << "\n    {\"rank\": " << d.rank << ", \"group\": \""
        << JsonEscape(d.group) << "\", \"total_spans\": "
        << d.total_spans << ", \"dropped_spans\": " << d.dropped_spans
        << ", \"dropped_events\": " << d.dropped_events
        << ", \"skipped_waits\": " << d.skipped_waits
        << ", \"skipped_wait_seconds\": "
        << JsonNumber(d.skipped_wait_seconds)
        << ", \"clock_offset_ns\": " << d.clock_offset_ns
        << ", \"clock_min_rtt_ns\": " << d.clock_min_rtt_ns
        << ", \"clock_drift_ns\": " << d.clock_drift_ns << "}";
  }
  out << "\n  ],\n";
  out << "  \"spans\": {";
  bool first = true;
  for (const auto& [name, agg] : summary.spans) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << JsonEscape(name) << "\": {\"count\": " << agg.count
        << ", \"total_seconds\": " << JsonNumber(agg.total_seconds)
        << ", \"mean_seconds\": " << JsonNumber(agg.mean_seconds)
        << ", \"p50_seconds\": " << JsonNumber(agg.p50_seconds)
        << ", \"p95_seconds\": " << JsonNumber(agg.p95_seconds)
        << ", \"max_seconds\": " << JsonNumber(agg.max_seconds) << "}";
  }
  out << "\n  },\n";
  out << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : summary.counters) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << JsonEscape(name) << "\": " << JsonNumber(value);
  }
  out << "\n  }\n";
  out << "}\n";
  return file.Commit();
}

Table TelemetryTable(const TelemetrySummary& summary,
                     const std::string& title) {
  Table table(title);
  table.SetHeader(
      {"span", "count", "total_s", "mean_s", "p50_s", "p95_s", "max_s"});
  std::vector<std::pair<std::string, SpanAggregate>> rows(
      summary.spans.begin(), summary.spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  for (const auto& [name, agg] : rows) {
    table.AddRow({name, std::to_string(agg.count),
                  FormatSeconds(agg.total_seconds),
                  FormatSeconds(agg.mean_seconds),
                  FormatSeconds(agg.p50_seconds),
                  FormatSeconds(agg.p95_seconds),
                  FormatSeconds(agg.max_seconds)});
  }
  return table;
}

}  // namespace instrument
