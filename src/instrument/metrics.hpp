// Per-rank run-health metrics and their cross-rank reduction.
//
// The tracer (tracer.hpp) answers "where inside a step did the time go" on
// one rank's timeline; the metrics plane answers the *distributional*
// questions the paper's figures actually plot: how does the step rate, the
// memory high-water mark, or the SST staging queue look *across* ranks —
// min/mean/max/p95 and the max/mean imbalance ratio that exposes stragglers
// and backpressure.  Each rank thread owns one MetricsRegistry (installed by
// the mpimini runtime next to its Tracer and MemoryTracker); at run end the
// per-rank snapshots are reduced to one MetricsReport, written as a single
// rank-aggregated metrics.json instead of N per-rank files.
//
// Like the tracer, the plane is strictly opt-in: when no registry is
// installed, CurrentMetrics() is one thread-local null read and every feed
// site records nothing and allocates nothing on the rank thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_annotations.hpp"
#include "instrument/straggler.hpp"

namespace instrument {

/// Fixed-bucket histogram.  Boundary semantics (tested): `edges` are the
/// ascending bucket boundaries e0 < e1 < ... < e{n-1}; bucket 0 is the
/// underflow bucket (-inf, e0), bucket i (1 <= i <= n-1) holds [e_{i-1},
/// e_i), and bucket n is the overflow bucket [e_{n-1}, +inf).  A value
/// exactly on a boundary belongs to the bucket that boundary *opens* (the
/// upper one).
struct HistogramData {
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;  ///< edges.size() + 1 counts
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  explicit HistogramData(std::vector<double> bucket_edges = {});

  void Observe(double value);
  /// Index of the bucket `value` falls into (see boundary semantics above).
  [[nodiscard]] std::size_t BucketIndex(double value) const;
  [[nodiscard]] double Mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Fold `other` into this histogram; throws std::runtime_error if the
  /// bucket edges differ (merging incompatible layouts would silently
  /// misattribute counts).
  void Merge(const HistogramData& other);
};

/// One gauge: the latest value plus its low/high watermarks over the run.
struct GaugeData {
  double last = 0.0;
  double low = 0.0;   ///< minimum value ever Set (low watermark)
  double high = 0.0;  ///< maximum value ever Set (high watermark)
  double sum = 0.0;
  std::uint64_t samples = 0;
};

/// Immutable copy of one rank's metrics, safe to ship across ranks.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, GaugeData> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Flat binary wire format (host byte order; ranks share one process).
  [[nodiscard]] std::vector<std::byte> Serialize() const;
  /// Inverse of Serialize; throws std::runtime_error on a malformed blob.
  static MetricsSnapshot Deserialize(std::span<const std::byte> bytes);
};

/// Typed per-rank metrics recorder.  Not thread-safe by design: each rank
/// thread owns its registry (mirrors Tracer / MemoryTracker).  The
/// single-owner contract is machine-checked under NSM_THREAD_CHECKS.
class MetricsRegistry {
 public:
  /// Record a gauge sample: keeps the latest value and the low/high
  /// watermarks (e.g. SST queue depth, current host bytes).
  void Set(std::string_view name, double value);

  /// Add `delta` to a monotonic counter.
  void Add(std::string_view name, double delta);

  /// Feed a monotonic counter from an absolute cumulative total (e.g. a
  /// BufferStats field sampled at step boundaries); keeps the max seen so
  /// repeated samples are idempotent.
  void SetTotal(std::string_view name, double total);

  /// Record a histogram observation.  The first observation of an unknown
  /// name registers it with DefaultLatencyEdges() (log-spaced seconds).
  void Observe(std::string_view name, double value);

  /// Register a histogram with explicit bucket edges (ascending).  Throws
  /// std::invalid_argument on unsorted/duplicate edges.
  void DefineHistogram(std::string_view name, std::vector<double> edges);

  /// Fold another registry's snapshot into this one: counters add, gauge
  /// watermarks/sums merge, histograms merge (same-edges contract as
  /// HistogramData::Merge).  The ownership-handoff point of the async
  /// pipeline: the worker thread's registry is snapshotted after the worker
  /// joins, then folded into the rank's registry *by the rank thread*, so
  /// each registry keeps exactly one owner for its whole life.
  void MergeFrom(const MetricsSnapshot& other);

  /// Log-spaced seconds-scale edges: 1us .. 10s, one bucket per decade.
  [[nodiscard]] static std::vector<double> DefaultLatencyEdges();

  [[nodiscard]] const std::map<std::string, double>& Counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, GaugeData>& Gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramData>& Histograms()
      const {
    return histograms_;
  }
  /// A counter's value (0 if never fed).
  [[nodiscard]] double Counter(const std::string& name) const;
  /// A gauge's state (nullptr if never set).
  [[nodiscard]] const GaugeData* Gauge(const std::string& name) const;

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Drop all recorded data.
  void Clear();

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, GaugeData> gauges_;
  std::map<std::string, HistogramData> histograms_;
  /// Single-owner audit (no-op unless NSM_THREAD_CHECKS).
  core::ThreadOwnershipChecker owner_;
};

/// Cross-rank statistics for one scalar metric.  For counters the per-rank
/// value is the rank's total; for gauges it is the rank's high watermark.
struct MetricStat {
  int ranks = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;  ///< nearest-rank percentile over the per-rank values
  double sum = 0.0;  ///< counters: the global total
  /// Load-imbalance ratio max/mean (1.0 = perfectly balanced; 0 when the
  /// mean is zero).  The quantity that exposes stragglers in Fig 2/5.
  double imbalance = 0.0;
  // Gauge-only: global watermarks across every sample on every rank.
  double low_watermark = 0.0;
  double high_watermark = 0.0;
};

/// The rank-aggregated run-health report (one per run, not per rank).
struct MetricsReport {
  int ranks = 0;
  std::map<std::string, MetricStat> counters;
  std::map<std::string, MetricStat> gauges;
  std::map<std::string, HistogramData> histograms;  ///< merged buckets
  /// Straggler-detector verdicts (rank 0 attaches them after the
  /// reduction); always serialized to metrics.json, [] for a clean run.
  std::vector<AnomalyRecord> anomalies;

  [[nodiscard]] bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Global total of a counter across ranks (0 if never fed).
  [[nodiscard]] double CounterSum(const std::string& name) const;
  /// Cross-rank stat for a gauge (nullptr if never set anywhere).
  [[nodiscard]] const MetricStat* Gauge(const std::string& name) const;
};

/// Reduce per-rank snapshots into one report: min/mean/max/p95 + imbalance
/// per metric, counter sums, gauge watermarks, merged histograms.  The
/// reduction is deterministic in the partitioning: splitting the same
/// per-item work across 4 or 8 ranks yields identical counter totals.
[[nodiscard]] MetricsReport ReduceSnapshots(
    const std::vector<MetricsSnapshot>& per_rank);

/// Write the report as metrics.json — atomically (temp file + rename), so a
/// killed run never leaves a truncated file.  Returns false on I/O failure.
bool WriteMetricsJson(const std::string& path, const MetricsReport& report);

/// The registry installed for the calling thread (rank), or nullptr.
/// nullptr means the metrics plane is disabled: feed sites then skip all
/// recording and perform no allocations.
MetricsRegistry* CurrentMetrics();

/// Install `registry` for the calling thread; returns the previous one.
MetricsRegistry* SetCurrentMetrics(MetricsRegistry* registry);

/// RAII installation of a registry for the current scope (runtime / tests).
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry* registry)
      : previous_(SetCurrentMetrics(registry)) {}
  ~MetricsScope() { SetCurrentMetrics(previous_); }

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace instrument
