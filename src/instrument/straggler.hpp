// Cross-rank straggler detection on heartbeat samples (DESIGN.md §5c).
//
// Each heartbeat interval every rank contributes one RankHealthSample
// (interval busy seconds plus the per-span deltas that could explain
// them); rank 0 feeds the gathered rows into a StragglerMonitor.  The
// detector is a pure function over one interval's samples — rolling
// windows, verdict dedup, and the flight-recorder / heartbeat / metrics
// fan-out live around it — so it is unit-testable with synthetic series
// and deterministic in the rank partitioning.
//
// Thresholding uses the modified z-score on the median absolute deviation
// (z = 0.6745 * (x - median) / MAD), the robust outlier statistic: unlike
// mean/stddev a single straggler cannot drag the baseline toward itself.
// Two guards make it usable at small rank counts: the MAD is floored at a
// share of the median (a perfectly balanced run has MAD ~ 0, which would
// make any jitter an outlier), and a flagged rank must also exceed
// min_ratio x median (a microsecond-scale z-spike is not a straggler).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace instrument {

/// One rank's contribution to a heartbeat interval, shipped over
/// Comm::Gather (trivially copyable by design).
struct RankHealthSample {
  std::int32_t rank = -1;
  double step_seconds = 0.0;       ///< busy seconds this interval
  double solver_seconds = 0.0;     ///< solver.step_seconds delta
  double insitu_seconds = 0.0;     ///< bridge.update_seconds delta
  double transport_seconds = 0.0;  ///< sst stall + pipeline wait delta
};

struct StragglerConfig {
  double z_threshold = 3.5;    ///< modified z-score cutoff
  double min_ratio = 1.3;      ///< flagged rank must exceed ratio x median
  double mad_floor_share = 0.05;  ///< MAD floor as a share of the median
  int min_ranks = 3;           ///< below this the median is meaningless
  int window = 8;              ///< rolling intervals per rank
};

/// One straggler verdict, as emitted to the flight recorder, the heartbeat
/// line, and the metrics.json `anomalies` array.
struct AnomalyRecord {
  int rank = -1;
  int step = -1;               ///< step at which the rank was first flagged
  double z = 0.0;              ///< modified z-score at detection
  double step_seconds = 0.0;   ///< the rank's (windowed) interval seconds
  double median_seconds = 0.0; ///< cross-rank median it was judged against
  std::string dominant_span;   ///< "solver" | "insitu" | "transport" | "unknown"
  double span_share = 0.0;     ///< dominant span's share of the excess [0,1]
};

/// Render one record as a JSON object (shared by metrics.json and the
/// monitor's /status endpoint).
[[nodiscard]] std::string AnomalyJson(const AnomalyRecord& record);

/// Pure single-interval detector over one set of per-rank samples.
/// Deterministic: same samples -> same verdicts, regardless of how the
/// underlying work was partitioned into them.
[[nodiscard]] std::vector<AnomalyRecord> DetectStragglers(
    std::span<const RankHealthSample> samples, int step,
    const StragglerConfig& config = {});

/// Rolling-window accumulator: smooths per-interval jitter with a per-rank
/// window mean before detection, and dedups verdicts (one record per rank,
/// keeping the maximum z seen).
class StragglerMonitor {
 public:
  explicit StragglerMonitor(const StragglerConfig& config = {})
      : config_(config) {}

  /// Feed one interval's samples; returns the ranks *newly* flagged this
  /// interval (already-flagged ranks update their stored record silently).
  std::vector<AnomalyRecord> Update(
      std::span<const RankHealthSample> samples, int step);

  /// All verdicts so far, one per flagged rank, in detection order.
  [[nodiscard]] const std::vector<AnomalyRecord>& Anomalies() const {
    return anomalies_;
  }

 private:
  StragglerConfig config_;
  std::map<int, std::deque<RankHealthSample>> windows_;
  std::vector<AnomalyRecord> anomalies_;
};

}  // namespace instrument
