#include "instrument/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "instrument/report.hpp"

namespace instrument {

namespace {
thread_local Tracer* g_tracer = nullptr;

void CopyName(char* dst, std::size_t capacity, std::string_view name) {
  const std::size_t n = std::min(name.size(), capacity);
  std::memcpy(dst, name.data(), n);
  dst[n] = '\0';
}
}  // namespace

Tracer* CurrentTracer() { return g_tracer; }

Tracer* SetCurrentTracer(Tracer* tracer) {
  Tracer* previous = g_tracer;
  g_tracer = tracer;
  return previous;
}

Tracer::Tracer(int rank, Options options)
    : rank_(rank),
      options_(options),
      tid_(rank),
      thread_label_("rank " + std::to_string(rank)) {
  ring_.resize(options_.span_capacity);
  events_.reserve(options_.event_capacity);
  samples_.reserve(options_.event_capacity);
}

std::int64_t Tracer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::Instant(std::string_view name) {
  owner_.Check("instrument::Tracer::Instant");
  if (events_.size() >= options_.event_capacity) {
    ++dropped_events_;
    return;
  }
  EventRecord rec;
  CopyName(rec.name, SpanRecord::kNameCapacity, name);
  rec.ts_ns = NowNs();
  events_.push_back(rec);
}

void Tracer::SampleCounter(std::string_view name, double value) {
  owner_.Check("instrument::Tracer::SampleCounter");
  counters_[std::string(name)] = value;
  if (samples_.size() >= options_.event_capacity) {
    ++dropped_events_;
    return;
  }
  CounterSample rec;
  CopyName(rec.name, SpanRecord::kNameCapacity, name);
  rec.ts_ns = NowNs();
  rec.value = value;
  samples_.push_back(rec);
}

void Tracer::AddCounter(std::string_view name, double delta) {
  owner_.Check("instrument::Tracer::AddCounter");
  counters_[std::string(name)] += delta;
}

void Tracer::Flow(std::uint64_t id, int step, bool start) {
  owner_.Check("instrument::Tracer::Flow");
  if (flows_.size() >= options_.event_capacity) {
    ++dropped_events_;
    return;
  }
  FlowRecord rec;
  rec.id = id;
  rec.ts_ns = NowNs();
  rec.step = step;
  rec.start = start;
  flows_.push_back(rec);
}

void Tracer::SetGroup(int group, std::string_view name) {
  group_ = group;
  group_name_.assign(name);
}

void Tracer::SetThreadLane(int tid, std::string_view label) {
  tid_ = tid;
  thread_label_.assign(label);
}

void Tracer::SetClockCalibration(std::int64_t offset_ns,
                                 std::int64_t min_rtt_ns) {
  clock_offset_ns_ = offset_ns;
  clock_rtt_ns_ = min_rtt_ns;
}

std::uint16_t Tracer::OpenSpan() {
  owner_.Check("instrument::Tracer::OpenSpan");
  const std::uint32_t depth = depth_++;
  return static_cast<std::uint16_t>(std::min<std::uint32_t>(depth, 0xffff));
}

void Tracer::CloseSpan(std::string_view name, std::int64_t start_ns,
                       std::int64_t end_ns, std::uint16_t depth) {
  ++total_;
  if (ring_.empty()) {
    ++dropped_;
    return;
  }
  if (total_ > ring_.size()) ++dropped_;  // the slot held a retained span
  SpanRecord& rec = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  CopyName(rec.name, SpanRecord::kNameCapacity, name);
  rec.start_ns = start_ns;
  rec.duration_ns = end_ns - start_ns;
  rec.depth = depth;
}

void Tracer::SkipWait(std::int64_t duration_ns) {
  ++skipped_waits_;
  skipped_wait_ns_ += duration_ns;
}

std::vector<Tracer::SpanRecord> Tracer::Spans() const {
  std::vector<SpanRecord> out;
  const std::size_t retained =
      static_cast<std::size_t>(std::min<std::uint64_t>(total_, ring_.size()));
  out.reserve(retained);
  if (total_ <= ring_.size()) {
    out.assign(ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(retained));
  } else {
    // head_ points at the oldest retained record once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::string Tracer::SummaryLine() const {
  std::string line = "telemetry rank " + std::to_string(rank_) + ": " +
                     std::to_string(total_) + " spans";
  if (dropped_ > 0) {
    line += " (" + std::to_string(dropped_) + " dropped, ring wrapped)";
  }
  if (skipped_waits_ > 0) {
    line += ", " + std::to_string(skipped_waits_) + " short waits (" +
            FormatSeconds(SkippedWaitSeconds()) + " s)";
  }
  for (const auto& [name, value] : counters_) {
    line += "; " + name + "=";
    if (name.find("bytes") != std::string::npos && value >= 0.0) {
      line += FormatBytes(static_cast<std::size_t>(value));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", value);
      line += buf;
    }
  }
  return line;
}

void Tracer::Clear() {
  // Clearing is an explicit ownership handoff point (benches reuse a tracer
  // across configurations): release the owner binding with the data.
  owner_.Reset();
  head_ = 0;
  total_ = 0;
  dropped_ = 0;
  depth_ = 0;
  events_.clear();
  samples_.clear();
  flows_.clear();
  dropped_events_ = 0;
  counters_.clear();
  skipped_waits_ = 0;
  skipped_wait_ns_ = 0;
}

}  // namespace instrument
