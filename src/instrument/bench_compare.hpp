// Canonical benchmark baselines (BENCH_*.json) and the perf-regression
// gate that compares a fresh run against a committed baseline.
//
// The figure benches emit a flat BenchReport — one scalar per (metric,
// configuration, rank count) — and CI runs `bench/compare_runs` against the
// baselines committed in bench/baselines/.  Nothing can regress the Fig 2/5
// numbers or the zero-copy counters unnoticed anymore: the gate fails when
// a metric exceeds its baseline beyond the noise threshold.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace instrument {

/// One bench run's canonical scalar metrics.  All metrics are
/// lower-is-better (times, copy counts, byte counts).
struct BenchReport {
  std::string bench;   ///< "fig2", "fig5", ...
  std::string config;  ///< "full" or "smoke" (CI runs smoke)
  std::map<std::string, double> metrics;
};

/// Write as BENCH_<name>.json — atomically (temp + rename).
bool WriteBenchJson(const std::string& path, const BenchReport& report);

/// Parse a file previously written by WriteBenchJson.  Returns nullopt if
/// the file cannot be read or is not a valid bench report.
std::optional<BenchReport> ReadBenchJson(const std::string& path);

/// Why ReadBenchJson returned nullopt.  A missing baseline (new bench, not
/// yet committed) and a corrupt one (truncated write, bad merge) are
/// different failures and the CI gate reports them distinctly.
enum class BenchReadStatus {
  kOk,          ///< parsed successfully
  kMissingFile, ///< the file does not exist / cannot be opened
  kUnparseable, ///< the file opened but is not a valid bench report
};

/// ReadBenchJson variant that reports *why* a read failed via `status`.
std::optional<BenchReport> ReadBenchJson(const std::string& path,
                                         BenchReadStatus& status);

struct CompareOptions {
  /// Relative headroom for timing metrics (names containing "seconds" or
  /// "_ms"): current may exceed baseline by this fraction before the gate
  /// fails.  20% injected regressions fail at the 0.10 default.
  double time_threshold = 0.10;
  /// Relative headroom for everything else (copy counters, byte counts):
  /// 0.0 = any increase beyond rounding noise fails, because the data-plane
  /// counters are deterministic.
  double counter_threshold = 0.0;
  /// Relative headroom for end-to-end latency metrics (time metrics whose
  /// name contains "e2e_").  The step→image path crosses a queue and a
  /// wire, so it is noisier than pure compute timings; negative (the
  /// default) falls back to time_threshold.
  double e2e_threshold = -1.0;
};

/// Verdict for one metric.
struct CompareRow {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;       ///< current / baseline (0 when baseline is 0)
  double threshold = 0.0;   ///< the headroom this metric was judged against
  bool regressed = false;
  bool missing = false;     ///< in the baseline but absent from the run
};

struct CompareResult {
  std::vector<CompareRow> rows;      ///< every baseline metric, name order
  std::vector<std::string> added;    ///< metrics only the current run has
  bool config_mismatch = false;      ///< smoke vs full — not comparable
  bool ok = true;                    ///< no regression, nothing missing

  [[nodiscard]] int Regressions() const;
};

/// Compare `current` against `baseline`.  A metric regresses when
/// current > baseline * (1 + threshold) (+ a small absolute epsilon so 0
/// baselines tolerate exact zeros).  Missing metrics and a smoke/full
/// config mismatch also fail the gate.
[[nodiscard]] CompareResult CompareBenchReports(const BenchReport& current,
                                                const BenchReport& baseline,
                                                const CompareOptions& options);

/// True if `name` is judged with the timing threshold.
[[nodiscard]] bool IsTimeMetric(const std::string& name);

/// True if `name` is an end-to-end latency metric (a time metric carrying
/// the "e2e_" marker), judged with e2e_threshold when one is set.
[[nodiscard]] bool IsE2eMetric(const std::string& name);

}  // namespace instrument
