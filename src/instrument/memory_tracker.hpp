// Per-rank tracked-allocation accounting.
//
// The paper reports the memory high-water-mark of each node (Fig 3, Fig 6).
// Because our ranks are threads sharing one OS process, RSS cannot separate
// them; instead every substantive buffer in the system (solver fields, device
// buffers, host staging copies, marshaling buffers, checkpoint buffers)
// registers its bytes with the MemoryTracker of the rank that owns it, and
// the tracker maintains current usage and the high-water-mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace instrument {

/// Tracks current and peak bytes for one rank, broken down by category.
///
/// Categories are free-form labels ("field", "device", "staging",
/// "marshal", "checkpoint", ...) so reports can attribute the high-water
/// mark to subsystems.
///
/// Not thread-safe by design: each rank thread owns its tracker.  The
/// single-owner contract is machine-checked under NSM_THREAD_CHECKS.
class MemoryTracker {
 public:
  /// Record an allocation of `bytes` under `category`.
  void Allocate(const std::string& category, std::size_t bytes);

  /// Record a deallocation previously reported via Allocate().
  void Release(const std::string& category, std::size_t bytes);

  [[nodiscard]] std::size_t CurrentBytes() const { return current_; }
  [[nodiscard]] std::size_t PeakBytes() const { return peak_; }

  /// Host-memory-only counters: everything except the "device" category
  /// (the paper's Figs 3/6 plot CPU memory; simulated GPU memory must not
  /// leak into them).
  [[nodiscard]] std::size_t HostCurrentBytes() const { return host_current_; }
  [[nodiscard]] std::size_t HostPeakBytes() const { return host_peak_; }

  /// Current bytes attributed to one category (0 if unknown).
  [[nodiscard]] std::size_t CurrentBytes(const std::string& category) const;

  /// Peak bytes a single category reached on its own.
  [[nodiscard]] std::size_t PeakBytes(const std::string& category) const;

  /// Snapshot of per-category current usage.
  [[nodiscard]] std::map<std::string, std::size_t> ByCategory() const;

  /// Reset all counters (used between benchmark configurations).
  void Reset();

  /// Release the single-owner binding WITHOUT touching the counters: the
  /// explicit handoff used when a worker thread's tracker is folded back
  /// into its rank after a join (async pipeline shutdown) and later
  /// releases may land from the rank thread.
  void ReleaseOwnership() { owner_.Reset(); }

 private:
  struct Cat {
    std::size_t current = 0;
    std::size_t peak = 0;
  };
  std::map<std::string, Cat> categories_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::size_t host_current_ = 0;
  std::size_t host_peak_ = 0;
  /// Single-owner audit (no-op unless NSM_THREAD_CHECKS).
  core::ThreadOwnershipChecker owner_;
};

/// The category treated as device (GPU) memory by the host counters.
inline constexpr const char* kDeviceCategory = "device";

/// Returns the tracker installed for the calling thread (rank), or nullptr.
///
/// The mpimini runtime installs a tracker per rank thread; code that
/// allocates large buffers calls CurrentTracker() and reports to it when one
/// is present, so the same library code runs tracked inside a rank and
/// untracked in plain unit tests.
MemoryTracker* CurrentTracker();

/// Install `tracker` for the calling thread; returns the previous one.
MemoryTracker* SetCurrentTracker(MemoryTracker* tracker);

/// RAII installation of a tracker for the current scope.
class TrackerScope {
 public:
  explicit TrackerScope(MemoryTracker* tracker)
      : previous_(SetCurrentTracker(tracker)) {}
  ~TrackerScope() { SetCurrentTracker(previous_); }

  TrackerScope(const TrackerScope&) = delete;
  TrackerScope& operator=(const TrackerScope&) = delete;

 private:
  MemoryTracker* previous_;
};

/// A contiguous buffer of T whose bytes are reported to the rank's
/// MemoryTracker for its whole lifetime.
///
/// This is the allocation primitive used for every buffer that the paper's
/// memory figures would see.  It deliberately does not support incremental
/// growth: solver and in situ buffers are sized once.
template <typename T>
class TrackedBuffer {
 public:
  TrackedBuffer() = default;

  TrackedBuffer(std::string category, std::size_t count)
      : category_(std::move(category)), data_(count) {
    tracker_ = CurrentTracker();
    if (tracker_) tracker_->Allocate(category_, Bytes());
  }

  TrackedBuffer(TrackedBuffer&& other) noexcept { *this = std::move(other); }

  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept {
    ReleaseNow();
    category_ = std::move(other.category_);
    data_ = std::move(other.data_);
    tracker_ = other.tracker_;
    other.tracker_ = nullptr;
    other.data_.clear();
    return *this;
  }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

  ~TrackedBuffer() { ReleaseNow(); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t Bytes() const { return data_.size() * sizeof(T); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  void ReleaseNow() {
    if (tracker_ && !data_.empty()) tracker_->Release(category_, Bytes());
    tracker_ = nullptr;
  }

  std::string category_;
  std::vector<T> data_;
  MemoryTracker* tracker_ = nullptr;
};

}  // namespace instrument
