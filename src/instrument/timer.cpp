#include "instrument/timer.hpp"

#include <ctime>

#include <algorithm>
#include <cmath>

namespace instrument {

double BusyClock::ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::uint64_t n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: smallest index i with (i + 1) / N >= q.
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

}  // namespace instrument
