#include "instrument/timer.hpp"

#include <ctime>

#include <cmath>

namespace instrument {

double BusyClock::ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace instrument
