#include "instrument/flight_recorder.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>

#include "core/lock_ranks.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/report.hpp"
#include "instrument/tracer.hpp"

namespace instrument {

namespace {

thread_local FlightRecorder* g_flightrec = nullptr;

// Process-wide registry of live recorders, so the crash hooks can dump
// every rank's ring without the runtime threading pointers into them.
// Function-local static: recorders are always scoped inside a run/test, so
// they unregister before static destruction.
struct Registry {
  core::Mutex mutex{core::lock_rank::kInstrumentFlightRecorderMutex};
  std::vector<FlightRecorder*> recorders NSM_GUARDED_BY(mutex);
  std::string dump_dir NSM_GUARDED_BY(mutex) = ".";
};

Registry& TheRegistry() {
  static Registry registry;
  return registry;
}

void RegisterRecorder(FlightRecorder* recorder) {
  Registry& registry = TheRegistry();
  core::MutexLock lock(registry.mutex);
  registry.recorders.push_back(recorder);
}

void UnregisterRecorder(FlightRecorder* recorder) {
  Registry& registry = TheRegistry();
  core::MutexLock lock(registry.mutex);
  std::erase(registry.recorders, recorder);
}

// One dump per process death: the runtime's error path, the terminate
// handler, and the SIGABRT handler can all fire for the same failure.
std::atomic<bool> g_crash_dumped{false};

void DumpOnceForCrash() {
  if (g_crash_dumped.exchange(true)) return;
  DumpFlightRecorders();
}

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void FlightRecorderTerminate() {
  DumpOnceForCrash();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

// Not async-signal-safe (takes a mutex, allocates); best-effort by design —
// see the header.  Re-raises with the default handler so the process still
// dies with SIGABRT semantics (core dump, nonzero wait status).
void FlightRecorderAbortHandler(int) {
  DumpOnceForCrash();
  std::signal(SIGABRT, SIG_DFL);
  std::raise(SIGABRT);
}

std::once_flag g_install_once;

}  // namespace

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kStep: return "step";
    case FlightEventKind::kStall: return "stall";
    case FlightEventKind::kQueueBlock: return "queue_block";
    case FlightEventKind::kCodecFallback: return "codec_fallback";
    case FlightEventKind::kCommWait: return "comm_wait";
    case FlightEventKind::kError: return "error";
    case FlightEventKind::kAnomaly: return "anomaly";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(int rank, std::size_t capacity)
    : rank_(rank), ring_(capacity ? capacity : 1) {
  RegisterRecorder(this);
}

FlightRecorder::~FlightRecorder() { UnregisterRecorder(this); }

void FlightRecorder::Record(FlightEventKind kind, std::string_view detail,
                            std::int32_t step, double value) {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[static_cast<std::size_t>(ticket % ring_.size())];
  // Mark the slot torn while the fields change; readers holding the old
  // sequence re-check it after their field reads and discard the slot.
  slot.seq.store(kWriting, std::memory_order_release);
  slot.kind.store(static_cast<std::uint8_t>(kind),
                  std::memory_order_relaxed);
  slot.step.store(step, std::memory_order_relaxed);
  slot.ts_ns.store(Tracer::NowNs(), std::memory_order_relaxed);
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  slot.value_bits.store(bits, std::memory_order_relaxed);
  char buf[kDetailCapacity] = {};
  const std::size_t n = detail.size() < kDetailCapacity - 1
                            ? detail.size()
                            : kDetailCapacity - 1;
  std::memcpy(buf, detail.data(), n);
  for (std::size_t w = 0; w < kDetailCapacity / 8; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, buf + w * 8, 8);
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const auto cap = static_cast<std::uint64_t>(ring_.size());
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t t = first; t < head; ++t) {
    const Slot& slot = ring_[static_cast<std::size_t>(t % cap)];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    // Anything but our ticket means the slot is mid-write or was already
    // overwritten by a newer event; either way it is not ours to report.
    if (seq != t + 1) continue;
    FlightEvent event;
    event.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    event.step = slot.step.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const std::uint64_t bits =
        slot.value_bits.load(std::memory_order_relaxed);
    std::memcpy(&event.value, &bits, sizeof(event.value));
    char buf[kDetailCapacity];
    for (std::size_t w = 0; w < kDetailCapacity / 8; ++w) {
      const std::uint64_t word = slot.detail[w].load(
          std::memory_order_relaxed);
      std::memcpy(buf + w * 8, &word, 8);
    }
    buf[kDetailCapacity - 1] = '\0';
    // Re-check: if a writer claimed the slot during our reads, the fields
    // above may mix two events — drop it.
    if (slot.seq.load(std::memory_order_acquire) != t + 1) continue;
    event.detail = buf;
    out.push_back(std::move(event));
  }
  return out;
}

FlightRecorder* CurrentFlightRecorder() { return g_flightrec; }

FlightRecorder* SetCurrentFlightRecorder(FlightRecorder* recorder) {
  FlightRecorder* previous = g_flightrec;
  g_flightrec = recorder;
  return previous;
}

void RecordFlightEvent(FlightEventKind kind, std::string_view detail,
                       std::int32_t step, double value) {
  if (g_flightrec != nullptr) g_flightrec->Record(kind, detail, step, value);
}

void SetFlightRecorderDumpDir(std::string dir) {
  Registry& registry = TheRegistry();
  core::MutexLock lock(registry.mutex);
  registry.dump_dir = dir.empty() ? std::string(".") : std::move(dir);
}

std::string FlightRecorderDumpDir() {
  Registry& registry = TheRegistry();
  core::MutexLock lock(registry.mutex);
  return registry.dump_dir;
}

bool WriteFlightRecorderJson(const std::string& path,
                             const FlightRecorder& recorder) {
  const std::vector<FlightEvent> events = recorder.Events();
  const std::uint64_t total = recorder.TotalEvents();
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  out << "{\n  \"rank\": " << recorder.Rank()
      << ",\n  \"capacity\": " << recorder.Capacity()
      << ",\n  \"total_events\": " << total << ",\n  \"dropped_events\": "
      << (total > events.size()
              ? total - static_cast<std::uint64_t>(events.size())
              : 0)
      << ",\n  \"events\": [";
  bool comma = false;
  for (const FlightEvent& event : events) {
    if (comma) out << ",";
    comma = true;
    out << "\n    {\"kind\": \"" << FlightEventKindName(event.kind)
        << "\", \"ts_ns\": " << event.ts_ns << ", \"step\": " << event.step
        << ", \"value\": " << JsonNumber(event.value) << ", \"detail\": \""
        << JsonEscape(event.detail) << "\"}";
  }
  out << "\n  ]\n}\n";
  return file.Commit();
}

bool DumpFlightRecorders() {
  Span span("flightrec.dump");
  Registry& registry = TheRegistry();
  core::MutexLock lock(registry.mutex);
  bool ok = true;
  for (const FlightRecorder* recorder : registry.recorders) {
    const std::string path = registry.dump_dir + "/flightrec_rank" +
                             std::to_string(recorder->Rank()) + ".json";
    if (!WriteFlightRecorderJson(path, *recorder)) {
      std::fprintf(stderr,
                   "warning: failed to write flight recorder dump %s\n",
                   path.c_str());
      ok = false;
    }
  }
  if (!registry.recorders.empty()) {
    std::fprintf(stderr, "[flightrec] dumped %zu rank ring(s) to %s\n",
                 registry.recorders.size(), registry.dump_dir.c_str());
    std::fflush(stderr);
  }
  return ok;
}

void InstallFlightRecorderCrashDump() {
  std::call_once(g_install_once, [] {
    g_previous_terminate = std::set_terminate(FlightRecorderTerminate);
    std::signal(SIGABRT, FlightRecorderAbortHandler);
  });
}

}  // namespace instrument
