#include "instrument/straggler.hpp"

#include <algorithm>
#include <cmath>

#include "instrument/report.hpp"

namespace instrument {

namespace {

// 0.6745 ~ Phi^-1(0.75): scales the MAD to estimate one standard
// deviation under normality, making z_threshold comparable to a classic
// z-score cutoff.
constexpr double kMadToSigma = 0.6745;

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(),
                        values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace

std::string AnomalyJson(const AnomalyRecord& record) {
  std::string out = "{\"rank\": " + std::to_string(record.rank) +
                    ", \"step\": " + std::to_string(record.step) +
                    ", \"z\": " + JsonNumber(record.z) +
                    ", \"step_seconds\": " + JsonNumber(record.step_seconds) +
                    ", \"median_seconds\": " +
                    JsonNumber(record.median_seconds) +
                    ", \"dominant_span\": \"" +
                    JsonEscape(record.dominant_span) + "\"" +
                    ", \"span_share\": " + JsonNumber(record.span_share) +
                    "}";
  return out;
}

std::vector<AnomalyRecord> DetectStragglers(
    std::span<const RankHealthSample> samples, int step,
    const StragglerConfig& config) {
  std::vector<AnomalyRecord> out;
  if (static_cast<int>(samples.size()) < config.min_ranks) return out;

  std::vector<double> steps;
  std::vector<double> solver;
  std::vector<double> insitu;
  std::vector<double> transport;
  steps.reserve(samples.size());
  for (const RankHealthSample& s : samples) {
    steps.push_back(s.step_seconds);
    solver.push_back(s.solver_seconds);
    insitu.push_back(s.insitu_seconds);
    transport.push_back(s.transport_seconds);
  }
  const double median = Median(steps);
  if (median <= 0.0) return out;

  std::vector<double> deviations;
  deviations.reserve(steps.size());
  for (const double v : steps) deviations.push_back(std::abs(v - median));
  const double mad = Median(deviations);
  // Floor the spread estimate: a perfectly balanced run has MAD ~ 0 and
  // would otherwise flag scheduler noise as an outlier.
  const double scale =
      std::max(mad / kMadToSigma, config.mad_floor_share * median);

  const double median_solver = Median(solver);
  const double median_insitu = Median(insitu);
  const double median_transport = Median(transport);

  for (const RankHealthSample& s : samples) {
    const double z = (s.step_seconds - median) / scale;
    if (z < config.z_threshold) continue;
    if (s.step_seconds < config.min_ratio * median) continue;

    // Attribute the *excess* over the cross-rank per-span medians, not the
    // raw span shares: the solver dominates every rank's step time, so a
    // share-based verdict would read "solver" even when the slowdown came
    // from the in situ or transport plane.  Tie order solver > insitu >
    // transport keeps verdicts deterministic.
    const double excess_solver = s.solver_seconds - median_solver;
    const double excess_insitu = s.insitu_seconds - median_insitu;
    const double excess_transport = s.transport_seconds - median_transport;

    const char* span = "solver";
    double dominant = excess_solver;
    if (excess_insitu > dominant) {
      span = "insitu";
      dominant = excess_insitu;
    }
    if (excess_transport > dominant) {
      span = "transport";
      dominant = excess_transport;
    }
    if (dominant <= 0.0) {
      // No span explains the excess (the slowdown sits between the
      // instrumented spans, e.g. a paused thread); fall back to the
      // rank's largest absolute span, or "unknown" with no span feeds.
      span = "unknown";
      dominant = 0.0;
      if (s.solver_seconds > 0.0 || s.insitu_seconds > 0.0 ||
          s.transport_seconds > 0.0) {
        span = "solver";
        dominant = s.solver_seconds;
        if (s.insitu_seconds > dominant) {
          span = "insitu";
          dominant = s.insitu_seconds;
        }
        if (s.transport_seconds > dominant) {
          span = "transport";
          dominant = s.transport_seconds;
        }
      }
    }
    const double excess = s.step_seconds - median;

    AnomalyRecord record;
    record.rank = static_cast<int>(s.rank);
    record.step = step;
    record.z = z;
    record.step_seconds = s.step_seconds;
    record.median_seconds = median;
    record.dominant_span = span;
    record.span_share =
        excess > 0.0 ? std::clamp(dominant / excess, 0.0, 1.0) : 0.0;
    out.push_back(std::move(record));
  }
  return out;
}

std::vector<AnomalyRecord> StragglerMonitor::Update(
    std::span<const RankHealthSample> samples, int step) {
  // Roll each rank's window, then detect on the window means: a single
  // slow interval (page fault, descheduled thread) should not convict.
  std::vector<RankHealthSample> smoothed;
  smoothed.reserve(samples.size());
  for (const RankHealthSample& s : samples) {
    std::deque<RankHealthSample>& window = windows_[static_cast<int>(s.rank)];
    window.push_back(s);
    while (static_cast<int>(window.size()) > std::max(1, config_.window)) {
      window.pop_front();
    }
    RankHealthSample mean;
    mean.rank = s.rank;
    for (const RankHealthSample& w : window) {
      mean.step_seconds += w.step_seconds;
      mean.solver_seconds += w.solver_seconds;
      mean.insitu_seconds += w.insitu_seconds;
      mean.transport_seconds += w.transport_seconds;
    }
    const double n = static_cast<double>(window.size());
    mean.step_seconds /= n;
    mean.solver_seconds /= n;
    mean.insitu_seconds /= n;
    mean.transport_seconds /= n;
    smoothed.push_back(mean);
  }

  std::vector<AnomalyRecord> fresh;
  for (AnomalyRecord& record : DetectStragglers(smoothed, step, config_)) {
    auto existing = std::find_if(
        anomalies_.begin(), anomalies_.end(),
        [&](const AnomalyRecord& a) { return a.rank == record.rank; });
    if (existing == anomalies_.end()) {
      anomalies_.push_back(record);
      fresh.push_back(std::move(record));
    } else if (record.z > existing->z) {
      // Keep the first-flagged step (the forensic "when did it start"),
      // the worst z seen since, and the *best-explained* attribution: once
      // a straggler has run for an interval, its victims' solver counters
      // inflate by their collective waits (the counter is wall time), so
      // later intervals' span excesses collapse toward zero and the
      // verdict degenerates into noise.  A verdict that explained 99% of
      // the excess must not be overwritten by one explaining 0.001%.
      record.step = existing->step;
      if (existing->span_share > record.span_share) {
        record.dominant_span = existing->dominant_span;
        record.span_share = existing->span_share;
      }
      *existing = std::move(record);
    }
  }
  return fresh;
}

}  // namespace instrument
