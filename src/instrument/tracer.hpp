// Per-rank span/event/counter tracing.
//
// The paper's figures answer "how much slower is in situ?"; the tracer
// answers "where inside a step did that time go?".  Each rank thread owns
// one Tracer (installed by the mpimini runtime next to its BusyClock and
// MemoryTracker), so the hot path takes no locks: opening a span is two
// steady_clock reads plus a ring-slot write when it closes.  Storage is
// preallocated at construction; when the ring wraps, the oldest spans are
// overwritten and a drop counter records the truncation so reports can say
// so (Bridge::Finalize prints SummaryLine() exactly for this reason).
//
// Timestamps are absolute steady_clock nanoseconds, shared by all rank
// threads of a process, so per-rank recordings merge onto one timeline in
// the Chrome trace export (telemetry.hpp) with rank = tid.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_annotations.hpp"

namespace instrument {

/// Low-overhead per-rank trace recorder.  Not thread-safe by design: each
/// rank thread owns its tracer (mirrors MemoryTracker / BufferStats).
/// The single-owner contract is machine-checked under NSM_THREAD_CHECKS:
/// every mutating entry point asserts it runs on the owning thread.
class Tracer {
 public:
  struct Options {
    /// Span ring capacity; the ring never grows and overwrites the oldest
    /// record when full (dropped spans are counted).
    std::size_t span_capacity = 1 << 16;
    /// Instant-event and counter-sample capacity (drop-newest when full).
    std::size_t event_capacity = 1 << 14;
    /// Spans opened in Span::Mode::kThreshold shorter than this are not
    /// recorded individually, only tallied — comm waits fire once per CG
    /// iteration and would otherwise flood the ring.
    std::int64_t wait_min_ns = 100'000;  // 100 us
  };

  /// One closed span.  The name is copied (truncated to kNameCapacity) so
  /// records never dangle into adaptor-owned strings.
  struct SpanRecord {
    static constexpr std::size_t kNameCapacity = 47;
    char name[kNameCapacity + 1] = {};  ///< NUL-terminated
    std::int64_t start_ns = 0;
    std::int64_t duration_ns = 0;
    std::uint16_t depth = 0;  ///< nesting depth at open (0 = top level)

    [[nodiscard]] std::string_view Name() const { return {name}; }
  };

  /// One instant event (a point on the timeline, e.g. "step.begin").
  struct EventRecord {
    char name[SpanRecord::kNameCapacity + 1] = {};
    std::int64_t ts_ns = 0;

    [[nodiscard]] std::string_view Name() const { return {name}; }
  };

  /// One cumulative counter sample ("bytes sent so far", sampled at step
  /// boundaries so per-step deltas are attributable).
  struct CounterSample {
    char name[SpanRecord::kNameCapacity + 1] = {};
    std::int64_t ts_ns = 0;
    double value = 0.0;

    [[nodiscard]] std::string_view Name() const { return {name}; }
  };

  /// One causal flow endpoint: `start` marks the producing side (Perfetto
  /// phase "s", recorded inside sst.send), !start the consuming side
  /// (phase "f", recorded inside sst.recv).  Matching endpoints share the
  /// id (StepSpanId over run/rank/step), which is how the Chrome trace
  /// draws the arrow across process lanes (DESIGN.md §5d).
  struct FlowRecord {
    std::uint64_t id = 0;
    std::int64_t ts_ns = 0;
    int step = -1;  ///< solver step, surfaced in the flow event args
    bool start = false;
  };

  explicit Tracer(int rank) : Tracer(rank, Options()) {}
  Tracer(int rank, Options options);

  [[nodiscard]] int Rank() const { return rank_; }
  [[nodiscard]] const Options& Opts() const { return options_; }

  /// Absolute steady_clock nanoseconds (shared timeline across threads).
  [[nodiscard]] static std::int64_t NowNs();

  /// Record a point-in-time event.
  void Instant(std::string_view name);

  /// Record a cumulative counter sample and remember it as the counter's
  /// latest total (reported by CounterTotals / SummaryLine).
  void SampleCounter(std::string_view name, double value);

  /// Add `delta` to a counter total without a timeline sample.
  void AddCounter(std::string_view name, double delta);

  /// Record one causal flow endpoint (bounded like events; drops counted).
  void Flow(std::uint64_t id, int step, bool start);

  // -- identity & clock ------------------------------------------------------
  /// Comm-group identity for the trace export: tracers with the same
  /// `group` render in one process lane named `name` ("sim", "endpoint").
  void SetGroup(int group, std::string_view name);
  [[nodiscard]] int Group() const { return group_; }
  [[nodiscard]] const std::string& GroupName() const { return group_name_; }

  /// Thread lane within the group (defaults: tid = rank, "rank N"); the
  /// async worker overrides this so its spans get their own labeled row.
  void SetThreadLane(int tid, std::string_view label);
  [[nodiscard]] int Tid() const { return tid_; }
  [[nodiscard]] const std::string& ThreadLabel() const {
    return thread_label_;
  }

  /// Calibrated clock alignment (clock_sync.hpp): offset to the global
  /// timeline, the min-RTT error bound, and end-of-run drift — exported in
  /// telemetry digests and applied to exported timestamps.
  void SetClockCalibration(std::int64_t offset_ns, std::int64_t min_rtt_ns);
  void SetClockDrift(std::int64_t drift_ns) { clock_drift_ns_ = drift_ns; }
  [[nodiscard]] std::int64_t ClockOffsetNs() const { return clock_offset_ns_; }
  [[nodiscard]] std::int64_t ClockMinRttNs() const { return clock_rtt_ns_; }
  [[nodiscard]] std::int64_t ClockDriftNs() const { return clock_drift_ns_; }

  // -- recorded data ---------------------------------------------------------
  /// Retained spans, oldest first (the ring is unwound).
  [[nodiscard]] std::vector<SpanRecord> Spans() const;
  [[nodiscard]] const std::vector<EventRecord>& Events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<CounterSample>& CounterSamples() const {
    return samples_;
  }
  [[nodiscard]] const std::vector<FlowRecord>& Flows() const {
    return flows_;
  }
  [[nodiscard]] const std::map<std::string, double>& CounterTotals() const {
    return counters_;
  }

  /// Spans routed to the ring (retained + dropped).
  [[nodiscard]] std::uint64_t TotalSpans() const { return total_; }
  /// Spans overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t DroppedSpans() const { return dropped_; }
  /// Spans currently held in the ring.
  [[nodiscard]] std::uint64_t RetainedSpans() const {
    return total_ - dropped_;
  }
  /// Instant events / counter samples / flows dropped at capacity.
  [[nodiscard]] std::uint64_t DroppedEvents() const { return dropped_events_; }
  /// Threshold-mode spans too short to record individually.
  [[nodiscard]] std::uint64_t SkippedWaits() const { return skipped_waits_; }
  [[nodiscard]] double SkippedWaitSeconds() const {
    return static_cast<double>(skipped_wait_ns_) * 1e-9;
  }

  /// One-line digest: span totals, drops if any, counter totals.  Emitted
  /// from Bridge::Finalize so silent trace truncation is impossible.
  [[nodiscard]] std::string SummaryLine() const;

  /// Drop all recorded data (counters included); capacity is kept.
  void Clear();

 private:
  friend class Span;

  std::uint16_t OpenSpan();
  void CloseSpan(std::string_view name, std::int64_t start_ns,
                 std::int64_t end_ns, std::uint16_t depth);
  void SkipWait(std::int64_t duration_ns);

  int rank_;
  Options options_;
  int group_ = 0;                  ///< process lane (0 = sim)
  std::string group_name_ = "sim";
  int tid_;                        ///< thread lane (defaults to rank)
  std::string thread_label_;
  std::int64_t clock_offset_ns_ = 0;
  std::int64_t clock_rtt_ns_ = 0;
  std::int64_t clock_drift_ns_ = 0;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;        ///< next ring slot to write
  std::uint64_t total_ = 0;     ///< spans routed to the ring, ever
  std::uint64_t dropped_ = 0;   ///< overwritten by ring wrap
  std::uint32_t depth_ = 0;     ///< currently open spans
  std::vector<EventRecord> events_;
  std::vector<CounterSample> samples_;
  std::vector<FlowRecord> flows_;
  std::uint64_t dropped_events_ = 0;
  std::map<std::string, double> counters_;
  std::uint64_t skipped_waits_ = 0;
  std::int64_t skipped_wait_ns_ = 0;
  /// Single-owner audit (no-op unless NSM_THREAD_CHECKS): the ring and
  /// counter bookkeeping are lock-free because exactly one rank thread may
  /// mutate them; this makes the contract abort-on-violation instead of a
  /// silent race.
  core::ThreadOwnershipChecker owner_;
};

/// The tracer installed for the calling thread (rank), or nullptr.
/// nullptr means tracing is disabled: Span construction is then a single
/// thread-local read and records nothing.
Tracer* CurrentTracer();

/// Install `tracer` for the calling thread; returns the previous one.
Tracer* SetCurrentTracer(Tracer* tracer);

/// RAII installation of a tracer for the current scope (runtime / tests).
class TracerScope {
 public:
  explicit TracerScope(Tracer* tracer) : previous_(SetCurrentTracer(tracer)) {}
  ~TracerScope() { SetCurrentTracer(previous_); }

  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span.  Opens against the calling thread's tracer (no-op when none
/// is installed); closes — recording name, start, duration, depth — on
/// destruction or an explicit End().
///
/// The name is only read at close, so callers may pass string literals or
/// any string that outlives the span body.
class Span {
 public:
  enum class Mode {
    kAlways,     ///< record every instance
    kThreshold,  ///< record only if >= Options::wait_min_ns (comm waits)
  };

  explicit Span(std::string_view name, Mode mode = Mode::kAlways)
      : Span(CurrentTracer(), name, mode) {}

  Span(Tracer* tracer, std::string_view name, Mode mode = Mode::kAlways)
      : tracer_(tracer), name_(name), mode_(mode) {
    if (tracer_ != nullptr) {
      depth_ = tracer_->OpenSpan();
      start_ns_ = Tracer::NowNs();
    }
  }

  ~Span() { End(); }

  /// Close the span early (e.g. to exclude teardown); idempotent.
  void End() {
    if (tracer_ == nullptr) return;
    const std::int64_t end_ns = Tracer::NowNs();
    Tracer* tracer = tracer_;
    tracer_ = nullptr;
    if (tracer->depth_ > 0) --tracer->depth_;
    if (mode_ == Mode::kThreshold &&
        end_ns - start_ns_ < tracer->options_.wait_min_ns) {
      tracer->SkipWait(end_ns - start_ns_);
      return;
    }
    tracer->CloseSpan(name_, start_ns_, end_ns, depth_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  std::string_view name_;
  Mode mode_;
  std::int64_t start_ns_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace instrument
