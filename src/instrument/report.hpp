// Fixed-width table and CSV reporting for the benchmark harnesses.
//
// Every figure-reproduction binary prints one of these tables; the same rows
// are optionally mirrored into a CSV file so plots can be regenerated.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace instrument {

/// A simple column-aligned table with a title, headers, and string cells.
///
/// Usage:
///   Table t("Figure 2: time-to-solution");
///   t.SetHeader({"ranks", "config", "wall_s"});
///   t.AddRow({"280", "catalyst", "12.3"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::string& Title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& Header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& Rows() const {
    return rows_;
  }

  /// Render as an aligned ASCII table.
  void Print(std::ostream& os) const;

  /// Write header + rows as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes).  Returns false if the path cannot be opened or any
  /// write fails — callers (the figure binaries) must check it so CSV loss
  /// is never silent.
  [[nodiscard]] bool WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 4 significant decimals ("1.2345").
std::string FormatSeconds(double seconds);

/// Format a byte count in a human unit ("6.5 MB", "19.0 GB").
std::string FormatBytes(std::size_t bytes);

}  // namespace instrument
