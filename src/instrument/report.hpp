// Fixed-width table and CSV reporting for the benchmark harnesses.
//
// Every figure-reproduction binary prints one of these tables; the same rows
// are optionally mirrored into a CSV file so plots can be regenerated.
#pragma once

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace instrument {

/// Atomic file writer: streams into `path + ".tmp"` and renames onto `path`
/// on Commit().  A run killed mid-write (or a failed write) never leaves a
/// truncated telemetry.json / metrics.json / CSV that downstream tooling
/// half-parses — the destination either keeps its previous content or gets
/// the complete new one.  Destruction without Commit() removes the temp
/// file.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The output stream (write the whole payload here before Commit).
  [[nodiscard]] std::ostream& Stream() { return out_; }
  /// False if the temp file could not be opened or a write failed.
  [[nodiscard]] bool Ok() const { return static_cast<bool>(out_); }

  /// Flush, close, and rename the temp file onto the destination.  Returns
  /// false (and removes the temp file) if any write or the rename failed.
  bool Commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(std::string_view text);

/// Shortest round-trippable JSON number rendering ("%.9g").
std::string JsonNumber(double value);

/// A simple column-aligned table with a title, headers, and string cells.
///
/// Usage:
///   Table t("Figure 2: time-to-solution");
///   t.SetHeader({"ranks", "config", "wall_s"});
///   t.AddRow({"280", "catalyst", "12.3"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::string& Title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& Header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& Rows() const {
    return rows_;
  }

  /// Render as an aligned ASCII table.
  void Print(std::ostream& os) const;

  /// Write header + rows as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes), atomically (temp file + rename).  Returns false if
  /// the path cannot be opened or any write fails — callers (the figure
  /// binaries) must check it so CSV loss is never silent.
  [[nodiscard]] bool WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 4 significant decimals ("1.2345").
std::string FormatSeconds(double seconds);

/// Format a byte count in a human unit ("6.5 MB", "19.0 GB").
std::string FormatBytes(std::size_t bytes);

}  // namespace instrument
