// Causal step provenance: the per-step trace context that crosses the
// in-transit boundary (DESIGN.md §5d).
//
// A simulation rank stamps each step with a StepProvenance — run id,
// producing rank, step number, origin span id, and the origin's monotonic
// timestamp plus its calibrated offset to the global (world rank 0)
// timeline.  The context rides the BP wire (marshal v3), survives the
// async-pipeline offload (captured at Submit, re-installed on the worker),
// and is re-installed on the endpoint around analysis execution, so a
// `catalyst.write` span on an endpoint rank can answer "which sim-side
// step caused me, and how long ago did it complete?".
//
// Like the tracer/metrics planes, the current context is a thread-local
// pointer: writers (SstWriter/BpFileWriter) read it when staging a step;
// consumers (e2e latency metrics) read it at delivery sites.  A null
// current context simply means "no causal origin known" — every reader
// must tolerate that.
#pragma once

#include <cstdint>

namespace instrument {

/// The causal origin of one simulation step, as propagated over the wire.
struct StepProvenance {
  std::uint64_t run_id = 0;  ///< 0 = invalid / no provenance
  int origin_rank = -1;      ///< producing (sim-side) world rank
  int step = -1;             ///< solver step number
  /// Stable id of the originating step span; doubles as the Perfetto flow
  /// id linking sst.send to the matching sst.recv.
  std::uint64_t origin_span_id = 0;
  /// Origin's monotonic clock when the step completed (Tracer::NowNs()).
  std::int64_t origin_ts_ns = 0;
  /// Origin's calibrated offset to the global timeline (clock_sync.hpp).
  std::int64_t origin_offset_ns = 0;

  [[nodiscard]] bool Valid() const { return run_id != 0; }

  /// Origin timestamp expressed on the global (world rank 0) timeline.
  [[nodiscard]] std::int64_t GlobalTimestampNs() const {
    return origin_ts_ns + origin_offset_ns;
  }
};

/// A fresh run id: unique per process launch, never 0.
[[nodiscard]] std::uint64_t MakeRunId();

/// Deterministic span/flow id for (run, producing rank, step) — both ends
/// of the wire derive the same id without coordination.
[[nodiscard]] std::uint64_t StepSpanId(std::uint64_t run_id, int rank,
                                       int step);

/// Build the provenance for a just-completed step on this thread: stamps
/// the current monotonic time and this thread's calibrated clock offset.
[[nodiscard]] StepProvenance MakeStepProvenance(std::uint64_t run_id,
                                                int rank, int step);

/// The calling thread's current step context (may be null).
[[nodiscard]] const StepProvenance* CurrentProvenance();

/// Install `provenance` as the thread's current context; returns the
/// previous one so scopes nest.
const StepProvenance* SetCurrentProvenance(const StepProvenance* provenance);

/// RAII installer, mirroring TracerScope/MetricsScope.
class ProvenanceScope {
 public:
  explicit ProvenanceScope(const StepProvenance* provenance)
      : previous_(SetCurrentProvenance(provenance)) {}
  ~ProvenanceScope() { SetCurrentProvenance(previous_); }
  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

 private:
  const StepProvenance* previous_;
};

/// This thread's calibrated offset to the global timeline, in nanoseconds
/// (local monotonic + offset = global).  0 until calibration ran.
[[nodiscard]] std::int64_t ClockOffsetNs();

/// Install the calibrated offset (workflow setup, after the clock-sync
/// collective; async workers inherit their submitting rank's offset).
void SetClockOffsetNs(std::int64_t offset_ns);

/// Now on the global timeline: Tracer::NowNs() + ClockOffsetNs().
[[nodiscard]] std::int64_t GlobalNowNs();

}  // namespace instrument
