#include "instrument/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "instrument/report.hpp"
#include "instrument/timer.hpp"

namespace instrument {

namespace {

thread_local MetricsRegistry* g_metrics = nullptr;

// -- snapshot wire format helpers -------------------------------------------
// Flat length-prefixed binary: ranks share one process, so host byte order
// and native doubles are fine (the blob never leaves the machine).

void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void PutF64(std::vector<std::byte>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void PutString(std::vector<std::byte>& out, const std::string& s) {
  PutU64(out, s.size());
  const std::size_t at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint64_t U64() {
    std::uint64_t v;
    Copy(&v, sizeof(v));
    return v;
  }

  double F64() {
    double v;
    Copy(&v, sizeof(v));
    return v;
  }

  std::string String() {
    const std::uint64_t len = U64();
    if (len > bytes_.size() - at_) Fail();
    std::string s(reinterpret_cast<const char*>(bytes_.data() + at_),
                  static_cast<std::size_t>(len));
    at_ += static_cast<std::size_t>(len);
    return s;
  }

  [[nodiscard]] bool Done() const { return at_ == bytes_.size(); }

 private:
  void Copy(void* dst, std::size_t n) {
    if (n > bytes_.size() - at_) Fail();
    std::memcpy(dst, bytes_.data() + at_, n);
    at_ += n;
  }

  [[noreturn]] static void Fail() {
    throw std::runtime_error("metrics: malformed snapshot blob");
  }

  std::span<const std::byte> bytes_;
  std::size_t at_ = 0;
};

}  // namespace

// -- HistogramData -----------------------------------------------------------

HistogramData::HistogramData(std::vector<double> bucket_edges)
    : edges(std::move(bucket_edges)), buckets(edges.size() + 1, 0) {
  if (!std::is_sorted(edges.begin(), edges.end()) ||
      std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
    throw std::invalid_argument(
        "metrics: histogram edges must be strictly ascending");
  }
}

std::size_t HistogramData::BucketIndex(double value) const {
  // upper_bound: first edge strictly greater than value, so a value exactly
  // on a boundary lands in the bucket that boundary opens (the upper one).
  return static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), value) - edges.begin());
}

void HistogramData::Observe(double value) {
  ++buckets[BucketIndex(value)];
  sum += value;
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
}

void HistogramData::Merge(const HistogramData& other) {
  if (edges != other.edges) {
    throw std::runtime_error("metrics: histogram bucket edges mismatch");
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  sum += other.sum;
  if (other.count) {
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
  }
  count += other.count;
}

// -- MetricsSnapshot ---------------------------------------------------------

std::vector<std::byte> MetricsSnapshot::Serialize() const {
  std::vector<std::byte> out;
  PutU64(out, counters.size());
  for (const auto& [name, value] : counters) {
    PutString(out, name);
    PutF64(out, value);
  }
  PutU64(out, gauges.size());
  for (const auto& [name, g] : gauges) {
    PutString(out, name);
    PutF64(out, g.last);
    PutF64(out, g.low);
    PutF64(out, g.high);
    PutF64(out, g.sum);
    PutU64(out, g.samples);
  }
  PutU64(out, histograms.size());
  for (const auto& [name, h] : histograms) {
    PutString(out, name);
    PutU64(out, h.edges.size());
    for (double e : h.edges) PutF64(out, e);
    for (std::uint64_t b : h.buckets) PutU64(out, b);
    PutU64(out, h.count);
    PutF64(out, h.sum);
    PutF64(out, h.min);
    PutF64(out, h.max);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::Deserialize(std::span<const std::byte> bytes) {
  MetricsSnapshot snapshot;
  Cursor in(bytes);
  const std::uint64_t n_counters = in.U64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = in.String();
    snapshot.counters[std::move(name)] = in.F64();
  }
  const std::uint64_t n_gauges = in.U64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    std::string name = in.String();
    GaugeData g;
    g.last = in.F64();
    g.low = in.F64();
    g.high = in.F64();
    g.sum = in.F64();
    g.samples = in.U64();
    snapshot.gauges[std::move(name)] = g;
  }
  const std::uint64_t n_hist = in.U64();
  for (std::uint64_t i = 0; i < n_hist; ++i) {
    std::string name = in.String();
    const std::uint64_t n_edges = in.U64();
    std::vector<double> edges(n_edges);
    for (double& e : edges) e = in.F64();
    HistogramData h(std::move(edges));
    for (std::uint64_t& b : h.buckets) b = in.U64();
    h.count = in.U64();
    h.sum = in.F64();
    h.min = in.F64();
    h.max = in.F64();
    snapshot.histograms.emplace(std::move(name), std::move(h));
  }
  if (!in.Done()) {
    throw std::runtime_error("metrics: trailing bytes in snapshot blob");
  }
  return snapshot;
}

// -- MetricsRegistry ---------------------------------------------------------

void MetricsRegistry::Set(std::string_view name, double value) {
  owner_.Check("instrument::MetricsRegistry::Set");
  auto [it, inserted] = gauges_.try_emplace(std::string(name));
  GaugeData& g = it->second;
  g.last = value;
  if (inserted || value < g.low) g.low = value;
  if (inserted || value > g.high) g.high = value;
  g.sum += value;
  ++g.samples;
}

void MetricsRegistry::Add(std::string_view name, double delta) {
  owner_.Check("instrument::MetricsRegistry::Add");
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::SetTotal(std::string_view name, double total) {
  owner_.Check("instrument::MetricsRegistry::SetTotal");
  double& value = counters_[std::string(name)];
  value = std::max(value, total);
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  owner_.Check("instrument::MetricsRegistry::Observe");
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), HistogramData(DefaultLatencyEdges()))
             .first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::DefineHistogram(std::string_view name,
                                      std::vector<double> edges) {
  owner_.Check("instrument::MetricsRegistry::DefineHistogram");
  histograms_.insert_or_assign(std::string(name),
                               HistogramData(std::move(edges)));
}

void MetricsRegistry::MergeFrom(const MetricsSnapshot& other) {
  owner_.Check("instrument::MetricsRegistry::MergeFrom");
  for (const auto& [name, value] : other.counters) {
    counters_[name] += value;
  }
  for (const auto& [name, gauge] : other.gauges) {
    auto [it, inserted] = gauges_.try_emplace(name, gauge);
    if (inserted) continue;
    GaugeData& mine = it->second;
    mine.last = gauge.last;  // the merged-in side is the later observer
    mine.low = std::min(mine.low, gauge.low);
    mine.high = std::max(mine.high, gauge.high);
    mine.sum += gauge.sum;
    mine.samples += gauge.samples;
  }
  for (const auto& [name, histogram] : other.histograms) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.Merge(histogram);
    }
  }
}

std::vector<double> MetricsRegistry::DefaultLatencyEdges() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

double MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

const GaugeData* MetricsRegistry::Gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  snapshot.gauges = gauges_;
  snapshot.histograms = histograms_;
  return snapshot;
}

void MetricsRegistry::Clear() {
  // Clearing is an explicit ownership handoff point (benches reuse a
  // registry across configurations): release the owner binding too.
  owner_.Reset();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// -- reduction ---------------------------------------------------------------

namespace {

MetricStat ReduceValues(std::vector<double>& values) {
  MetricStat stat;
  stat.ranks = static_cast<int>(values.size());
  if (values.empty()) return stat;
  std::sort(values.begin(), values.end());
  stat.min = values.front();
  stat.max = values.back();
  for (double v : values) stat.sum += v;
  stat.mean = stat.sum / static_cast<double>(values.size());
  stat.p95 = Percentile(values, 0.95);
  stat.imbalance = stat.mean > 0.0 ? stat.max / stat.mean : 0.0;
  return stat;
}

}  // namespace

MetricsReport ReduceSnapshots(const std::vector<MetricsSnapshot>& per_rank) {
  MetricsReport report;
  report.ranks = static_cast<int>(per_rank.size());

  std::map<std::string, std::vector<double>> counter_values;
  std::map<std::string, std::vector<double>> gauge_values;
  std::map<std::string, std::pair<double, double>> gauge_marks;
  for (const MetricsSnapshot& snapshot : per_rank) {
    for (const auto& [name, value] : snapshot.counters) {
      counter_values[name].push_back(value);
    }
    for (const auto& [name, g] : snapshot.gauges) {
      // A gauge's per-rank representative is its high watermark (peak queue
      // depth, peak memory); the global low/high watermarks are kept too.
      gauge_values[name].push_back(g.high);
      auto [it, inserted] = gauge_marks.try_emplace(name, g.low, g.high);
      if (!inserted) {
        it->second.first = std::min(it->second.first, g.low);
        it->second.second = std::max(it->second.second, g.high);
      }
    }
    for (const auto& [name, h] : snapshot.histograms) {
      auto it = report.histograms.find(name);
      if (it == report.histograms.end()) {
        report.histograms.emplace(name, h);
      } else {
        it->second.Merge(h);
      }
    }
  }
  for (auto& [name, values] : counter_values) {
    report.counters[name] = ReduceValues(values);
  }
  for (auto& [name, values] : gauge_values) {
    MetricStat stat = ReduceValues(values);
    const auto& [low, high] = gauge_marks.at(name);
    stat.low_watermark = low;
    stat.high_watermark = high;
    report.gauges[name] = stat;
  }
  return report;
}

double MetricsReport::CounterSum(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second.sum;
}

const MetricStat* MetricsReport::Gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? nullptr : &it->second;
}

// -- export ------------------------------------------------------------------

namespace {

void WriteStat(std::ostream& out, const std::string& name,
               const MetricStat& stat, bool gauge, bool& first) {
  if (!first) out << ",";
  first = false;
  out << "\n    \"" << JsonEscape(name) << "\": {"
      << "\"ranks\": " << stat.ranks << ", \"min\": " << JsonNumber(stat.min)
      << ", \"mean\": " << JsonNumber(stat.mean)
      << ", \"max\": " << JsonNumber(stat.max)
      << ", \"p95\": " << JsonNumber(stat.p95)
      << ", \"sum\": " << JsonNumber(stat.sum)
      << ", \"imbalance\": " << JsonNumber(stat.imbalance);
  if (gauge) {
    out << ", \"low_watermark\": " << JsonNumber(stat.low_watermark)
        << ", \"high_watermark\": " << JsonNumber(stat.high_watermark);
  }
  out << "}";
}

}  // namespace

bool WriteMetricsJson(const std::string& path, const MetricsReport& report) {
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  out << "{\n  \"ranks\": " << report.ranks << ",\n";
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, stat] : report.counters) {
    WriteStat(out, name, stat, /*gauge=*/false, first);
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, stat] : report.gauges) {
    WriteStat(out, name, stat, /*gauge=*/true, first);
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : report.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << JsonEscape(name) << "\": {\"count\": " << h.count
        << ", \"sum\": " << JsonNumber(h.sum)
        << ", \"mean\": " << JsonNumber(h.Mean())
        << ", \"min\": " << JsonNumber(h.min)
        << ", \"max\": " << JsonNumber(h.max) << ", \"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out << ", ";
      out << JsonNumber(h.edges[i]);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out << ", ";
      out << h.buckets[i];
    }
    out << "]}";
  }
  // Always present, [] for a balanced run: consumers can distinguish "the
  // detector ran clean" from "an old file without the anomalies plane".
  out << "\n  },\n  \"anomalies\": [";
  for (std::size_t i = 0; i < report.anomalies.size(); ++i) {
    if (i) out << ",";
    out << "\n    " << AnomalyJson(report.anomalies[i]);
  }
  out << (report.anomalies.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return file.Commit();
}

MetricsRegistry* CurrentMetrics() { return g_metrics; }

MetricsRegistry* SetCurrentMetrics(MetricsRegistry* registry) {
  MetricsRegistry* previous = g_metrics;
  g_metrics = registry;
  return previous;
}

}  // namespace instrument
