#include "instrument/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace instrument {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp"), out_(temp_path_) {}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(temp_path_.c_str());
  }
}

bool AtomicFile::Commit() {
  if (committed_) return true;
  out_.flush();
  const bool wrote_ok = static_cast<bool>(out_);
  out_.close();
  if (!wrote_ok || std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    return false;
  }
  committed_ = true;
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

bool Table::WriteCsv(const std::string& path) const {
  AtomicFile file(path);
  if (!file.Ok()) return false;
  std::ostream& out = file.Stream();
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << CsvEscape(row[i]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return file.Commit();
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

std::string FormatBytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace instrument
