// Always-on per-rank flight recorder: a fixed-capacity structured event
// ring that survives the failure modes the post-hoc exporters cannot see.
//
// Every artifact the observability stack writes today (Chrome trace,
// metrics.json, telemetry.json) lands at Finalize — a hung SST reader, a
// deadlocked async worker, or an uncaught exception leaves nothing.  The
// flight recorder inverts that: each rank keeps the last K structured
// events (step boundaries, pipeline stalls, SST queue blocks, codec
// fallbacks, long comm waits, errors) in a lock-free ring costing ~one
// atomic store per field, and a crash hook (std::set_terminate + SIGABRT)
// or an explicit DumpFlightRecorders() call writes every rank's ring
// through instrument::AtomicFile to flightrec_rank<N>.json — so every
// failure leaves a forensic trail naming the step and span it died in.
//
// Concurrency contract (unlike Tracer/MetricsRegistry, which are strictly
// single-owner): one ring is shared by the rank thread *and* its async
// pipeline worker, and may be read by the dump path while writers are
// live.  Every slot field is an atomic; a per-slot sequence number
// (published with release, checked with acquire before/after the field
// reads) lets readers detect and skip torn slots instead of locking the
// hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace instrument {

/// The event taxonomy (DESIGN.md §5c).  Values are stable: they appear in
/// dumped flightrec_rank<N>.json files.
enum class FlightEventKind : std::uint8_t {
  kStep = 0,           ///< step boundary (detail = span entering, e.g. "solver.step")
  kStall = 1,          ///< AsyncPipeline backpressure wait over threshold
  kQueueBlock = 2,     ///< SST staging queue full, writer blocked on acks
  kCodecFallback = 3,  ///< codec stored raw instead of compressing
  kCommWait = 4,       ///< blocking comm wait over threshold
  kError = 5,          ///< exception escaping a rank body
  kAnomaly = 6,        ///< straggler detector verdict (rank 0)
};

/// Stable lowercase name for a kind ("step", "stall", ...).
[[nodiscard]] std::string_view FlightEventKindName(FlightEventKind kind);

/// One decoded ring entry (the read-side view; the ring itself stores
/// atomized fields).
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kStep;
  std::int64_t ts_ns = 0;  ///< Tracer::NowNs() timestamp
  std::int32_t step = -1;  ///< step index, -1 when not step-scoped
  double value = 0.0;      ///< kind-specific magnitude (seconds, bytes, z)
  std::string detail;      ///< span/metric name or message (truncated)
};

/// Built-in feed-site thresholds: events below these are not worth a ring
/// slot (the metrics plane still tallies them in aggregate).
inline constexpr double kFlightCommWaitMinSeconds = 10e-3;
inline constexpr double kFlightStallMinSeconds = 1e-3;

/// Fixed-capacity multi-writer event ring.  Record() never blocks and
/// never allocates; Events() snapshots the retained tail, skipping slots
/// that are mid-write.
class FlightRecorder {
 public:
  /// Detail strings longer than this are truncated (bytes incl. NUL).
  static constexpr std::size_t kDetailCapacity = 48;
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(int rank,
                          std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event.  Safe from multiple threads concurrently (the rank
  /// thread and its async worker share one recorder).
  void Record(FlightEventKind kind, std::string_view detail,
              std::int32_t step = -1, double value = 0.0);

  /// Decode the retained events, oldest first.  Safe concurrently with
  /// writers: slots being overwritten during the walk are skipped.
  [[nodiscard]] std::vector<FlightEvent> Events() const;

  /// Events ever recorded (>= Events().size(); the excess wrapped away).
  [[nodiscard]] std::uint64_t TotalEvents() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t Capacity() const { return ring_.size(); }
  [[nodiscard]] int Rank() const { return rank_; }

 private:
  // All-atomic slot: `seq` is 0 (never written) / kWriting (mid-write) /
  // ticket+1 (published).  Writers publish with release; readers pair with
  // acquire loads before and after the field reads.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::int32_t> step{-1};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::uint64_t> value_bits{0};
    std::atomic<std::uint64_t> detail[kDetailCapacity / 8];
  };
  static constexpr std::uint64_t kWriting = ~std::uint64_t{0};

  int rank_;
  std::vector<Slot> ring_;
  std::atomic<std::uint64_t> head_{0};
};

/// The recorder installed for the calling thread, or nullptr.  Unlike the
/// tracer/metrics thread-locals this is installed unconditionally by the
/// mpimini runtime (the recorder is always-on), but feed sites still
/// tolerate nullptr so library code works outside a runtime.
FlightRecorder* CurrentFlightRecorder();

/// Install `recorder` for the calling thread; returns the previous one.
FlightRecorder* SetCurrentFlightRecorder(FlightRecorder* recorder);

/// RAII install for a scope (runtime rank threads, async workers, tests).
class FlightRecorderScope {
 public:
  explicit FlightRecorderScope(FlightRecorder* recorder)
      : previous_(SetCurrentFlightRecorder(recorder)) {}
  ~FlightRecorderScope() { SetCurrentFlightRecorder(previous_); }

  FlightRecorderScope(const FlightRecorderScope&) = delete;
  FlightRecorderScope& operator=(const FlightRecorderScope&) = delete;

 private:
  FlightRecorder* previous_;
};

/// Record on the calling thread's recorder; no-op without one.
void RecordFlightEvent(FlightEventKind kind, std::string_view detail,
                       std::int32_t step = -1, double value = 0.0);

/// Directory flightrec_rank<N>.json files land in (default ".", or the
/// NSM_FLIGHTREC_DIR environment variable, applied by the runtime).
void SetFlightRecorderDumpDir(std::string dir);
[[nodiscard]] std::string FlightRecorderDumpDir();

/// Write one recorder's ring as JSON via AtomicFile.  Returns false on I/O
/// failure (no partial file is left at `path`).
bool WriteFlightRecorderJson(const std::string& path,
                             const FlightRecorder& recorder);

/// Dump every live recorder to flightrec_rank<N>.json under the configured
/// dump dir.  Returns false if any write failed.  Safe while ranks are
/// still recording (torn slots are skipped, not blocked on).
bool DumpFlightRecorders();

/// Install the std::set_terminate + SIGABRT hooks that dump all live
/// recorders once before the process dies.  Idempotent; chained onto any
/// previously installed terminate handler.  Best-effort by design: the
/// dump path is not async-signal-safe, but a crashing run losing its last
/// K events is strictly no worse than today's nothing.
void InstallFlightRecorderCrashDump();

}  // namespace instrument
