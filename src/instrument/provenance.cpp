#include "instrument/provenance.hpp"

#include <atomic>
#include <chrono>

#include "instrument/tracer.hpp"

namespace instrument {

namespace {

thread_local const StepProvenance* g_provenance = nullptr;
thread_local std::int64_t g_clock_offset_ns = 0;

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
/// exactly what a wire-visible id needs.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t MakeRunId() {
  static std::atomic<std::uint64_t> counter{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  const std::uint64_t id =
      Mix(ns ^ (counter.fetch_add(1, std::memory_order_relaxed) << 48));
  return id == 0 ? 1 : id;
}

std::uint64_t StepSpanId(std::uint64_t run_id, int rank, int step) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(step));
  const std::uint64_t id = Mix(run_id ^ Mix(key));
  return id == 0 ? 1 : id;
}

StepProvenance MakeStepProvenance(std::uint64_t run_id, int rank, int step) {
  StepProvenance provenance;
  provenance.run_id = run_id;
  provenance.origin_rank = rank;
  provenance.step = step;
  provenance.origin_span_id = StepSpanId(run_id, rank, step);
  provenance.origin_ts_ns = Tracer::NowNs();
  provenance.origin_offset_ns = ClockOffsetNs();
  return provenance;
}

const StepProvenance* CurrentProvenance() { return g_provenance; }

const StepProvenance* SetCurrentProvenance(
    const StepProvenance* provenance) {
  const StepProvenance* previous = g_provenance;
  g_provenance = provenance;
  return previous;
}

std::int64_t ClockOffsetNs() { return g_clock_offset_ns; }

void SetClockOffsetNs(std::int64_t offset_ns) {
  g_clock_offset_ns = offset_ns;
}

std::int64_t GlobalNowNs() { return Tracer::NowNs() + ClockOffsetNs(); }

}  // namespace instrument
