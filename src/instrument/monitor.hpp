// Live run-health endpoint: an opt-in rank-0 loopback HTTP server that
// makes the metrics plane scrapable *while the simulation runs*, instead
// of only readable from metrics.json after Finalize (DESIGN.md §5c).
//
// Routes:
//   /metrics  Prometheus text exposition (version 0.0.4) rendered from the
//             most recently published cross-rank MetricsReport
//   /healthz  liveness probe ("ok")
//   /status   JSON: step/ETA, per-rank step-time min/mean/max, SST queue
//             occupancy, offload share, straggler anomalies
//
// Threading model: the server never touches the per-rank single-owner
// registries.  The rank-0 thread *publishes* an immutable MonitorStatus
// snapshot (built from the heartbeat's collective reductions) under a
// mutex; the server thread copies it per request.  This is exactly the
// cross-thread shape the core::Mutex annotations exist to police — the
// monitor thread never reads live registries directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/lock_ranks.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/metrics.hpp"
#include "instrument/straggler.hpp"

namespace instrument {

/// One published snapshot of run health, as served by /status.
struct MonitorStatus {
  int step = 0;
  int total_steps = 0;
  double rate_steps_per_second = 0.0;
  double eta_seconds = -1.0;  ///< negative = unknown (serialized as null)
  double step_seconds_min = 0.0;
  double step_seconds_mean = 0.0;
  double step_seconds_max = 0.0;
  int queue_depth = -1;
  int queue_limit = -1;  ///< <= 0 omits the sst_queue object
  double insitu_percent = -1.0;   ///< negative omitted
  double offload_percent = -1.0;  ///< negative omitted
  /// Latest end-to-end step→image latency estimate; negative omitted.
  double e2e_seconds = -1.0;
  std::vector<AnomalyRecord> anomalies;
  MetricsReport metrics;  ///< cross-rank reduction backing /metrics
};

/// Render a report as Prometheus text exposition (metric names get an
/// `nsm_` prefix, dots become underscores; counters expose the cross-rank
/// sum, gauges a {stat="min|mean|max"} family, histograms cumulative
/// le-buckets plus _sum/_count).
[[nodiscard]] std::string RenderPrometheus(const MetricsReport& report);

/// Render a status snapshot as the /status JSON document.
[[nodiscard]] std::string RenderStatusJson(const MonitorStatus& status);

/// The loopback HTTP server.  Construction binds and starts the serving
/// thread; a failed bind logs a warning and leaves Serving() false rather
/// than killing the run (observability must never take the simulation
/// down).  Stop() (also run by the destructor) joins the thread and
/// persists the last published status via AtomicFile when configured.
class MonitorServer {
 public:
  struct Options {
    int port = 0;              ///< 0 = ephemeral (read back via Port())
    std::string persist_path;  ///< final /status JSON on Stop ("" = skip)
    std::string port_file;     ///< bound port written here at start ("" = skip)
  };

  explicit MonitorServer(const Options& options);
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// The bound port, or -1 when the bind failed.
  [[nodiscard]] int Port() const { return port_; }
  [[nodiscard]] bool Serving() const { return port_ >= 0; }

  /// Publish a fresh snapshot (rank-0 thread, at heartbeat ticks).  Also
  /// feeds the monitor-plane metrics (monitor.requests / monitor.publishes)
  /// into the calling thread's registry.
  void Publish(MonitorStatus status);

  /// Swap in a final MetricsReport + anomaly list without touching the
  /// step-progress fields — called after the run's closing reduction so a
  /// late scrape (and the persisted status) agrees with metrics.json.
  void UpdateMetrics(MetricsReport report,
                     std::vector<AnomalyRecord> anomalies);

  /// HTTP requests served so far.
  [[nodiscard]] std::uint64_t Requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Idempotent shutdown: join the server thread, close the socket, and
  /// persist the last published status if persist_path was configured.
  void Stop();

 private:
  void ServeLoop();
  void HandleConnection(int fd);
  [[nodiscard]] std::string ResponseFor(const std::string& target);

  Options options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  core::Mutex mutex_{core::lock_rank::kInstrumentMonitorMutex};
  MonitorStatus status_ NSM_GUARDED_BY(mutex_);
  bool published_ NSM_GUARDED_BY(mutex_) = false;
  std::thread server_;
  bool stopped_ = false;  ///< owner-thread only
};

}  // namespace instrument
