#include "instrument/monitor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "instrument/report.hpp"

namespace instrument {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the repo's dotted
// plane.metric taxonomy maps onto it with an nsm_ namespace prefix and
// dots flattened to underscores.
std::string PromName(const std::string& name) {
  std::string out = "nsm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendGaugeStat(std::string& out, const std::string& name,
                     const char* stat, double value) {
  out += name + "{stat=\"" + stat + "\"} " + JsonNumber(value) + "\n";
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string RenderPrometheus(const MetricsReport& report) {
  if (report.Empty()) return "# nsm: no metrics published yet\n";
  std::string out;
  out += "# nsm run-health metrics (" + std::to_string(report.ranks) +
         " ranks)\n";
  // A metric may be published through more than one instrument (e.g.
  // solver.step_seconds is both a counter and a histogram).  Prometheus
  // allows each family name exactly one TYPE, so later families that
  // collide with an already-emitted name get a type suffix.  The report
  // maps are ordered, so the renaming is deterministic.
  std::set<std::string> used;
  for (const auto& [name, stat] : report.counters) {
    const std::string prom = PromName(name);
    used.insert(prom);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + JsonNumber(stat.sum) + "\n";
  }
  for (const auto& [name, stat] : report.gauges) {
    std::string prom = PromName(name);
    if (!used.insert(prom).second) {
      prom += "_gauge";
      used.insert(prom);
    }
    out += "# TYPE " + prom + " gauge\n";
    AppendGaugeStat(out, prom, "min", stat.min);
    AppendGaugeStat(out, prom, "mean", stat.mean);
    AppendGaugeStat(out, prom, "max", stat.max);
  }
  for (const auto& [name, h] : report.histograms) {
    std::string prom = PromName(name);
    if (!used.insert(prom).second) {
      prom += "_hist";
      used.insert(prom);
    }
    out += "# TYPE " + prom + " histogram\n";
    // The repo's buckets are per-interval counts with an underflow bucket;
    // Prometheus wants cumulative counts at ascending `le` bounds.  Bucket
    // i < edges.size() holds values below edges[i], so the cumulative sum
    // of buckets[0..i] is exactly the le=edges[i] count.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      cumulative += h.buckets[i];
      out += prom + "_bucket{le=\"" + JsonNumber(h.edges[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + JsonNumber(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string RenderStatusJson(const MonitorStatus& status) {
  std::ostringstream out;
  out << "{\n  \"step\": " << status.step
      << ",\n  \"total_steps\": " << status.total_steps
      << ",\n  \"rate_steps_per_second\": "
      << JsonNumber(status.rate_steps_per_second) << ",\n  \"eta_seconds\": ";
  if (status.eta_seconds >= 0.0) {
    out << JsonNumber(status.eta_seconds);
  } else {
    out << "null";
  }
  out << ",\n  \"step_seconds\": {\"min\": "
      << JsonNumber(status.step_seconds_min)
      << ", \"mean\": " << JsonNumber(status.step_seconds_mean)
      << ", \"max\": " << JsonNumber(status.step_seconds_max) << "}";
  if (status.queue_limit > 0) {
    out << ",\n  \"sst_queue\": {\"depth\": " << status.queue_depth
        << ", \"limit\": " << status.queue_limit << "}";
  }
  if (status.insitu_percent >= 0.0) {
    out << ",\n  \"insitu_percent\": " << JsonNumber(status.insitu_percent);
  }
  if (status.offload_percent >= 0.0) {
    out << ",\n  \"offload_percent\": "
        << JsonNumber(status.offload_percent);
  }
  if (status.e2e_seconds >= 0.0) {
    out << ",\n  \"e2e_seconds\": " << JsonNumber(status.e2e_seconds);
  }
  out << ",\n  \"anomalies\": [";
  for (std::size_t i = 0; i < status.anomalies.size(); ++i) {
    if (i) out << ", ";
    out << AnomalyJson(status.anomalies[i]);
  }
  out << "],\n  \"counters\": {";
  bool comma = false;
  for (const auto& [name, stat] : status.metrics.counters) {
    if (comma) out << ", ";
    comma = true;
    out << "\"" << JsonEscape(name) << "\": " << JsonNumber(stat.sum);
  }
  out << "}\n}\n";
  return out.str();
}

MonitorServer::MonitorServer(const Options& options) : options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "warning: monitor disabled: socket() failed\n");
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    std::fprintf(stderr,
                 "warning: monitor disabled: cannot bind 127.0.0.1:%d\n",
                 options_.port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (!options_.port_file.empty()) {
    AtomicFile file(options_.port_file);
    file.Stream() << port_ << "\n";
    if (!file.Commit()) {
      std::fprintf(stderr, "warning: failed to write monitor port file %s\n",
                   options_.port_file.c_str());
    }
  }
  std::fprintf(stderr,
               "[monitor] serving http://127.0.0.1:%d "
               "(/metrics /healthz /status)\n",
               port_);
  std::fflush(stderr);
  server_ = std::thread([this] { ServeLoop(); });
}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::Publish(MonitorStatus status) {
  {
    core::MutexLock lock(mutex_);
    status_ = std::move(status);
    published_ = true;
  }
  // The monitor's own plane, fed on the publishing (rank-0) thread — the
  // server thread never touches a registry.
  if (auto* metrics = CurrentMetrics()) {
    metrics->SetTotal("monitor.requests",
                      static_cast<double>(Requests()));
    metrics->Add("monitor.publishes", 1.0);
  }
}

void MonitorServer::UpdateMetrics(MetricsReport report,
                                  std::vector<AnomalyRecord> anomalies) {
  core::MutexLock lock(mutex_);
  status_.metrics = std::move(report);
  status_.anomalies = std::move(anomalies);
  published_ = true;
}

void MonitorServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_relaxed);
  if (server_.joinable()) server_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.persist_path.empty()) {
    MonitorStatus final_status;
    bool have = false;
    {
      core::MutexLock lock(mutex_);
      have = published_;
      if (have) final_status = status_;
    }
    if (have) {
      AtomicFile file(options_.persist_path);
      file.Stream() << RenderStatusJson(final_status);
      if (!file.Commit()) {
        std::fprintf(stderr, "warning: failed to persist monitor status %s\n",
                     options_.persist_path.c_str());
      }
    }
  }
}

void MonitorServer::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MonitorServer::HandleConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // "GET <target> HTTP/1.x" — anything else (or a torn read) is a 400.
  std::string target;
  const std::size_t sp1 = request.find(' ');
  if (request.compare(0, 4, "GET ") == 0 && sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      target = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  const std::string response = ResponseFor(target);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string MonitorServer::ResponseFor(const std::string& target) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (target == "/healthz") {
    return HttpResponse("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (target == "/metrics") {
    MetricsReport report;
    {
      core::MutexLock lock(mutex_);
      report = status_.metrics;
    }
    return HttpResponse("200 OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        RenderPrometheus(report));
  }
  if (target == "/status") {
    MonitorStatus status;
    {
      core::MutexLock lock(mutex_);
      status = status_;
    }
    return HttpResponse("200 OK", "application/json",
                        RenderStatusJson(status));
  }
  if (target.empty()) {
    return HttpResponse("400 Bad Request", "text/plain; charset=utf-8",
                        "bad request\n");
  }
  return HttpResponse("404 Not Found", "text/plain; charset=utf-8",
                      "not found (routes: /metrics /healthz /status)\n");
}

}  // namespace instrument
