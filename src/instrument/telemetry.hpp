// Run-level telemetry: merge per-rank Tracers into one report.
//
// Two exporters, both fed from the same tracer set:
//   WriteChromeTrace  -> Chrome trace-event JSON (one merged timeline,
//                        rank = tid, loadable in Perfetto / about:tracing)
//   WriteTelemetryJson-> machine-readable aggregate (per-span-name
//                        count/mean/p50/p95/max plus counter totals)
// TelemetryTable renders the same aggregate through instrument::Table so
// figure binaries print a "where did the time go" breakdown.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "instrument/report.hpp"
#include "instrument/tracer.hpp"

namespace instrument {

/// Opt-in telemetry surface, parsed from the sensei XML `<telemetry>`
/// element or filled from a `--trace` command-line flag.  Default state is
/// fully disabled: no tracer is installed and every Span degenerates to a
/// thread-local null read.
struct TelemetryConfig {
  bool enabled = false;
  std::string trace_path;    ///< Chrome trace JSON ("" = don't write)
  std::string summary_path;  ///< telemetry.json ("" = don't write)
  std::size_t span_capacity = 1 << 16;
  double wait_min_seconds = 100e-6;

  // -- metrics plane (independent of span tracing) ---------------------------
  bool metrics = false;        ///< install a MetricsRegistry per rank
  std::string metrics_path;    ///< rank-aggregated metrics.json ("" = skip)
  int heartbeat_steps = 0;     ///< rank-0 progress line every N steps (0=off)

  // -- live monitor (rank-0 loopback /metrics endpoint, DESIGN.md §5c) -------
  int monitor_port = -1;          ///< -1 = off, 0 = ephemeral, else the port
  std::string status_path;        ///< final /status JSON on shutdown ("" = skip)
  std::string monitor_port_file;  ///< bound-port discovery file ("" = skip)

  /// The live monitor is requested (monitor="PORT" / --monitor).
  [[nodiscard]] bool MonitorEnabled() const { return monitor_port >= 0; }

  /// The metrics plane is active when metrics.json output was requested,
  /// the heartbeat needs live samples, or the monitor serves them.  Like
  /// tracing, inactive means no registry is installed and every Metric
  /// call is a thread-local null read — zero allocations on rank threads.
  [[nodiscard]] bool MetricsEnabled() const {
    return metrics || heartbeat_steps > 0 || MonitorEnabled();
  }

  [[nodiscard]] Tracer::Options TracerOptions() const {
    Tracer::Options options;
    options.span_capacity = span_capacity;
    options.wait_min_ns = static_cast<std::int64_t>(wait_min_seconds * 1e9);
    return options;
  }
};

/// Cross-rank aggregate for one span name.
struct SpanAggregate {
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Per-rank health digest: ring pressure and comm-wait tallies stay
/// attributable after the cross-rank merge (a single rank wrapping its
/// ring is invisible in the totals but obvious here).
struct RankDigest {
  int rank = 0;
  std::string group;  ///< comm-group lane ("sim", "endpoint")
  std::uint64_t total_spans = 0;
  std::uint64_t dropped_spans = 0;
  std::uint64_t dropped_events = 0;  ///< instants/samples/flows at capacity
  std::uint64_t skipped_waits = 0;
  double skipped_wait_seconds = 0.0;
  /// Clock calibration (DESIGN.md §5d): offset to the global timeline, the
  /// min-RTT error bound, and the drift observed by the end-of-run
  /// re-calibration.  All zero when calibration never ran.
  std::int64_t clock_offset_ns = 0;
  std::int64_t clock_min_rtt_ns = 0;
  std::int64_t clock_drift_ns = 0;
};

/// Everything the run-level report needs, merged across ranks.
struct TelemetrySummary {
  int ranks = 0;
  std::uint64_t total_spans = 0;    ///< recorded spans across all ranks
  std::uint64_t dropped_spans = 0;  ///< lost to ring wrap (0 = full trace)
  std::uint64_t skipped_waits = 0;  ///< sub-threshold comm waits (tallied)
  double skipped_wait_seconds = 0.0;
  double wait_min_seconds = 0.0;    ///< the threshold those tallies used
  std::vector<RankDigest> per_rank;
  std::map<std::string, SpanAggregate> spans;
  std::map<std::string, double> counters;  ///< summed across ranks

  [[nodiscard]] bool Empty() const { return total_spans == 0 && spans.empty(); }

  /// Total seconds attributed to `name` (0 if the span never fired).
  [[nodiscard]] double SpanTotalSeconds(const std::string& name) const;
  /// Count for `name` (0 if the span never fired).
  [[nodiscard]] std::uint64_t SpanCount(const std::string& name) const;
  /// A counter total (0 if never sampled).
  [[nodiscard]] double Counter(const std::string& name) const;
};

/// Merge per-rank tracers (RunningStats::Merge for the moments, pooled
/// durations for exact nearest-rank percentiles).  Null entries are skipped.
[[nodiscard]] TelemetrySummary Summarize(
    const std::vector<const Tracer*>& tracers);

/// Earliest clock-aligned timestamp across all recorded data — the t=0 of
/// the exported trace.  Exposed so callers writing *several* trace files
/// from one run (the sim group and the endpoint group) can compute one
/// shared base and keep the files on a single timeline.
[[nodiscard]] std::int64_t TraceBaseTimestamp(
    const std::vector<const Tracer*>& tracers);

/// Write Chrome trace-event JSON.  Returns false (and leaves a best-effort
/// partial file) if the path cannot be opened or a write fails.
///
/// Timestamps are clock-aligned: each tracer's calibrated offset
/// (Tracer::ClockOffsetNs) is added before export, so lanes from skewed
/// clocks land on one global timeline.  Lanes are keyed by comm group
/// (pid = Tracer::Group with process_name metadata) and thread
/// (tid = Tracer::Tid, thread_name = Tracer::ThreadLabel).  Flow records
/// become Perfetto flow events ("s" on sst.send, "f" on sst.recv) joined
/// by step span id, and every tracer emits an `nsm_rank_digest` metadata
/// event carrying its drop counts and clock calibration for trace_merge.py.
///
/// `base_ns` < 0 (default) derives the base from `tracers`; pass a shared
/// TraceBaseTimestamp when splitting one run across multiple files.  The
/// chosen base is recorded in a top-level "nsm":{"base_ns":...} object.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<const Tracer*>& tracers,
                      std::int64_t base_ns = -1);

/// Write the aggregate as telemetry.json.  Returns false on I/O failure.
bool WriteTelemetryJson(const std::string& path,
                        const TelemetrySummary& summary);

/// Render the aggregate as a Table (rows sorted by total time, descending).
[[nodiscard]] Table TelemetryTable(const TelemetrySummary& summary,
                                   const std::string& title);

}  // namespace instrument
