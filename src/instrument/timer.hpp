// Wall-clock and per-rank busy-time measurement.
//
// The reproduction runs "MPI ranks" as threads on a single core, so
// wall-clock time of a whole run serializes all ranks.  The figures in the
// paper plot per-rank (per-node) quantities, so each rank thread carries a
// BusyClock that accumulates only the time this rank actually spent working.
// See DESIGN.md §5 for the methodology discussion.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace instrument {

/// Monotonic wall-clock stopwatch.
///
/// Starts running on construction; `Elapsed()` may be called repeatedly,
/// `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  [[nodiscard]] double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the active ("busy") time of one rank thread, measured on the
/// thread's CPU-time clock (CLOCK_THREAD_CPUTIME_ID).
///
/// Using per-thread CPU time rather than wall time is essential here: rank
/// "processes" are threads sharing one core, so wall time between two
/// points includes slices spent running *other* ranks.  CPU time counts
/// only cycles this rank actually consumed — the per-node quantity the
/// paper's scaling figures plot.  Blocking waits (condition variables)
/// consume no CPU, but mpimini still brackets them with Pause()/Resume()
/// so the accounting stays explicit.
///
/// Resume(), Pause(), and Seconds() while running must be called from the
/// owning thread (the CPU-time clock is per calling thread); once paused,
/// Seconds() may be read from anywhere (the runtime reads it after join).
class BusyClock {
 public:
  /// Begin accumulating. No-op if already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    resume_at_ = ThreadCpuSeconds();
  }

  /// Stop accumulating. No-op if not running.
  void Pause() {
    if (!running_) return;
    accum_ += ThreadCpuSeconds() - resume_at_;
    running_ = false;
  }

  /// Total busy CPU seconds accumulated so far (includes the open section
  /// when called from the owning thread).
  [[nodiscard]] double Seconds() const {
    double s = accum_;
    if (running_) s += ThreadCpuSeconds() - resume_at_;
    return s;
  }

  void Reset() {
    accum_ = 0.0;
    if (running_) resume_at_ = ThreadCpuSeconds();
  }

  /// CPU seconds consumed by the calling thread.
  static double ThreadCpuSeconds();

 private:
  double accum_ = 0.0;
  bool running_ = false;
  double resume_at_ = 0.0;
};

/// Named accumulating timers, one registry per rank.
///
/// `Accumulate("pressure_solve", dt)` adds to a named bucket; buckets are
/// reported at the end of a run.  Not thread-safe by design: each rank owns
/// its registry.
class TimingRegistry {
 public:
  void Accumulate(const std::string& name, double seconds) {
    entries_[name].seconds += seconds;
    entries_[name].count += 1;
  }

  struct Entry {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  [[nodiscard]] const std::map<std::string, Entry>& Entries() const {
    return entries_;
  }

  [[nodiscard]] double Total(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }

  void Clear() { entries_.clear(); }

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII scope that adds its lifetime to a TimingRegistry bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimingRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { Stop(); }

  /// Close the timed section now (idempotent); lets callers exclude
  /// teardown that happens later in the same scope.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    registry_.Accumulate(name_, timer_.Elapsed());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimingRegistry& registry_;
  std::string name_;
  WallTimer timer_;
  bool stopped_ = false;
};

/// Running univariate statistics (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t Count() const { return n_; }
  [[nodiscard]] double Mean() const { return mean_; }
  [[nodiscard]] double Min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double Max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double StdDev() const;

  /// Fold another accumulator into this one (Chan et al. parallel update),
  /// as if every sample of `other` had been Add()ed here.
  void Merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Nearest-rank percentile of a **sorted** ascending sample
/// (q in [0, 1]; q=0.5 is the median).  Returns 0 for an empty sample.
[[nodiscard]] double Percentile(const std::vector<double>& sorted, double q);

}  // namespace instrument
