#include "instrument/memory_tracker.hpp"

#include <algorithm>

namespace instrument {

namespace {
thread_local MemoryTracker* g_current_tracker = nullptr;
}  // namespace

void MemoryTracker::Allocate(const std::string& category, std::size_t bytes) {
  owner_.Check("instrument::MemoryTracker::Allocate");
  Cat& cat = categories_[category];
  cat.current += bytes;
  cat.peak = std::max(cat.peak, cat.current);
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  if (category != kDeviceCategory) {
    host_current_ += bytes;
    host_peak_ = std::max(host_peak_, host_current_);
  }
}

void MemoryTracker::Release(const std::string& category, std::size_t bytes) {
  // Cross-rank buffer handoff detaches tracking *before* the bytes change
  // threads (Comm::SendBuffer), so Release is single-owner like Allocate.
  owner_.Check("instrument::MemoryTracker::Release");
  Cat& cat = categories_[category];
  cat.current = bytes > cat.current ? 0 : cat.current - bytes;
  current_ = bytes > current_ ? 0 : current_ - bytes;
  if (category != kDeviceCategory) {
    host_current_ = bytes > host_current_ ? 0 : host_current_ - bytes;
  }
}

std::size_t MemoryTracker::CurrentBytes(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.current;
}

std::size_t MemoryTracker::PeakBytes(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.peak;
}

std::map<std::string, std::size_t> MemoryTracker::ByCategory() const {
  std::map<std::string, std::size_t> out;
  for (const auto& [name, cat] : categories_) out[name] = cat.current;
  return out;
}

void MemoryTracker::Reset() {
  // Reset is an ownership handoff point (benches reuse trackers across
  // configurations): release the owner binding with the counters.
  owner_.Reset();
  categories_.clear();
  current_ = 0;
  peak_ = 0;
  host_current_ = 0;
  host_peak_ = 0;
}

MemoryTracker* CurrentTracker() { return g_current_tracker; }

MemoryTracker* SetCurrentTracker(MemoryTracker* tracker) {
  MemoryTracker* prev = g_current_tracker;
  g_current_tracker = tracker;
  return prev;
}

}  // namespace instrument
