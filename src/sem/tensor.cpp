#include "sem/tensor.hpp"

namespace sem {

void ApplyDim0(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  ApplyDim0T<double>(a, rows, np, u, out);
}

void ApplyDim1(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  ApplyDim1T<double>(a, rows, np, u, out);
}

void ApplyDim2(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  ApplyDim2T<double>(a, rows, np, u, out);
}

namespace {

void AddInto(std::span<const double> src, std::span<double> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

}  // namespace

void DerivR(const GllRule& rule, std::span<const double> u,
            std::span<double> ur) {
  ApplyDim0(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, ur);
}

void DerivS(const GllRule& rule, std::span<const double> u,
            std::span<double> us) {
  ApplyDim1(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, us);
}

void DerivT(const GllRule& rule, std::span<const double> u,
            std::span<double> ut) {
  ApplyDim2(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, ut);
}

void DerivRTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim0(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

void DerivSTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim1(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

void DerivTTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim2(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

std::vector<double> Interp3D(std::span<const double> interp, int m, int np,
                             std::span<const double> u) {
  std::vector<double> out(static_cast<std::size_t>(m) * m * m);
  std::vector<double> scratch(Interp3DScratchSize(m, np));
  Interp3D<double>(interp, m, np, u, out, scratch);
  return out;
}

}  // namespace sem
