#include "sem/tensor.hpp"

#include <cstring>

namespace sem {

void ApplyDim0(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  // out(i, jk) = sum_m a(i,m) u(m, jk) — a plain (rows x np) * (np x np*np)
  // matrix product with u's first index contiguous.
  const int planes = np * np;
  for (int jk = 0; jk < planes; ++jk) {
    const double* ucol = u.data() + static_cast<std::size_t>(jk) * np;
    double* ocol = out.data() + static_cast<std::size_t>(jk) * rows;
    for (int i = 0; i < rows; ++i) {
      const double* arow = a.data() + static_cast<std::size_t>(i) * np;
      double sum = 0.0;
      for (int m = 0; m < np; ++m) sum += arow[m] * ucol[m];
      ocol[i] = sum;
    }
  }
}

void ApplyDim1(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  for (int k = 0; k < np; ++k) {
    const double* uslab = u.data() + static_cast<std::size_t>(k) * np * np;
    double* oslab = out.data() + static_cast<std::size_t>(k) * np * rows;
    for (int j = 0; j < rows; ++j) {
      const double* arow = a.data() + static_cast<std::size_t>(j) * np;
      for (int i = 0; i < np; ++i) {
        double sum = 0.0;
        for (int m = 0; m < np; ++m) {
          sum += arow[m] * uslab[static_cast<std::size_t>(m) * np + i];
        }
        oslab[static_cast<std::size_t>(j) * np + i] = sum;
      }
    }
  }
}

void ApplyDim2(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out) {
  const int plane = np * np;
  for (int k = 0; k < rows; ++k) {
    const double* arow = a.data() + static_cast<std::size_t>(k) * np;
    double* oslab = out.data() + static_cast<std::size_t>(k) * plane;
    for (int ij = 0; ij < plane; ++ij) {
      double sum = 0.0;
      for (int m = 0; m < np; ++m) {
        sum += arow[m] * u[static_cast<std::size_t>(m) * plane + ij];
      }
      oslab[ij] = sum;
    }
  }
}

namespace {

void AddInto(std::span<const double> src, std::span<double> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

}  // namespace

void DerivR(const GllRule& rule, std::span<const double> u,
            std::span<double> ur) {
  ApplyDim0(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, ur);
}

void DerivS(const GllRule& rule, std::span<const double> u,
            std::span<double> us) {
  ApplyDim1(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, us);
}

void DerivT(const GllRule& rule, std::span<const double> u,
            std::span<double> ut) {
  ApplyDim2(rule.deriv, rule.NumPoints(), rule.NumPoints(), u, ut);
}

void DerivRTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim0(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

void DerivSTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim1(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

void DerivTTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out) {
  const int np = rule.NumPoints();
  std::vector<double> tmp(f.size());
  ApplyDim2(rule.deriv_t, np, np, f, tmp);
  AddInto(tmp, out);
}

std::vector<double> Interp3D(std::span<const double> interp, int m, int np,
                             std::span<const double> u) {
  // Apply along x, then y, then z, growing/shrinking the lattice each pass.
  std::vector<double> a(static_cast<std::size_t>(m) * np * np);
  ApplyDim0(interp, m, np, u, a);

  // After the x pass the layout is m-fast; apply along y with the generic
  // kernel by treating each z-slab as (np rows of m) columns.
  std::vector<double> b(static_cast<std::size_t>(m) * m * np);
  for (int k = 0; k < np; ++k) {
    const double* aslab = a.data() + static_cast<std::size_t>(k) * m * np;
    double* bslab = b.data() + static_cast<std::size_t>(k) * m * m;
    for (int j = 0; j < m; ++j) {
      const double* irow = interp.data() + static_cast<std::size_t>(j) * np;
      for (int i = 0; i < m; ++i) {
        double sum = 0.0;
        for (int q = 0; q < np; ++q) {
          sum += irow[q] * aslab[static_cast<std::size_t>(q) * m + i];
        }
        bslab[static_cast<std::size_t>(j) * m + i] = sum;
      }
    }
  }

  std::vector<double> c(static_cast<std::size_t>(m) * m * m);
  const int plane = m * m;
  for (int k = 0; k < m; ++k) {
    const double* irow = interp.data() + static_cast<std::size_t>(k) * np;
    double* cslab = c.data() + static_cast<std::size_t>(k) * plane;
    for (int ij = 0; ij < plane; ++ij) {
      double sum = 0.0;
      for (int q = 0; q < np; ++q) {
        sum += irow[q] * b[static_cast<std::size_t>(q) * plane + ij];
      }
      cslab[ij] = sum;
    }
  }
  return c;
}

}  // namespace sem
