#include "sem/gather_scatter.hpp"

#include <cstring>
#include <map>
#include <stdexcept>

namespace sem {

namespace {

// Dedicated internal tags for the two Sum phases (below user tag space and
// distinct from mpimini's own collective tags).
constexpr int kTagGsData = -101;
constexpr int kTagGsTotal = -102;

template <typename T>
void AppendPod(std::vector<std::byte>& buf, const T& v) {
  const std::size_t old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

template <typename T>
T ReadPod(const std::vector<std::byte>& buf, std::size_t& pos) {
  T v;
  if (pos + sizeof(T) > buf.size()) {
    throw std::runtime_error("sem: gather-scatter wire format underrun");
  }
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

GatherScatter::GatherScatter(mpimini::Comm comm,
                             std::span<const std::int64_t> gids)
    : comm_(comm), ndofs_(gids.size()) {
  const int nranks = comm_.Size();

  // Group local dofs by global id (sorted => deterministic wire order).
  std::map<std::int64_t, std::vector<std::int32_t>> by_gid;
  for (std::size_t i = 0; i < gids.size(); ++i) {
    by_gid[gids[i]].push_back(static_cast<std::int32_t>(i));
  }

  // Round 1: tell each coordinator which ids we hold and how many local
  // copies of each. Wire format per id: int64 gid, int32 count.
  std::vector<std::vector<std::byte>> outgoing(
      static_cast<std::size_t>(nranks));
  // Remember, per coordinator, the (gid -> local copies) in wire order.
  std::vector<std::vector<const std::vector<std::int32_t>*>> sent_groups(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::int64_t>> sent_gids(
      static_cast<std::size_t>(nranks));
  for (const auto& [gid, indices] : by_gid) {
    const auto coord = static_cast<std::size_t>(gid % nranks);
    AppendPod(outgoing[coord], gid);
    AppendPod(outgoing[coord], static_cast<std::int32_t>(indices.size()));
    sent_groups[coord].push_back(&indices);
    sent_gids[coord].push_back(gid);
  }
  std::vector<std::vector<std::byte>> incoming = comm_.AllToAllBytes(outgoing);

  // Coordinator view: total copy count and holder list per id.
  struct CoordEntry {
    std::int64_t total_copies = 0;
    std::vector<int> holders;  // ranks holding this id, ascending
  };
  std::map<std::int64_t, CoordEntry> coordinated;
  // Per holder, the ids it sent, in its wire order.
  std::vector<std::vector<std::int64_t>> holder_gids(
      static_cast<std::size_t>(nranks));
  for (int src = 0; src < nranks; ++src) {
    const auto& blob = incoming[static_cast<std::size_t>(src)];
    std::size_t pos = 0;
    while (pos < blob.size()) {
      const auto gid = ReadPod<std::int64_t>(blob, pos);
      const auto count = ReadPod<std::int32_t>(blob, pos);
      CoordEntry& entry = coordinated[gid];
      entry.total_copies += count;
      entry.holders.push_back(src);
      holder_gids[static_cast<std::size_t>(src)].push_back(gid);
    }
  }

  // Assign accumulator slots to ids shared between >= 2 ranks.
  std::map<std::int64_t, std::int32_t> slot_of;
  for (const auto& [gid, entry] : coordinated) {
    if (entry.holders.size() >= 2) {
      slot_of[gid] = static_cast<std::int32_t>(num_slots_);
      ++num_slots_;
    }
  }

  // Coordinator receive plan: per holder, the slots in its wire order.
  for (int holder = 0; holder < nranks; ++holder) {
    HolderPlan plan;
    plan.holder = holder;
    for (std::int64_t gid : holder_gids[static_cast<std::size_t>(holder)]) {
      auto it = slot_of.find(gid);
      if (it != slot_of.end()) plan.slot.push_back(it->second);
    }
    if (!plan.slot.empty()) recv_plan_.push_back(std::move(plan));
  }

  // Round 2: reply to each holder, per id in its wire order: uint8 shared
  // flag + int64 total copy count.
  std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(nranks));
  for (int holder = 0; holder < nranks; ++holder) {
    for (std::int64_t gid : holder_gids[static_cast<std::size_t>(holder)]) {
      const CoordEntry& entry = coordinated.at(gid);
      AppendPod(replies[static_cast<std::size_t>(holder)],
                static_cast<std::uint8_t>(entry.holders.size() >= 2 ? 1 : 0));
      AppendPod(replies[static_cast<std::size_t>(holder)],
                entry.total_copies);
    }
  }
  std::vector<std::vector<std::byte>> verdicts = comm_.AllToAllBytes(replies);

  // Build local groups (ids needing any summation) and the send plan.
  multiplicity_.assign(ndofs_, 1.0);
  for (int coord = 0; coord < nranks; ++coord) {
    const auto& blob = verdicts[static_cast<std::size_t>(coord)];
    std::size_t pos = 0;
    PeerPlan plan;
    plan.peer = coord;
    for (std::size_t w = 0; w < sent_gids[static_cast<std::size_t>(coord)].size();
         ++w) {
      const auto shared = ReadPod<std::uint8_t>(blob, pos);
      const auto total = ReadPod<std::int64_t>(blob, pos);
      const std::vector<std::int32_t>& indices =
          *sent_groups[static_cast<std::size_t>(coord)][w];
      for (std::int32_t idx : indices) {
        multiplicity_[static_cast<std::size_t>(idx)] =
            static_cast<double>(total);
      }
      if (shared) {
        groups_.push_back(indices);
        plan.group_index.push_back(static_cast<std::int32_t>(groups_.size()) - 1);
      } else if (indices.size() >= 2) {
        groups_.push_back(indices);
      }
    }
    if (pos != blob.size()) {
      throw std::runtime_error("sem: gather-scatter verdict trailing bytes");
    }
    if (!plan.group_index.empty()) send_plan_.push_back(std::move(plan));
  }
}

template <typename T>
void GatherScatter::SumT(std::span<T> values) const {
  if (values.size() != ndofs_) {
    throw std::invalid_argument("sem: GatherScatter::Sum size mismatch");
  }

  // Local phase: every group's copies become the local sum.
  std::vector<T> local_sum(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    T sum = 0;
    for (std::int32_t idx : groups_[g]) {
      sum += values[static_cast<std::size_t>(idx)];
    }
    local_sum[g] = sum;
    for (std::int32_t idx : groups_[g]) {
      values[static_cast<std::size_t>(idx)] = sum;
    }
  }

  // Ship local sums of shared ids to their coordinators.
  for (const PeerPlan& plan : send_plan_) {
    std::vector<T> payload(plan.group_index.size());
    for (std::size_t w = 0; w < plan.group_index.size(); ++w) {
      payload[w] = local_sum[static_cast<std::size_t>(plan.group_index[w])];
    }
    comm_.Send<T>(plan.peer, kTagGsData, std::span<const T>(payload));
  }

  // Coordinator phase: accumulate and return totals.
  std::vector<T> acc(num_slots_, 0);
  for (const HolderPlan& plan : recv_plan_) {
    std::vector<T> payload = comm_.Recv<T>(plan.holder, kTagGsData);
    if (payload.size() != plan.slot.size()) {
      throw std::runtime_error("sem: gather-scatter payload size mismatch");
    }
    for (std::size_t w = 0; w < payload.size(); ++w) {
      acc[static_cast<std::size_t>(plan.slot[w])] += payload[w];
    }
  }
  for (const HolderPlan& plan : recv_plan_) {
    std::vector<T> totals(plan.slot.size());
    for (std::size_t w = 0; w < plan.slot.size(); ++w) {
      totals[w] = acc[static_cast<std::size_t>(plan.slot[w])];
    }
    comm_.Send<T>(plan.holder, kTagGsTotal, std::span<const T>(totals));
  }

  // Holder phase: overwrite shared groups with global totals.
  for (const PeerPlan& plan : send_plan_) {
    std::vector<T> totals = comm_.Recv<T>(plan.peer, kTagGsTotal);
    if (totals.size() != plan.group_index.size()) {
      throw std::runtime_error("sem: gather-scatter total size mismatch");
    }
    for (std::size_t w = 0; w < plan.group_index.size(); ++w) {
      for (std::int32_t idx :
           groups_[static_cast<std::size_t>(plan.group_index[w])]) {
        values[static_cast<std::size_t>(idx)] = totals[w];
      }
    }
  }
}

void GatherScatter::Sum(std::span<double> values) const {
  SumT<double>(values);
}

void GatherScatter::Sum(std::span<float> values) const { SumT<float>(values); }

void GatherScatter::Average(std::span<double> values) const {
  Sum(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] /= multiplicity_[i];
  }
}

}  // namespace sem
