#include "sem/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "sem/tensor.hpp"

namespace sem {

std::vector<double> LegendreVandermonde(const GllRule& rule) {
  const int np = rule.NumPoints();
  std::vector<double> v(static_cast<std::size_t>(np) * np);
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      v[static_cast<std::size_t>(i * np + j)] =
          EvalLegendre(j, rule.nodes[static_cast<std::size_t>(i)]).p;
    }
  }
  return v;
}

std::vector<double> InvertDense(std::vector<double> a, int n) {
  std::vector<double> inv(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) inv[static_cast<std::size_t>(i * n + i)] = 1.0;

  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a[static_cast<std::size_t>(r * n + col)]) >
          std::abs(a[static_cast<std::size_t>(pivot * n + col)])) {
        pivot = r;
      }
    }
    const double head = a[static_cast<std::size_t>(pivot * n + col)];
    if (std::abs(head) < 1e-14) {
      throw std::runtime_error("sem: singular matrix in InvertDense");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a[static_cast<std::size_t>(pivot * n + c)],
                  a[static_cast<std::size_t>(col * n + c)]);
        std::swap(inv[static_cast<std::size_t>(pivot * n + c)],
                  inv[static_cast<std::size_t>(col * n + c)]);
      }
    }
    const double scale = 1.0 / a[static_cast<std::size_t>(col * n + col)];
    for (int c = 0; c < n; ++c) {
      a[static_cast<std::size_t>(col * n + c)] *= scale;
      inv[static_cast<std::size_t>(col * n + c)] *= scale;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[static_cast<std::size_t>(r * n + col)];
      if (factor == 0.0) continue;
      for (int c = 0; c < n; ++c) {
        a[static_cast<std::size_t>(r * n + c)] -=
            factor * a[static_cast<std::size_t>(col * n + c)];
        inv[static_cast<std::size_t>(r * n + c)] -=
            factor * inv[static_cast<std::size_t>(col * n + c)];
      }
    }
  }
  return inv;
}

ModalFilter::ModalFilter(const GllRule& rule, double alpha, int modes)
    : np_(rule.NumPoints()) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("sem: filter alpha must be in [0,1]");
  }
  if (modes < 0 || modes >= np_) {
    throw std::invalid_argument("sem: filter modes out of range");
  }
  std::vector<double> v = LegendreVandermonde(rule);
  std::vector<double> vinv = InvertDense(v, np_);

  // F = V diag(sigma) V^{-1}, quadratic attenuation ramp on the top modes.
  std::vector<double> sigma(static_cast<std::size_t>(np_), 1.0);
  for (int k = 0; k < modes; ++k) {
    const int mode = np_ - 1 - k;
    const double ramp = static_cast<double>(modes - k) / modes;
    sigma[static_cast<std::size_t>(mode)] = 1.0 - alpha * ramp * ramp;
  }
  matrix_.assign(static_cast<std::size_t>(np_) * np_, 0.0);
  for (int i = 0; i < np_; ++i) {
    for (int j = 0; j < np_; ++j) {
      double sum = 0.0;
      for (int m = 0; m < np_; ++m) {
        sum += v[static_cast<std::size_t>(i * np_ + m)] *
               sigma[static_cast<std::size_t>(m)] *
               vinv[static_cast<std::size_t>(m * np_ + j)];
      }
      matrix_[static_cast<std::size_t>(i * np_ + j)] = sum;
    }
  }
}

void ModalFilter::Apply(std::span<double> u) const {
  const std::size_t per_el =
      static_cast<std::size_t>(np_) * np_ * np_;
  if (u.size() % per_el != 0) {
    throw std::invalid_argument("sem: filter size mismatch");
  }
  const std::size_t nel = u.size() / per_el;
  std::vector<double> tmp(per_el);
  for (std::size_t e = 0; e < nel; ++e) {
    std::span<double> ue(u.data() + e * per_el, per_el);
    ApplyDim0(matrix_, np_, np_, ue, tmp);
    ApplyDim1(matrix_, np_, np_, tmp, ue);
    ApplyDim2(matrix_, np_, np_, ue, tmp);
    for (std::size_t q = 0; q < per_el; ++q) ue[q] = tmp[q];
  }
}

}  // namespace sem
