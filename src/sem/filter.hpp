// Modal high-mode filter for stabilizing under-resolved spectral element
// runs — the explicit filter NekRS/Nek5000 apply every timestep.
//
// Each element's nodal values are transformed to the Legendre modal basis,
// the highest modes are attenuated with a quadratic ramp of strength
// `alpha`, and the result is transformed back.  Filtering is element-local
// and therefore breaks C0 continuity by O(alpha); callers re-average across
// element boundaries afterwards (FlowSolver does a gather-scatter Average).
#pragma once

#include <span>
#include <vector>

#include "sem/gll.hpp"

namespace sem {

class ModalFilter {
 public:
  /// Attenuate the top `modes` Legendre modes; mode N-k is scaled by
  /// 1 - alpha ((k+1)/modes)^2 for k = modes-1..0 (strongest on mode N).
  ModalFilter(const GllRule& rule, double alpha, int modes);

  /// Apply the filter to every element of `u` (element-major layout,
  /// (N+1)^3 values per element).
  void Apply(std::span<double> u) const;

  /// The dense (N+1)^2 filter matrix (row-major), for tests.
  [[nodiscard]] const std::vector<double>& Matrix() const { return matrix_; }

 private:
  int np_ = 0;
  std::vector<double> matrix_;
};

/// Legendre Vandermonde at the rule's nodes: V(i,j) = P_j(x_i), row-major.
std::vector<double> LegendreVandermonde(const GllRule& rule);

/// Invert a small dense row-major matrix by Gauss-Jordan elimination with
/// partial pivoting. Throws on singular input.
std::vector<double> InvertDense(std::vector<double> a, int n);

}  // namespace sem
