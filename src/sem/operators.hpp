// Element-level SEM operators: geometric factors, diagonal mass matrix,
// physical gradients, and the weak-form Laplacian (the flop core of the
// Helmholtz and pressure solves).
//
// All operators act on unassembled element data (NumLocalDofs entries,
// element-major, x-fastest).  Assembly across element/rank boundaries is the
// caller's job via GatherScatter::Sum.
#pragma once

#include <span>
#include <vector>

#include "instrument/memory_tracker.hpp"
#include "mpimini/comm.hpp"
#include "sem/box_mesh.hpp"
#include "sem/gll.hpp"
#include "sem/tensor.hpp"

namespace sem {

class ElementOperators {
 public:
  /// Precompute geometric factors for every node of `mesh` (general
  /// trilinear-map formulation evaluated from the node coordinates, so a
  /// deformed mesh would work unchanged).
  ElementOperators(const GllRule& rule, const BoxMesh& mesh);

  [[nodiscard]] const GllRule& Rule() const { return rule_; }
  [[nodiscard]] std::size_t NumDofs() const { return ndofs_; }

  /// Diagonal of the (lumped, collocation-exact) mass matrix: J * w3.
  [[nodiscard]] std::span<const double> MassDiag() const {
    return {mass_.data(), mass_.size()};
  }

  /// Diagonal of the assembled stiffness matrix (before gather-scatter);
  /// used to build the Jacobi preconditioner.
  [[nodiscard]] std::span<const double> StiffnessDiag() const {
    return {adiag_.data(), adiag_.size()};
  }

  /// Symmetric weak-Laplacian geometric factors (G11..G33), exposed so
  /// reduced-precision multigrid levels can down-convert them once and run
  /// the templated LaplacianFused kernel on their own storage.
  [[nodiscard]] LaplacianGeo<double> Geo() const {
    return {{g11_.data(), g11_.size()}, {g12_.data(), g12_.size()},
            {g13_.data(), g13_.size()}, {g22_.data(), g22_.size()},
            {g23_.data(), g23_.size()}, {g33_.data(), g33_.size()}};
  }

  /// out = A_L u: unassembled weak Laplacian, all elements.
  void Laplacian(std::span<const double> u, std::span<double> out) const;

  /// Physical-space gradient at every node (collocation derivative).
  void Gradient(std::span<const double> u, std::span<double> ux,
                std::span<double> uy, std::span<double> uz) const;

  /// Pointwise divergence of (u,v,w) via collocation derivatives.
  void Divergence(std::span<const double> u, std::span<const double> v,
                  std::span<const double> w, std::span<double> div) const;

  /// Convective derivative (c . grad) u at every node, with advecting
  /// velocity components (cx, cy, cz).
  void Advect(std::span<const double> cx, std::span<const double> cy,
              std::span<const double> cz, std::span<const double> u,
              std::span<double> out) const;

  /// Prepare the over-integration machinery for AdvectDealiased: a finer
  /// GLL rule with ceil(3(N+1)/2) points (the 3/2 rule NekRS uses to
  /// de-alias the quadratic convection term). Requires affine elements
  /// (constant Jacobian), which the box mesh guarantees.
  void EnableDealiasing();
  [[nodiscard]] bool DealiasingEnabled() const { return !interp_fine_.empty(); }

  /// Dealiased convective derivative: velocity and gradient factors are
  /// interpolated to the fine quadrature grid, multiplied there, and
  /// L2-projected back to the solution basis.
  void AdvectDealiased(std::span<const double> cx, std::span<const double> cy,
                       std::span<const double> cz, std::span<const double> u,
                       std::span<double> out) const;

 private:
  void ComputeGeometry(const BoxMesh& mesh);
  void ComputeStiffnessDiag();

  GllRule rule_;
  int nel_ = 0;
  std::size_t ndofs_ = 0;
  std::size_t per_el_ = 0;

  // All geometric-factor storage is tracked under the "device" category:
  // NekRS keeps geometric factors resident on the GPU, so they must not
  // appear in the CPU-memory figures.
  // Inverse-Jacobian entries (dr_i/dx_j) per node, for gradients.
  instrument::TrackedBuffer<double> rx_, ry_, rz_, sx_, sy_, sz_, tx_, ty_,
      tz_;
  // Symmetric weak-Laplacian metrics G11..G33 = J w3 (grad r_i . grad r_j).
  instrument::TrackedBuffer<double> g11_, g12_, g13_, g22_, g23_, g33_;
  instrument::TrackedBuffer<double> mass_;   // J * w3
  instrument::TrackedBuffer<double> adiag_;  // local Laplacian diagonal

  // Per-apply scratch (single-threaded per rank).  scratch_lap_ is the
  // 6*np^3 workspace of the fused Laplacian kernel.
  mutable std::vector<double> scratch_ur_, scratch_us_, scratch_ut_,
      scratch_lap_;

  // Dealiasing (built by EnableDealiasing): fine rule, coarse->fine
  // interpolation matrix (row-major, fine x coarse), fine 3-D quadrature
  // weights, per-element Jacobian, and fine-grid scratch.
  GllRule rule_fine_;
  std::vector<double> interp_fine_;    // fine_np x np
  std::vector<double> interp_fine_t_;  // np x fine_np (projection back)
  std::vector<double> weights_fine3_;
  std::vector<double> jacobian_el_;
  mutable std::vector<double> coarse_ux_, coarse_uy_, coarse_uz_;
};

/// Masked, assembled dot product: sum_i a_i b_i / multiplicity_i, reduced
/// over `comm`. The multiplicity weighting counts every global node once.
double AssembledDot(mpimini::Comm& comm, std::span<const double> a,
                    std::span<const double> b,
                    std::span<const double> multiplicity);

}  // namespace sem
