#include "sem/operators.hpp"

#include <cmath>
#include <stdexcept>

#include "sem/tensor.hpp"

namespace sem {

ElementOperators::ElementOperators(const GllRule& rule, const BoxMesh& mesh)
    : rule_(rule),
      nel_(mesh.NumLocalElements()),
      ndofs_(mesh.NumLocalDofs()),
      per_el_(static_cast<std::size_t>(rule.NumPoints()) * rule.NumPoints() *
              rule.NumPoints()),
      rx_("device", ndofs_),
      ry_("device", ndofs_),
      rz_("device", ndofs_),
      sx_("device", ndofs_),
      sy_("device", ndofs_),
      sz_("device", ndofs_),
      tx_("device", ndofs_),
      ty_("device", ndofs_),
      tz_("device", ndofs_),
      g11_("device", ndofs_),
      g12_("device", ndofs_),
      g13_("device", ndofs_),
      g22_("device", ndofs_),
      g23_("device", ndofs_),
      g33_("device", ndofs_),
      mass_("device", ndofs_),
      adiag_("device", ndofs_),
      scratch_ur_(per_el_),
      scratch_us_(per_el_),
      scratch_ut_(per_el_),
      scratch_lap_(6 * per_el_) {
  if (rule.order != mesh.Order()) {
    throw std::invalid_argument("sem: rule/mesh order mismatch");
  }
  ComputeGeometry(mesh);
  ComputeStiffnessDiag();
}

void ElementOperators::ComputeGeometry(const BoxMesh& mesh) {
  const int np = rule_.NumPoints();
  std::vector<double> x(ndofs_), y(ndofs_), z(ndofs_);
  mesh.FillCoordinates(rule_, x, y, z);

  std::vector<double> xr(per_el_), xs(per_el_), xt(per_el_);
  std::vector<double> yr(per_el_), ys(per_el_), yt(per_el_);
  std::vector<double> zr(per_el_), zs(per_el_), zt(per_el_);

  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    auto sub = [&](std::vector<double>& v) {
      return std::span<const double>(v.data() + base, per_el_);
    };
    DerivR(rule_, sub(x), xr);
    DerivS(rule_, sub(x), xs);
    DerivT(rule_, sub(x), xt);
    DerivR(rule_, sub(y), yr);
    DerivS(rule_, sub(y), ys);
    DerivT(rule_, sub(y), yt);
    DerivR(rule_, sub(z), zr);
    DerivS(rule_, sub(z), zs);
    DerivT(rule_, sub(z), zt);

    for (int k = 0; k < np; ++k) {
      for (int j = 0; j < np; ++j) {
        for (int i = 0; i < np; ++i) {
          const std::size_t q =
              static_cast<std::size_t>(i + np * (j + np * k));
          const std::size_t idx = base + q;
          const double J =
              xr[q] * (ys[q] * zt[q] - yt[q] * zs[q]) -
              xs[q] * (yr[q] * zt[q] - yt[q] * zr[q]) +
              xt[q] * (yr[q] * zs[q] - ys[q] * zr[q]);
          if (J <= 0.0) {
            throw std::runtime_error("sem: non-positive Jacobian");
          }
          const double inv = 1.0 / J;
          // Inverse of the 3x3 Jacobian (adjugate / det).
          rx_[idx] = (ys[q] * zt[q] - yt[q] * zs[q]) * inv;
          ry_[idx] = -(xs[q] * zt[q] - xt[q] * zs[q]) * inv;
          rz_[idx] = (xs[q] * yt[q] - xt[q] * ys[q]) * inv;
          sx_[idx] = -(yr[q] * zt[q] - yt[q] * zr[q]) * inv;
          sy_[idx] = (xr[q] * zt[q] - xt[q] * zr[q]) * inv;
          sz_[idx] = -(xr[q] * yt[q] - xt[q] * yr[q]) * inv;
          tx_[idx] = (yr[q] * zs[q] - ys[q] * zr[q]) * inv;
          ty_[idx] = -(xr[q] * zs[q] - xs[q] * zr[q]) * inv;
          tz_[idx] = (xr[q] * ys[q] - xs[q] * yr[q]) * inv;

          const double w3 = rule_.weights[static_cast<std::size_t>(i)] *
                            rule_.weights[static_cast<std::size_t>(j)] *
                            rule_.weights[static_cast<std::size_t>(k)];
          const double jw = J * w3;
          mass_[idx] = jw;
          g11_[idx] = jw * (rx_[idx] * rx_[idx] + ry_[idx] * ry_[idx] +
                            rz_[idx] * rz_[idx]);
          g12_[idx] = jw * (rx_[idx] * sx_[idx] + ry_[idx] * sy_[idx] +
                            rz_[idx] * sz_[idx]);
          g13_[idx] = jw * (rx_[idx] * tx_[idx] + ry_[idx] * ty_[idx] +
                            rz_[idx] * tz_[idx]);
          g22_[idx] = jw * (sx_[idx] * sx_[idx] + sy_[idx] * sy_[idx] +
                            sz_[idx] * sz_[idx]);
          g23_[idx] = jw * (sx_[idx] * tx_[idx] + sy_[idx] * ty_[idx] +
                            sz_[idx] * tz_[idx]);
          g33_[idx] = jw * (tx_[idx] * tx_[idx] + ty_[idx] * ty_[idx] +
                            tz_[idx] * tz_[idx]);
        }
      }
    }
  }
}

void ElementOperators::ComputeStiffnessDiag() {
  // diag(A)_p = sum over the three directions of D(m,i)^2 G_dd at the nodes
  // the derivative touches; exact for the diagonal-metric (affine box) case
  // and a good Jacobi scaling in general.
  const int np = rule_.NumPoints();
  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    for (int k = 0; k < np; ++k) {
      for (int j = 0; j < np; ++j) {
        for (int i = 0; i < np; ++i) {
          const std::size_t idx =
              base + static_cast<std::size_t>(i + np * (j + np * k));
          double d = 0.0;
          for (int m = 0; m < np; ++m) {
            const double dmi = rule_.D(m, i);
            const std::size_t q1 =
                base + static_cast<std::size_t>(m + np * (j + np * k));
            d += dmi * dmi * g11_[q1];
            const double dmj = rule_.D(m, j);
            const std::size_t q2 =
                base + static_cast<std::size_t>(i + np * (m + np * k));
            d += dmj * dmj * g22_[q2];
            const double dmk = rule_.D(m, k);
            const std::size_t q3 =
                base + static_cast<std::size_t>(i + np * (j + np * m));
            d += dmk * dmk * g33_[q3];
          }
          adiag_[idx] = d;
        }
      }
    }
  }
}

void ElementOperators::Laplacian(std::span<const double> u,
                                 std::span<double> out) const {
  if (u.size() != ndofs_ || out.size() != ndofs_) {
    throw std::invalid_argument("sem: Laplacian size mismatch");
  }
  // Single fused pass per element; bit-identical to the historical
  // DerivR/S/T -> G-combine -> DerivRTAdd/SAdd/TAdd composition, minus its
  // three heap allocations per element.
  LaplacianFused<double>(rule_.deriv, rule_.deriv_t, rule_.NumPoints(), nel_,
                         Geo(), u, out, scratch_lap_);
}

void ElementOperators::Gradient(std::span<const double> u,
                                std::span<double> ux, std::span<double> uy,
                                std::span<double> uz) const {
  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    std::span<const double> ue(u.data() + base, per_el_);
    DerivR(rule_, ue, scratch_ur_);
    DerivS(rule_, ue, scratch_us_);
    DerivT(rule_, ue, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      ux[idx] = rx_[idx] * scratch_ur_[q] + sx_[idx] * scratch_us_[q] +
                tx_[idx] * scratch_ut_[q];
      uy[idx] = ry_[idx] * scratch_ur_[q] + sy_[idx] * scratch_us_[q] +
                ty_[idx] * scratch_ut_[q];
      uz[idx] = rz_[idx] * scratch_ur_[q] + sz_[idx] * scratch_us_[q] +
                tz_[idx] * scratch_ut_[q];
    }
  }
}

void ElementOperators::Divergence(std::span<const double> u,
                                  std::span<const double> v,
                                  std::span<const double> w,
                                  std::span<double> div) const {
  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    // d(u)/dx
    std::span<const double> ue(u.data() + base, per_el_);
    DerivR(rule_, ue, scratch_ur_);
    DerivS(rule_, ue, scratch_us_);
    DerivT(rule_, ue, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      div[idx] = rx_[idx] * scratch_ur_[q] + sx_[idx] * scratch_us_[q] +
                 tx_[idx] * scratch_ut_[q];
    }
    // + d(v)/dy
    std::span<const double> ve(v.data() + base, per_el_);
    DerivR(rule_, ve, scratch_ur_);
    DerivS(rule_, ve, scratch_us_);
    DerivT(rule_, ve, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      div[idx] += ry_[idx] * scratch_ur_[q] + sy_[idx] * scratch_us_[q] +
                  ty_[idx] * scratch_ut_[q];
    }
    // + d(w)/dz
    std::span<const double> we(w.data() + base, per_el_);
    DerivR(rule_, we, scratch_ur_);
    DerivS(rule_, we, scratch_us_);
    DerivT(rule_, we, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      div[idx] += rz_[idx] * scratch_ur_[q] + sz_[idx] * scratch_us_[q] +
                  tz_[idx] * scratch_ut_[q];
    }
  }
}

void ElementOperators::Advect(std::span<const double> cx,
                              std::span<const double> cy,
                              std::span<const double> cz,
                              std::span<const double> u,
                              std::span<double> out) const {
  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    std::span<const double> ue(u.data() + base, per_el_);
    DerivR(rule_, ue, scratch_ur_);
    DerivS(rule_, ue, scratch_us_);
    DerivT(rule_, ue, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      const double dx = rx_[idx] * scratch_ur_[q] + sx_[idx] * scratch_us_[q] +
                        tx_[idx] * scratch_ut_[q];
      const double dy = ry_[idx] * scratch_ur_[q] + sy_[idx] * scratch_us_[q] +
                        ty_[idx] * scratch_ut_[q];
      const double dz = rz_[idx] * scratch_ur_[q] + sz_[idx] * scratch_us_[q] +
                        tz_[idx] * scratch_ut_[q];
      out[idx] = cx[idx] * dx + cy[idx] * dy + cz[idx] * dz;
    }
  }
}

void ElementOperators::EnableDealiasing() {
  if (DealiasingEnabled()) return;
  const int np = rule_.NumPoints();
  const int fine_np = (3 * np + 1) / 2;  // the 3/2 over-integration rule
  rule_fine_ = MakeGllRule(fine_np - 1);
  interp_fine_ = InterpolationMatrix(rule_, rule_fine_.nodes);
  interp_fine_t_.assign(interp_fine_.size(), 0.0);
  for (int f = 0; f < fine_np; ++f) {
    for (int c = 0; c < np; ++c) {
      interp_fine_t_[static_cast<std::size_t>(c * fine_np + f)] =
          interp_fine_[static_cast<std::size_t>(f * np + c)];
    }
  }
  weights_fine3_.resize(static_cast<std::size_t>(fine_np) * fine_np * fine_np);
  for (int k = 0; k < fine_np; ++k) {
    for (int j = 0; j < fine_np; ++j) {
      for (int i = 0; i < fine_np; ++i) {
        weights_fine3_[static_cast<std::size_t>(i +
                                                fine_np * (j + fine_np * k))] =
            rule_fine_.weights[static_cast<std::size_t>(i)] *
            rule_fine_.weights[static_cast<std::size_t>(j)] *
            rule_fine_.weights[static_cast<std::size_t>(k)];
      }
    }
  }
  // Per-element Jacobian; the simple fine-grid quadrature below assumes
  // affine elements (constant J), which the box mesh provides.
  jacobian_el_.resize(static_cast<std::size_t>(nel_));
  const double w000 = rule_.weights[0] * rule_.weights[0] * rule_.weights[0];
  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    const double j0 = mass_[base] / w000;
    // Affinity check on the opposite corner.
    const double j1 = mass_[base + per_el_ - 1] / w000;
    if (std::abs(j1 - j0) > 1e-10 * std::abs(j0)) {
      throw std::runtime_error(
          "sem: dealiasing requires affine (constant-Jacobian) elements");
    }
    jacobian_el_[static_cast<std::size_t>(e)] = j0;
  }
  coarse_ux_.resize(per_el_);
  coarse_uy_.resize(per_el_);
  coarse_uz_.resize(per_el_);
}

void ElementOperators::AdvectDealiased(std::span<const double> cx,
                                       std::span<const double> cy,
                                       std::span<const double> cz,
                                       std::span<const double> u,
                                       std::span<double> out) const {
  if (!DealiasingEnabled()) {
    throw std::runtime_error("sem: call EnableDealiasing() first");
  }
  const int np = rule_.NumPoints();
  const int fine_np = rule_fine_.NumPoints();
  const std::size_t fine3 =
      static_cast<std::size_t>(fine_np) * fine_np * fine_np;

  for (int e = 0; e < nel_; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el_;
    // Physical gradient of u at the coarse nodes.
    std::span<const double> ue(u.data() + base, per_el_);
    DerivR(rule_, ue, scratch_ur_);
    DerivS(rule_, ue, scratch_us_);
    DerivT(rule_, ue, scratch_ut_);
    for (std::size_t q = 0; q < per_el_; ++q) {
      const std::size_t idx = base + q;
      coarse_ux_[q] = rx_[idx] * scratch_ur_[q] + sx_[idx] * scratch_us_[q] +
                      tx_[idx] * scratch_ut_[q];
      coarse_uy_[q] = ry_[idx] * scratch_ur_[q] + sy_[idx] * scratch_us_[q] +
                      ty_[idx] * scratch_ut_[q];
      coarse_uz_[q] = rz_[idx] * scratch_ur_[q] + sz_[idx] * scratch_us_[q] +
                      tz_[idx] * scratch_ut_[q];
    }

    // Interpolate each factor to the fine lattice and accumulate the dot
    // product there — the product of two degree-N polynomials is integrated
    // exactly, killing the aliasing error of nodal multiplication.
    std::vector<double> acc(fine3, 0.0);
    const std::span<const double> factors[3][2] = {
        {std::span<const double>(cx.data() + base, per_el_),
         std::span<const double>(coarse_ux_.data(), per_el_)},
        {std::span<const double>(cy.data() + base, per_el_),
         std::span<const double>(coarse_uy_.data(), per_el_)},
        {std::span<const double>(cz.data() + base, per_el_),
         std::span<const double>(coarse_uz_.data(), per_el_)}};
    for (const auto& pair : factors) {
      const std::vector<double> cf = Interp3D(interp_fine_, fine_np, np,
                                              pair[0]);
      const std::vector<double> gf = Interp3D(interp_fine_, fine_np, np,
                                              pair[1]);
      for (std::size_t q = 0; q < fine3; ++q) acc[q] += cf[q] * gf[q];
    }

    // Weight with the fine quadrature, project back, and undo the coarse
    // mass to recover nodal values: out = B^-1 I^T B_f (c . grad u)|_f.
    const double jac = jacobian_el_[static_cast<std::size_t>(e)];
    for (std::size_t q = 0; q < fine3; ++q) {
      acc[q] *= jac * weights_fine3_[q];
    }
    const std::vector<double> projected =
        Interp3D(interp_fine_t_, np, fine_np, acc);
    for (std::size_t q = 0; q < per_el_; ++q) {
      out[base + q] = projected[q] / mass_[base + q];
    }
  }
}

double AssembledDot(mpimini::Comm& comm, std::span<const double> a,
                    std::span<const double> b,
                    std::span<const double> multiplicity) {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    local += a[i] * b[i] / multiplicity[i];
  }
  return comm.AllReduceValue(local, mpimini::Op::kSum);
}

}  // namespace sem
