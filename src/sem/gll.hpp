// Gauss–Lobatto–Legendre (GLL) quadrature and spectral differentiation.
//
// The spectral element method collocates fields at GLL nodes on [-1,1] in
// each direction; quadrature weights give the diagonal mass matrix and the
// dense (N+1)x(N+1) differentiation matrix D gives spectral derivatives.
#pragma once

#include <cstddef>
#include <vector>

namespace sem {

/// GLL rule of polynomial order N: N+1 nodes on [-1,1] including endpoints.
struct GllRule {
  int order = 0;                 ///< polynomial order N
  std::vector<double> nodes;     ///< N+1 nodes, ascending, nodes[0] = -1
  std::vector<double> weights;   ///< matching quadrature weights (sum = 2)
  std::vector<double> deriv;     ///< row-major (N+1)^2 differentiation matrix
  std::vector<double> deriv_t;   ///< transpose of `deriv` (adjoint applies)

  [[nodiscard]] int NumPoints() const { return order + 1; }

  /// D(i,j) = dL_j/dx evaluated at node i.
  [[nodiscard]] double D(int i, int j) const {
    return deriv[static_cast<std::size_t>(i * NumPoints() + j)];
  }
};

/// Compute the GLL rule for polynomial order `order` >= 1.
///
/// Interior nodes are the roots of P'_N found by Newton iteration with
/// Chebyshev initial guesses; weights are 2 / (N (N+1) P_N(x)^2).
GllRule MakeGllRule(int order);

/// Legendre polynomial P_n(x) and derivative P'_n(x) by recurrence.
struct LegendreValue {
  double p;   ///< P_n(x)
  double dp;  ///< P'_n(x)
};
LegendreValue EvalLegendre(int n, double x);

/// Value of the j-th Lagrange cardinal polynomial of `rule` at point x.
double LagrangeBasis(const GllRule& rule, int j, double x);

/// Row-major interpolation matrix from `rule` nodes to arbitrary `targets`:
/// out[i*(N+1)+j] = l_j(targets[i]).
std::vector<double> InterpolationMatrix(const GllRule& rule,
                                        const std::vector<double>& targets);

}  // namespace sem
