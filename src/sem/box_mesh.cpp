#include "sem/box_mesh.hpp"

#include <stdexcept>

namespace sem {

BoxMesh::BoxMesh(const BoxMeshSpec& spec, int rank, int nranks)
    : spec_(spec), rank_(rank), nranks_(nranks) {
  if (spec.order < 1) throw std::invalid_argument("sem: order must be >= 1");
  for (int d = 0; d < 3; ++d) {
    if (spec.elements[static_cast<std::size_t>(d)] < 1) {
      throw std::invalid_argument("sem: element counts must be >= 1");
    }
  }
  axis_ = spec.partition_axis;
  if (axis_ < 0 || axis_ > 2) {
    throw std::invalid_argument("sem: partition_axis must be 0, 1, or 2");
  }
  const int layers = spec.elements[static_cast<std::size_t>(axis_)];
  if (layers < nranks) {
    throw std::invalid_argument(
        "sem: need at least one element layer per rank along the partition "
        "axis");
  }
  // Distribute layers as evenly as possible; the first (layers % nranks)
  // ranks take one extra layer.
  const int base = layers / nranks;
  const int extra = layers % nranks;
  slab_count_ = base + (rank < extra ? 1 : 0);
  slab_first_ = rank * base + (rank < extra ? rank : extra);
  nel_local_ = spec.elements[0] * spec.elements[1] * spec.elements[2] /
               layers * slab_count_;

  const int n = spec.order;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t segments =
        static_cast<std::int64_t>(spec.elements[static_cast<std::size_t>(d)]) * n;
    lattice_[static_cast<std::size_t>(d)] =
        segments + (spec.periodic[static_cast<std::size_t>(d)] ? 0 : 1);
  }
}

std::size_t BoxMesh::NumLocalDofs() const {
  const int np = NumPoints1D();
  return static_cast<std::size_t>(nel_local_) *
         static_cast<std::size_t>(np * np * np);
}

std::array<int, 3> BoxMesh::ElementCoords(int e) const {
  // Local element lattice: global dims with the partition axis replaced by
  // this rank's slab count; x fastest, then y, then z.
  std::array<int, 3> local_dims = spec_.elements;
  local_dims[static_cast<std::size_t>(axis_)] = slab_count_;
  std::array<int, 3> c{};
  c[0] = e % local_dims[0];
  c[1] = (e / local_dims[0]) % local_dims[1];
  c[2] = e / (local_dims[0] * local_dims[1]);
  c[static_cast<std::size_t>(axis_)] += slab_first_;
  return c;
}

std::array<double, 3> BoxMesh::ElementSize() const {
  return {spec_.length[0] / spec_.elements[0],
          spec_.length[1] / spec_.elements[1],
          spec_.length[2] / spec_.elements[2]};
}

std::int64_t BoxMesh::GlobalNodeId(int e, int i, int j, int k) const {
  const auto ec = ElementCoords(e);
  const int n = spec_.order;
  std::array<std::int64_t, 3> g = {
      static_cast<std::int64_t>(ec[0]) * n + i,
      static_cast<std::int64_t>(ec[1]) * n + j,
      static_cast<std::int64_t>(ec[2]) * n + k};
  for (int d = 0; d < 3; ++d) {
    if (spec_.periodic[static_cast<std::size_t>(d)]) {
      g[static_cast<std::size_t>(d)] %= lattice_[static_cast<std::size_t>(d)];
    }
  }
  return g[0] + lattice_[0] * (g[1] + lattice_[1] * g[2]);
}

void BoxMesh::FillGlobalIds(std::span<std::int64_t> gids) const {
  const int np = NumPoints1D();
  if (gids.size() != NumLocalDofs()) {
    throw std::invalid_argument("sem: FillGlobalIds size mismatch");
  }
  for (int e = 0; e < nel_local_; ++e) {
    for (int k = 0; k < np; ++k) {
      for (int j = 0; j < np; ++j) {
        for (int i = 0; i < np; ++i) {
          gids[DofIndex(e, i, j, k)] = GlobalNodeId(e, i, j, k);
        }
      }
    }
  }
}

void BoxMesh::FillCoordinates(const GllRule& rule, std::span<double> x,
                              std::span<double> y,
                              std::span<double> z) const {
  const int np = NumPoints1D();
  if (rule.order != spec_.order) {
    throw std::invalid_argument("sem: rule order mismatch");
  }
  const auto h = ElementSize();
  for (int e = 0; e < nel_local_; ++e) {
    const auto ec = ElementCoords(e);
    const double x0 = ec[0] * h[0];
    const double y0 = ec[1] * h[1];
    const double z0 = ec[2] * h[2];
    for (int k = 0; k < np; ++k) {
      const double zk = z0 + 0.5 * (rule.nodes[static_cast<std::size_t>(k)] + 1.0) * h[2];
      for (int j = 0; j < np; ++j) {
        const double yj = y0 + 0.5 * (rule.nodes[static_cast<std::size_t>(j)] + 1.0) * h[1];
        for (int i = 0; i < np; ++i) {
          const double xi = x0 + 0.5 * (rule.nodes[static_cast<std::size_t>(i)] + 1.0) * h[0];
          const std::size_t idx = DofIndex(e, i, j, k);
          x[idx] = xi;
          y[idx] = yj;
          z[idx] = zk;
        }
      }
    }
  }
}

void BoxMesh::FillDirichletMask(const std::array<bool, 6>& dirichlet,
                                std::span<double> mask) const {
  const int np = NumPoints1D();
  const int n = spec_.order;
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = 1.0;
  for (int e = 0; e < nel_local_; ++e) {
    const auto ec = ElementCoords(e);
    for (int k = 0; k < np; ++k) {
      for (int j = 0; j < np; ++j) {
        for (int i = 0; i < np; ++i) {
          bool on_boundary = false;
          const std::array<std::int64_t, 3> g = {
              static_cast<std::int64_t>(ec[0]) * n + i,
              static_cast<std::int64_t>(ec[1]) * n + j,
              static_cast<std::int64_t>(ec[2]) * n + k};
          for (int d = 0; d < 3; ++d) {
            if (spec_.periodic[static_cast<std::size_t>(d)]) continue;
            const std::int64_t hi =
                static_cast<std::int64_t>(
                    spec_.elements[static_cast<std::size_t>(d)]) * n;
            if (g[static_cast<std::size_t>(d)] == 0 &&
                dirichlet[static_cast<std::size_t>(2 * d)]) {
              on_boundary = true;
            }
            if (g[static_cast<std::size_t>(d)] == hi &&
                dirichlet[static_cast<std::size_t>(2 * d + 1)]) {
              on_boundary = true;
            }
          }
          if (on_boundary) mask[DofIndex(e, i, j, k)] = 0.0;
        }
      }
    }
  }
}

std::int64_t BoxMesh::NumGlobalNodes() const {
  return lattice_[0] * lattice_[1] * lattice_[2];
}

}  // namespace sem
