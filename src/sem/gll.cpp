#include "sem/gll.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sem {

LegendreValue EvalLegendre(int n, double x) {
  // Three-term recurrence for P_n, derivative from the standard identity
  // (1-x^2) P'_n = n (P_{n-1} - x P_n), specialised at |x| = 1.
  double p0 = 1.0;
  double p1 = x;
  if (n == 0) return {p0, 0.0};
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = pk;
  }
  double dp;
  const double denom = 1.0 - x * x;
  if (std::abs(denom) < 1e-14) {
    // P'_n(+-1) = (+-1)^{n-1} n(n+1)/2
    const double sign = (n % 2 == 0) ? x : 1.0;
    dp = sign * 0.5 * n * (n + 1.0);
  } else {
    dp = n * (p0 - x * p1) / denom;
  }
  return {p1, dp};
}

GllRule MakeGllRule(int order) {
  if (order < 1) throw std::invalid_argument("sem: GLL order must be >= 1");
  const int np = order + 1;
  GllRule rule;
  rule.order = order;
  rule.nodes.resize(static_cast<std::size_t>(np));
  rule.weights.resize(static_cast<std::size_t>(np));

  rule.nodes[0] = -1.0;
  rule.nodes[static_cast<std::size_t>(order)] = 1.0;

  // Interior nodes: roots of P'_N. Newton from Chebyshev-Gauss-Lobatto
  // guesses; the second derivative comes from Legendre's ODE:
  // (1-x^2) P''_N = 2x P'_N - N(N+1) P_N.
  for (int i = 1; i < order; ++i) {
    double x = -std::cos(std::numbers::pi * i / order);
    for (int it = 0; it < 100; ++it) {
      const LegendreValue v = EvalLegendre(order, x);
      const double d2p =
          (2.0 * x * v.dp - order * (order + 1.0) * v.p) / (1.0 - x * x);
      const double dx = v.dp / d2p;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[static_cast<std::size_t>(i)] = x;
  }

  for (int i = 0; i < np; ++i) {
    const double pn = EvalLegendre(order, rule.nodes[static_cast<std::size_t>(i)]).p;
    rule.weights[static_cast<std::size_t>(i)] =
        2.0 / (order * (order + 1.0) * pn * pn);
  }

  // Differentiation matrix for the Lagrange basis on GLL nodes:
  //   D_ij = (P_N(x_i)/P_N(x_j)) / (x_i - x_j)       (i != j)
  //   D_00 = -N(N+1)/4, D_NN = +N(N+1)/4, else 0 on the diagonal.
  rule.deriv.assign(static_cast<std::size_t>(np * np), 0.0);
  for (int i = 0; i < np; ++i) {
    const double pi_ = EvalLegendre(order, rule.nodes[static_cast<std::size_t>(i)]).p;
    for (int j = 0; j < np; ++j) {
      if (i == j) continue;
      const double pj = EvalLegendre(order, rule.nodes[static_cast<std::size_t>(j)]).p;
      rule.deriv[static_cast<std::size_t>(i * np + j)] =
          (pi_ / pj) /
          (rule.nodes[static_cast<std::size_t>(i)] -
           rule.nodes[static_cast<std::size_t>(j)]);
    }
  }
  rule.deriv[0] = -0.25 * order * (order + 1.0);
  rule.deriv[static_cast<std::size_t>(np * np - 1)] =
      0.25 * order * (order + 1.0);

  rule.deriv_t.assign(static_cast<std::size_t>(np * np), 0.0);
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      rule.deriv_t[static_cast<std::size_t>(j * np + i)] =
          rule.deriv[static_cast<std::size_t>(i * np + j)];
    }
  }
  return rule;
}

double LagrangeBasis(const GllRule& rule, int j, double x) {
  // l_j(x) = prod_{k != j} (x - x_k) / (x_j - x_k)
  double value = 1.0;
  const double xj = rule.nodes[static_cast<std::size_t>(j)];
  for (int k = 0; k < rule.NumPoints(); ++k) {
    if (k == j) continue;
    const double xk = rule.nodes[static_cast<std::size_t>(k)];
    value *= (x - xk) / (xj - xk);
  }
  return value;
}

std::vector<double> InterpolationMatrix(const GllRule& rule,
                                        const std::vector<double>& targets) {
  const int np = rule.NumPoints();
  std::vector<double> matrix(targets.size() * static_cast<std::size_t>(np));
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (int j = 0; j < np; ++j) {
      matrix[i * static_cast<std::size_t>(np) + static_cast<std::size_t>(j)] =
          LagrangeBasis(rule, j, targets[i]);
    }
  }
  return matrix;
}

}  // namespace sem
