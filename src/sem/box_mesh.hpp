// Distributed hexahedral box mesh for the spectral element method.
//
// The global domain [0,Lx]x[0,Ly]x[0,Lz] is divided into ex*ey*ez hexahedral
// elements; each axis can be periodic.  Elements are partitioned across
// ranks in z-slabs (NekRS-style contiguous partitions).  Every element
// carries an (N+1)^3 GLL node lattice; nodes shared between elements (and
// wrapped periodic images) receive a single global id used by GatherScatter
// for direct-stiffness summation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sem/gll.hpp"

namespace sem {

struct BoxMeshSpec {
  int order = 4;                                 ///< polynomial order N
  std::array<int, 3> elements = {4, 4, 4};       ///< global element counts
  std::array<double, 3> length = {1.0, 1.0, 1.0};///< domain extents
  std::array<bool, 3> periodic = {false, false, false};
  /// Axis along which element slabs are distributed across ranks (0=x,
  /// 1=y, 2=z).  Weak-scaling setups grow the domain along this axis.
  int partition_axis = 2;
};

/// Domain boundary faces in the order x-,x+,y-,y+,z-,z+.
enum Face : int { kXlo = 0, kXhi, kYlo, kYhi, kZlo, kZhi };

/// One rank's portion of the box mesh.
class BoxMesh {
 public:
  /// Partition `spec` across `nranks` slabs along spec.partition_axis;
  /// this rank holds slab `rank`. Requires elements[axis] >= nranks.
  BoxMesh(const BoxMeshSpec& spec, int rank, int nranks);

  [[nodiscard]] const BoxMeshSpec& Spec() const { return spec_; }
  [[nodiscard]] int Order() const { return spec_.order; }
  [[nodiscard]] int NumPoints1D() const { return spec_.order + 1; }
  [[nodiscard]] int NumLocalElements() const { return nel_local_; }
  [[nodiscard]] int NumGlobalElements() const {
    return spec_.elements[0] * spec_.elements[1] * spec_.elements[2];
  }
  /// Local degrees of freedom (element copies included): nel * (N+1)^3.
  [[nodiscard]] std::size_t NumLocalDofs() const;
  /// First global element layer (along the partition axis) owned by this
  /// rank, and the number of owned layers.
  [[nodiscard]] int FirstLayer() const { return slab_first_; }
  [[nodiscard]] int NumLayers() const { return slab_count_; }

  /// Global (ex,ey,ez) element coordinates of local element `e`.
  [[nodiscard]] std::array<int, 3> ElementCoords(int e) const;

  /// Element size along each axis.
  [[nodiscard]] std::array<double, 3> ElementSize() const;

  /// Global node id of local node (i,j,k) of local element `e`; periodic
  /// axes wrap so coincident physical points share one id.
  [[nodiscard]] std::int64_t GlobalNodeId(int e, int i, int j, int k) const;

  /// Fill `gids` (NumLocalDofs entries, element-major, x-fastest) with
  /// global node ids.
  void FillGlobalIds(std::span<std::int64_t> gids) const;

  /// Fill physical node coordinates (each NumLocalDofs entries).
  void FillCoordinates(const GllRule& rule, std::span<double> x,
                       std::span<double> y, std::span<double> z) const;

  /// Build a Dirichlet mask: 0.0 at nodes on listed non-periodic domain
  /// faces, 1.0 elsewhere. `dirichlet[f]` selects Face f.
  void FillDirichletMask(const std::array<bool, 6>& dirichlet,
                         std::span<double> mask) const;

  /// Linear index helpers for element-local nodes.
  [[nodiscard]] int NodeIndex(int i, int j, int k) const {
    const int np = NumPoints1D();
    return i + np * (j + np * k);
  }
  [[nodiscard]] std::size_t DofIndex(int e, int i, int j, int k) const {
    const int np = NumPoints1D();
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(np * np * np) +
           static_cast<std::size_t>(NodeIndex(i, j, k));
  }

  /// Total number of distinct global node ids over the whole mesh.
  [[nodiscard]] std::int64_t NumGlobalNodes() const;

 private:
  BoxMeshSpec spec_;
  int rank_ = 0;
  int nranks_ = 1;
  int axis_ = 2;        ///< partition axis
  int slab_first_ = 0;  ///< first owned element layer along axis_
  int slab_count_ = 0;  ///< owned element layers along axis_
  int nel_local_ = 0;
  std::array<std::int64_t, 3> lattice_;  ///< global node lattice dims
};

}  // namespace sem
