// Tensor-product kernels on hexahedral spectral elements.
//
// Element data is stored x-fastest: u[i + np*(j + np*k)] with np = N+1.
// All heavy SEM operators (derivatives, interpolation) are applications of a
// small dense matrix along one of the three index directions; these kernels
// are the flop-dominant inner loops of the solver (libParanumal's core).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sem/gll.hpp"

namespace sem {

/// out(i,j,k) = sum_m A(i,m) u(m,j,k); A is rows x np row-major.
/// `u` has np*np*np entries, `out` has rows*np*np (x-direction resized).
void ApplyDim0(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);

/// out(i,j,k) = sum_m A(j,m) u(i,m,k).
void ApplyDim1(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);

/// out(i,j,k) = sum_m A(k,m) u(i,j,m).
void ApplyDim2(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);

/// Spectral derivatives at GLL nodes in reference coordinates (r,s,t):
/// ur = (D (x) I (x) I) u, etc. Buffers must hold np^3 values.
void DerivR(const GllRule& rule, std::span<const double> u,
            std::span<double> ur);
void DerivS(const GllRule& rule, std::span<const double> u,
            std::span<double> us);
void DerivT(const GllRule& rule, std::span<const double> u,
            std::span<double> ut);

/// Transposed derivative accumulation: out += D^T-applied field, the adjoint
/// used in the weak-form Laplacian.
void DerivRTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);
void DerivSTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);
void DerivTTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);

/// Interpolate np^3 element data onto an m^3 lattice using interpolation
/// matrix `interp` (m x np row-major, e.g. from InterpolationMatrix()).
/// Scratch-free convenience; returns m^3 values.
std::vector<double> Interp3D(std::span<const double> interp, int m, int np,
                             std::span<const double> u);

}  // namespace sem
