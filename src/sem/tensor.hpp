// Tensor-product kernels on hexahedral spectral elements.
//
// Element data is stored x-fastest: u[i + np*(j + np*k)] with np = N+1.
// All heavy SEM operators (derivatives, interpolation) are applications of a
// small dense matrix along one of the three index directions; these kernels
// are the flop-dominant inner loops of the solver (libParanumal's core).
//
// Every kernel is templated on the scalar type: the solver proper runs in
// double (`dfloat`), while the multigrid smoother path runs the same
// kernels in float (`pfloat`) — NekRS's mixed-precision split.  The double
// instantiations keep a fixed floating-point evaluation order so callers
// may rely on bit-identical results across refactors (no FMA contraction or
// reassociation is licensed by this code).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sem/gll.hpp"

namespace sem {

/// out(i,j,k) = sum_m A(i,m) u(m,j,k); A is rows x np row-major.
/// `u` has np*np*np entries, `out` has rows*np*np (x-direction resized).
template <typename T>
void ApplyDim0T(std::span<const T> a, int rows, int np, std::span<const T> u,
                std::span<T> out) {
  // out(i, jk) = sum_m a(i,m) u(m, jk) — a plain (rows x np) * (np x np*np)
  // matrix product with u's first index contiguous.
  const int planes = np * np;
  for (int jk = 0; jk < planes; ++jk) {
    const T* ucol = u.data() + static_cast<std::size_t>(jk) * np;
    T* ocol = out.data() + static_cast<std::size_t>(jk) * rows;
    for (int i = 0; i < rows; ++i) {
      const T* arow = a.data() + static_cast<std::size_t>(i) * np;
      T sum = 0;
      for (int m = 0; m < np; ++m) sum += arow[m] * ucol[m];
      ocol[i] = sum;
    }
  }
}

/// out(i,j,k) = sum_m A(j,m) u(i,m,k).
template <typename T>
void ApplyDim1T(std::span<const T> a, int rows, int np, std::span<const T> u,
                std::span<T> out) {
  for (int k = 0; k < np; ++k) {
    const T* uslab = u.data() + static_cast<std::size_t>(k) * np * np;
    T* oslab = out.data() + static_cast<std::size_t>(k) * np * rows;
    for (int j = 0; j < rows; ++j) {
      const T* arow = a.data() + static_cast<std::size_t>(j) * np;
      for (int i = 0; i < np; ++i) {
        T sum = 0;
        for (int m = 0; m < np; ++m) {
          sum += arow[m] * uslab[static_cast<std::size_t>(m) * np + i];
        }
        oslab[static_cast<std::size_t>(j) * np + i] = sum;
      }
    }
  }
}

/// out(i,j,k) = sum_m A(k,m) u(i,j,m).
template <typename T>
void ApplyDim2T(std::span<const T> a, int rows, int np, std::span<const T> u,
                std::span<T> out) {
  const int plane = np * np;
  for (int k = 0; k < rows; ++k) {
    const T* arow = a.data() + static_cast<std::size_t>(k) * np;
    T* oslab = out.data() + static_cast<std::size_t>(k) * plane;
    for (int ij = 0; ij < plane; ++ij) {
      T sum = 0;
      for (int m = 0; m < np; ++m) {
        sum += arow[m] * u[static_cast<std::size_t>(m) * plane + ij];
      }
      oslab[ij] = sum;
    }
  }
}

// Non-template double entry points (the original API, kept so existing
// call sites and the fused-vs-separate tests have a stable composition to
// pin against).
void ApplyDim0(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);
void ApplyDim1(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);
void ApplyDim2(std::span<const double> a, int rows, int np,
               std::span<const double> u, std::span<double> out);

/// Spectral derivatives at GLL nodes in reference coordinates (r,s,t):
/// ur = (D (x) I (x) I) u, etc. Buffers must hold np^3 values.
void DerivR(const GllRule& rule, std::span<const double> u,
            std::span<double> ur);
void DerivS(const GllRule& rule, std::span<const double> u,
            std::span<double> us);
void DerivT(const GllRule& rule, std::span<const double> u,
            std::span<double> ut);

/// Transposed derivative accumulation: out += D^T-applied field, the adjoint
/// used in the weak-form Laplacian.
void DerivRTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);
void DerivSTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);
void DerivTTAdd(const GllRule& rule, std::span<const double> f,
                std::span<double> out);

/// Symmetric weak-Laplacian geometric factors of one precision: spans over
/// nel*np^3 node values of G11..G33 (element-major, x-fastest).
template <typename T>
struct LaplacianGeo {
  std::span<const T> g11, g12, g13, g22, g23, g33;
};

namespace detail {

/// Shared body of the fused Laplacian.  NPC > 0 bakes the polynomial-order
/// extent into the type so every loop has a compile-time trip count (the
/// dominant cost at SEM orders is loop overhead on trip counts of 3..9, not
/// arithmetic); NPC == 0 falls back to the runtime extent.  Both paths run
/// the exact same statements in the same order, so the dispatch cannot
/// change a single bit of the result.
template <typename T, int NPC>
void LaplacianFusedImpl(std::span<const T> deriv, std::span<const T> deriv_t,
                        int np_runtime, int nel, const LaplacianGeo<T>& geo,
                        std::span<const T> u, std::span<T> out,
                        std::span<T> scratch) {
  const int np = NPC > 0 ? NPC : np_runtime;
  const int plane = np * np;
  const std::size_t per_el = static_cast<std::size_t>(np) * plane;
  const T* const dmat = deriv.data();
  const T* const tmat = deriv_t.data();
  T* const ur = scratch.data();
  T* const us = ur + per_el;
  T* const ut = us + per_el;
  T* const wr = ut + per_el;
  T* const ws = wr + per_el;
  T* const wt = ws + per_el;
  // One dim-0 / dim-1 / dim-2 sweep (the ApplyDim0T/1T/2T loop structures
  // inlined so the NPC trip counts propagate).
  auto dim0 = [&](const T* a, const T* in, T* o) {
    for (int jk = 0; jk < plane; ++jk) {
      const T* ucol = in + static_cast<std::size_t>(jk) * np;
      T* ocol = o + static_cast<std::size_t>(jk) * np;
      for (int i = 0; i < np; ++i) {
        const T* arow = a + static_cast<std::size_t>(i) * np;
        T sum = 0;
        for (int m = 0; m < np; ++m) sum += arow[m] * ucol[m];
        ocol[i] = sum;
      }
    }
  };
  auto dim1 = [&](const T* a, const T* in, T* o) {
    for (int k = 0; k < np; ++k) {
      const T* uslab = in + static_cast<std::size_t>(k) * plane;
      T* oslab = o + static_cast<std::size_t>(k) * plane;
      for (int j = 0; j < np; ++j) {
        const T* arow = a + static_cast<std::size_t>(j) * np;
        for (int i = 0; i < np; ++i) {
          T sum = 0;
          for (int m = 0; m < np; ++m) {
            sum += arow[m] * uslab[static_cast<std::size_t>(m) * np + i];
          }
          oslab[static_cast<std::size_t>(j) * np + i] = sum;
        }
      }
    }
  };
  auto dim2 = [&](const T* a, const T* in, T* o) {
    for (int k = 0; k < np; ++k) {
      const T* arow = a + static_cast<std::size_t>(k) * np;
      T* oslab = o + static_cast<std::size_t>(k) * plane;
      for (int ij = 0; ij < plane; ++ij) {
        T sum = 0;
        for (int m = 0; m < np; ++m) {
          sum += arow[m] * in[static_cast<std::size_t>(m) * plane + ij];
        }
        oslab[ij] = sum;
      }
    }
  };
  for (int e = 0; e < nel; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * per_el;
    const T* const ue = u.data() + base;
    dim0(dmat, ue, ur);
    dim1(dmat, ue, us);
    dim2(dmat, ue, ut);
    const T* const g11 = geo.g11.data() + base;
    const T* const g12 = geo.g12.data() + base;
    const T* const g13 = geo.g13.data() + base;
    const T* const g22 = geo.g22.data() + base;
    const T* const g23 = geo.g23.data() + base;
    const T* const g33 = geo.g33.data() + base;
    for (std::size_t q = 0; q < per_el; ++q) {
      const T dr = ur[q];
      const T ds = us[q];
      const T dt = ut[q];
      wr[q] = g11[q] * dr + g12[q] * ds + g13[q] * dt;
      ws[q] = g12[q] * dr + g22[q] * ds + g23[q] * dt;
      wt[q] = g13[q] * dr + g23[q] * ds + g33[q] * dt;
    }
    // The adjoint applications land back in ur/us/ut (their inputs are
    // consumed); the final combine preserves the reference accumulation
    // order ((r + s) + t).
    dim0(tmat, wr, ur);
    dim1(tmat, ws, us);
    dim2(tmat, wt, ut);
    T* const oe = out.data() + base;
    for (std::size_t q = 0; q < per_el; ++q) {
      oe[q] = (ur[q] + us[q]) + ut[q];
    }
  }
}

}  // namespace detail

/// Fused weak Laplacian over all elements: one pass per element computing
/// the reference derivatives (ur, us, ut), applying the geometric factors,
/// and accumulating the three adjoint derivative applications — the six
/// separate matrix sweeps + three temporaries of the naive composition
/// collapsed into a single allocation-free kernel.  `u` and `out` must not
/// alias.
///
/// `deriv`/`deriv_t` are the np x np differentiation matrix and its
/// transpose; `scratch` must hold at least 6*np^3 entries.  The double
/// instantiation is bit-identical to the composition
///   DerivR/S/T -> G-combine -> out = 0; DerivRTAdd; DerivSTAdd; DerivTTAdd
/// (same per-entry operation order), which the sem tests pin.  Common SEM
/// extents (np = 2..9, i.e. orders 1..8) dispatch to compile-time-unrolled
/// instantiations; anything larger takes the runtime-extent path, computing
/// identical values.
template <typename T>
void LaplacianFused(std::span<const T> deriv, std::span<const T> deriv_t,
                    int np, int nel, const LaplacianGeo<T>& geo,
                    std::span<const T> u, std::span<T> out,
                    std::span<T> scratch) {
  switch (np) {
    case 2:
      detail::LaplacianFusedImpl<T, 2>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 3:
      detail::LaplacianFusedImpl<T, 3>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 4:
      detail::LaplacianFusedImpl<T, 4>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 5:
      detail::LaplacianFusedImpl<T, 5>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 6:
      detail::LaplacianFusedImpl<T, 6>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 7:
      detail::LaplacianFusedImpl<T, 7>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 8:
      detail::LaplacianFusedImpl<T, 8>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    case 9:
      detail::LaplacianFusedImpl<T, 9>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
    default:
      detail::LaplacianFusedImpl<T, 0>(deriv, deriv_t, np, nel, geo, u, out,
                                       scratch);
      break;
  }
}

/// Interpolate np^3 element data onto an m^3 lattice using interpolation
/// matrix `interp` (m x np row-major, e.g. from InterpolationMatrix()).
/// Scratch-free convenience; returns m^3 values.
std::vector<double> Interp3D(std::span<const double> interp, int m, int np,
                             std::span<const double> u);

/// Workspace size (in T entries) required by the scratch-buffer Interp3D
/// overload below: the two intermediate mixed lattices.
[[nodiscard]] constexpr std::size_t Interp3DScratchSize(int m, int np) {
  return static_cast<std::size_t>(m) * np * np +
         static_cast<std::size_t>(m) * m * np;
}

/// Allocation-free Interp3D: `out` must hold m^3 entries and `scratch` at
/// least Interp3DScratchSize(m, np).  The double instantiation computes
/// bit-identical values to the vector-returning overload (same loops) —
/// this is the multigrid Restrict/Prolong hot path.
template <typename T>
void Interp3D(std::span<const T> interp, int m, int np, std::span<const T> u,
              std::span<T> out, std::span<T> scratch) {
  // Apply along x, then y, then z, growing/shrinking the lattice each pass.
  T* const a = scratch.data();                                  // m*np*np
  T* const b = a + static_cast<std::size_t>(m) * np * np;       // m*m*np
  ApplyDim0T<T>(interp, m, np, u, {a, static_cast<std::size_t>(m) * np * np});

  // After the x pass the layout is m-fast; apply along y with the generic
  // kernel by treating each z-slab as (np rows of m) columns.
  for (int k = 0; k < np; ++k) {
    const T* aslab = a + static_cast<std::size_t>(k) * m * np;
    T* bslab = b + static_cast<std::size_t>(k) * m * m;
    for (int j = 0; j < m; ++j) {
      const T* irow = interp.data() + static_cast<std::size_t>(j) * np;
      for (int i = 0; i < m; ++i) {
        T sum = 0;
        for (int q = 0; q < np; ++q) {
          sum += irow[q] * aslab[static_cast<std::size_t>(q) * m + i];
        }
        bslab[static_cast<std::size_t>(j) * m + i] = sum;
      }
    }
  }

  const int plane = m * m;
  for (int k = 0; k < m; ++k) {
    const T* irow = interp.data() + static_cast<std::size_t>(k) * np;
    T* cslab = out.data() + static_cast<std::size_t>(k) * plane;
    for (int ij = 0; ij < plane; ++ij) {
      T sum = 0;
      for (int q = 0; q < np; ++q) {
        sum += irow[q] * b[static_cast<std::size_t>(q) * plane + ij];
      }
      cslab[ij] = sum;
    }
  }
}

}  // namespace sem
