// Parallel gather-scatter (direct-stiffness summation), the moral
// equivalent of Nek's gslib.
//
// Spectral elements store duplicate copies of nodes shared between
// neighbouring elements (and across rank boundaries).  GatherScatter::Sum
// replaces every copy of a global node with the sum over all of its copies,
// which assembles the weak-form operators: QQ^T in matrix terms.
//
// The exchange uses a rendezvous scheme that works for arbitrary partitions:
// each global id is coordinated by rank (gid % P).  Setup discovers, for
// every id, which ranks hold it; Sum then ships one double per shared id to
// the coordinator and receives the total back.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "mpimini/comm.hpp"

namespace sem {

class GatherScatter {
 public:
  /// Collective constructor: every rank of `comm` passes its local global-id
  /// array (one id per local dof, duplicates allowed and expected).
  GatherScatter(mpimini::Comm comm, std::span<const std::int64_t> gids);

  /// Collective: in place, set every copy of each global id to the sum over
  /// all copies on all ranks.
  void Sum(std::span<double> values) const;

  /// Single-precision assembly for the multigrid `pfloat` path: identical
  /// exchange plan, float accumulation and float wire payloads (half the
  /// bytes on the wire).  Every rank participating in one logical Sum must
  /// use the same precision — the wire tags are shared.
  void Sum(std::span<float> values) const;

  /// Collective: like Sum but leaves the value averaged over the copy count
  /// (used to smooth visualization fields).
  void Average(std::span<double> values) const;

  /// Number of local dofs this object was built for.
  [[nodiscard]] std::size_t NumDofs() const { return ndofs_; }

  /// Multiplicity (total copy count over all ranks) per local dof; useful
  /// for computing true global dot products from local arrays.
  [[nodiscard]] const std::vector<double>& Multiplicity() const {
    return multiplicity_;
  }

 private:
  template <typename T>
  void SumT(std::span<T> values) const;

  mutable mpimini::Comm comm_;
  std::size_t ndofs_ = 0;

  // Local-only duplicate groups (all copies on this rank): lists of dof
  // indices sharing one id. Includes groups also shared remotely.
  std::vector<std::vector<std::int32_t>> groups_;

  // Remote exchange plan. Shared ids are a subset of groups_, ordered per
  // coordinator rank.
  struct PeerPlan {
    int peer = -1;                          // coordinator rank
    std::vector<std::int32_t> group_index;  // my groups, in wire order
  };
  std::vector<PeerPlan> send_plan_;  // what I ship to each coordinator

  // Coordinator side: per holder rank, positions into acc_ in wire order.
  struct HolderPlan {
    int holder = -1;
    std::vector<std::int32_t> slot;  // index into accumulator array
  };
  std::vector<HolderPlan> recv_plan_;
  std::size_t num_slots_ = 0;  // distinct shared ids I coordinate

  std::vector<double> multiplicity_;
};

}  // namespace sem
