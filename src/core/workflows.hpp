// End-to-end workflow drivers reproducing the paper's two experimental
// setups.  These are what the figure benches and the examples run.
//
//  * RunInSitu     — §4.1: NekRS + SENSEI on the simulation ranks
//    (configurations Original / Checkpointing / Catalyst are all just
//    different SENSEI XML — or no SENSEI at all for Original).
//  * RunInTransit  — §4.2: simulation ranks stream over the SST engine to
//    SENSEI endpoint ranks (4:1 by default); the endpoint runs its own
//    analyses (No Transport / Checkpointing / Catalyst).
#pragma once

#include <string>
#include <vector>

#include "instrument/metrics.hpp"
#include "instrument/telemetry.hpp"
#include "nekrs/flow_solver.hpp"
#include "occamini/device.hpp"

namespace nek_sensei {

/// Per-rank measurements harvested from a workflow run.
struct RankReport {
  int world_rank = -1;
  bool is_sim = true;                ///< simulation rank vs endpoint rank
  double step_busy_seconds = 0.0;    ///< busy time inside the stepping loop
  double total_busy_seconds = 0.0;   ///< busy time of the whole run
  std::size_t host_peak_bytes = 0;   ///< CPU memory high-water (Figs 3/6)
  std::size_t device_peak_bytes = 0; ///< simulated GPU memory high-water
};

struct WorkflowMetrics {
  std::vector<RankReport> ranks;
  int steps = 0;
  double wall_seconds = 0.0;
  std::size_t bytes_written = 0;   ///< storage written by all analyses
  std::size_t images_written = 0;  ///< rendered frames (catalyst)
  /// Cross-rank span/counter aggregate; Empty() unless telemetry was on.
  instrument::TelemetrySummary telemetry;
  /// Rank-aggregated run-health report (min/mean/max/p95 + imbalance per
  /// metric); Empty() unless the metrics plane was on.
  instrument::MetricsReport metrics_report;

  /// Mean over simulation ranks of (step-loop busy seconds / steps): the
  /// "mean time per timestep on the simulation nodes" of Fig 5.
  [[nodiscard]] double MeanSimStepSeconds() const;
  /// Sum over simulation ranks of step-loop busy seconds (the
  /// time-to-solution proxy of Fig 2 under serialized rank threads).
  [[nodiscard]] double TotalSimBusySeconds() const;
  [[nodiscard]] std::size_t MaxSimHostPeakBytes() const;
  [[nodiscard]] std::size_t TotalSimHostPeakBytes() const;
  [[nodiscard]] std::size_t MaxSimDevicePeakBytes() const;
};

struct InSituOptions {
  nekrs::FlowConfig flow;
  int steps = 100;
  /// SENSEI runtime configuration; ignored when use_sensei is false.
  std::string sensei_xml = "<sensei/>";
  /// false reproduces the paper's "Original" configuration: NekRS without
  /// the SENSEI interface compiled in.
  bool use_sensei = true;
  occamini::Backend backend = occamini::Backend::kSimGpu;
  occamini::TransferModel transfer;
  /// Tracing opt-in.  When left disabled here, the sensei XML's
  /// <telemetry .../> element (if any) is honored instead, so tracing can
  /// be switched on without recompiling — like every other pipeline knob.
  instrument::TelemetryConfig telemetry;
  /// Test/demo knob: the named rank busy-spins this long after every
  /// solver step, feeding the extra seconds into solver.step_seconds so
  /// the straggler detector has a controlled, span-attributable target.
  /// Negative rank (the default) disables the injection.
  int straggler_rank = -1;
  double straggler_seconds = 0.0;
};

/// Inputs of one rank-0 heartbeat progress line, after the cross-rank
/// reductions.  Public (with FormatHeartbeatLine) so the formatting rules —
/// including the display clamps — are unit-testable.
struct HeartbeatLine {
  int done = 0;
  int total = 0;
  double rate_steps_per_second = 0.0;
  /// Seconds to completion at the current rate.  Negative (or non-finite)
  /// means "unknown" — zero observed rate — and renders as `eta n/a`, never
  /// as inf/garbage.
  double eta_seconds = -1.0;
  std::size_t mem_mean_bytes = 0;
  std::size_t mem_max_bytes = 0;
  /// Mean across ranks of cumulative rank-thread in situ seconds over wall
  /// elapsed, as a percentage.  Negative omits the column (metrics plane
  /// off).  The display clamps at 100: bookkeeping skew (busy-clock vs
  /// wall) can push the raw ratio past it.
  double insitu_percent = -1.0;
  /// Same shape for updates offloaded to the async worker (which genuinely
  /// exceed rank-thread time under overlap — hence a separate column, not
  /// a bigger insitu%).  Negative = sync mode, column omitted.
  double offload_percent = -1.0;
  int queue_depth = -1;
  int queue_limit = -1;  ///< <= 0 omits the sst queue column
  /// Latest end-to-end step→image latency estimate, seconds (in transit:
  /// shipped from the endpoint group; in situ: the run's mean so far).
  /// Negative omits the column — no delivered step observed yet.
  double e2e_seconds = -1.0;
  /// Cross-rank sums of transport raw/wire bytes.  The wire column only
  /// prints when both are nonzero and they differ (i.e. a non-identity
  /// codec actually ran), so uncompressed runs keep their exact line.
  std::size_t raw_bytes = 0;
  std::size_t wire_bytes = 0;
  /// Free-form annotation appended as a final column (straggler verdicts).
  /// Empty omits the column.
  std::string note;
};

/// Render one heartbeat line ("[heartbeat] step ... | ...").
[[nodiscard]] std::string FormatHeartbeatLine(const HeartbeatLine& line);

/// Run the in situ workflow on `nranks` rank threads. Collective-free
/// convenience: spawns its own mpimini runtime.
WorkflowMetrics RunInSitu(int nranks, const InSituOptions& options);

struct InTransitOptions {
  nekrs::FlowConfig flow;  ///< sized for the *simulation* communicator
  int steps = 100;
  int sim_per_endpoint = 4;  ///< the paper's 4:1 sim:endpoint ratio
  /// Simulation-side SENSEI XML; an <analysis type="adios" .../> entry
  /// activates the SST stream. frequency on that entry is the transport
  /// trigger cadence.
  std::string sim_xml = "<sensei/>";
  /// Endpoint-side SENSEI XML (checkpoint / catalyst / empty).
  std::string endpoint_xml = "<sensei/>";
  int sst_queue_limit = 1;
  occamini::Backend backend = occamini::Backend::kSimGpu;
  occamini::TransferModel transfer;
  /// Tracing opt-in; falls back to the sim-side XML's <telemetry .../>.
  instrument::TelemetryConfig telemetry;
};

/// Run the in transit workflow with `sim_ranks` simulation ranks plus
/// ceil(sim_ranks / sim_per_endpoint) endpoint ranks.
WorkflowMetrics RunInTransit(int sim_ranks, const InTransitOptions& options);

}  // namespace nek_sensei
