#include "core/workflows.hpp"

#include <algorithm>
#include <mutex>

#include "adios/sst.hpp"
#include "core/bridge.hpp"
#include "mpimini/runtime.hpp"
#include "sensei/adios_adaptor.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"
#include "sensei/intransit_data_adaptor.hpp"

namespace nek_sensei {

namespace {

// Shared collection slot filled by world rank 0 inside the run.
struct SharedMetrics {
  std::mutex mutex;
  WorkflowMetrics metrics;
};

// Gather per-rank reports and analysis byte counts onto world rank 0.
void CollectReports(mpimini::Comm& world, const RankReport& mine,
                    std::size_t my_bytes, std::size_t my_images,
                    SharedMetrics& shared) {
  std::vector<RankReport> reports =
      world.Gather<RankReport>(std::span<const RankReport>(&mine, 1), 0);
  std::size_t bytes = my_bytes;
  std::size_t images = my_images;
  std::array<std::size_t, 2> io{bytes, images};
  world.Reduce(std::span<std::size_t>(io), mpimini::Op::kSum, 0);
  if (world.Rank() == 0) {
    std::lock_guard<std::mutex> lock(shared.mutex);
    shared.metrics.ranks = std::move(reports);
    shared.metrics.bytes_written = io[0];
    shared.metrics.images_written = io[1];
  }
}

RankReport MakeReport(mpimini::Comm& world, bool is_sim,
                      double step_busy_seconds) {
  RankReport report;
  report.world_rank = world.Rank();
  report.is_sim = is_sim;
  report.step_busy_seconds = step_busy_seconds;
  if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
    report.total_busy_seconds = env->busy.Seconds();
    report.host_peak_bytes = env->memory.HostPeakBytes();
    report.device_peak_bytes =
        env->memory.PeakBytes(instrument::kDeviceCategory);
  }
  return report;
}

bool XmlHasAdios(const std::string& xml) {
  const xmlcfg::Document doc = xmlcfg::Parse(xml);
  for (const xmlcfg::Element* analysis : doc.root.FindAll("analysis")) {
    if (analysis->Attr("type") == "adios" &&
        analysis->AttrInt("enabled", 1) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

double WorkflowMetrics::MeanSimStepSeconds() const {
  double sum = 0.0;
  int count = 0;
  for (const RankReport& r : ranks) {
    if (!r.is_sim) continue;
    sum += r.step_busy_seconds;
    ++count;
  }
  return count && steps ? sum / count / steps : 0.0;
}

double WorkflowMetrics::TotalSimBusySeconds() const {
  double sum = 0.0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) sum += r.step_busy_seconds;
  }
  return sum;
}

std::size_t WorkflowMetrics::MaxSimHostPeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.host_peak_bytes);
  }
  return peak;
}

std::size_t WorkflowMetrics::TotalSimHostPeakBytes() const {
  std::size_t total = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) total += r.host_peak_bytes;
  }
  return total;
}

std::size_t WorkflowMetrics::MaxSimDevicePeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.device_peak_bytes);
  }
  return peak;
}

WorkflowMetrics RunInSitu(int nranks, const InSituOptions& options) {
  SharedMetrics shared;
  shared.metrics.steps = options.steps;

  mpimini::RunResult run = mpimini::Runtime::Run(nranks, [&](mpimini::Comm&
                                                                 comm) {
    occamini::Device device(options.backend, options.transfer);
    nekrs::FlowSolver solver(comm, device, options.flow);
    std::optional<Bridge> bridge;
    if (options.use_sensei) bridge.emplace(solver, options.sensei_xml);

    mpimini::RankEnv* env = mpimini::CurrentEnv();
    const double busy0 = env ? env->busy.Seconds() : 0.0;
    for (int s = 0; s < options.steps; ++s) {
      solver.Step();
      if (bridge) bridge->Update();
    }
    if (bridge) bridge->Finalize();
    const double step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;

    std::size_t bytes = 0;
    std::size_t images = 0;
    if (bridge) {
      bytes = bridge->Analysis().TotalBytesWritten();
      if (auto catalyst = std::dynamic_pointer_cast<
              sensei::CatalystAnalysisAdaptor>(
              bridge->Analysis().Find("catalyst"))) {
        images = catalyst->ImagesWritten();
      }
    }
    CollectReports(comm, MakeReport(comm, /*is_sim=*/true, step_busy), bytes,
                   images, shared);
  });

  shared.metrics.wall_seconds = run.wall_seconds;
  return shared.metrics;
}

WorkflowMetrics RunInTransit(int sim_ranks, const InTransitOptions& options) {
  const int ratio = std::max(1, options.sim_per_endpoint);
  const int endpoint_ranks = (sim_ranks + ratio - 1) / ratio;
  const int world_ranks = sim_ranks + endpoint_ranks;
  const bool streaming = XmlHasAdios(options.sim_xml);

  SharedMetrics shared;
  shared.metrics.steps = options.steps;

  mpimini::RunResult run = mpimini::Runtime::Run(world_ranks, [&](
                                                                 mpimini::Comm&
                                                                     world) {
    const bool is_sim = world.Rank() < sim_ranks;
    mpimini::Comm group = world.Split(is_sim ? 0 : 1, world.Rank());
    mpimini::RankEnv* env = mpimini::CurrentEnv();

    std::size_t bytes = 0;
    std::size_t images = 0;
    double step_busy = 0.0;

    if (is_sim) {
      occamini::Device device(options.backend, options.transfer);
      nekrs::FlowSolver solver(group, device, options.flow);
      const int endpoint_world_rank = sim_ranks + world.Rank() / ratio;

      Bridge bridge(solver, options.sim_xml,
                    [&](sensei::ConfigurableAnalysis& analysis) {
                      analysis.RegisterFactory(
                          "adios",
                          [&](const xmlcfg::Element& e, mpimini::Comm&) {
                            sensei::AdiosOptions adios_options;
                            adios_options.arrays =
                                sensei::SplitList(e.Attr("arrays"));
                            adios_options.sst.queue_limit =
                                options.sst_queue_limit;
                            return std::make_shared<
                                sensei::AdiosAnalysisAdaptor>(
                                world, endpoint_world_rank, adios_options);
                          });
                    });

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      for (int s = 0; s < options.steps; ++s) {
        solver.Step();
        bridge.Update();
      }
      bridge.Finalize();
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      bytes = bridge.Analysis().TotalBytesWritten();
    } else if (streaming) {
      // Endpoint rank: receive steps and run the endpoint analyses.
      std::vector<int> writers;
      for (int w = 0; w < sim_ranks; ++w) {
        if (sim_ranks + w / ratio == world.Rank()) writers.push_back(w);
      }
      adios::SstReader reader(world, writers,
                              {.queue_limit = options.sst_queue_limit});
      sensei::InTransitDataAdaptor data(group);
      sensei::ConfigurableAnalysis analysis(group);
      analysis.Initialize(xmlcfg::Parse(options.endpoint_xml).root);

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      while (auto step = reader.NextStep()) {
        data.SetStep(step->step, 0.0, step->payloads);
        analysis.Execute(data);
      }
      analysis.Finalize();
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      bytes = analysis.TotalBytesWritten();
      if (auto catalyst =
              std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
                  analysis.Find("catalyst"))) {
        images = catalyst->ImagesWritten();
      }
    }

    CollectReports(world, MakeReport(world, is_sim, step_busy), bytes, images,
                   shared);
  });

  shared.metrics.wall_seconds = run.wall_seconds;
  return shared.metrics;
}

}  // namespace nek_sensei
