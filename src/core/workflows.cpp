#include "core/workflows.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "adios/sst.hpp"
#include "core/bridge.hpp"
#include "core/buffer.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/report.hpp"
#include "mpimini/metrics_reduce.hpp"
#include "mpimini/runtime.hpp"
#include "sensei/adios_adaptor.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"
#include "sensei/intransit_data_adaptor.hpp"

namespace nek_sensei {

namespace {

// Shared collection slot filled by world rank 0 inside the run (and read by
// the launching thread after the rank threads join — which still takes the
// lock, so the thread-safety analysis can prove every access).
struct SharedMetrics {
  core::Mutex mutex;
  WorkflowMetrics metrics NSM_GUARDED_BY(mutex);
};

// Gather per-rank reports and analysis byte counts onto world rank 0.
void CollectReports(mpimini::Comm& world, const RankReport& mine,
                    std::size_t my_bytes, std::size_t my_images,
                    SharedMetrics& shared) {
  std::vector<RankReport> reports =
      world.Gather<RankReport>(std::span<const RankReport>(&mine, 1), 0);
  std::size_t bytes = my_bytes;
  std::size_t images = my_images;
  std::array<std::size_t, 2> io{bytes, images};
  world.Reduce(std::span<std::size_t>(io), mpimini::Op::kSum, 0);
  if (world.Rank() == 0) {
    core::MutexLock lock(shared.mutex);
    shared.metrics.ranks = std::move(reports);
    shared.metrics.bytes_written = io[0];
    shared.metrics.images_written = io[1];
  }
}

// `worker_host_peak_bytes` is the async worker's high-water mark (0 in sync
// mode): the two threads coexist, so the rank's reported footprint is the
// conservative sum of both peaks.
RankReport MakeReport(mpimini::Comm& world, bool is_sim,
                      double step_busy_seconds,
                      std::size_t worker_host_peak_bytes = 0) {
  RankReport report;
  report.world_rank = world.Rank();
  report.is_sim = is_sim;
  report.step_busy_seconds = step_busy_seconds;
  if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
    report.total_busy_seconds = env->busy.Seconds();
    report.host_peak_bytes =
        env->memory.HostPeakBytes() + worker_host_peak_bytes;
    report.device_peak_bytes =
        env->memory.PeakBytes(instrument::kDeviceCategory);
  }
  return report;
}

bool XmlHasAdios(const std::string& xml) {
  const xmlcfg::Document doc = xmlcfg::Parse(xml);
  for (const xmlcfg::Element* analysis : doc.root.FindAll("analysis")) {
    if (analysis->Attr("type") == "adios" &&
        analysis->AttrInt("enabled", 1) != 0) {
      return true;
    }
  }
  return false;
}

// Explicit options win; otherwise honor the XML's <telemetry> element.
instrument::TelemetryConfig ResolveTelemetry(
    const instrument::TelemetryConfig& explicit_config,
    const std::string& sensei_xml) {
  if (explicit_config.enabled || explicit_config.MetricsEnabled()) {
    return explicit_config;
  }
  return sensei::ParseTelemetryConfig(xmlcfg::Parse(sensei_xml).root);
}

mpimini::RunSettings MakeRunSettings(
    const instrument::TelemetryConfig& config) {
  mpimini::RunSettings settings;
  settings.trace = config.enabled;
  settings.tracer = config.TracerOptions();
  settings.metrics = config.MetricsEnabled();
  return settings;
}

// Rank-0 progress line, every `heartbeat_steps` steps.  Collective on the
// stepping communicator when enabled (two small Reduces), so every rank of
// that communicator must Tick at the same step; a zero interval makes Tick
// a no-op and the run collective-free, as before.
class Heartbeat {
 public:
  Heartbeat(mpimini::Comm& comm, int interval_steps, int total_steps)
      : comm_(comm),
        interval_(interval_steps),
        total_(total_steps),
        start_ns_(instrument::Tracer::NowNs()) {}

  /// `queue_depth`/`queue_limit` describe the SST staging queue (pass
  /// -1/-1 when the workflow has no transport, e.g. in situ).
  /// `offload_seconds` is this rank's cumulative async-worker update
  /// seconds, or negative in sync mode (must agree in sign across ranks —
  /// the reductions are collective).  `raw_bytes`/`wire_bytes` are this
  /// rank's cumulative transport codec-plane totals (0 when there is no
  /// transport; equal when every variable ships identity).
  void Tick(int step_index, int queue_depth, int queue_limit,
            double offload_seconds = -1.0, std::size_t raw_bytes = 0,
            std::size_t wire_bytes = 0) {
    if (interval_ <= 0) return;
    const int done = step_index + 1;
    if (done % interval_ != 0 && done != total_) return;

    mpimini::RankEnv* env = mpimini::CurrentEnv();
    const double mem =
        env ? static_cast<double>(env->memory.HostPeakBytes()) : 0.0;
    double insitu_seconds = 0.0;
    if (const instrument::MetricsRegistry* m = instrument::CurrentMetrics()) {
      insitu_seconds = m->Counter("bridge.update_seconds");
    }
    const bool async = offload_seconds >= 0.0;
    std::array<double, 5> sums{mem, insitu_seconds,
                               async ? offload_seconds : 0.0,
                               static_cast<double>(raw_bytes),
                               static_cast<double>(wire_bytes)};
    std::array<double, 2> maxs{mem, static_cast<double>(queue_depth)};
    comm_.Reduce(std::span<double>(sums), mpimini::Op::kSum, 0);
    comm_.Reduce(std::span<double>(maxs), mpimini::Op::kMax, 0);
    if (comm_.Rank() != 0) return;

    const double elapsed =
        static_cast<double>(instrument::Tracer::NowNs() - start_ns_) * 1e-9;
    const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
    const double ranks = static_cast<double>(comm_.Size());

    HeartbeatLine line;
    line.done = done;
    line.total = total_;
    line.rate_steps_per_second = rate;
    line.eta_seconds =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
    line.mem_mean_bytes = static_cast<std::size_t>(sums[0] / ranks);
    line.mem_max_bytes = static_cast<std::size_t>(maxs[0]);
    if (elapsed > 0.0 && instrument::CurrentMetrics() != nullptr) {
      line.insitu_percent = 100.0 * sums[1] / ranks / elapsed;
    }
    if (elapsed > 0.0 && async) {
      line.offload_percent = 100.0 * sums[2] / ranks / elapsed;
    }
    line.queue_depth = static_cast<int>(maxs[1]);
    line.queue_limit = queue_limit;
    line.raw_bytes = static_cast<std::size_t>(sums[3]);
    line.wire_bytes = static_cast<std::size_t>(sums[4]);
    std::fprintf(stderr, "%s\n", FormatHeartbeatLine(line).c_str());
    std::fflush(stderr);
  }

 private:
  mpimini::Comm& comm_;
  int interval_;
  int total_;
  std::int64_t start_ns_;
};

// Reduce every rank's metric snapshot onto world rank 0 and stash the
// rank-aggregated report.  Collective when the metrics plane is on: every
// world rank must call this (a disabled plane makes it a no-op everywhere,
// so the collective order stays identical across ranks).
void CollectRunHealth(mpimini::Comm& world,
                      const instrument::TelemetryConfig& config,
                      SharedMetrics& shared) {
  if (!config.MetricsEnabled()) return;
  instrument::MetricsSnapshot mine;
  if (const instrument::MetricsRegistry* reg = instrument::CurrentMetrics()) {
    mine = reg->Snapshot();
  }
  instrument::MetricsReport report = mpimini::ReduceMetrics(world, mine, 0);
  if (world.Rank() == 0) {
    // Derived metric: the run's aggregate compression ratio, from the
    // writer-fed raw/wire counters.  Computed from the global sums (not
    // per-rank ratios), so it is deterministic across 4-vs-8-rank
    // partitionings of the same work.
    const double raw = report.CounterSum("sst.bytes_raw");
    const double wire = report.CounterSum("sst.bytes_wire");
    if (raw > 0.0 && wire > 0.0) {
      const double ratio = raw / wire;
      instrument::MetricStat stat;
      stat.ranks = report.ranks;
      stat.min = stat.mean = stat.max = stat.p95 = stat.sum = ratio;
      stat.low_watermark = stat.high_watermark = ratio;
      stat.imbalance = 1.0;
      report.gauges["sst.compression_ratio"] = stat;
    }
    core::MutexLock lock(shared.mutex);
    shared.metrics.metrics_report = std::move(report);
  }
}

// Print the per-rank tracer digest on ranks that do not run a Bridge
// (in-transit endpoints); Bridge::Finalize does this for sim ranks.  The
// flush matters: these threads exit right after, and unflushed stdio from
// a finishing rank thread is lost on some libc builds.
void PrintEndpointSummary() {
  if (const instrument::Tracer* tracer = instrument::CurrentTracer()) {
    std::fprintf(stderr, "%s\n", tracer->SummaryLine().c_str());
    std::fflush(stderr);
  }
}

// Sample the cumulative pipeline counters into the rank's tracer.  Called
// at step boundaries so consecutive samples attribute each step's deltas
// (DESIGN.md: counter-delta attribution).  No-op when tracing is off.
void SampleStepCounters(const occamini::Device* device,
                        const sensei::ConfigurableAnalysis* analysis,
                        const sensei::CatalystAnalysisAdaptor* catalyst,
                        const adios::SstStats* sst) {
  // Metrics-plane feeds: memory watermarks as gauges, cumulative pipeline
  // counters via SetTotal (idempotent for repeated step-boundary samples).
  if (auto* metrics = instrument::CurrentMetrics()) {
    if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
      metrics->Set("memory.host_bytes",
                   static_cast<double>(env->memory.HostCurrentBytes()));
      metrics->Set("memory.host_hwm_bytes",
                   static_cast<double>(env->memory.HostPeakBytes()));
    }
    const core::BufferStats& buffers = core::LocalBufferStats();
    metrics->SetTotal("buffer.full_copies",
                      static_cast<double>(buffers.full_copies));
    metrics->SetTotal("buffer.copied_bytes",
                      static_cast<double>(buffers.copied_bytes));
    if (device != nullptr) {
      metrics->SetTotal("d2h.bytes",
                        static_cast<double>(device->Transfers().d2h_bytes));
    }
    if (analysis != nullptr) {
      metrics->SetTotal("storage.bytes_written",
                        static_cast<double>(analysis->TotalBytesWritten()));
    }
  }
  instrument::Tracer* tracer = instrument::CurrentTracer();
  if (tracer == nullptr) return;
  const core::BufferStats& buffers = core::LocalBufferStats();
  tracer->SampleCounter("buffer.full_copies",
                        static_cast<double>(buffers.full_copies));
  tracer->SampleCounter("buffer.small_copies",
                        static_cast<double>(buffers.small_copies));
  tracer->SampleCounter("buffer.copied_bytes",
                        static_cast<double>(buffers.copied_bytes));
  tracer->SampleCounter("buffer.adoptions",
                        static_cast<double>(buffers.adoptions));
  tracer->SampleCounter("buffer.moves", static_cast<double>(buffers.moves));
  if (device != nullptr) {
    tracer->SampleCounter("d2h.bytes",
                          static_cast<double>(device->Transfers().d2h_bytes));
  }
  if (analysis != nullptr) {
    tracer->SampleCounter("storage.bytes_written",
                          static_cast<double>(analysis->TotalBytesWritten()));
  }
  if (catalyst != nullptr) {
    tracer->SampleCounter("catalyst.images",
                          static_cast<double>(catalyst->ImagesWritten()));
  }
  if (sst != nullptr) {
    tracer->SampleCounter("sst.bytes",
                          static_cast<double>(sst->payload_bytes));
    tracer->SampleCounter("sst.bytes_raw",
                          static_cast<double>(sst->raw_bytes));
    tracer->SampleCounter("sst.bytes_wire",
                          static_cast<double>(sst->wire_bytes));
  }
}

// Merge the run's tracers into the metrics and write the configured trace /
// summary files.  Export failures are reported, never silent.
void ExportTelemetry(const instrument::TelemetryConfig& config,
                     const mpimini::RunResult& run,
                     WorkflowMetrics& metrics) {
  if (!config.enabled) return;
  const std::vector<const instrument::Tracer*> tracers = run.TracerPointers();
  metrics.telemetry = instrument::Summarize(tracers);
  if (!config.trace_path.empty() &&
      !instrument::WriteChromeTrace(config.trace_path, tracers)) {
    std::fprintf(stderr, "warning: failed to write trace file %s\n",
                 config.trace_path.c_str());
  }
  if (!config.summary_path.empty() &&
      !instrument::WriteTelemetryJson(config.summary_path,
                                      metrics.telemetry)) {
    std::fprintf(stderr, "warning: failed to write telemetry summary %s\n",
                 config.summary_path.c_str());
  }
}

// Write the single rank-aggregated metrics.json (the reduction already ran
// inside the rank body via CollectRunHealth).
void ExportRunHealth(const instrument::TelemetryConfig& config,
                     const WorkflowMetrics& metrics) {
  if (!config.MetricsEnabled() || config.metrics_path.empty()) return;
  if (!instrument::WriteMetricsJson(config.metrics_path,
                                    metrics.metrics_report)) {
    std::fprintf(stderr, "warning: failed to write metrics file %s\n",
                 config.metrics_path.c_str());
  }
}

}  // namespace

std::string FormatHeartbeatLine(const HeartbeatLine& line) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[heartbeat] step %d/%d (%d%%) | %.2f steps/s | eta %.1fs",
                line.done, line.total,
                line.total > 0 ? 100 * line.done / line.total : 0,
                line.rate_steps_per_second, line.eta_seconds);
  std::string out = buf;
  out += " | mem mean " + instrument::FormatBytes(line.mem_mean_bytes) +
         " max " + instrument::FormatBytes(line.mem_max_bytes);
  if (line.insitu_percent >= 0.0) {
    // Clamp the display: busy-clock vs wall-clock skew can nudge the raw
    // ratio past 100, and a ">100% in situ" line reads as nonsense.  Work
    // running off the critical path is the offload column, never an
    // inflated insitu%.
    std::snprintf(buf, sizeof(buf), " | insitu %.0f%%",
                  std::min(line.insitu_percent, 100.0));
    out += buf;
  }
  if (line.offload_percent >= 0.0) {
    std::snprintf(buf, sizeof(buf), " | offload %.0f%%",
                  std::min(line.offload_percent, 100.0));
    out += buf;
  }
  if (line.queue_limit > 0) {
    std::snprintf(buf, sizeof(buf), " | sst queue %d/%d", line.queue_depth,
                  line.queue_limit);
    out += buf;
  }
  // Wire column only when a codec actually shrank (or grew) the stream:
  // identity-only runs keep the pre-codec line byte for byte.
  if (line.raw_bytes > 0 && line.wire_bytes > 0 &&
      line.raw_bytes != line.wire_bytes) {
    std::snprintf(buf, sizeof(buf), " | wire %s (%.1fx)",
                  instrument::FormatBytes(line.wire_bytes).c_str(),
                  static_cast<double>(line.raw_bytes) /
                      static_cast<double>(line.wire_bytes));
    out += buf;
  }
  return out;
}

double WorkflowMetrics::MeanSimStepSeconds() const {
  double sum = 0.0;
  int count = 0;
  for (const RankReport& r : ranks) {
    if (!r.is_sim) continue;
    sum += r.step_busy_seconds;
    ++count;
  }
  return count && steps ? sum / count / steps : 0.0;
}

double WorkflowMetrics::TotalSimBusySeconds() const {
  double sum = 0.0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) sum += r.step_busy_seconds;
  }
  return sum;
}

std::size_t WorkflowMetrics::MaxSimHostPeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.host_peak_bytes);
  }
  return peak;
}

std::size_t WorkflowMetrics::TotalSimHostPeakBytes() const {
  std::size_t total = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) total += r.host_peak_bytes;
  }
  return total;
}

std::size_t WorkflowMetrics::MaxSimDevicePeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.device_peak_bytes);
  }
  return peak;
}

WorkflowMetrics RunInSitu(int nranks, const InSituOptions& options) {
  SharedMetrics shared;
  {
    core::MutexLock lock(shared.mutex);
    shared.metrics.steps = options.steps;
  }
  const instrument::TelemetryConfig telemetry =
      ResolveTelemetry(options.telemetry, options.sensei_xml);

  mpimini::RunResult run = mpimini::Runtime::Run(
      nranks, MakeRunSettings(telemetry), [&](mpimini::Comm& comm) {
    occamini::Device device(options.backend, options.transfer);
    nekrs::FlowSolver solver(comm, device, options.flow);
    std::optional<Bridge> bridge;
    if (options.use_sensei) bridge.emplace(solver, options.sensei_xml);
    std::shared_ptr<sensei::CatalystAnalysisAdaptor> catalyst;
    if (bridge) {
      catalyst =
          std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
              bridge->Analysis().Find("catalyst"));
    }
    const sensei::ConfigurableAnalysis* analysis =
        bridge ? &bridge->Analysis() : nullptr;

    // Async mode: the analyses run concurrently on the worker thread, so
    // their counters must not be read at step boundaries — sample with the
    // device feed only, and take one full sample after Finalize (SetTotal
    // and counter sampling are cumulative, so the final totals come out
    // mode-independent).
    const bool async = bridge && bridge->Async();
    const sensei::ConfigurableAnalysis* loop_analysis =
        async ? nullptr : analysis;
    const sensei::CatalystAnalysisAdaptor* loop_catalyst =
        async ? nullptr : catalyst.get();

    mpimini::RankEnv* env = mpimini::CurrentEnv();
    const double busy0 = env ? env->busy.Seconds() : 0.0;
    std::optional<instrument::ScopedTimer> loop_timer;
    if (env) loop_timer.emplace(env->timings, "step_loop");
    Heartbeat heartbeat(comm, telemetry.heartbeat_steps, options.steps);
    SampleStepCounters(&device, loop_analysis, loop_catalyst, nullptr);
    for (int s = 0; s < options.steps; ++s) {
      solver.Step();
      if (bridge) bridge->Update();
      SampleStepCounters(&device, loop_analysis, loop_catalyst, nullptr);
      heartbeat.Tick(s, /*queue_depth=*/-1, /*queue_limit=*/-1,
                     bridge ? bridge->OffloadedSeconds() : -1.0);
    }
    // Stop before teardown: Finalize (stream flushes, file closes) must not
    // count toward the per-step figures.
    const double step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
    if (loop_timer) loop_timer->Stop();
    if (bridge) bridge->Finalize();
    // Post-Finalize the worker (if any) is joined and its attribution is
    // folded into this rank: the full-feed sample closes the totals.
    SampleStepCounters(&device, analysis, catalyst.get(), nullptr);

    std::size_t bytes = 0;
    std::size_t images = 0;
    if (bridge) {
      bytes = bridge->Analysis().TotalBytesWritten();
      if (catalyst) images = catalyst->ImagesWritten();
    }
    CollectReports(comm,
                   MakeReport(comm, /*is_sim=*/true, step_busy,
                              bridge ? bridge->WorkerHostPeakBytes() : 0),
                   bytes, images, shared);
    CollectRunHealth(comm, telemetry, shared);
  });

  // Rank threads are joined, but the analysis (rightly) still wants the
  // lock for these accesses.
  core::MutexLock lock(shared.mutex);
  shared.metrics.wall_seconds = run.wall_seconds;
  ExportTelemetry(telemetry, run, shared.metrics);
  ExportRunHealth(telemetry, shared.metrics);
  return shared.metrics;
}

WorkflowMetrics RunInTransit(int sim_ranks, const InTransitOptions& options) {
  const int ratio = std::max(1, options.sim_per_endpoint);
  const int endpoint_ranks = (sim_ranks + ratio - 1) / ratio;
  const int world_ranks = sim_ranks + endpoint_ranks;
  const bool streaming = XmlHasAdios(options.sim_xml);

  SharedMetrics shared;
  {
    core::MutexLock lock(shared.mutex);
    shared.metrics.steps = options.steps;
  }
  const instrument::TelemetryConfig telemetry =
      ResolveTelemetry(options.telemetry, options.sim_xml);

  mpimini::RunResult run = mpimini::Runtime::Run(
      world_ranks, MakeRunSettings(telemetry), [&](mpimini::Comm& world) {
    const bool is_sim = world.Rank() < sim_ranks;
    mpimini::Comm group = world.Split(is_sim ? 0 : 1, world.Rank());
    mpimini::RankEnv* env = mpimini::CurrentEnv();

    std::size_t bytes = 0;
    std::size_t images = 0;
    std::size_t worker_peak = 0;
    double step_busy = 0.0;

    if (is_sim) {
      occamini::Device device(options.backend, options.transfer);
      nekrs::FlowSolver solver(group, device, options.flow);
      const int endpoint_world_rank = sim_ranks + world.Rank() / ratio;

      Bridge bridge(solver, options.sim_xml,
                    [&](sensei::ConfigurableAnalysis& analysis) {
                      analysis.RegisterFactory(
                          "adios",
                          [&](const xmlcfg::Element& e, mpimini::Comm&) {
                            sensei::AdiosOptions adios_options;
                            adios_options.arrays =
                                sensei::SplitList(e.Attr("arrays"));
                            adios_options.sst.queue_limit =
                                options.sst_queue_limit;
                            adios_options.codecs =
                                sensei::ParseTransportCodecs(e);
                            return std::make_shared<
                                sensei::AdiosAnalysisAdaptor>(
                                world, endpoint_world_rank, adios_options);
                          });
                    });

      auto adios =
          std::dynamic_pointer_cast<sensei::AdiosAnalysisAdaptor>(
              bridge.Analysis().Find("adios"));

      // Async mode: the SST sender runs on the worker thread; its stats and
      // the analysis byte counts are worker-owned until Finalize joins it.
      // QueueDepth/QueueLimit stay readable (atomic mirror / immutable).
      const bool async = bridge.Async();
      const sensei::ConfigurableAnalysis* loop_analysis =
          async ? nullptr : &bridge.Analysis();
      const adios::SstStats* loop_sst =
          (!async && adios) ? &adios->TransportStats() : nullptr;

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      std::optional<instrument::ScopedTimer> loop_timer;
      if (env) loop_timer.emplace(env->timings, "step_loop");
      // Heartbeat runs on the sim group: endpoint ranks sit in their
      // receive loop and cannot join step-boundary collectives.
      Heartbeat heartbeat(group, telemetry.heartbeat_steps, options.steps);
      SampleStepCounters(&device, loop_analysis, nullptr, loop_sst);
      for (int s = 0; s < options.steps; ++s) {
        solver.Step();
        bridge.Update();
        SampleStepCounters(&device, loop_analysis, nullptr, loop_sst);
        heartbeat.Tick(s, adios ? adios->QueueDepth() : -1,
                       adios ? adios->QueueLimit() : -1,
                       bridge.OffloadedSeconds(),
                       adios ? adios->RawBytes() : 0,
                       adios ? adios->WireBytes() : 0);
      }
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      if (loop_timer) loop_timer->Stop();
      bridge.Finalize();
      // Post-Finalize full-feed sample (see RunInSitu).
      SampleStepCounters(&device, &bridge.Analysis(), nullptr,
                         adios ? &adios->TransportStats() : nullptr);
      bytes = bridge.Analysis().TotalBytesWritten();
      worker_peak = bridge.WorkerHostPeakBytes();
    } else if (streaming) {
      // Endpoint rank: receive steps and run the endpoint analyses.
      std::vector<int> writers;
      for (int w = 0; w < sim_ranks; ++w) {
        if (sim_ranks + w / ratio == world.Rank()) writers.push_back(w);
      }
      adios::SstReader reader(world, writers,
                              {.queue_limit = options.sst_queue_limit});
      sensei::InTransitDataAdaptor data(group);
      sensei::ConfigurableAnalysis analysis(group);
      analysis.Initialize(xmlcfg::Parse(options.endpoint_xml).root);

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      std::optional<instrument::ScopedTimer> loop_timer;
      if (env) loop_timer.emplace(env->timings, "step_loop");
      SampleStepCounters(nullptr, &analysis, nullptr, &reader.Stats());
      while (auto step = reader.NextStep()) {
        data.SetStep(step->step, 0.0, step->payloads);
        analysis.Execute(data);
        SampleStepCounters(nullptr, &analysis, nullptr, &reader.Stats());
      }
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      if (loop_timer) loop_timer->Stop();
      analysis.Finalize();
      PrintEndpointSummary();
      bytes = analysis.TotalBytesWritten();
      if (auto catalyst =
              std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
                  analysis.Find("catalyst"))) {
        images = catalyst->ImagesWritten();
      }
    }

    CollectReports(world, MakeReport(world, is_sim, step_busy, worker_peak),
                   bytes, images, shared);
    CollectRunHealth(world, telemetry, shared);
  });

  // Rank threads are joined, but the analysis (rightly) still wants the
  // lock for these accesses.
  core::MutexLock lock(shared.mutex);
  shared.metrics.wall_seconds = run.wall_seconds;
  ExportTelemetry(telemetry, run, shared.metrics);
  ExportRunHealth(telemetry, shared.metrics);
  return shared.metrics;
}

}  // namespace nek_sensei
