#include "core/workflows.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "adios/sst.hpp"
#include "core/bridge.hpp"
#include "core/buffer.hpp"
#include "core/lock_ranks.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/flight_recorder.hpp"
#include "instrument/monitor.hpp"
#include "instrument/provenance.hpp"
#include "instrument/report.hpp"
#include "instrument/straggler.hpp"
#include "mpimini/clock_sync.hpp"
#include "mpimini/metrics_reduce.hpp"
#include "mpimini/runtime.hpp"
#include "sensei/adios_adaptor.hpp"
#include "sensei/catalyst_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"
#include "sensei/intransit_data_adaptor.hpp"

namespace nek_sensei {

namespace {

// User-tag for the endpoint→monitor-host e2e latency feed: after each
// analysed step the endpoint group's rank 0 ships the step's end-to-end
// latency to world rank 0, whose heartbeat drains whatever has arrived
// (buffered sends — never a collective, never a deadlock).
constexpr int kTagE2eSample = 8003;

// Run-start clock calibration (collective on `comm`, rank 0 is the
// reference): installs the calibrated offset on this thread — GlobalNowNs
// and step provenance read it from there — and in the rank tracer for the
// aligned trace export.  Returns the sync so the closing re-calibration
// can report drift.
mpimini::ClockSync CalibrateRankClock(mpimini::Comm& comm) {
  const mpimini::ClockSync sync = mpimini::CalibrateClockOffset(comm);
  instrument::SetClockOffsetNs(sync.offset_ns);
  if (instrument::Tracer* tracer = instrument::CurrentTracer()) {
    tracer->SetClockCalibration(sync.offset_ns, sync.min_rtt_ns);
  }
  return sync;
}

// End-of-run re-calibration: the offset delta against the run-start sync
// is the drift the run accumulated (bounded by min_rtt in a shared-clock
// process; real deployments watch this to decide re-sync cadence).
void RecalibrateRankClock(mpimini::Comm& comm,
                          const mpimini::ClockSync& start) {
  const mpimini::ClockSync end = mpimini::CalibrateClockOffset(comm);
  if (instrument::Tracer* tracer = instrument::CurrentTracer()) {
    tracer->SetClockDrift(end.offset_ns - start.offset_ns);
  }
}

// Rebuild the step's causal origin from the payload contexts of one
// delivered SST step.  A step is only complete once its *last* writer
// finished, so among the writers' contexts the latest global origin
// timestamp wins.  Invalid (default) when no payload carried a context.
instrument::StepProvenance StepOrigin(
    const std::map<int, adios::StepPayload>& payloads, int step) {
  instrument::StepProvenance origin;
  for (const auto& [writer, payload] : payloads) {
    if (!payload.context.Valid()) continue;
    instrument::StepProvenance candidate;
    candidate.run_id = payload.context.run_id;
    candidate.origin_rank = writer;
    candidate.step = step;
    candidate.origin_span_id = payload.context.origin_span_id;
    candidate.origin_ts_ns = payload.context.origin_ts_ns;
    candidate.origin_offset_ns = payload.context.origin_offset_ns;
    if (!origin.Valid() ||
        candidate.GlobalTimestampNs() > origin.GlobalTimestampNs()) {
      origin = candidate;
    }
  }
  return origin;
}

// Shared collection slot filled by world rank 0 inside the run (and read by
// the launching thread after the rank threads join — which still takes the
// lock, so the thread-safety analysis can prove every access).
struct SharedMetrics {
  core::Mutex mutex{core::lock_rank::kCoreWorkflowsMutex};
  WorkflowMetrics metrics NSM_GUARDED_BY(mutex);
};

// Gather per-rank reports and analysis byte counts onto world rank 0.
void CollectReports(mpimini::Comm& world, const RankReport& mine,
                    std::size_t my_bytes, std::size_t my_images,
                    SharedMetrics& shared) {
  std::vector<RankReport> reports =
      world.Gather<RankReport>(std::span<const RankReport>(&mine, 1), 0);
  std::size_t bytes = my_bytes;
  std::size_t images = my_images;
  std::array<std::size_t, 2> io{bytes, images};
  world.Reduce(std::span<std::size_t>(io), mpimini::Op::kSum, 0);
  if (world.Rank() == 0) {
    core::MutexLock lock(shared.mutex);
    shared.metrics.ranks = std::move(reports);
    shared.metrics.bytes_written = io[0];
    shared.metrics.images_written = io[1];
  }
}

// `worker_host_peak_bytes` is the async worker's high-water mark (0 in sync
// mode): the two threads coexist, so the rank's reported footprint is the
// conservative sum of both peaks.
RankReport MakeReport(mpimini::Comm& world, bool is_sim,
                      double step_busy_seconds,
                      std::size_t worker_host_peak_bytes = 0) {
  RankReport report;
  report.world_rank = world.Rank();
  report.is_sim = is_sim;
  report.step_busy_seconds = step_busy_seconds;
  if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
    report.total_busy_seconds = env->busy.Seconds();
    report.host_peak_bytes =
        env->memory.HostPeakBytes() + worker_host_peak_bytes;
    report.device_peak_bytes =
        env->memory.PeakBytes(instrument::kDeviceCategory);
  }
  return report;
}

bool XmlHasAdios(const std::string& xml) {
  const xmlcfg::Document doc = xmlcfg::Parse(xml);
  for (const xmlcfg::Element* analysis : doc.root.FindAll("analysis")) {
    if (analysis->Attr("type") == "adios" &&
        analysis->AttrInt("enabled", 1) != 0) {
      return true;
    }
  }
  return false;
}

// Explicit options win; otherwise honor the XML's <telemetry> element.
instrument::TelemetryConfig ResolveTelemetry(
    const instrument::TelemetryConfig& explicit_config,
    const std::string& sensei_xml) {
  if (explicit_config.enabled || explicit_config.MetricsEnabled()) {
    return explicit_config;
  }
  return sensei::ParseTelemetryConfig(xmlcfg::Parse(sensei_xml).root);
}

mpimini::RunSettings MakeRunSettings(
    const instrument::TelemetryConfig& config) {
  mpimini::RunSettings settings;
  settings.trace = config.enabled;
  settings.tracer = config.TracerOptions();
  settings.metrics = config.MetricsEnabled();
  return settings;
}

// Rank-0 progress line plus the run-health collective.  When enabled, every
// Tick at the interval runs the same fixed collective sequence (two small
// Reduces, one health-sample Gather, and — monitor runs only — one metrics
// reduction), so every rank of the stepping communicator must Tick at the
// same step; a zero interval makes Tick a no-op and the run collective-free,
// as before.  The interval is config-derived (identical on every rank by
// construction), never data-dependent.
//
// Rank 0 additionally feeds the gathered health samples into the straggler
// detector — new verdicts go to the flight recorder, the printed line's
// `note` column, and (via Anomalies()) metrics.json — and publishes a
// MonitorStatus snapshot to the /metrics endpoint when one is serving.
class Heartbeat {
 public:
  /// `monitor` is rank 0's MonitorServer or nullptr; non-rank-0 callers
  /// always pass nullptr.  Printing follows config.heartbeat_steps; with
  /// the heartbeat off but the monitor on, ticks run every step (the
  /// endpoint wants fresh data) without printing anything.
  /// `e2e_source` is the communicator the endpoint group ships its
  /// kTagE2eSample latency samples on (in transit: the world comm), or
  /// nullptr when e2e arrives in this rank's own registry (in situ).
  Heartbeat(mpimini::Comm& comm, const instrument::TelemetryConfig& config,
            int total_steps, instrument::MonitorServer* monitor,
            mpimini::Comm* e2e_source = nullptr)
      : comm_(comm),
        e2e_source_(e2e_source),
        print_interval_(config.heartbeat_steps),
        interval_(config.heartbeat_steps > 0
                      ? config.heartbeat_steps
                      : (config.MonitorEnabled() ? 1 : 0)),
        monitor_on_(config.MonitorEnabled()),
        monitor_(monitor),
        total_(total_steps),
        start_ns_(instrument::Tracer::NowNs()) {
    // Baselines for the per-interval deltas that make up a health sample.
    if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
      last_busy_ = env->busy.Seconds();
    }
    if (const instrument::MetricsRegistry* m = instrument::CurrentMetrics()) {
      last_solver_ = m->Counter("solver.step_seconds");
      last_insitu_ = m->Counter("bridge.update_seconds");
      last_transport_ = m->Counter("sst.stall_seconds") +
                        m->Counter("pipeline.queue_wait_seconds");
    }
  }

  /// `queue_depth`/`queue_limit` describe the SST staging queue (pass
  /// -1/-1 when the workflow has no transport, e.g. in situ).
  /// `offload_seconds` is this rank's cumulative async-worker update
  /// seconds, or negative in sync mode (must agree in sign across ranks —
  /// the reductions are collective).  `raw_bytes`/`wire_bytes` are this
  /// rank's cumulative transport codec-plane totals (0 when there is no
  /// transport; equal when every variable ships identity).
  void Tick(int step_index, int queue_depth, int queue_limit,
            double offload_seconds = -1.0, std::size_t raw_bytes = 0,
            std::size_t wire_bytes = 0) {
    if (interval_ <= 0) return;
    const int done = step_index + 1;
    if (done % interval_ != 0 && done != total_) return;

    mpimini::RankEnv* env = mpimini::CurrentEnv();
    const double mem =
        env ? static_cast<double>(env->memory.HostPeakBytes()) : 0.0;
    double insitu_seconds = 0.0;
    if (const instrument::MetricsRegistry* m = instrument::CurrentMetrics()) {
      insitu_seconds = m->Counter("bridge.update_seconds");
    }
    const bool async = offload_seconds >= 0.0;
    std::array<double, 5> sums{mem, insitu_seconds,
                               async ? offload_seconds : 0.0,
                               static_cast<double>(raw_bytes),
                               static_cast<double>(wire_bytes)};
    std::array<double, 2> maxs{mem, static_cast<double>(queue_depth)};
    comm_.Reduce(std::span<double>(sums), mpimini::Op::kSum, 0);
    comm_.Reduce(std::span<double>(maxs), mpimini::Op::kMax, 0);

    // Health-sample gather: always part of the tick collective, so the
    // straggler detector works even with the metrics plane off (the busy
    // clock is unconditional; only the span attribution needs counters).
    const instrument::RankHealthSample health = SampleHealth();
    const std::vector<instrument::RankHealthSample> samples =
        comm_.Gather<instrument::RankHealthSample>(
            std::span<const instrument::RankHealthSample>(&health, 1), 0);

    // Monitor runs reduce the full registry each tick so /metrics serves
    // live cross-rank sums, not stale startup values.  MonitorEnabled()
    // implies the metrics plane is installed (TelemetryConfig contract).
    instrument::MetricsReport report;
    if (monitor_on_) {
      instrument::MetricsSnapshot snap;
      if (const instrument::MetricsRegistry* m =
              instrument::CurrentMetrics()) {
        snap = m->Snapshot();
      }
      report = mpimini::ReduceMetrics(comm_, snap, 0);
    }
    if (comm_.Rank() != 0) return;

    // End-to-end latency column: drain whatever the endpoint shipped since
    // the last tick (latest sample wins), or — with no cross-group feed —
    // read this rank's own step→image histogram (sync in situ: the image
    // writes land right here on rank 0).
    if (e2e_source_ != nullptr) {
      while (e2e_source_->HasMessage(mpimini::kAnySource, kTagE2eSample)) {
        last_e2e_seconds_ =
            e2e_source_->RecvValue<double>(mpimini::kAnySource, kTagE2eSample);
      }
    } else if (const instrument::MetricsRegistry* m =
                   instrument::CurrentMetrics()) {
      const auto it = m->Histograms().find("e2e.step_to_image_seconds");
      if (it != m->Histograms().end() && it->second.count > 0) {
        last_e2e_seconds_ = it->second.Mean();
      }
    }

    std::string note;
    for (const instrument::AnomalyRecord& a : straggler_.Update(samples,
                                                                done)) {
      char verdict[64];
      std::snprintf(verdict, sizeof(verdict), "straggler rank %d (%s)",
                    a.rank, a.dominant_span.c_str());
      instrument::RecordFlightEvent(instrument::FlightEventKind::kAnomaly,
                                    verdict, done, a.z);
      if (!note.empty()) note += ", ";
      note += verdict;
    }

    const double elapsed =
        static_cast<double>(instrument::Tracer::NowNs() - start_ns_) * 1e-9;
    const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
    const double ranks = static_cast<double>(comm_.Size());

    HeartbeatLine line;
    line.done = done;
    line.total = total_;
    line.rate_steps_per_second = rate;
    line.eta_seconds =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : -1.0;
    line.mem_mean_bytes = static_cast<std::size_t>(sums[0] / ranks);
    line.mem_max_bytes = static_cast<std::size_t>(maxs[0]);
    if (elapsed > 0.0 && instrument::CurrentMetrics() != nullptr) {
      line.insitu_percent = 100.0 * sums[1] / ranks / elapsed;
    }
    if (elapsed > 0.0 && async) {
      line.offload_percent = 100.0 * sums[2] / ranks / elapsed;
    }
    line.queue_depth = static_cast<int>(maxs[1]);
    line.queue_limit = queue_limit;
    line.raw_bytes = static_cast<std::size_t>(sums[3]);
    line.wire_bytes = static_cast<std::size_t>(sums[4]);
    line.e2e_seconds = last_e2e_seconds_;
    line.note = note;
    if (print_interval_ > 0 &&
        (done % print_interval_ == 0 || done == total_)) {
      std::fprintf(stderr, "%s\n", FormatHeartbeatLine(line).c_str());
      std::fflush(stderr);
    }

    if (monitor_ != nullptr && monitor_->Serving()) {
      instrument::MonitorStatus status;
      status.step = done;
      status.total_steps = total_;
      status.rate_steps_per_second = rate;
      status.eta_seconds = line.eta_seconds;
      double lo = 0.0;
      double hi = 0.0;
      double sum = 0.0;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const double s = samples[i].step_seconds;
        lo = i == 0 ? s : std::min(lo, s);
        hi = std::max(hi, s);
        sum += s;
      }
      status.step_seconds_min = lo;
      status.step_seconds_max = hi;
      status.step_seconds_mean =
          samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
      status.queue_depth = line.queue_depth;
      status.queue_limit = queue_limit;
      status.insitu_percent = line.insitu_percent;
      status.offload_percent = line.offload_percent;
      status.e2e_seconds = line.e2e_seconds;
      status.anomalies = straggler_.Anomalies();
      report.anomalies = status.anomalies;
      status.metrics = std::move(report);
      monitor_->Publish(std::move(status));
    }
  }

  /// Straggler verdicts accumulated so far (meaningful on rank 0 only) —
  /// the source of metrics.json's `anomalies` array.
  [[nodiscard]] const std::vector<instrument::AnomalyRecord>& Anomalies()
      const {
    return straggler_.Anomalies();
  }

 private:
  // One interval's busy-time delta plus the per-span counter deltas that
  // could explain it.  The busy clock excludes comm waits by design, so a
  // straggler's *victims* (ranks idling at the collective) do not get
  // inflated samples — only the rank actually doing extra work does.
  instrument::RankHealthSample SampleHealth() {
    instrument::RankHealthSample sample;
    sample.rank = comm_.Rank();
    double busy = 0.0;
    if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
      busy = env->busy.Seconds();
    }
    sample.step_seconds = busy - last_busy_;
    last_busy_ = busy;
    if (const instrument::MetricsRegistry* m = instrument::CurrentMetrics()) {
      const double solver = m->Counter("solver.step_seconds");
      const double insitu = m->Counter("bridge.update_seconds");
      const double transport = m->Counter("sst.stall_seconds") +
                               m->Counter("pipeline.queue_wait_seconds");
      sample.solver_seconds = solver - last_solver_;
      sample.insitu_seconds = insitu - last_insitu_;
      sample.transport_seconds = transport - last_transport_;
      last_solver_ = solver;
      last_insitu_ = insitu;
      last_transport_ = transport;
    }
    return sample;
  }

  mpimini::Comm& comm_;
  mpimini::Comm* e2e_source_;
  int print_interval_;
  int interval_;
  bool monitor_on_;
  instrument::MonitorServer* monitor_;
  int total_;
  std::int64_t start_ns_;
  double last_busy_ = 0.0;
  double last_e2e_seconds_ = -1.0;  ///< rank 0 only: latest e2e estimate
  double last_solver_ = 0.0;
  double last_insitu_ = 0.0;
  double last_transport_ = 0.0;
  instrument::StragglerMonitor straggler_;
};

// Fault-injection hook for the flight-recorder acceptance path: the named
// step throws an uncaught (by the workflow) exception on every rank, so the
// crash-dump machinery can be exercised end to end from a normal binary.
// In-situ only — in-transit endpoint ranks block in their receive loop and
// would never observe a sim-side throw (the join would hang).
int FailStepFromEnv() {
  const char* value = std::getenv("NEK_SENSEI_FAIL_STEP");
  return value != nullptr ? std::atoi(value) : -1;
}

// Reduce every rank's metric snapshot onto world rank 0 and stash the
// rank-aggregated report.  Collective when the metrics plane is on: every
// world rank must call this (a disabled plane makes it a no-op everywhere,
// so the collective order stays identical across ranks).
void CollectRunHealth(mpimini::Comm& world,
                      const instrument::TelemetryConfig& config,
                      const std::vector<instrument::AnomalyRecord>& anomalies,
                      instrument::MonitorServer* monitor,
                      SharedMetrics& shared) {
  if (!config.MetricsEnabled()) return;
  instrument::MetricsSnapshot mine;
  if (const instrument::MetricsRegistry* reg = instrument::CurrentMetrics()) {
    mine = reg->Snapshot();
  }
  instrument::MetricsReport report = mpimini::ReduceMetrics(world, mine, 0);
  if (world.Rank() == 0) {
    // Derived metric: the run's aggregate compression ratio, from the
    // writer-fed raw/wire counters.  Computed from the global sums (not
    // per-rank ratios), so it is deterministic across 4-vs-8-rank
    // partitionings of the same work.
    const double raw = report.CounterSum("sst.bytes_raw");
    const double wire = report.CounterSum("sst.bytes_wire");
    if (raw > 0.0 && wire > 0.0) {
      const double ratio = raw / wire;
      instrument::MetricStat stat;
      stat.ranks = report.ranks;
      stat.min = stat.mean = stat.max = stat.p95 = stat.sum = ratio;
      stat.low_watermark = stat.high_watermark = ratio;
      stat.imbalance = 1.0;
      report.gauges["sst.compression_ratio"] = stat;
    }
    // Derived e2e attribution: what share of the step→image latency was
    // already spent when the step *arrived* at the endpoint (solver stage /
    // queue / wire / decode) vs the analysis+render tail.  Computed from
    // the merged histogram sums, so — like the compression ratio — it is
    // deterministic across rank partitionings of the same work.  The full
    // eight-segment critical path lives in tools/trace_merge.py; these two
    // gauges are the always-on summary.
    const auto image_it = report.histograms.find("e2e.step_to_image_seconds");
    const auto recv_it = report.histograms.find("e2e.step_to_recv_seconds");
    if (image_it != report.histograms.end() && image_it->second.count > 0 &&
        recv_it != report.histograms.end() && recv_it->second.count > 0 &&
        image_it->second.Mean() > 0.0) {
      const double share =
          std::clamp(recv_it->second.Mean() / image_it->second.Mean(), 0.0,
                     1.0);
      instrument::MetricStat stat;
      stat.ranks = report.ranks;
      stat.min = stat.mean = stat.max = stat.p95 = stat.sum = share;
      stat.low_watermark = stat.high_watermark = share;
      stat.imbalance = 1.0;
      report.gauges["e2e.transport_share"] = stat;
      instrument::MetricStat tail = stat;
      tail.min = tail.mean = tail.max = tail.p95 = tail.sum = 1.0 - share;
      tail.low_watermark = tail.high_watermark = 1.0 - share;
      report.gauges["e2e.analysis_share"] = tail;
    }
    report.anomalies = anomalies;
    if (monitor != nullptr) {
      // Final agreement pass: a scrape after the last step (and the
      // persisted status file) must match metrics.json exactly.
      monitor->UpdateMetrics(report, anomalies);
    }
    core::MutexLock lock(shared.mutex);
    shared.metrics.metrics_report = std::move(report);
  }
}

// Print the per-rank tracer digest on ranks that do not run a Bridge
// (in-transit endpoints); Bridge::Finalize does this for sim ranks.  The
// flush matters: these threads exit right after, and unflushed stdio from
// a finishing rank thread is lost on some libc builds.
void PrintEndpointSummary() {
  if (const instrument::Tracer* tracer = instrument::CurrentTracer()) {
    std::fprintf(stderr, "%s\n", tracer->SummaryLine().c_str());
    std::fflush(stderr);
  }
}

// Sample the cumulative pipeline counters into the rank's tracer.  Called
// at step boundaries so consecutive samples attribute each step's deltas
// (DESIGN.md: counter-delta attribution).  No-op when tracing is off.
void SampleStepCounters(const occamini::Device* device,
                        const sensei::ConfigurableAnalysis* analysis,
                        const sensei::CatalystAnalysisAdaptor* catalyst,
                        const adios::SstStats* sst) {
  // Metrics-plane feeds: memory watermarks as gauges, cumulative pipeline
  // counters via SetTotal (idempotent for repeated step-boundary samples).
  if (auto* metrics = instrument::CurrentMetrics()) {
    if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
      metrics->Set("memory.host_bytes",
                   static_cast<double>(env->memory.HostCurrentBytes()));
      metrics->Set("memory.host_hwm_bytes",
                   static_cast<double>(env->memory.HostPeakBytes()));
    }
    const core::BufferStats& buffers = core::LocalBufferStats();
    metrics->SetTotal("buffer.full_copies",
                      static_cast<double>(buffers.full_copies));
    metrics->SetTotal("buffer.copied_bytes",
                      static_cast<double>(buffers.copied_bytes));
    if (device != nullptr) {
      metrics->SetTotal("d2h.bytes",
                        static_cast<double>(device->Transfers().d2h_bytes));
    }
    if (analysis != nullptr) {
      metrics->SetTotal("storage.bytes_written",
                        static_cast<double>(analysis->TotalBytesWritten()));
    }
  }
  instrument::Tracer* tracer = instrument::CurrentTracer();
  if (tracer == nullptr) return;
  const core::BufferStats& buffers = core::LocalBufferStats();
  tracer->SampleCounter("buffer.full_copies",
                        static_cast<double>(buffers.full_copies));
  tracer->SampleCounter("buffer.small_copies",
                        static_cast<double>(buffers.small_copies));
  tracer->SampleCounter("buffer.copied_bytes",
                        static_cast<double>(buffers.copied_bytes));
  tracer->SampleCounter("buffer.adoptions",
                        static_cast<double>(buffers.adoptions));
  tracer->SampleCounter("buffer.moves", static_cast<double>(buffers.moves));
  if (device != nullptr) {
    tracer->SampleCounter("d2h.bytes",
                          static_cast<double>(device->Transfers().d2h_bytes));
  }
  if (analysis != nullptr) {
    tracer->SampleCounter("storage.bytes_written",
                          static_cast<double>(analysis->TotalBytesWritten()));
  }
  if (catalyst != nullptr) {
    tracer->SampleCounter("catalyst.images",
                          static_cast<double>(catalyst->ImagesWritten()));
  }
  if (sst != nullptr) {
    tracer->SampleCounter("sst.bytes",
                          static_cast<double>(sst->payload_bytes));
    tracer->SampleCounter("sst.bytes_raw",
                          static_cast<double>(sst->raw_bytes));
    tracer->SampleCounter("sst.bytes_wire",
                          static_cast<double>(sst->wire_bytes));
  }
}

// The endpoint comm group's trace file: "trace.json" -> "trace_endpoint.json"
// (suffix-appended when the path has no extension).  A separate file per
// group mirrors a real in transit deployment — two MPI jobs, two trace
// files — and is exactly what tools/trace_merge.py fuses back together.
std::string EndpointTracePath(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "_endpoint";
  }
  return path.substr(0, dot) + "_endpoint" + path.substr(dot);
}

// Merge the run's tracers into the metrics and write the configured trace /
// summary files.  Export failures are reported, never silent.
void ExportTelemetry(const instrument::TelemetryConfig& config,
                     const mpimini::RunResult& run,
                     WorkflowMetrics& metrics) {
  if (!config.enabled) return;
  const std::vector<const instrument::Tracer*> tracers = run.TracerPointers();
  metrics.telemetry = instrument::Summarize(tracers);
  if (!config.trace_path.empty()) {
    // One file per comm group (in transit: sim + endpoint), sharing one
    // clock-aligned base timestamp so the files fuse into a single global
    // timeline without re-shifting.
    std::vector<const instrument::Tracer*> sim_group;
    std::vector<const instrument::Tracer*> endpoint_group;
    for (const instrument::Tracer* tracer : tracers) {
      if (tracer == nullptr) continue;
      (tracer->Group() == 0 ? sim_group : endpoint_group).push_back(tracer);
    }
    const std::int64_t base = instrument::TraceBaseTimestamp(tracers);
    if (!instrument::WriteChromeTrace(config.trace_path, sim_group, base)) {
      std::fprintf(stderr, "warning: failed to write trace file %s\n",
                   config.trace_path.c_str());
    }
    if (!endpoint_group.empty()) {
      const std::string endpoint_path = EndpointTracePath(config.trace_path);
      if (!instrument::WriteChromeTrace(endpoint_path, endpoint_group, base)) {
        std::fprintf(stderr, "warning: failed to write trace file %s\n",
                     endpoint_path.c_str());
      }
    }
  }
  if (!config.summary_path.empty() &&
      !instrument::WriteTelemetryJson(config.summary_path,
                                      metrics.telemetry)) {
    std::fprintf(stderr, "warning: failed to write telemetry summary %s\n",
                 config.summary_path.c_str());
  }
}

// Write the single rank-aggregated metrics.json (the reduction already ran
// inside the rank body via CollectRunHealth).
void ExportRunHealth(const instrument::TelemetryConfig& config,
                     const WorkflowMetrics& metrics) {
  if (!config.MetricsEnabled() || config.metrics_path.empty()) return;
  if (!instrument::WriteMetricsJson(config.metrics_path,
                                    metrics.metrics_report)) {
    std::fprintf(stderr, "warning: failed to write metrics file %s\n",
                 config.metrics_path.c_str());
  }
}

}  // namespace

std::string FormatHeartbeatLine(const HeartbeatLine& line) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[heartbeat] step %d/%d (%d%%) | %.2f steps/s",
                line.done, line.total,
                line.total > 0 ? 100 * line.done / line.total : 0,
                line.rate_steps_per_second);
  std::string out = buf;
  // A zero observed rate (clock glitch, first tick landing in the same
  // timer quantum) has no defined ETA: print `n/a`, never inf/nan or a
  // garbage division result.
  if (line.eta_seconds >= 0.0 && std::isfinite(line.eta_seconds)) {
    std::snprintf(buf, sizeof(buf), " | eta %.1fs", line.eta_seconds);
    out += buf;
  } else {
    out += " | eta n/a";
  }
  out += " | mem mean " + instrument::FormatBytes(line.mem_mean_bytes) +
         " max " + instrument::FormatBytes(line.mem_max_bytes);
  if (line.insitu_percent >= 0.0) {
    // Clamp the display: busy-clock vs wall-clock skew can nudge the raw
    // ratio past 100, and a ">100% in situ" line reads as nonsense.  Work
    // running off the critical path is the offload column, never an
    // inflated insitu%.
    std::snprintf(buf, sizeof(buf), " | insitu %.0f%%",
                  std::min(line.insitu_percent, 100.0));
    out += buf;
  }
  if (line.offload_percent >= 0.0) {
    std::snprintf(buf, sizeof(buf), " | offload %.0f%%",
                  std::min(line.offload_percent, 100.0));
    out += buf;
  }
  if (line.queue_limit > 0) {
    std::snprintf(buf, sizeof(buf), " | sst queue %d/%d", line.queue_depth,
                  line.queue_limit);
    out += buf;
  }
  if (line.e2e_seconds >= 0.0) {
    std::snprintf(buf, sizeof(buf), " | e2e %.1fms", line.e2e_seconds * 1e3);
    out += buf;
  }
  // Wire column only when a codec actually shrank (or grew) the stream:
  // identity-only runs keep the pre-codec line byte for byte.
  if (line.raw_bytes > 0 && line.wire_bytes > 0 &&
      line.raw_bytes != line.wire_bytes) {
    std::snprintf(buf, sizeof(buf), " | wire %s (%.1fx)",
                  instrument::FormatBytes(line.wire_bytes).c_str(),
                  static_cast<double>(line.raw_bytes) /
                      static_cast<double>(line.wire_bytes));
    out += buf;
  }
  if (!line.note.empty()) out += " | " + line.note;
  return out;
}

double WorkflowMetrics::MeanSimStepSeconds() const {
  double sum = 0.0;
  int count = 0;
  for (const RankReport& r : ranks) {
    if (!r.is_sim) continue;
    sum += r.step_busy_seconds;
    ++count;
  }
  return count && steps ? sum / count / steps : 0.0;
}

double WorkflowMetrics::TotalSimBusySeconds() const {
  double sum = 0.0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) sum += r.step_busy_seconds;
  }
  return sum;
}

std::size_t WorkflowMetrics::MaxSimHostPeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.host_peak_bytes);
  }
  return peak;
}

std::size_t WorkflowMetrics::TotalSimHostPeakBytes() const {
  std::size_t total = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) total += r.host_peak_bytes;
  }
  return total;
}

std::size_t WorkflowMetrics::MaxSimDevicePeakBytes() const {
  std::size_t peak = 0;
  for (const RankReport& r : ranks) {
    if (r.is_sim) peak = std::max(peak, r.device_peak_bytes);
  }
  return peak;
}

WorkflowMetrics RunInSitu(int nranks, const InSituOptions& options) {
  SharedMetrics shared;
  {
    core::MutexLock lock(shared.mutex);
    shared.metrics.steps = options.steps;
  }
  const instrument::TelemetryConfig telemetry =
      ResolveTelemetry(options.telemetry, options.sensei_xml);
  // Causal plane (clock sync, step provenance, e2e latency) rides with the
  // observability opt-ins: without them, runs keep the pre-provenance wire
  // bytes and collective sequence exactly.
  const bool causal = telemetry.enabled || telemetry.MetricsEnabled();
  const std::uint64_t run_id = causal ? instrument::MakeRunId() : 0;

  mpimini::RunResult run = mpimini::Runtime::Run(
      nranks, MakeRunSettings(telemetry), [&](mpimini::Comm& comm) {
    // Live run-health endpoint: rank 0 only, opt-in, loopback.  Created
    // before the step loop so /healthz answers from the first step, and
    // destroyed (-> Stop -> persisted status) at rank-body scope end,
    // after the closing metrics reduction has refreshed it.
    std::unique_ptr<instrument::MonitorServer> monitor;
    if (comm.Rank() == 0 && telemetry.MonitorEnabled()) {
      instrument::MonitorServer::Options monitor_options;
      monitor_options.port = telemetry.monitor_port;
      monitor_options.persist_path = telemetry.status_path;
      monitor_options.port_file = telemetry.monitor_port_file;
      monitor = std::make_unique<instrument::MonitorServer>(monitor_options);
    }
    // Clock calibration brackets the run: the start sync feeds provenance
    // timestamps and the aligned trace export, the closing re-sync (below)
    // measures drift.  Collective — gated identically on every rank.
    std::optional<mpimini::ClockSync> clock;
    if (causal) clock = CalibrateRankClock(comm);
    occamini::Device device(options.backend, options.transfer);
    nekrs::FlowSolver solver(comm, device, options.flow);
    std::optional<Bridge> bridge;
    if (options.use_sensei) bridge.emplace(solver, options.sensei_xml);
    std::shared_ptr<sensei::CatalystAnalysisAdaptor> catalyst;
    if (bridge) {
      catalyst =
          std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
              bridge->Analysis().Find("catalyst"));
    }
    const sensei::ConfigurableAnalysis* analysis =
        bridge ? &bridge->Analysis() : nullptr;

    // Async mode: the analyses run concurrently on the worker thread, so
    // their counters must not be read at step boundaries — sample with the
    // device feed only, and take one full sample after Finalize (SetTotal
    // and counter sampling are cumulative, so the final totals come out
    // mode-independent).
    const bool async = bridge && bridge->Async();
    const sensei::ConfigurableAnalysis* loop_analysis =
        async ? nullptr : analysis;
    const sensei::CatalystAnalysisAdaptor* loop_catalyst =
        async ? nullptr : catalyst.get();

    mpimini::RankEnv* env = mpimini::CurrentEnv();
    const double busy0 = env ? env->busy.Seconds() : 0.0;
    std::optional<instrument::ScopedTimer> loop_timer;
    if (env) loop_timer.emplace(env->timings, "step_loop");
    Heartbeat heartbeat(comm, telemetry, options.steps, monitor.get());
    const int fail_step = FailStepFromEnv();
    SampleStepCounters(&device, loop_analysis, loop_catalyst, nullptr);
    for (int s = 0; s < options.steps; ++s) {
      // Step boundary first: a crash dump's tail names the step that was
      // *in flight*, not the last one that completed.
      instrument::RecordFlightEvent(instrument::FlightEventKind::kStep,
                                    "solver.step", s);
      if (s == fail_step) {
        throw std::runtime_error("injected failure at step " +
                                 std::to_string(s) + " (solver.step)");
      }
      solver.Step();
      if (comm.Rank() == options.straggler_rank &&
          options.straggler_seconds > 0.0) {
        // Controlled straggler: busy-spin (not sleep — the busy clock must
        // see it) and book the time as solver work so the detector's span
        // attribution has a known right answer.
        const std::int64_t spin0 = instrument::Tracer::NowNs();
        while (static_cast<double>(instrument::Tracer::NowNs() - spin0) *
                   1e-9 <
               options.straggler_seconds) {
        }
        if (auto* metrics = instrument::CurrentMetrics()) {
          metrics->Add("solver.step_seconds",
                       static_cast<double>(instrument::Tracer::NowNs() -
                                           spin0) *
                           1e-9);
        }
      }
      {
        // Stamp the just-completed step's causal origin; the SENSEI update
        // (sync: inline; async: captured at Submit) runs under it so every
        // downstream write can attribute back to this step.
        instrument::StepProvenance provenance;
        if (run_id != 0) {
          provenance = instrument::MakeStepProvenance(run_id, comm.Rank(), s);
        }
        instrument::ProvenanceScope provenance_scope(
            provenance.Valid() ? &provenance : nullptr);
        if (bridge) bridge->Update();
      }
      SampleStepCounters(&device, loop_analysis, loop_catalyst, nullptr);
      heartbeat.Tick(s, /*queue_depth=*/-1, /*queue_limit=*/-1,
                     bridge ? bridge->OffloadedSeconds() : -1.0);
    }
    // Stop before teardown: Finalize (stream flushes, file closes) must not
    // count toward the per-step figures.
    const double step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
    if (loop_timer) loop_timer->Stop();
    if (bridge) bridge->Finalize();
    // Post-Finalize the worker (if any) is joined and its attribution is
    // folded into this rank: the full-feed sample closes the totals.
    SampleStepCounters(&device, analysis, catalyst.get(), nullptr);

    std::size_t bytes = 0;
    std::size_t images = 0;
    if (bridge) {
      bytes = bridge->Analysis().TotalBytesWritten();
      if (catalyst) images = catalyst->ImagesWritten();
    }
    if (clock) RecalibrateRankClock(comm, *clock);
    CollectReports(comm,
                   MakeReport(comm, /*is_sim=*/true, step_busy,
                              bridge ? bridge->WorkerHostPeakBytes() : 0),
                   bytes, images, shared);
    CollectRunHealth(comm, telemetry, heartbeat.Anomalies(), monitor.get(),
                     shared);
  });

  // Rank threads are joined, but the analysis (rightly) still wants the
  // lock for these accesses.
  core::MutexLock lock(shared.mutex);
  shared.metrics.wall_seconds = run.wall_seconds;
  ExportTelemetry(telemetry, run, shared.metrics);
  ExportRunHealth(telemetry, shared.metrics);
  return shared.metrics;
}

WorkflowMetrics RunInTransit(int sim_ranks, const InTransitOptions& options) {
  const int ratio = std::max(1, options.sim_per_endpoint);
  const int endpoint_ranks = (sim_ranks + ratio - 1) / ratio;
  const int world_ranks = sim_ranks + endpoint_ranks;
  const bool streaming = XmlHasAdios(options.sim_xml);

  SharedMetrics shared;
  {
    core::MutexLock lock(shared.mutex);
    shared.metrics.steps = options.steps;
  }
  const instrument::TelemetryConfig telemetry =
      ResolveTelemetry(options.telemetry, options.sim_xml);
  // See RunInSitu: the causal plane follows the observability opt-ins.
  const bool causal = telemetry.enabled || telemetry.MetricsEnabled();
  const std::uint64_t run_id = causal ? instrument::MakeRunId() : 0;

  mpimini::RunResult run = mpimini::Runtime::Run(
      world_ranks, MakeRunSettings(telemetry), [&](mpimini::Comm& world) {
    const bool is_sim = world.Rank() < sim_ranks;
    // World rank 0 is sim-group rank 0 (the Split keys on world rank), so
    // the monitor host is also the rank the sim-group heartbeat reduces
    // onto — one rank owns both planes.
    std::unique_ptr<instrument::MonitorServer> monitor;
    if (world.Rank() == 0 && telemetry.MonitorEnabled()) {
      instrument::MonitorServer::Options monitor_options;
      monitor_options.port = telemetry.monitor_port;
      monitor_options.persist_path = telemetry.status_path;
      monitor_options.port_file = telemetry.monitor_port_file;
      monitor = std::make_unique<instrument::MonitorServer>(monitor_options);
    }
    mpimini::Comm group = world.Split(is_sim ? 0 : 1, world.Rank());
    mpimini::RankEnv* env = mpimini::CurrentEnv();
    // Label this rank's trace lane with its comm group so the export
    // renders two process rows (sim / endpoint) on one timeline.
    if (instrument::Tracer* tracer = instrument::CurrentTracer()) {
      tracer->SetGroup(is_sim ? 0 : 1, is_sim ? "sim" : "endpoint");
    }
    // World-wide clock calibration against world rank 0 — both groups
    // export onto (and the provenance timestamps live on) one timeline.
    std::optional<mpimini::ClockSync> clock;
    if (causal) clock = CalibrateRankClock(world);

    std::size_t bytes = 0;
    std::size_t images = 0;
    std::size_t worker_peak = 0;
    double step_busy = 0.0;
    // Hoisted out of the sim block: the closing CollectRunHealth runs on
    // the world communicator, after the heartbeat (sim-group scope) died.
    std::vector<instrument::AnomalyRecord> anomalies;

    if (is_sim) {
      occamini::Device device(options.backend, options.transfer);
      nekrs::FlowSolver solver(group, device, options.flow);
      const int endpoint_world_rank = sim_ranks + world.Rank() / ratio;

      Bridge bridge(solver, options.sim_xml,
                    [&](sensei::ConfigurableAnalysis& analysis) {
                      analysis.RegisterFactory(
                          "adios",
                          [&](const xmlcfg::Element& e, mpimini::Comm&) {
                            sensei::AdiosOptions adios_options;
                            adios_options.arrays =
                                sensei::SplitList(e.Attr("arrays"));
                            adios_options.sst.queue_limit =
                                options.sst_queue_limit;
                            adios_options.codecs =
                                sensei::ParseTransportCodecs(e);
                            return std::make_shared<
                                sensei::AdiosAnalysisAdaptor>(
                                world, endpoint_world_rank, adios_options);
                          });
                    });

      auto adios =
          std::dynamic_pointer_cast<sensei::AdiosAnalysisAdaptor>(
              bridge.Analysis().Find("adios"));

      // Async mode: the SST sender runs on the worker thread; its stats and
      // the analysis byte counts are worker-owned until Finalize joins it.
      // QueueDepth/QueueLimit stay readable (atomic mirror / immutable).
      const bool async = bridge.Async();
      const sensei::ConfigurableAnalysis* loop_analysis =
          async ? nullptr : &bridge.Analysis();
      const adios::SstStats* loop_sst =
          (!async && adios) ? &adios->TransportStats() : nullptr;

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      std::optional<instrument::ScopedTimer> loop_timer;
      if (env) loop_timer.emplace(env->timings, "step_loop");
      // Heartbeat runs on the sim group: endpoint ranks sit in their
      // receive loop and cannot join step-boundary collectives.
      Heartbeat heartbeat(group, telemetry, options.steps, monitor.get(),
                          streaming ? &world : nullptr);
      SampleStepCounters(&device, loop_analysis, nullptr, loop_sst);
      for (int s = 0; s < options.steps; ++s) {
        instrument::RecordFlightEvent(instrument::FlightEventKind::kStep,
                                      "solver.step", s);
        solver.Step();
        {
          // Causal origin of this step: crosses the SST wire in the v3
          // step context, links sst.send to sst.recv in the trace, and
          // anchors the endpoint's e2e latency measurement.
          instrument::StepProvenance provenance;
          if (run_id != 0) {
            provenance =
                instrument::MakeStepProvenance(run_id, world.Rank(), s);
          }
          instrument::ProvenanceScope provenance_scope(
              provenance.Valid() ? &provenance : nullptr);
          bridge.Update();
        }
        SampleStepCounters(&device, loop_analysis, nullptr, loop_sst);
        heartbeat.Tick(s, adios ? adios->QueueDepth() : -1,
                       adios ? adios->QueueLimit() : -1,
                       bridge.OffloadedSeconds(),
                       adios ? adios->RawBytes() : 0,
                       adios ? adios->WireBytes() : 0);
      }
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      if (loop_timer) loop_timer->Stop();
      bridge.Finalize();
      // Post-Finalize full-feed sample (see RunInSitu).
      SampleStepCounters(&device, &bridge.Analysis(), nullptr,
                         adios ? &adios->TransportStats() : nullptr);
      bytes = bridge.Analysis().TotalBytesWritten();
      worker_peak = bridge.WorkerHostPeakBytes();
      anomalies = heartbeat.Anomalies();
    } else if (streaming) {
      // Endpoint rank: receive steps and run the endpoint analyses.
      std::vector<int> writers;
      for (int w = 0; w < sim_ranks; ++w) {
        if (sim_ranks + w / ratio == world.Rank()) writers.push_back(w);
      }
      adios::SstReader reader(world, writers,
                              {.queue_limit = options.sst_queue_limit});
      sensei::InTransitDataAdaptor data(group);
      sensei::ConfigurableAnalysis analysis(group);
      analysis.Initialize(xmlcfg::Parse(options.endpoint_xml).root);

      const double busy0 = env ? env->busy.Seconds() : 0.0;
      std::optional<instrument::ScopedTimer> loop_timer;
      if (env) loop_timer.emplace(env->timings, "step_loop");
      SampleStepCounters(nullptr, &analysis, nullptr, &reader.Stats());
      const bool feed_e2e = group.Rank() == 0 && world.Rank() != 0 &&
                            (telemetry.heartbeat_steps > 0 ||
                             telemetry.MonitorEnabled());
      while (auto step = reader.NextStep()) {
        // Re-install the step's wire-carried origin around the analyses:
        // endpoint-side writes (images, checkpoints) measure their e2e
        // latency against it.  One rank per metric observes — group rank 0
        // here, the compositing root inside the adaptors — so histogram
        // counts stay partition-independent (one sample per step).
        const instrument::StepProvenance origin =
            StepOrigin(step->payloads, step->step);
        instrument::ProvenanceScope provenance_scope(
            origin.Valid() ? &origin : nullptr);
        if (origin.Valid() && group.Rank() == 0) {
          if (auto* metrics = instrument::CurrentMetrics()) {
            metrics->Observe(
                "e2e.step_to_recv_seconds",
                std::max(0.0, static_cast<double>(
                                  instrument::GlobalNowNs() -
                                  origin.GlobalTimestampNs()) *
                                  1e-9));
          }
        }
        data.SetStep(step->step, 0.0, step->payloads);
        analysis.Execute(data);
        if (feed_e2e && origin.Valid()) {
          // Ship this step's end-to-end latency (origin → analyses done,
          // which includes the image write) to the monitor host.  Buffered
          // send: the heartbeat drains at its own cadence.
          world.SendValue<double>(
              0, kTagE2eSample,
              std::max(0.0, static_cast<double>(instrument::GlobalNowNs() -
                                                origin.GlobalTimestampNs()) *
                                1e-9));
        }
        SampleStepCounters(nullptr, &analysis, nullptr, &reader.Stats());
      }
      step_busy = (env ? env->busy.Seconds() : 0.0) - busy0;
      if (loop_timer) loop_timer->Stop();
      analysis.Finalize();
      PrintEndpointSummary();
      bytes = analysis.TotalBytesWritten();
      if (auto catalyst =
              std::dynamic_pointer_cast<sensei::CatalystAnalysisAdaptor>(
                  analysis.Find("catalyst"))) {
        images = catalyst->ImagesWritten();
      }
    }

    if (clock) RecalibrateRankClock(world, *clock);
    CollectReports(world, MakeReport(world, is_sim, step_busy, worker_peak),
                   bytes, images, shared);
    CollectRunHealth(world, telemetry, anomalies, monitor.get(), shared);
  });

  // Rank threads are joined, but the analysis (rightly) still wants the
  // lock for these accesses.
  core::MutexLock lock(shared.mutex);
  shared.metrics.wall_seconds = run.wall_seconds;
  ExportTelemetry(telemetry, run, shared.metrics);
  ExportRunHealth(telemetry, shared.metrics);
  return shared.metrics;
}

}  // namespace nek_sensei
