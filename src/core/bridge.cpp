#include "core/bridge.hpp"

#include <cstdio>

#include "instrument/metrics.hpp"
#include "instrument/tracer.hpp"

namespace nek_sensei {

Bridge::Bridge(
    nekrs::FlowSolver& solver, const std::string& sensei_xml,
    const std::function<void(sensei::ConfigurableAnalysis&)>& customize)
    : solver_(solver),
      pipeline_config_(
          sensei::ParsePipelineConfig(xmlcfg::Parse(sensei_xml).root)),
      // Split is collective over the stepping communicator; every rank
      // reaches this constructor with the same XML, so the async decision
      // is globally consistent.  Key = rank keeps the numbering identical,
      // which keeps every per-rank output filename identical to sync mode.
      analysis_comm_(pipeline_config_.async
                         ? solver.Comm().Split(0, solver.Comm().Rank())
                         : solver.Comm()),
      analysis_(analysis_comm_) {
  data_.Initialize(&solver_);
  if (customize) customize(analysis_);
  analysis_.Initialize(xmlcfg::Parse(sensei_xml).root);
  if (pipeline_config_.async) {
    pipeline_ = std::make_unique<AsyncPipeline>(
        solver_, analysis_, data_, analysis_comm_, pipeline_config_.depth);
  }
}

bool Bridge::Update() {
  if (pipeline_) {
    // The rank-thread cost of async mode is capture + enqueue, traced as
    // async.submit inside the pipeline; bridge.update_seconds is recorded
    // by the worker so the metric keeps meaning "time inside SENSEI".
    return pipeline_->Submit(solver_.StepNumber(), solver_.Time());
  }
  instrument::Span span("bridge.update");
  instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
  const std::int64_t begin_ns =
      metrics != nullptr ? instrument::Tracer::NowNs() : 0;
  data_.SetPipelineTime(solver_.StepNumber(), solver_.Time());
  const bool ok = analysis_.Execute(data_);
  if (metrics != nullptr) {
    // bridge.update_seconds / solver.step_seconds is the bridge-level
    // in-situ share: the fraction of the run spent inside SENSEI.
    metrics->Add("bridge.update_seconds",
                 static_cast<double>(instrument::Tracer::NowNs() - begin_ns) *
                     1e-9);
    metrics->Add("bridge.updates", 1.0);
  }
  return ok;
}

void Bridge::Finalize() {
  if (finalized_) return;
  if (pipeline_) {
    // Drains the queue, runs analysis_.Finalize() as the last worker job,
    // joins, and folds the worker's metrics/stats into this rank.
    pipeline_->Shutdown();
  } else {
    analysis_.Finalize();
  }
  finalized_ = true;
  // End-of-run telemetry digest: one line per traced rank (span totals,
  // drops if the ring wrapped, counter totals), so trace truncation can
  // never pass silently.
  if (const instrument::Tracer* tracer = instrument::CurrentTracer()) {
    std::fprintf(stderr, "%s\n", tracer->SummaryLine().c_str());
    // Flush before the mpimini runtime tears the rank threads down: an
    // unflushed stdio buffer can lose the digest of a rank whose thread
    // exits last (observed with per-rank summaries interleaving at exit).
    std::fflush(stderr);
  }
}

}  // namespace nek_sensei
