#include "core/bridge.hpp"

#include <cstdio>

#include "instrument/metrics.hpp"
#include "instrument/tracer.hpp"

namespace nek_sensei {

Bridge::Bridge(
    nekrs::FlowSolver& solver, const std::string& sensei_xml,
    const std::function<void(sensei::ConfigurableAnalysis&)>& customize)
    : solver_(solver), analysis_(solver.Comm()) {
  data_.Initialize(&solver_);
  if (customize) customize(analysis_);
  analysis_.Initialize(xmlcfg::Parse(sensei_xml).root);
}

bool Bridge::Update() {
  instrument::Span span("bridge.update");
  instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
  const std::int64_t begin_ns =
      metrics != nullptr ? instrument::Tracer::NowNs() : 0;
  data_.SetPipelineTime(solver_.StepNumber(), solver_.Time());
  const bool ok = analysis_.Execute(data_);
  if (metrics != nullptr) {
    // bridge.update_seconds / solver.step_seconds is the bridge-level
    // in-situ share: the fraction of the run spent inside SENSEI.
    metrics->Add("bridge.update_seconds",
                 static_cast<double>(instrument::Tracer::NowNs() - begin_ns) *
                     1e-9);
    metrics->Add("bridge.updates", 1.0);
  }
  return ok;
}

void Bridge::Finalize() {
  if (finalized_) return;
  analysis_.Finalize();
  finalized_ = true;
  // End-of-run telemetry digest: one line per traced rank (span totals,
  // drops if the ring wrapped, counter totals), so trace truncation can
  // never pass silently.
  if (const instrument::Tracer* tracer = instrument::CurrentTracer()) {
    std::fprintf(stderr, "%s\n", tracer->SummaryLine().c_str());
    // Flush before the mpimini runtime tears the rank threads down: an
    // unflushed stdio buffer can lose the digest of a rank whose thread
    // exits last (observed with per-rank summaries interleaving at exit).
    std::fflush(stderr);
  }
}

}  // namespace nek_sensei
