#include "core/bridge.hpp"

namespace nek_sensei {

Bridge::Bridge(
    nekrs::FlowSolver& solver, const std::string& sensei_xml,
    const std::function<void(sensei::ConfigurableAnalysis&)>& customize)
    : solver_(solver), analysis_(solver.Comm()) {
  data_.Initialize(&solver_);
  if (customize) customize(analysis_);
  analysis_.Initialize(xmlcfg::Parse(sensei_xml).root);
}

bool Bridge::Update() {
  data_.SetPipelineTime(solver_.StepNumber(), solver_.Time());
  return analysis_.Execute(data_);
}

void Bridge::Finalize() {
  if (finalized_) return;
  analysis_.Finalize();
  finalized_ = true;
}

}  // namespace nek_sensei
