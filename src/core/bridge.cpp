#include "core/bridge.hpp"

#include <cstdio>

#include "instrument/tracer.hpp"

namespace nek_sensei {

Bridge::Bridge(
    nekrs::FlowSolver& solver, const std::string& sensei_xml,
    const std::function<void(sensei::ConfigurableAnalysis&)>& customize)
    : solver_(solver), analysis_(solver.Comm()) {
  data_.Initialize(&solver_);
  if (customize) customize(analysis_);
  analysis_.Initialize(xmlcfg::Parse(sensei_xml).root);
}

bool Bridge::Update() {
  instrument::Span span("bridge.update");
  data_.SetPipelineTime(solver_.StepNumber(), solver_.Time());
  return analysis_.Execute(data_);
}

void Bridge::Finalize() {
  if (finalized_) return;
  analysis_.Finalize();
  finalized_ = true;
  // End-of-run telemetry digest: one line per traced rank (span totals,
  // drops if the ring wrapped, counter totals), so trace truncation can
  // never pass silently.
  if (const instrument::Tracer* tracer = instrument::CurrentTracer()) {
    std::fprintf(stderr, "%s\n", tracer->SummaryLine().c_str());
  }
}

}  // namespace nek_sensei
